//! Emit `BENCH_shard.json`: scatter-gather MPP emulation at 1 shard vs
//! 4 shards, same statements, same data (DESIGN §14).
//!
//!     cargo run --release --bin bench_shard
//!
//! Measures, each best-of-N wall clock, the three BENCH_columnar shapes
//! through full `ShardRouter` clusters (coordinator + shards, routing,
//! scatter, client-side merge included):
//!
//! * int predicate filter (`WHERE v > 500000`) — pass-through scatter,
//!   k-way ordinal merge;
//! * 1k-group `GROUP BY k, sum/avg/count` — per-shard partials
//!   re-aggregated on the merge node;
//! * equi-join against a broadcast dimension table — shard-local joins.
//!
//! Both clusters are loaded through `ShardCluster::put_table_batch`
//! (the columnar bulk path), routers pin per-node execution to one
//! thread so the comparison isolates *sharding* parallelism, and every
//! shape is checked bit-identical against a plain single-node session
//! before any timing. A nonzero `shard_fallback_total` delta during the
//! correctness pass fails the run outright: a benchmark that silently
//! measured coordinator fallback would be measuring nothing.
//!
//! The ≥1.5× speedup bar on at least one shape is only *enforced*
//! (exit 1) on machines with ≥4 cores — in-process shards scatter on
//! real threads, and a 1-core container cannot exhibit that. There the
//! numbers are recorded and the gate is marked hardware-skipped,
//! matching the bench_parallel convention.
//!
//! `BENCH_SHARD_ROWS` overrides the 2M default for smoke runs.

use colstore::{Batch, ColumnVec, Validity};
use hyperq::shard::{Mode, ShardCluster, ShardOpts};
use hyperq::Backend;
use pgdb::{BatchQueryResult, Column, Db, PgType};
use std::collections::HashMap;
use std::time::{Duration, Instant};

const DEFAULT_ROWS: usize = 2_000_000;
const SHARDS: usize = 4;
const GROUPS: i64 = 1_000;

fn rows_target() -> usize {
    std::env::var("BENCH_SHARD_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(DEFAULT_ROWS)
}

/// `t`: n rows of (k: group key, v: int payload, j: join key).
/// Deterministic mixed-congruential fill — identical across the
/// single-node, 1-shard and 4-shard copies by construction.
fn fact_table(n: usize, join_keys: usize) -> Batch {
    let mut k = Vec::with_capacity(n);
    let mut v = Vec::with_capacity(n);
    let mut j = Vec::with_capacity(n);
    for i in 0..n {
        let h = (i as i64)
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        k.push(h.rem_euclid(GROUPS));
        v.push(h.rem_euclid(1_000_000));
        j.push(h.rem_euclid(join_keys as i64));
    }
    Batch::new(
        vec![
            Column::new("k", PgType::Int8),
            Column::new("v", PgType::Int8),
            Column::new("j", PgType::Int8),
        ],
        vec![
            ColumnVec::Int(k, Validity::all_valid(n)),
            ColumnVec::Int(v, Validity::all_valid(n)),
            ColumnVec::Int(j, Validity::all_valid(n)),
        ],
        n,
    )
}

/// `r`: one row per join key — small enough to broadcast, so the join
/// stays shard-local.
fn dim_table(join_keys: usize) -> Batch {
    let n = join_keys;
    Batch::new(
        vec![Column::new("jk", PgType::Int8), Column::new("rv", PgType::Int8)],
        vec![
            ColumnVec::Int((0..n as i64).collect(), Validity::all_valid(n)),
            ColumnVec::Int((0..n as i64).map(|x| x * 3).collect(), Validity::all_valid(n)),
        ],
        n,
    )
}

fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed());
    }
    best
}

fn run_batch(backend: &mut dyn Backend, sql: &str) -> Batch {
    match backend.execute_sql_batch(sql).expect("bench SQL executes") {
        Some(BatchQueryResult::Batch(b)) => b,
        other => panic!("expected batch, got {other:?}"),
    }
}

struct Entry {
    name: &'static str,
    one_shard_s: f64,
    four_shard_s: f64,
    result_rows: usize,
}

impl Entry {
    fn speedup(&self) -> f64 {
        if self.four_shard_s > 0.0 { self.one_shard_s / self.four_shard_s } else { f64::INFINITY }
    }
}

fn main() {
    let rows = rows_target();
    // Dimension sized so it always broadcasts while the fact always
    // partitions, whatever BENCH_SHARD_ROWS says.
    let join_keys = (rows / 200).clamp(1, 10_000);
    let opts = || ShardOpts {
        broadcast_threshold: join_keys as u64,
        float_agg: false,
        stats: true,
        keys: HashMap::new(),
    };
    let available_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("building {rows}-row fixture ({available_cores} cores available)...");

    let db = Db::new();
    db.put_table_batch("t", fact_table(rows, join_keys));
    db.put_table_batch("r", dim_table(join_keys));
    let mut single = db.session();
    single.set_exec_threads(Some(1));

    let one = ShardCluster::in_process_with(1, opts());
    let four = ShardCluster::in_process_with(SHARDS, opts());
    for cluster in [&one, &four] {
        cluster.put_table_batch("t", fact_table(rows, join_keys));
        cluster.put_table_batch("r", dim_table(join_keys));
        assert_eq!(cluster.table_meta("t").unwrap().mode, Mode::Partitioned);
        assert_eq!(cluster.table_meta("r").unwrap().mode, Mode::Broadcast);
    }
    let mut router1 = one.router().expect("1-shard router");
    let mut router4 = four.router().expect("4-shard router");
    // Pin per-node execution to one thread: the quantity under test is
    // sharding parallelism, not the morsel scheduler.
    router1.set_exec_threads(Some(1));
    router4.set_exec_threads(Some(1));

    let shapes: [(&'static str, &'static str); 3] = [
        ("filter_int_predicate", "SELECT k, v FROM t WHERE v > 500000"),
        (
            "group_by_1k_groups",
            "SELECT k, sum(v) AS sv, avg(v) AS av, count(*) AS n FROM t GROUP BY k ORDER BY k",
        ),
        ("equi_join_broadcast_dim", "SELECT t.k, t.v, r.rv FROM t JOIN r ON t.j = r.jk"),
    ];

    // Correctness before any timing, with fallback surveillance: every
    // shape must produce the single-node answer bit for bit at both
    // shard counts, and none may have routed through the coordinator.
    let reg = obs::global_registry();
    let fallbacks_before = reg.counter_value("shard_fallback_total");
    let mut result_rows = Vec::new();
    for (name, sql) in shapes {
        let want = match single.execute_batch(sql).expect("single-node executes") {
            BatchQueryResult::Batch(b) => b,
            other => panic!("expected batch, got {other:?}"),
        };
        for (label, router) in
            [("1-shard", &mut router1 as &mut dyn Backend), ("4-shard", &mut router4)]
        {
            let got = run_batch(router, sql);
            assert!(
                want.structurally_equal(&got),
                "{name}: {label} result diverged from single-node"
            );
        }
        result_rows.push(want.rows());
    }
    let fallbacks = reg.counter_value("shard_fallback_total") - fallbacks_before;
    assert_eq!(fallbacks, 0, "a timed shape fell back to the coordinator — nothing to measure");

    let mut entries = Vec::new();
    for (i, (name, sql)) in shapes.into_iter().enumerate() {
        let one_t = best_of(3, || run_batch(&mut router1, sql));
        let four_t = best_of(3, || run_batch(&mut router4, sql));
        let e = Entry {
            name,
            one_shard_s: one_t.as_secs_f64(),
            four_shard_s: four_t.as_secs_f64(),
            result_rows: result_rows[i],
        };
        println!(
            "{:<26} 1-shard {:>9.3}ms   {}-shard {:>9.3}ms   speedup {:>6.2}x   ({} rows)",
            e.name,
            e.one_shard_s * 1e3,
            SHARDS,
            e.four_shard_s * 1e3,
            e.speedup(),
            e.result_rows,
        );
        entries.push(e);
    }

    let at_bar = entries.iter().filter(|e| e.speedup() >= 1.5).count();
    let speedup_gate_enforced = available_cores >= SHARDS;

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"rows\": {rows},\n"));
    json.push_str(&format!("  \"join_keys\": {join_keys},\n"));
    json.push_str(&format!("  \"available_cores\": {available_cores},\n"));
    json.push_str(&format!("  \"shards\": {SHARDS},\n"));
    json.push_str("  \"benchmarks\": [\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            concat!(
                "    {{\"name\": \"{}\", \"one_shard_s\": {:.6}, \"four_shard_s\": {:.6}, ",
                "\"speedup\": {:.2}, \"result_rows\": {}}}{}\n"
            ),
            e.name,
            e.one_shard_s,
            e.four_shard_s,
            e.speedup(),
            e.result_rows,
            if i + 1 < entries.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"fallbacks_during_timed_shapes\": {fallbacks},\n"));
    json.push_str(&format!("  \"shapes_at_1_5x_or_better\": {at_bar},\n"));
    json.push_str(&format!("  \"speedup_gate_enforced\": {speedup_gate_enforced}"));
    if !speedup_gate_enforced {
        // Machine-readable marker so downstream tooling can tell "the
        // gate passed" apart from "the gate could not run here".
        json.push_str(",\n  \"skipped_reason\": \"insufficient_cores\",\n");
        json.push_str(&format!(
            "  \"speedup_gate_note\": \"hardware-skipped: {available_cores} core(s) < {SHARDS}\"\n"
        ));
    } else {
        json.push('\n');
    }
    json.push_str("}\n");
    std::fs::write("BENCH_shard.json", &json).expect("write BENCH_shard.json");
    println!("wrote BENCH_shard.json");

    if speedup_gate_enforced && at_bar < 1 {
        eprintln!("acceptance: need >=1 shape at >=1.5x with {SHARDS} shards, got {at_bar}");
        std::process::exit(1);
    }
    if !speedup_gate_enforced {
        eprintln!(
            "speedup gate skipped: {available_cores} core(s) available, gate needs {SHARDS}"
        );
    }
}
