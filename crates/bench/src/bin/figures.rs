//! The figures harness: prints the rows/series behind the paper's
//! Figure 6 and Figure 7, plus the ablation summaries.
//!
//! Usage: `cargo run --release -p hyperq-bench --bin figures [--quick]`
//!
//! Figure 6 — per-query translation time as a percentage of total
//! (translation + execution) time for the 25-query Analytical Workload.
//! Figure 7 — translation time split across parse / algebrize / optimize
//! / serialize stages.

use hyperq::{loader, HyperQSession, SessionConfig, StageTimings};
use hyperq_bench::{bench_spec, measure_workload, prepared_session, quick_spec};
use hyperq_workload::analytical::analytical_workload;
use hyperq_workload::taq::{generate_trades, TaqConfig};
use std::time::Duration;
use xformer::XformConfig;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let spec = if quick { quick_spec() } else { bench_spec() };
    let reps = if quick { 2 } else { 5 };

    println!("Hyper-Q reproduction — evaluation harness");
    println!(
        "workload: 25 queries over {} wide tables ({} metric columns, {} rows each), metadata caching ON\n",
        spec.tables, spec.metrics, spec.rows
    );

    // ---------- Figure 6 ----------
    println!("=== Figure 6: Efficiency of query translation ===");
    println!("{:>3} {:>6} {:>14} {:>14} {:>10}", "q#", "joins", "translate(us)", "execute(us)", "overhead");
    let measurements = measure_workload(&spec, SessionConfig::default(), reps);
    let mut ratios = Vec::new();
    for m in &measurements {
        let ratio = m.overhead_ratio();
        ratios.push((m.id, ratio));
        println!(
            "{:>3} {:>6} {:>14.1} {:>14.1} {:>9.2}%",
            m.id,
            m.tables_joined,
            m.translation.as_secs_f64() * 1e6,
            m.execution.as_secs_f64() * 1e6,
            ratio * 100.0
        );
    }
    let avg = ratios.iter().map(|(_, r)| r).sum::<f64>() / ratios.len() as f64;
    let (max_q, max_r) =
        ratios.iter().cloned().max_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap();
    println!("\navg overhead: {:.2}%   max overhead: {:.2}% (query {})", avg * 100.0, max_r * 100.0, max_q);
    let mut slowest: Vec<(usize, Duration)> =
        measurements.iter().map(|m| (m.id, m.translation)).collect();
    slowest.sort_by_key(|e| std::cmp::Reverse(e.1));
    let top4: Vec<usize> = slowest.iter().take(4).map(|(id, _)| *id).collect();
    println!(
        "slowest-to-translate queries: {:?}  (paper: 10, 18, 19, 20 — the multi-join quartet)",
        top4
    );

    // ---------- Figure 7 ----------
    println!("\n=== Figure 7: Time consumed by translation stages ===");
    let mut total = StageTimings::default();
    for m in &measurements {
        total.add(&m.stages);
    }
    let sum = total.total().as_secs_f64().max(f64::MIN_POSITIVE);
    println!(
        "parse      {:>10.1} us  {:>5.1}%",
        total.parse.as_secs_f64() * 1e6,
        total.parse.as_secs_f64() / sum * 100.0
    );
    println!(
        "algebrize  {:>10.1} us  {:>5.1}%",
        total.algebrize.as_secs_f64() * 1e6,
        total.algebrize.as_secs_f64() / sum * 100.0
    );
    println!(
        "optimize   {:>10.1} us  {:>5.1}%",
        total.optimize.as_secs_f64() * 1e6,
        total.optimize.as_secs_f64() / sum * 100.0
    );
    println!(
        "serialize  {:>10.1} us  {:>5.1}%",
        total.serialize.as_secs_f64() * 1e6,
        total.serialize.as_secs_f64() / sum * 100.0
    );
    println!("(paper: optimization and serialization consume most of the time)");

    // ---------- Ablation A: metadata cache ----------
    println!("\n=== Ablation A: metadata caching (translation time, 5-way-join query) ===");
    let q10 = analytical_workload(&spec).into_iter().nth(9).unwrap();
    let time_translation = |session: &mut HyperQSession, reps: usize| -> Duration {
        let mut best = Duration::MAX;
        for _ in 0..reps {
            let t0 = std::time::Instant::now();
            session.translate_only(&q10.text).unwrap();
            best = best.min(t0.elapsed());
        }
        best
    };
    let mut on = prepared_session(&spec, SessionConfig::default());
    let _ = on.translate_only(&q10.text);
    let t_on = time_translation(&mut on, reps);
    let mut off = prepared_session(
        &spec,
        SessionConfig { metadata_cache_ttl: Duration::ZERO, ..Default::default() },
    );
    let t_off = time_translation(&mut off, reps);
    println!(
        "cache ON:  {:>10.1} us\ncache OFF: {:>10.1} us   ({:.2}x)",
        t_on.as_secs_f64() * 1e6,
        t_off.as_secs_f64() * 1e6,
        t_off.as_secs_f64() / t_on.as_secs_f64().max(f64::MIN_POSITIVE)
    );

    // ---------- Ablation B: column pruning ----------
    println!("\n=== Ablation B: column pruning (SQL size over {}-column tables) ===", spec.metrics);
    let q1 = analytical_workload(&spec).into_iter().next().unwrap();
    let sql_len = |cfg: SessionConfig| -> usize {
        let mut s = prepared_session(&spec, cfg);
        s.translate_only(&q1.text)
            .unwrap()
            .iter()
            .flat_map(|t| t.statements.iter())
            .map(|st| st.sql.len())
            .sum()
    };
    let len_on = sql_len(SessionConfig::default());
    let len_off = sql_len(SessionConfig {
        xform: XformConfig { column_pruning: false, ..XformConfig::default() },
        ..Default::default()
    });
    println!(
        "pruning ON:  {len_on:>8} bytes of SQL\npruning OFF: {len_off:>8} bytes of SQL   ({:.1}x bloat without pruning)",
        len_off as f64 / len_on.max(1) as f64
    );

    // ---------- Ablation C: materialization ----------
    println!("\n=== Ablation C: materialization policy (paper Example 3) ===");
    let trades = generate_trades(&TaqConfig { rows: 2000, symbols: 4, days: 2, seed: 11 });
    let program = concat!(
        "f: {[Sym] dt: select Price from trades where Symbol=Sym; :select max Price from dt}; ",
        "f[`GOOG]"
    );
    let run_policy = |policy: algebrizer::MaterializationPolicy| -> Duration {
        let db = pgdb::Db::new();
        loader::load_table_direct(&db, "trades", &trades).unwrap();
        let cfg = SessionConfig { policy, ..Default::default() };
        let mut best = Duration::MAX;
        for _ in 0..reps {
            let mut s = HyperQSession::with_direct_config(&db, cfg.clone());
            let t0 = std::time::Instant::now();
            s.execute(program).unwrap();
            best = best.min(t0.elapsed());
        }
        best
    };
    let logical = run_policy(algebrizer::MaterializationPolicy::Logical);
    let physical = run_policy(algebrizer::MaterializationPolicy::Physical);
    println!(
        "logical (inline views):     {:>10.1} us\nphysical (CREATE TEMP):     {:>10.1} us",
        logical.as_secs_f64() * 1e6,
        physical.as_secs_f64() * 1e6
    );

    // ---------- Ablation D: ordering elision ----------
    println!("\n=== Ablation D: ordering elision (scalar agg over ordered subquery) ===");
    let trades_big = generate_trades(&TaqConfig { rows: 5000, symbols: 6, days: 2, seed: 5 });
    let oq = "select mx: max Price, av: avg Price from select from trades where Size > 500";
    let run_ordering = |ordering: bool| -> Duration {
        let db = pgdb::Db::new();
        loader::load_table_direct(&db, "trades", &trades_big).unwrap();
        let cfg = SessionConfig {
            xform: XformConfig { ordering, ..XformConfig::default() },
            ..Default::default()
        };
        let mut s = HyperQSession::with_direct_config(&db, cfg.clone());
        let mut best = Duration::MAX;
        for _ in 0..reps {
            let t0 = std::time::Instant::now();
            s.execute(oq).unwrap();
            best = best.min(t0.elapsed());
        }
        best
    };
    let elided = run_ordering(true);
    let kept = run_ordering(false);
    println!(
        "elision ON  (sort removed): {:>10.1} us\nelision OFF (sort kept):    {:>10.1} us",
        elided.as_secs_f64() * 1e6,
        kept.as_secs_f64() * 1e6
    );
}
