//! Execution hot paths: hash-keyed executor primitives against their
//! naive predecessors, plus the keyed translation cache.
//!
//! Naive arms run at reduced sizes — they are O(n·g)/O(n·m) scans and
//! exist only to show the asymptotic gap; the JSON emitter
//! (`cargo run --release --bin bench_exec`) measures the full-size
//! speedups the acceptance numbers quote.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyperq::SessionConfig;
use hyperq_bench::exec_data::{grouping_keys, join_inputs, row_set};
use hyperq_bench::{prepared_session, quick_spec};
use hyperq_workload::analytical::analytical_workload;
use pgdb::exec::{dedup_rows, except_rows, group_indices, hash_join, reference};
use pgdb::sql::ast::JoinType;

fn grouping(c: &mut Criterion) {
    let mut group = c.benchmark_group("group_by_high_cardinality");
    group.sample_size(10);
    for rows in [10_000usize, 100_000] {
        let keys = grouping_keys(rows, rows / 2, 7);
        group.bench_with_input(BenchmarkId::new("hash", rows), &keys, |b, keys| {
            b.iter(|| group_indices(keys.clone()));
        });
    }
    // Naive arm: 10k only — at 100k the per-group scan alone takes
    // seconds per iteration.
    let keys = grouping_keys(10_000, 5_000, 7);
    group.bench_with_input(BenchmarkId::new("naive", 10_000usize), &keys, |b, keys| {
        b.iter(|| reference::group_indices_naive(keys.clone()));
    });
    group.finish();
}

fn set_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_ops");
    group.sample_size(10);
    let l = row_set(10_000, 8_000, 11);
    let r = row_set(10_000, 8_000, 13);
    group.bench_function("except/hash/10kx10k", |b| {
        b.iter(|| {
            let mut lhs = l.clone();
            except_rows(&mut lhs, &r);
            lhs
        });
    });
    let (ls, rs) = (row_set(2_000, 1_600, 11), row_set(2_000, 1_600, 13));
    group.bench_function("except/naive/2kx2k", |b| {
        b.iter(|| {
            let mut lhs = ls.clone();
            reference::except_rows_naive(&mut lhs, &rs);
            lhs
        });
    });
    group.bench_function("distinct/hash/10k", |b| {
        b.iter(|| {
            let mut rows = l.clone();
            dedup_rows(&mut rows);
            rows
        });
    });
    group.bench_function("distinct/naive/2k", |b| {
        b.iter(|| {
            let mut rows = ls.clone();
            reference::dedup_rows_naive(&mut rows);
            rows
        });
    });
    group.finish();
}

fn joins(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_join_key");
    group.sample_size(10);
    let (l, r, pairs) = join_inputs(20_000, 20_000, 5_000, 17);
    group.bench_function("cellkey/20kx20k", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            hash_join(&l, &r, &pairs, JoinType::Inner, &mut out);
            out
        });
    });
    group.bench_function("string_key/20kx20k", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            reference::hash_join_string_keyed(&l, &r, &pairs, JoinType::Inner, &mut out);
            out
        });
    });
    group.finish();
}

fn translation_cache(c: &mut Criterion) {
    let spec = quick_spec();
    let q = analytical_workload(&spec)[0].text.clone();
    let mut group = c.benchmark_group("translation_cache");
    group.sample_size(20);

    // prepared_session pins the cache off — the pipeline arm.
    let mut off = prepared_session(&spec, SessionConfig::default());
    off.translate_only(&q).unwrap();
    group.bench_function("repeat/cache_off", |b| {
        b.iter(|| off.translate_only(&q).unwrap());
    });

    let mut on = prepared_session(&spec, SessionConfig::default());
    on.set_translation_cache(256);
    on.translate_only(&q).unwrap();
    group.bench_function("repeat/cache_on", |b| {
        b.iter(|| on.translate_only(&q).unwrap());
    });
    group.finish();
}

criterion_group!(benches, grouping, set_ops, joins, translation_cache);
criterion_main!(benches);
