//! Ablation benches for the design choices the paper calls out.
//!
//! * **A — metadata caching** (§6: "experiments are conducted with
//!   metadata caching enabled"): translation with the cache on vs off.
//! * **B — column pruning** (§3.3 Performance): translation+execution
//!   over 500-column tables with pruning on vs off.
//! * **C — materialization policy** (§4.3): logical inlining vs physical
//!   temp tables for the paper's Example 3 function.
//! * **D — ordering elision** (§3.3 Transparency): scalar aggregation
//!   over an ordered subquery with elision on vs off.

use criterion::{criterion_group, criterion_main, Criterion};
use hyperq::{loader, HyperQSession, SessionConfig};
use hyperq_bench::{bench_spec, prepared_session, quick_spec};
use hyperq_workload::analytical::analytical_workload;
use hyperq_workload::taq::{generate_trades, TaqConfig};
use std::time::Duration;
use xformer::XformConfig;

fn ablation_metadata_cache(c: &mut Criterion) {
    let spec = quick_spec();
    let queries = analytical_workload(&spec);
    let q = &queries[9]; // 5-way join: 5 metadata lookups per translation

    let mut group = c.benchmark_group("ablation_metadata_cache");
    group.sample_size(20);

    let cached = SessionConfig { metadata_cache_ttl: Duration::from_secs(300), ..Default::default() };
    let mut s_on = prepared_session(&spec, cached);
    let _ = s_on.translate_only(&q.text);
    group.bench_function("cache_on", |b| {
        b.iter(|| s_on.translate_only(&q.text).unwrap());
    });

    let uncached = SessionConfig { metadata_cache_ttl: Duration::ZERO, ..Default::default() };
    let mut s_off = prepared_session(&spec, uncached);
    group.bench_function("cache_off", |b| {
        b.iter(|| s_off.translate_only(&q.text).unwrap());
    });
    group.finish();
}

fn ablation_column_pruning(c: &mut Criterion) {
    let spec = bench_spec(); // 500-column tables: pruning matters here
    let queries = analytical_workload(&spec);
    let q = &queries[0];

    let mut group = c.benchmark_group("ablation_column_pruning");
    group.sample_size(10);

    let mut s_on = prepared_session(&spec, SessionConfig::default());
    let _ = s_on.translate_only(&q.text);
    group.bench_function("pruning_on", |b| {
        b.iter(|| s_on.translate_only(&q.text).unwrap());
    });

    let no_prune = SessionConfig {
        xform: XformConfig { column_pruning: false, ..XformConfig::default() },
        ..Default::default()
    };
    let mut s_off = prepared_session(&spec, no_prune);
    let _ = s_off.translate_only(&q.text);
    group.bench_function("pruning_off", |b| {
        b.iter(|| s_off.translate_only(&q.text).unwrap());
    });
    group.finish();
}

fn ablation_materialization(c: &mut Criterion) {
    let trades = generate_trades(&TaqConfig { rows: 2000, symbols: 4, days: 2, seed: 11 });
    let program = concat!(
        "f: {[Sym] dt: select Price from trades where Symbol=Sym; :select max Price from dt}; ",
        "f[`GOOG]"
    );

    let mut group = c.benchmark_group("ablation_materialization");
    group.sample_size(20);

    let db1 = pgdb::Db::new();
    loader::load_table_direct(&db1, "trades", &trades).unwrap();
    let mut logical = HyperQSession::with_direct_config(&db1, SessionConfig::default());
    group.bench_function("logical", |b| {
        b.iter(|| logical.execute(program).unwrap());
    });

    let db2 = pgdb::Db::new();
    loader::load_table_direct(&db2, "trades", &trades).unwrap();
    let phys_cfg = SessionConfig {
        policy: algebrizer::MaterializationPolicy::Physical,
        ..SessionConfig::default()
    };
    group.bench_function("physical", |b| {
        b.iter(|| {
            // Fresh session per run: temp tables are per-session and
            // re-creating HQ_TEMP_n in one session would collide.
            let mut s = HyperQSession::with_direct_config(&db2, phys_cfg.clone());
            s.execute(program).unwrap()
        });
    });
    group.finish();
}

fn ablation_ordering(c: &mut Criterion) {
    let trades = generate_trades(&TaqConfig { rows: 5000, symbols: 6, days: 2, seed: 5 });
    let q = "select mx: max Price, av: avg Price from select from trades where Size > 500";

    let mut group = c.benchmark_group("ablation_ordering");
    group.sample_size(20);

    let db1 = pgdb::Db::new();
    loader::load_table_direct(&db1, "trades", &trades).unwrap();
    let mut elide = HyperQSession::with_direct(&db1);
    group.bench_function("elision_on", |b| {
        b.iter(|| elide.execute(q).unwrap());
    });

    let db2 = pgdb::Db::new();
    loader::load_table_direct(&db2, "trades", &trades).unwrap();
    let keep_cfg = SessionConfig {
        xform: XformConfig { ordering: false, ..XformConfig::default() },
        ..SessionConfig::default()
    };
    let mut keep = HyperQSession::with_direct_config(&db2, keep_cfg);
    group.bench_function("elision_off", |b| {
        b.iter(|| keep.execute(q).unwrap());
    });
    group.finish();
}

criterion_group!(benches, ablation_metadata_cache, ablation_column_pruning, ablation_materialization, ablation_ordering);
criterion_main!(benches);
