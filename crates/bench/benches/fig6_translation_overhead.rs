//! Figure 6: efficiency of query translation.
//!
//! The paper reports per-query translation time relative to total
//! execution time over the 25-query Analytical Workload (avg ≈0.5%,
//! max ≈4% on their Greenplum testbed). This bench times translation and
//! execution for representative queries: a 3-way-join query (q1) and the
//! join-heavy quartet member q10, plus the full-workload sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyperq::SessionConfig;
use hyperq_bench::{bench_spec, prepared_session};
use hyperq_workload::analytical::analytical_workload;

fn fig6(c: &mut Criterion) {
    let spec = bench_spec();
    let queries = analytical_workload(&spec);
    let mut session = prepared_session(&spec, SessionConfig::default());
    // Warm the metadata cache (paper: experiments run with caching on).
    for q in &queries {
        let _ = session.translate_only(&q.text);
    }

    let mut group = c.benchmark_group("fig6_translation");
    group.sample_size(20);
    for id in [1usize, 5, 10, 18, 25] {
        let q = &queries[id - 1];
        group.bench_with_input(BenchmarkId::new("translate", id), q, |b, q| {
            b.iter(|| session.translate_only(&q.text).unwrap());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig6_execution");
    group.sample_size(10);
    for id in [1usize, 10] {
        let q = &queries[id - 1];
        let sqls: Vec<String> = session
            .translate_only(&q.text)
            .unwrap()
            .into_iter()
            .flat_map(|t| t.statements.into_iter().map(|s| s.sql))
            .collect();
        group.bench_with_input(BenchmarkId::new("execute", id), &sqls, |b, sqls| {
            b.iter(|| {
                for sql in sqls {
                    session.backend().lock().unwrap().execute_sql(sql).unwrap();
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fig6);
criterion_main!(benches);
