//! Figure 7: time consumed by translation stages.
//!
//! The paper splits translation into algebrization, optimization and
//! serialization, observing that optimization and serialization consume
//! most of the time for analytical queries (multi-table joins generate
//! multi-level subqueries whose columns must be pruned before
//! serialization). This bench isolates each stage on a join-heavy query.

use criterion::{criterion_group, criterion_main, Criterion};
use hyperq::SessionConfig;
use hyperq_bench::{bench_spec, prepared_session};
use hyperq_workload::analytical::analytical_workload;
use xformer::Xformer;

fn fig7(c: &mut Criterion) {
    let spec = bench_spec();
    let queries = analytical_workload(&spec);
    let mut session = prepared_session(&spec, SessionConfig::default());
    for q in &queries {
        let _ = session.translate_only(&q.text);
    }
    // Use the join-heavy q10 — the stage split is most pronounced there.
    let q10 = &queries[9];

    // Parse stage only.
    let mut group = c.benchmark_group("fig7_stages");
    group.sample_size(30);
    group.bench_function("parse", |b| {
        b.iter(|| qlang::parse(&q10.text).unwrap());
    });
    // Full translation (parse + algebrize + optimize + serialize).
    group.bench_function("full_translation", |b| {
        b.iter(|| session.translate_only(&q10.text).unwrap());
    });
    group.finish();

    // Optimize + serialize in isolation over a pre-bound plan: bind once
    // (no transformation), then time the Xformer and the serializer.
    let translations = session.translate_only(&q10.text).unwrap();
    let sql = &translations[0].statements[0].sql;
    assert!(!sql.is_empty());

    // Rebuild a raw plan by translating with all transformations off,
    // then measure applying them.
    let cfg_off = SessionConfig {
        xform: xformer::XformConfig { null_logic: false, column_pruning: false, ordering: false },
        ..SessionConfig::default()
    };
    let mut raw_session = prepared_session(&spec, cfg_off);
    let _ = raw_session.translate_only(&q10.text);

    let mut group = c.benchmark_group("fig7_optimize_serialize");
    group.sample_size(20);
    group.bench_function("translate_no_xform", |b| {
        b.iter(|| raw_session.translate_only(&q10.text).unwrap());
    });
    group.bench_function("xform_apply_only", |b| {
        // Representative plan: bind a mid-size query and apply rules.
        let plan = {
            use algebrizer::{Binder, Bound, MaterializationPolicy, Scopes};
            let backend = raw_session.backend().clone();
            let mdi = hyperq::mdi_backend::BackendMdi::new(backend);
            let mut scopes = Scopes::new();
            let mut seq = 0;
            let mut binder =
                Binder::new(&mdi, &mut scopes, MaterializationPolicy::Logical, &mut seq);
            let stmt = qlang::parse_one(&q10.text).unwrap();
            match binder.bind_statement(&stmt).unwrap().bound {
                Bound::Rel { plan, .. } => plan,
                other => panic!("unexpected {other:?}"),
            }
        };
        let xf = Xformer::new();
        b.iter(|| xf.apply(plan.clone()));
    });
    group.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);
