//! Named built-in functions of the Q vocabulary.
//!
//! These are the primitives the Algebrizer must map onto SQL aggregates
//! and expressions; the reference engine implements them natively over the
//! columnar value model so the side-by-side framework (paper §5) has a
//! ground truth to compare Hyper-Q's translations against.

use crate::hashkey::{atom_keys, QKey};
use qlang::value::{Atom, Dict, KeyedTable, Table, Value};
use qlang::{QError, QResult};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

/// `til n` — the first n naturals.
pub fn til(a: &Value) -> QResult<Value> {
    match a {
        Value::Atom(at) => {
            let n = at.as_i64().ok_or_else(|| QError::type_err("til: need integer"))?;
            if n < 0 {
                return Err(QError::domain("til: negative"));
            }
            Ok(Value::Longs((0..n).collect()))
        }
        _ => Err(QError::type_err("til: need integer atom")),
    }
}

/// `count x` — list length (atoms count 1).
pub fn count(a: &Value) -> QResult<Value> {
    Ok(Value::long(a.count() as i64))
}

/// `first x`.
pub fn first(a: &Value) -> QResult<Value> {
    Ok(a.index(0).unwrap_or_else(|| match a {
        Value::Atom(_) => a.clone(),
        _ => a.null_element(),
    }))
}

/// `last x`.
pub fn last(a: &Value) -> QResult<Value> {
    match a.len() {
        Some(0) => Ok(a.null_element()),
        Some(n) => Ok(a.index(n - 1).unwrap()),
        None => Ok(a.clone()),
    }
}

/// Iterate the *non-null* numeric elements of a list.
fn numeric_elems(a: &Value) -> QResult<Vec<f64>> {
    let n = a.len().ok_or_else(|| QError::type_err("expected a list"))?;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        if let Some(Value::Atom(at)) = a.index(i) {
            if !at.is_null() {
                if let Some(f) = at.as_f64() {
                    out.push(f);
                }
            }
        }
    }
    Ok(out)
}

/// Is this list integral (so sums stay longs)?
fn is_integral(a: &Value) -> bool {
    matches!(
        a,
        Value::Longs(_) | Value::Ints(_) | Value::Shorts(_) | Value::Bools(_) | Value::Bytes(_)
    )
}

/// `sum x` — nulls ignored (kdb+ aggregation semantics).
pub fn sum(a: &Value) -> QResult<Value> {
    if a.is_atom() {
        return Ok(a.clone());
    }
    let elems = numeric_elems(a)?;
    let s: f64 = elems.iter().sum();
    Ok(if is_integral(a) { Value::long(s as i64) } else { Value::float(s) })
}

/// `avg x` — mean over non-null elements.
pub fn avg(a: &Value) -> QResult<Value> {
    if a.is_atom() {
        return Ok(Value::float(
            match a {
                Value::Atom(at) => at.as_f64().unwrap_or(f64::NAN),
                _ => unreachable!(),
            },
        ));
    }
    let elems = numeric_elems(a)?;
    if elems.is_empty() {
        return Ok(Value::float(f64::NAN));
    }
    Ok(Value::float(elems.iter().sum::<f64>() / elems.len() as f64))
}

/// `min x`.
pub fn min(a: &Value) -> QResult<Value> {
    fold_extreme(a, false)
}

/// `max x`.
pub fn max(a: &Value) -> QResult<Value> {
    fold_extreme(a, true)
}

fn fold_extreme(a: &Value, want_max: bool) -> QResult<Value> {
    if a.is_atom() {
        return Ok(a.clone());
    }
    let n = a.len().ok_or_else(|| QError::type_err("min/max: expected list"))?;
    let mut best: Option<Atom> = None;
    for i in 0..n {
        if let Some(Value::Atom(at)) = a.index(i) {
            if at.is_null() {
                continue;
            }
            best = Some(match best {
                None => at,
                Some(b) => {
                    let take_new = if want_max {
                        at.q_cmp(&b) == std::cmp::Ordering::Greater
                    } else {
                        at.q_cmp(&b) == std::cmp::Ordering::Less
                    };
                    if take_new {
                        at
                    } else {
                        b
                    }
                }
            });
        }
    }
    Ok(best.map(Value::Atom).unwrap_or_else(|| a.null_element()))
}

/// `med x` — median.
pub fn med(a: &Value) -> QResult<Value> {
    let mut elems = numeric_elems(a)?;
    if elems.is_empty() {
        return Ok(Value::float(f64::NAN));
    }
    elems.sort_by(|x, y| x.partial_cmp(y).unwrap());
    let n = elems.len();
    let m = if n % 2 == 1 { elems[n / 2] } else { (elems[n / 2 - 1] + elems[n / 2]) / 2.0 };
    Ok(Value::float(m))
}

/// `dev x` — standard deviation (population, as kdb+).
pub fn dev(a: &Value) -> QResult<Value> {
    let v = var(a)?;
    match v {
        Value::Atom(Atom::Float(f)) => Ok(Value::float(f.sqrt())),
        other => Ok(other),
    }
}

/// `var x` — population variance.
pub fn var(a: &Value) -> QResult<Value> {
    let elems = numeric_elems(a)?;
    if elems.is_empty() {
        return Ok(Value::float(f64::NAN));
    }
    let mean = elems.iter().sum::<f64>() / elems.len() as f64;
    let v = elems.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / elems.len() as f64;
    Ok(Value::float(v))
}

/// `sums x` — running sums.
pub fn sums(a: &Value) -> QResult<Value> {
    let n = a.len().ok_or_else(|| QError::type_err("sums: expected list"))?;
    let mut acc = 0f64;
    let integral = is_integral(a);
    let mut longs = Vec::new();
    let mut floats = Vec::new();
    for i in 0..n {
        if let Some(Value::Atom(at)) = a.index(i) {
            if let Some(f) = at.as_f64() {
                if !at.is_null() {
                    acc += f;
                }
            }
        }
        if integral {
            longs.push(acc as i64);
        } else {
            floats.push(acc);
        }
    }
    Ok(if integral { Value::Longs(longs) } else { Value::Floats(floats) })
}

/// `deltas x` — successive differences (first element unchanged).
pub fn deltas(a: &Value) -> QResult<Value> {
    let n = a.len().ok_or_else(|| QError::type_err("deltas: expected list"))?;
    if n == 0 {
        return Ok(a.clone());
    }
    let mut out = Vec::with_capacity(n);
    out.push(a.index(0).unwrap());
    for i in 1..n {
        let prev = a.index(i - 1).unwrap();
        let cur = a.index(i).unwrap();
        out.push(crate::ops::dyad("-", &cur, &prev)?);
    }
    Ok(Value::from_elements(out))
}

/// `prev x` — shift right: `(null; x0; x1; ...)`.
pub fn prev(a: &Value) -> QResult<Value> {
    let n = a.len().ok_or_else(|| QError::type_err("prev: expected list"))?;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        if i == 0 {
            out.push(a.null_element());
        } else {
            out.push(a.index(i - 1).unwrap());
        }
    }
    Ok(Value::from_elements(out))
}

/// `next x` — shift left: `(x1; ...; null)`.
pub fn next(a: &Value) -> QResult<Value> {
    let n = a.len().ok_or_else(|| QError::type_err("next: expected list"))?;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        if i + 1 < n {
            out.push(a.index(i + 1).unwrap());
        } else {
            out.push(a.null_element());
        }
    }
    Ok(Value::from_elements(out))
}

/// `where x` — indices of nonzero/true entries; on a dict of counts,
/// replicated keys.
pub fn where_op(a: &Value) -> QResult<Value> {
    match a {
        Value::Bools(v) => Ok(Value::Longs(
            v.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i as i64).collect(),
        )),
        Value::Longs(v) => {
            let mut out = Vec::new();
            for (i, &c) in v.iter().enumerate() {
                for _ in 0..c.max(0) {
                    out.push(i as i64);
                }
            }
            Ok(Value::Longs(out))
        }
        _ => Err(QError::type_err(format!("where: cannot apply to {}", a.type_name()))),
    }
}

/// `distinct x` — unique elements in first-seen order.
///
/// All-atom lists (every typed vector) go through a [`QKey`] hash set;
/// mixed lists containing non-atoms fall back to the quadratic `q_eq`
/// scan, which also handles list elements.
pub fn distinct(a: &Value) -> QResult<Value> {
    let n = a.len().ok_or_else(|| QError::type_err("distinct: expected list"))?;
    if let Some(keys) = atom_keys(a, n) {
        let mut seen: HashSet<QKey> = HashSet::with_capacity(n);
        let mut out: Vec<Value> = Vec::new();
        for (i, key) in keys.into_iter().enumerate() {
            if seen.insert(key) {
                out.push(a.index(i).unwrap());
            }
        }
        return Ok(Value::from_elements(out));
    }
    let mut seen: Vec<Value> = Vec::new();
    for i in 0..n {
        let v = a.index(i).unwrap();
        if !seen.iter().any(|s| s.q_eq(&v)) {
            seen.push(v);
        }
    }
    Ok(Value::from_elements(seen))
}

/// `group x` — dict from distinct values to index lists.
///
/// Same hash fast path / naive fallback split as [`distinct`].
pub fn group(a: &Value) -> QResult<Value> {
    let n = a.len().ok_or_else(|| QError::type_err("group: expected list"))?;
    let mut keys: Vec<Value> = Vec::new();
    let mut groups: Vec<Vec<i64>> = Vec::new();
    if let Some(row_keys) = atom_keys(a, n) {
        let mut index: HashMap<QKey, usize> = HashMap::with_capacity(n);
        for (i, key) in row_keys.into_iter().enumerate() {
            match index.entry(key) {
                Entry::Occupied(e) => groups[*e.get()].push(i as i64),
                Entry::Vacant(e) => {
                    e.insert(keys.len());
                    keys.push(a.index(i).unwrap());
                    groups.push(vec![i as i64]);
                }
            }
        }
    } else {
        for i in 0..n {
            let v = a.index(i).unwrap();
            match keys.iter().position(|k| k.q_eq(&v)) {
                Some(g) => groups[g].push(i as i64),
                None => {
                    keys.push(v);
                    groups.push(vec![i as i64]);
                }
            }
        }
    }
    let values = Value::Mixed(groups.into_iter().map(Value::Longs).collect());
    Ok(Value::Dict(Box::new(Dict::new(Value::from_elements(keys), values)?)))
}

/// `reverse x`.
pub fn reverse(a: &Value) -> QResult<Value> {
    let n = a.len().ok_or_else(|| QError::type_err("reverse: expected list"))?;
    let idx: Vec<usize> = (0..n).rev().collect();
    Ok(a.take_indices(&idx))
}

/// Stable sort permutation of a list, ascending (nulls first).
pub fn sort_indices(a: &Value) -> QResult<Vec<usize>> {
    let n = a.len().ok_or_else(|| QError::type_err("sort: expected list"))?;
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&i, &j| {
        match (a.index(i), a.index(j)) {
            (Some(Value::Atom(x)), Some(Value::Atom(y))) => x.q_cmp(&y),
            _ => std::cmp::Ordering::Equal,
        }
    });
    Ok(idx)
}

/// `asc x` — sorted ascending.
pub fn asc(a: &Value) -> QResult<Value> {
    Ok(a.take_indices(&sort_indices(a)?))
}

/// `desc x` — sorted descending.
pub fn desc(a: &Value) -> QResult<Value> {
    let mut idx = sort_indices(a)?;
    idx.reverse();
    Ok(a.take_indices(&idx))
}

/// `iasc x` — ascending sort permutation.
pub fn iasc(a: &Value) -> QResult<Value> {
    Ok(Value::Longs(sort_indices(a)?.into_iter().map(|i| i as i64).collect()))
}

/// `idesc x` — descending sort permutation.
pub fn idesc(a: &Value) -> QResult<Value> {
    let mut idx = sort_indices(a)?;
    idx.reverse();
    Ok(Value::Longs(idx.into_iter().map(|i| i as i64).collect()))
}

/// `raze x` — flatten one level.
pub fn raze(a: &Value) -> QResult<Value> {
    match a {
        Value::Mixed(items) => {
            let mut out = Value::Mixed(vec![]);
            for item in items {
                out = crate::ops::concat(&out, item)?;
            }
            Ok(out)
        }
        _ => Ok(a.clone()),
    }
}

/// `flip x` — table ↔ column-dict transpose.
pub fn flip(a: &Value) -> QResult<Value> {
    match a {
        Value::Dict(d) => flip_dict(d),
        Value::Table(t) => {
            let d = Dict::new(
                Value::Symbols(t.names.clone()),
                Value::Mixed(t.columns.clone()),
            )?;
            Ok(Value::Dict(Box::new(d)))
        }
        _ => Err(QError::type_err(format!("flip: cannot flip {}", a.type_name()))),
    }
}

/// Flip a column dictionary into a table.
pub fn flip_dict(d: &Dict) -> QResult<Value> {
    let names = match &d.keys {
        Value::Symbols(s) => s.clone(),
        _ => return Err(QError::type_err("flip: dict keys must be symbols")),
    };
    let columns = match &d.values {
        Value::Mixed(cols) => cols.clone(),
        _ => return Err(QError::type_err("flip: dict values must be a list of columns")),
    };
    Ok(Value::Table(Box::new(Table::new(names, columns)?)))
}

/// `key x` — keys of a dict / key table of a keyed table.
pub fn key(a: &Value) -> QResult<Value> {
    match a {
        Value::Dict(d) => Ok(d.keys.clone()),
        Value::KeyedTable(k) => Ok(Value::Table(Box::new(k.key.clone()))),
        _ => Ok(Value::Mixed(vec![])),
    }
}

/// `value x` — values of a dict / value table of a keyed table.
pub fn value(a: &Value) -> QResult<Value> {
    match a {
        Value::Dict(d) => Ok(d.values.clone()),
        Value::KeyedTable(k) => Ok(Value::Table(Box::new(k.value.clone()))),
        _ => Ok(a.clone()),
    }
}

/// `cols t` — column names.
pub fn cols(a: &Value) -> QResult<Value> {
    match a {
        Value::Table(t) => Ok(Value::Symbols(t.names.clone())),
        Value::KeyedTable(k) => Ok(Value::Symbols(
            k.key.names.iter().chain(&k.value.names).cloned().collect(),
        )),
        _ => Err(QError::type_err("cols: expected table")),
    }
}

/// `meta t` — table describing each column's name and type char.
pub fn meta(a: &Value) -> QResult<Value> {
    let t = match a {
        Value::Table(t) => t.as_ref().clone(),
        Value::KeyedTable(k) => Table {
            names: k.key.names.iter().chain(&k.value.names).cloned().collect(),
            columns: k.key.columns.iter().chain(&k.value.columns).cloned().collect(),
        },
        _ => return Err(QError::type_err("meta: expected table")),
    };
    let type_char = |v: &Value| -> String {
        match v.type_code() {
            1 => "b",
            4 => "x",
            5 => "h",
            6 => "i",
            7 => "j",
            8 => "e",
            9 => "f",
            10 => "c",
            11 => "s",
            12 => "p",
            14 => "d",
            19 => "t",
            _ => " ",
        }
        .to_string()
    };
    let names = Value::Symbols(t.names.clone());
    let types = Value::Symbols(t.columns.iter().map(type_char).collect());
    Ok(Value::KeyedTable(Box::new(KeyedTable {
        key: Table::new(vec!["c".into()], vec![names])?,
        value: Table::new(vec!["t".into()], vec![types])?,
    })))
}

/// `ungroup` a keyed table back to a plain table (key + value columns).
pub fn unkey(a: &Value) -> QResult<Value> {
    match a {
        Value::KeyedTable(k) => Ok(Value::Table(Box::new(Table {
            names: k.key.names.iter().chain(&k.value.names).cloned().collect(),
            columns: k.key.columns.iter().chain(&k.value.columns).cloned().collect(),
        }))),
        other => Ok(other.clone()),
    }
}

/// `not x`.
pub fn not(a: &Value) -> QResult<Value> {
    match a {
        Value::Atom(Atom::Bool(b)) => Ok(Value::bool(!b)),
        Value::Bools(v) => Ok(Value::Bools(v.iter().map(|b| !b).collect())),
        _ => {
            // not 0 = 1b, not nonzero = 0b.
            let n = a.len();
            match n {
                None => match a {
                    Value::Atom(at) => {
                        Ok(Value::bool(at.as_f64().map(|f| f == 0.0).unwrap_or(false)))
                    }
                    _ => Err(QError::type_err("not: bad operand")),
                },
                Some(len) => {
                    let mut out = Vec::with_capacity(len);
                    for i in 0..len {
                        match a.index(i) {
                            Some(Value::Atom(at)) => {
                                out.push(at.as_f64().map(|f| f == 0.0).unwrap_or(false))
                            }
                            _ => out.push(false),
                        }
                    }
                    Ok(Value::Bools(out))
                }
            }
        }
    }
}

/// `null x` — per-element null test.
pub fn null(a: &Value) -> QResult<Value> {
    match a {
        Value::Atom(at) => Ok(Value::bool(at.is_null())),
        _ => {
            let n = a.len().unwrap_or(0);
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(match a.index(i) {
                    Some(Value::Atom(at)) => at.is_null(),
                    _ => false,
                });
            }
            Ok(Value::Bools(out))
        }
    }
}

/// Numeric monadics: `abs`, `neg`, `sqrt`, `exp`, `log`, `floor`,
/// `ceiling`, `signum`.
pub fn numeric_monad(name: &str, a: &Value) -> QResult<Value> {
    let apply = |at: &Atom| -> QResult<Atom> {
        if at.is_null() {
            return Ok(at.clone());
        }
        let f = at.as_f64().ok_or_else(|| QError::type_err(format!("{name}: non-numeric")))?;
        let integral = matches!(at, Atom::Long(_) | Atom::Int(_) | Atom::Short(_) | Atom::Bool(_));
        Ok(match name {
            "abs" => {
                if integral {
                    Atom::Long(f.abs() as i64)
                } else {
                    Atom::Float(f.abs())
                }
            }
            "neg" => {
                if integral {
                    Atom::Long(-(f as i64))
                } else {
                    Atom::Float(-f)
                }
            }
            "sqrt" => Atom::Float(f.sqrt()),
            "exp" => Atom::Float(f.exp()),
            "log" => Atom::Float(f.ln()),
            "floor" => Atom::Long(f.floor() as i64),
            "ceiling" => Atom::Long(f.ceil() as i64),
            "signum" => Atom::Long(if f > 0.0 {
                1
            } else if f < 0.0 {
                -1
            } else {
                0
            }),
            _ => return Err(QError::type_err(format!("unknown numeric monad {name}"))),
        })
    };
    match a {
        Value::Atom(at) => Ok(Value::Atom(apply(at)?)),
        _ => {
            let n = a.len().ok_or_else(|| QError::type_err(format!("{name}: bad operand")))?;
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                match a.index(i) {
                    Some(Value::Atom(at)) => out.push(Value::Atom(apply(&at)?)),
                    Some(v) => out.push(numeric_monad(name, &v)?),
                    None => {}
                }
            }
            Ok(Value::from_elements(out))
        }
    }
}

/// `string x` — textual rendering as a char vector (or list thereof).
pub fn string(a: &Value) -> QResult<Value> {
    match a {
        Value::Atom(at) => {
            let s = match at {
                Atom::Symbol(s) => s.clone(),
                other => other.to_string(),
            };
            Ok(Value::Chars(s))
        }
        _ => {
            let n = a.len().unwrap_or(0);
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(string(&a.index(i).unwrap())?);
            }
            Ok(Value::Mixed(out))
        }
    }
}

/// `upper` / `lower`.
pub fn case_fn(name: &str, a: &Value) -> QResult<Value> {
    let conv = |s: &str| {
        if name == "upper" {
            s.to_uppercase()
        } else {
            s.to_lowercase()
        }
    };
    match a {
        Value::Chars(s) => Ok(Value::Chars(conv(s))),
        Value::Atom(Atom::Symbol(s)) => Ok(Value::symbol(conv(s))),
        Value::Symbols(v) => Ok(Value::Symbols(v.iter().map(|s| conv(s)).collect())),
        _ => Err(QError::type_err(format!("{name}: expected text"))),
    }
}

/// `type x` — kdb+ type code as a short atom.
pub fn type_of(a: &Value) -> QResult<Value> {
    Ok(Value::Atom(Atom::Short(a.type_code() as i16)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn til_counts_from_zero() {
        assert!(til(&Value::long(4)).unwrap().q_eq(&Value::Longs(vec![0, 1, 2, 3])));
        assert!(til(&Value::long(-1)).is_err());
    }

    #[test]
    fn aggregates_ignore_nulls() {
        let v = Value::Longs(vec![1, i64::MIN, 3]);
        assert!(sum(&v).unwrap().q_eq(&Value::long(4)));
        assert!(avg(&v).unwrap().q_eq(&Value::float(2.0)));
        assert!(max(&v).unwrap().q_eq(&Value::Atom(Atom::Long(3))));
        assert!(min(&v).unwrap().q_eq(&Value::Atom(Atom::Long(1))));
    }

    #[test]
    fn sum_of_floats_stays_float() {
        let v = Value::Floats(vec![1.5, 2.5]);
        assert!(sum(&v).unwrap().q_eq(&Value::float(4.0)));
    }

    #[test]
    fn first_last_and_empties() {
        let v = Value::Longs(vec![10, 20]);
        assert!(first(&v).unwrap().q_eq(&Value::long(10)));
        assert!(last(&v).unwrap().q_eq(&Value::long(20)));
        let empty = Value::Longs(vec![]);
        assert!(matches!(first(&empty).unwrap(), Value::Atom(a) if a.is_null()));
        assert!(matches!(last(&empty).unwrap(), Value::Atom(a) if a.is_null()));
    }

    #[test]
    fn median_and_variance() {
        let v = Value::Longs(vec![1, 3, 2]);
        assert!(med(&v).unwrap().q_eq(&Value::float(2.0)));
        let v = Value::Longs(vec![1, 2, 3, 4]);
        assert!(med(&v).unwrap().q_eq(&Value::float(2.5)));
        assert!(var(&v).unwrap().q_eq(&Value::float(1.25)));
    }

    #[test]
    fn running_sums_and_deltas() {
        let v = Value::Longs(vec![1, 2, 3]);
        assert!(sums(&v).unwrap().q_eq(&Value::Longs(vec![1, 3, 6])));
        assert!(deltas(&v).unwrap().q_eq(&Value::Longs(vec![1, 1, 1])));
    }

    #[test]
    fn where_yields_indices() {
        let v = Value::Bools(vec![true, false, true]);
        assert!(where_op(&v).unwrap().q_eq(&Value::Longs(vec![0, 2])));
        // where on counts replicates indices.
        let v = Value::Longs(vec![2, 0, 1]);
        assert!(where_op(&v).unwrap().q_eq(&Value::Longs(vec![0, 0, 2])));
    }

    #[test]
    fn distinct_preserves_first_seen_order() {
        let v = Value::Symbols(vec!["b".into(), "a".into(), "b".into()]);
        assert!(distinct(&v).unwrap().q_eq(&Value::Symbols(vec!["b".into(), "a".into()])));
    }

    #[test]
    fn group_maps_values_to_indices() {
        let v = Value::Symbols(vec!["a".into(), "b".into(), "a".into()]);
        match group(&v).unwrap() {
            Value::Dict(d) => {
                assert!(d.get(&Value::symbol("a")).q_eq(&Value::Longs(vec![0, 2])));
                assert!(d.get(&Value::symbol("b")).q_eq(&Value::Longs(vec![1])));
            }
            other => panic!("expected dict, got {other:?}"),
        }
    }

    #[test]
    fn sorting_family() {
        let v = Value::Longs(vec![3, 1, 2]);
        assert!(asc(&v).unwrap().q_eq(&Value::Longs(vec![1, 2, 3])));
        assert!(desc(&v).unwrap().q_eq(&Value::Longs(vec![3, 2, 1])));
        assert!(iasc(&v).unwrap().q_eq(&Value::Longs(vec![1, 2, 0])));
        assert!(idesc(&v).unwrap().q_eq(&Value::Longs(vec![0, 2, 1])));
    }

    #[test]
    fn sort_is_stable() {
        let v = Value::Longs(vec![2, 1, 2, 1]);
        assert!(iasc(&v).unwrap().q_eq(&Value::Longs(vec![1, 3, 0, 2])));
    }

    #[test]
    fn raze_flattens_one_level() {
        let nested = Value::Mixed(vec![Value::Longs(vec![1, 2]), Value::Longs(vec![3])]);
        assert!(raze(&nested).unwrap().q_eq(&Value::Longs(vec![1, 2, 3])));
    }

    #[test]
    fn flip_round_trips_tables() {
        let t = Table::new(
            vec!["a".into()],
            vec![Value::Longs(vec![1, 2])],
        )
        .unwrap();
        let tv = Value::Table(Box::new(t));
        let d = flip(&tv).unwrap();
        assert!(matches!(d, Value::Dict(_)));
        let back = flip(&d).unwrap();
        assert!(back.q_eq(&tv));
    }

    #[test]
    fn reverse_lists() {
        let v = Value::Longs(vec![1, 2, 3]);
        assert!(reverse(&v).unwrap().q_eq(&Value::Longs(vec![3, 2, 1])));
    }

    #[test]
    fn cols_and_meta() {
        let t = Value::Table(Box::new(
            Table::new(
                vec!["Sym".into(), "Px".into()],
                vec![Value::Symbols(vec!["a".into()]), Value::Floats(vec![1.0])],
            )
            .unwrap(),
        ));
        assert!(cols(&t).unwrap().q_eq(&Value::Symbols(vec!["Sym".into(), "Px".into()])));
        let m = meta(&t).unwrap();
        match m {
            Value::KeyedTable(k) => {
                assert!(k.value.column("t").unwrap().q_eq(&Value::Symbols(vec!["s".into(), "f".into()])));
            }
            other => panic!("expected keyed table, got {other:?}"),
        }
    }

    #[test]
    fn not_and_null() {
        assert!(not(&Value::bool(true)).unwrap().q_eq(&Value::bool(false)));
        assert!(not(&Value::Bools(vec![true, false])).unwrap().q_eq(&Value::Bools(vec![false, true])));
        let v = Value::Longs(vec![1, i64::MIN]);
        assert!(null(&v).unwrap().q_eq(&Value::Bools(vec![false, true])));
    }

    #[test]
    fn numeric_monads() {
        assert!(numeric_monad("abs", &Value::long(-3)).unwrap().q_eq(&Value::long(3)));
        assert!(numeric_monad("neg", &Value::long(3)).unwrap().q_eq(&Value::long(-3)));
        assert!(numeric_monad("sqrt", &Value::float(4.0)).unwrap().q_eq(&Value::float(2.0)));
        assert!(numeric_monad("floor", &Value::float(2.9)).unwrap().q_eq(&Value::long(2)));
        assert!(numeric_monad("ceiling", &Value::float(2.1)).unwrap().q_eq(&Value::long(3)));
        assert!(numeric_monad("signum", &Value::long(-9)).unwrap().q_eq(&Value::long(-1)));
        // Null passes through.
        let r = numeric_monad("abs", &Value::Atom(Atom::Long(i64::MIN))).unwrap();
        assert!(matches!(r, Value::Atom(a) if a.is_null()));
    }

    #[test]
    fn string_and_case() {
        assert!(string(&Value::symbol("GOOG")).unwrap().q_eq(&Value::Chars("GOOG".into())));
        assert!(case_fn("lower", &Value::symbol("GOOG")).unwrap().q_eq(&Value::symbol("goog")));
        assert!(case_fn("upper", &Value::Chars("abc".into())).unwrap().q_eq(&Value::Chars("ABC".into())));
    }

    #[test]
    fn type_codes() {
        assert!(type_of(&Value::long(1)).unwrap().q_eq(&Value::Atom(Atom::Short(-7))));
        assert!(type_of(&Value::Longs(vec![])).unwrap().q_eq(&Value::Atom(Atom::Short(7))));
    }
}
