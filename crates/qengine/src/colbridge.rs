//! Bridge between the interpreter's Q vectors and the shared columnar
//! representation (`colstore`, DESIGN §10).
//!
//! The reference engine stores table columns as typed `qlang` vectors
//! with kdb+-style *in-band* null sentinels (`0N` is `i64::MIN`, the
//! null symbol is the empty symbol, float null is NaN). `colstore`
//! carries nulls *out of band* in a validity bitmap. This module maps
//! between the two so the differential fuzz driver can compare what the
//! interpreter produced against what the translation pipeline produced
//! **structurally** — batch against batch, via `CellKey` — instead of
//! only through Q-value equality.
//!
//! The mapping is partial by design: `value_to_column` answers `None`
//! for shapes with no columnar storage class (mixed lists, nested
//! tables, lambdas), and callers fall back to Q-value comparison.

use colstore::{Batch, Cell, Column, ColumnVec, PgType};
use qlang::value::{Table, Value};

/// Convert one Q vector into a typed column plus its SQL type, turning
/// in-band null sentinels into validity-bitmap nulls. `None` when the
/// value has no columnar storage class.
pub fn value_to_column(v: &Value) -> Option<(ColumnVec, PgType)> {
    let cells: Vec<Cell> = match v {
        Value::Bools(d) => d.iter().map(|b| Cell::Bool(*b)).collect(),
        Value::Shorts(d) => d
            .iter()
            .map(|x| if *x == i16::MIN { Cell::Null } else { Cell::Int(*x as i64) })
            .collect(),
        Value::Ints(d) => d
            .iter()
            .map(|x| if *x == i32::MIN { Cell::Null } else { Cell::Int(*x as i64) })
            .collect(),
        Value::Longs(d) => d
            .iter()
            .map(|x| if *x == i64::MIN { Cell::Null } else { Cell::Int(*x) })
            .collect(),
        Value::Reals(d) => d
            .iter()
            .map(|x| if x.is_nan() { Cell::Null } else { Cell::Float(*x as f64) })
            .collect(),
        Value::Floats(d) => d
            .iter()
            .map(|x| if x.is_nan() { Cell::Null } else { Cell::Float(*x) })
            .collect(),
        Value::Symbols(d) => d
            .iter()
            .map(|s| if s.is_empty() { Cell::Null } else { Cell::Text(s.clone()) })
            .collect(),
        Value::Dates(d) => d
            .iter()
            .map(|x| if *x == i32::MIN { Cell::Null } else { Cell::Date(*x) })
            .collect(),
        // Q times are milliseconds; the columnar convention is µs.
        Value::Times(d) => d
            .iter()
            .map(|x| {
                if *x == i32::MIN {
                    Cell::Null
                } else {
                    Cell::Time((*x as i64).saturating_mul(1000))
                }
            })
            .collect(),
        // Q timestamps are nanoseconds; the columnar convention is µs.
        Value::Timestamps(d) => d
            .iter()
            .map(|x| if *x == i64::MIN { Cell::Null } else { Cell::Timestamp(*x / 1000) })
            .collect(),
        _ => return None,
    };
    let ty = match v {
        Value::Bools(_) => PgType::Bool,
        Value::Shorts(_) => PgType::Int2,
        Value::Ints(_) => PgType::Int4,
        Value::Longs(_) => PgType::Int8,
        Value::Reals(_) => PgType::Float4,
        Value::Floats(_) => PgType::Float8,
        Value::Symbols(_) => PgType::Varchar,
        Value::Dates(_) => PgType::Date,
        Value::Times(_) => PgType::Time,
        Value::Timestamps(_) => PgType::Timestamp,
        _ => unreachable!("filtered above"),
    };
    Some((ColumnVec::from_cells(ty, cells), ty))
}

/// Convert a Q table into a [`Batch`], column by column. `None` when any
/// column lacks a columnar storage class (the caller should fall back to
/// Q-value comparison).
pub fn table_to_batch(t: &Table) -> Option<Batch> {
    let mut schema = Vec::with_capacity(t.names.len());
    let mut columns = Vec::with_capacity(t.names.len());
    for (name, value) in t.names.iter().zip(&t.columns) {
        let (col, ty) = value_to_column(value)?;
        schema.push(Column::new(name.clone(), ty));
        columns.push(col);
    }
    Some(Batch::new(schema, columns, t.rows()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longs_with_sentinel_null_map_to_validity_null() {
        let (col, ty) = value_to_column(&Value::Longs(vec![1, i64::MIN, 3])).unwrap();
        assert_eq!(ty, PgType::Int8);
        assert_eq!(col.cell_at(0), Cell::Int(1));
        assert_eq!(col.cell_at(1), Cell::Null);
        assert_eq!(col.cell_at(2), Cell::Int(3));
    }

    #[test]
    fn null_symbol_and_float_null_are_out_of_band() {
        let (col, _) = value_to_column(&Value::Symbols(vec!["a".into(), "".into()])).unwrap();
        assert_eq!(col.cell_at(1), Cell::Null);
        let (col, _) = value_to_column(&Value::Floats(vec![1.5, f64::NAN])).unwrap();
        assert_eq!(col.cell_at(1), Cell::Null);
    }

    #[test]
    fn temporal_resolutions_follow_the_columnar_convention() {
        // ms → µs.
        let (col, _) = value_to_column(&Value::Times(vec![34_200_000])).unwrap();
        assert_eq!(col.cell_at(0), Cell::Time(34_200_000_000));
        // ns → µs.
        let (col, _) = value_to_column(&Value::Timestamps(vec![1_000_000])).unwrap();
        assert_eq!(col.cell_at(0), Cell::Timestamp(1_000));
    }

    #[test]
    fn mixed_lists_have_no_columnar_class() {
        assert!(value_to_column(&Value::Mixed(vec![Value::long(1)])).is_none());
        let t = Table::new(
            vec!["m".into()],
            vec![Value::Mixed(vec![Value::long(1)])],
        )
        .unwrap();
        assert!(table_to_batch(&t).is_none());
    }

    #[test]
    fn table_round_trips_structurally() {
        let t = Table::new(
            vec!["S".into(), "V".into()],
            vec![
                Value::Symbols(vec!["a".into(), "b".into()]),
                Value::Longs(vec![1, i64::MIN]),
            ],
        )
        .unwrap();
        let a = table_to_batch(&t).unwrap();
        let b = table_to_batch(&t).unwrap();
        assert_eq!(a.rows(), 2);
        assert!(a.structurally_equal(&b));
    }
}
