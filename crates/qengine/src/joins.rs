//! Table joins: the time-series operations that make Q valuable.
//!
//! The star here is `aj` — the **as-of join** (paper Examples 1 and 2):
//! for each row of the left table, match the *most recent* right-table row
//! whose last join column is ≤ the left value, with the other join columns
//! matching exactly. kdb+ implements this with binary search over sorted
//! columns; we do the same over a per-group sorted index.

use qlang::value::{Atom, KeyedTable, Table, Value};
use qlang::{QError, QResult};
use std::collections::HashMap;

/// Hashable projection of an atom for join keys. Floats hash by bit
/// pattern; all typed nulls of a type collapse to one key (two-valued
/// logic again: nulls join with nulls).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum KeyAtom {
    /// Any typed null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integral value (long/int/short/byte/temporal).
    Int(i64),
    /// Float, by bit pattern.
    Float(u64),
    /// Symbol or string.
    Text(String),
}

impl KeyAtom {
    /// Build a key from an atom.
    pub fn from_atom(a: &Atom) -> KeyAtom {
        if a.is_null() {
            return KeyAtom::Null;
        }
        match a {
            Atom::Bool(b) => KeyAtom::Bool(*b),
            Atom::Symbol(s) => KeyAtom::Text(s.clone()),
            Atom::Char(c) => KeyAtom::Text(c.to_string()),
            Atom::Real(f) => KeyAtom::Float((*f as f64).to_bits()),
            Atom::Float(f) => KeyAtom::Float(f.to_bits()),
            other => KeyAtom::Int(other.as_i64().unwrap_or(0)),
        }
    }

    /// Build a key from a value (atoms only; lists key by display form).
    pub fn from_value(v: &Value) -> KeyAtom {
        match v {
            Value::Atom(a) => KeyAtom::from_atom(a),
            other => KeyAtom::Text(other.to_string()),
        }
    }
}

/// Extract the join key of `row` across `cols`.
fn row_key(cols: &[&Value], row: usize) -> Vec<KeyAtom> {
    cols.iter()
        .map(|c| c.index(row).map(|v| KeyAtom::from_value(&v)).unwrap_or(KeyAtom::Null))
        .collect()
}

/// `aj[cols; left; right]` — as-of join.
///
/// All columns but the last match exactly; the last matches the greatest
/// right-hand value ≤ the left-hand value. Result: all left columns plus
/// the right columns not already present, null-filled where no match
/// exists.
pub fn aj(cols: &[String], left: &Table, right: &Table) -> QResult<Table> {
    if cols.is_empty() {
        return Err(QError::domain("aj: need at least one join column"));
    }
    let (eq_cols, asof_col) = cols.split_at(cols.len() - 1);
    let asof_col = &asof_col[0];

    let l_asof = left
        .column(asof_col)
        .ok_or_else(|| QError::type_err(format!("aj: left table lacks column {asof_col}")))?;
    let r_asof = right
        .column(asof_col)
        .ok_or_else(|| QError::type_err(format!("aj: right table lacks column {asof_col}")))?;

    let l_eq: Vec<&Value> = eq_cols
        .iter()
        .map(|c| {
            left.column(c)
                .ok_or_else(|| QError::type_err(format!("aj: left table lacks column {c}")))
        })
        .collect::<QResult<_>>()?;
    let r_eq: Vec<&Value> = eq_cols
        .iter()
        .map(|c| {
            right
                .column(c)
                .ok_or_else(|| QError::type_err(format!("aj: right table lacks column {c}")))
        })
        .collect::<QResult<_>>()?;

    // Group right rows by the exact-match key; each group sorted by the
    // as-of column (kdb+ requires sorted input; we sort defensively).
    let mut groups: HashMap<Vec<KeyAtom>, Vec<usize>> = HashMap::new();
    for i in 0..right.rows() {
        groups.entry(row_key(&r_eq, i)).or_default().push(i);
    }
    for rows in groups.values_mut() {
        rows.sort_by(|&a, &b| match (r_asof.index(a), r_asof.index(b)) {
            (Some(Value::Atom(x)), Some(Value::Atom(y))) => x.q_cmp(&y),
            _ => std::cmp::Ordering::Equal,
        });
    }

    // For each left row: binary search the greatest as-of value <= left's.
    let mut match_idx: Vec<Option<usize>> = Vec::with_capacity(left.rows());
    for i in 0..left.rows() {
        let key = row_key(&l_eq, i);
        let lv = match l_asof.index(i) {
            Some(Value::Atom(a)) => a,
            _ => {
                match_idx.push(None);
                continue;
            }
        };
        let found = groups.get(&key).and_then(|rows| {
            // Binary search: last row with r <= lv.
            let mut lo = 0usize;
            let mut hi = rows.len();
            while lo < hi {
                let mid = (lo + hi) / 2;
                let rv = match r_asof.index(rows[mid]) {
                    Some(Value::Atom(a)) => a,
                    _ => return None,
                };
                if rv.q_cmp(&lv) != std::cmp::Ordering::Greater {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            if lo == 0 {
                None
            } else {
                Some(rows[lo - 1])
            }
        });
        match_idx.push(found);
    }

    // Assemble: all left columns, then right columns not in left.
    let mut out = Table { names: left.names.clone(), columns: left.columns.clone() };
    for (name, col) in right.names.iter().zip(&right.columns) {
        if left.column(name).is_some() {
            continue;
        }
        let gathered = gather_optional(col, &match_idx);
        out.push_column(name.clone(), gathered)?;
    }
    Ok(out)
}

/// Gather elements by optional index; misses become typed nulls.
fn gather_optional(col: &Value, idx: &[Option<usize>]) -> Value {
    let sentinel = usize::MAX;
    let raw: Vec<usize> = idx.iter().map(|o| o.unwrap_or(sentinel)).collect();
    col.take_indices(&raw)
}

/// `lj` — left join against a keyed table on its key columns.
pub fn lj(left: &Table, right: &KeyedTable) -> QResult<Table> {
    join_keyed(left, right, false)
}

/// `ij` — inner join against a keyed table on its key columns.
pub fn ij(left: &Table, right: &KeyedTable) -> QResult<Table> {
    join_keyed(left, right, true)
}

fn join_keyed(left: &Table, right: &KeyedTable, inner: bool) -> QResult<Table> {
    let key_cols = &right.key.names;
    let l_keys: Vec<&Value> = key_cols
        .iter()
        .map(|c| {
            left.column(c)
                .ok_or_else(|| QError::type_err(format!("join: left table lacks key column {c}")))
        })
        .collect::<QResult<_>>()?;
    let r_keys: Vec<&Value> = right.key.columns.iter().collect();

    let mut index: HashMap<Vec<KeyAtom>, usize> = HashMap::new();
    for i in 0..right.key.rows() {
        // First match wins, kdb+ keyed-table semantics.
        index.entry(row_key(&r_keys, i)).or_insert(i);
    }

    let mut match_idx = Vec::with_capacity(left.rows());
    let mut keep_rows = Vec::with_capacity(left.rows());
    for i in 0..left.rows() {
        let m = index.get(&row_key(&l_keys, i)).copied();
        if inner && m.is_none() {
            continue;
        }
        keep_rows.push(i);
        match_idx.push(m);
    }

    let base = if inner { left.take_rows(&keep_rows) } else { left.clone() };
    let mut out = base;
    for (name, col) in right.value.names.iter().zip(&right.value.columns) {
        let gathered = gather_optional(col, &match_idx);
        if out.column(name).is_some() {
            // lj overwrites existing columns where a match exists.
            let existing_idx = out.column_index(name).unwrap();
            let existing = out.columns[existing_idx].clone();
            let mut merged = Vec::with_capacity(match_idx.len());
            for (pos, m) in match_idx.iter().enumerate() {
                let v = if m.is_some() {
                    gathered.index(pos).unwrap_or(Value::Nil)
                } else {
                    existing.index(pos).unwrap_or(Value::Nil)
                };
                merged.push(v);
            }
            out.columns[existing_idx] = Value::from_elements(merged);
        } else {
            out.push_column(name.clone(), gathered)?;
        }
    }
    Ok(out)
}

/// `uj` / `,` on tables — union join: rows of both, columns aligned,
/// missing cells null-filled.
pub fn union_tables(a: &Table, b: &Table) -> QResult<Value> {
    let mut names = a.names.clone();
    for n in &b.names {
        if !names.contains(n) {
            names.push(n.clone());
        }
    }
    let ra = a.rows();
    let rb = b.rows();
    let mut columns = Vec::with_capacity(names.len());
    for n in &names {
        let mut elems = Vec::with_capacity(ra + rb);
        match a.column(n) {
            Some(col) => (0..ra).for_each(|i| elems.push(col.index(i).unwrap())),
            None => {
                let proto = b.column(n).unwrap();
                (0..ra).for_each(|_| elems.push(proto.null_element()));
            }
        }
        match b.column(n) {
            Some(col) => (0..rb).for_each(|i| elems.push(col.index(i).unwrap())),
            None => {
                let proto = a.column(n).unwrap();
                (0..rb).for_each(|_| elems.push(proto.null_element()));
            }
        }
        columns.push(Value::from_elements(elems));
    }
    Ok(Value::Table(Box::new(Table { names, columns })))
}

/// `cols xasc t` — sort a table ascending by the named columns (stable).
pub fn xasc(cols: &[String], t: &Table) -> QResult<Table> {
    sort_table(cols, t, false)
}

/// `cols xdesc t` — sort a table descending by the named columns.
pub fn xdesc(cols: &[String], t: &Table) -> QResult<Table> {
    sort_table(cols, t, true)
}

fn sort_table(cols: &[String], t: &Table, descending: bool) -> QResult<Table> {
    let key_cols: Vec<&Value> = cols
        .iter()
        .map(|c| t.column(c).ok_or_else(|| QError::type_err(format!("sort: no column {c}"))))
        .collect::<QResult<_>>()?;
    let mut idx: Vec<usize> = (0..t.rows()).collect();
    idx.sort_by(|&i, &j| {
        for col in &key_cols {
            let ord = match (col.index(i), col.index(j)) {
                (Some(Value::Atom(x)), Some(Value::Atom(y))) => x.q_cmp(&y),
                _ => std::cmp::Ordering::Equal,
            };
            let ord = if descending { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(t.take_rows(&idx))
}

/// `cols xkey t` — key a table on the named columns.
pub fn xkey(cols: &[String], t: &Table) -> QResult<Value> {
    let mut key = Table::default();
    let mut value = Table::default();
    for (n, c) in t.names.iter().zip(&t.columns) {
        if cols.contains(n) {
            key.push_column(n.clone(), c.clone())?;
        } else {
            value.push_column(n.clone(), c.clone())?;
        }
    }
    for c in cols {
        if key.column(c).is_none() {
            return Err(QError::type_err(format!("xkey: no column {c}")));
        }
    }
    Ok(Value::KeyedTable(Box::new(KeyedTable { key, value })))
}

/// `old xcol t` / rename: dict-style column rename (`` `a`b xcol t``
/// renames the first columns positionally, kdb+ semantics).
pub fn xcol(new_names: &[String], t: &Table) -> QResult<Table> {
    if new_names.len() > t.width() {
        return Err(QError::length("xcol: more names than columns"));
    }
    let mut names = t.names.clone();
    for (i, n) in new_names.iter().enumerate() {
        names[i] = n.clone();
    }
    Ok(Table { names, columns: t.columns.clone() })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trades() -> Table {
        Table::new(
            vec!["Symbol".into(), "Time".into(), "Price".into()],
            vec![
                Value::Symbols(vec!["GOOG".into(), "IBM".into(), "GOOG".into()]),
                Value::Times(vec![1000, 1500, 3000]),
                Value::Floats(vec![100.0, 50.0, 101.0]),
            ],
        )
        .unwrap()
    }

    fn quotes() -> Table {
        Table::new(
            vec!["Symbol".into(), "Time".into(), "Bid".into(), "Ask".into()],
            vec![
                Value::Symbols(vec!["GOOG".into(), "GOOG".into(), "IBM".into()]),
                Value::Times(vec![900, 2000, 1400]),
                Value::Floats(vec![99.0, 100.5, 49.5]),
                Value::Floats(vec![99.5, 101.0, 50.5]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn asof_join_matches_prevailing_quote() {
        // The paper's Example 2: aj[`Symbol`Time; trades; quotes].
        let out = aj(&["Symbol".into(), "Time".into()], &trades(), &quotes()).unwrap();
        assert_eq!(out.rows(), 3);
        let bid = out.column("Bid").unwrap();
        // GOOG@1000 -> quote@900 (99.0); IBM@1500 -> quote@1400 (49.5);
        // GOOG@3000 -> quote@2000 (100.5).
        assert!(bid.q_eq(&Value::Floats(vec![99.0, 49.5, 100.5])));
    }

    #[test]
    fn asof_join_no_match_yields_null() {
        let t = Table::new(
            vec!["Symbol".into(), "Time".into()],
            vec![Value::Symbols(vec!["GOOG".into()]), Value::Times(vec![100])],
        )
        .unwrap();
        let out = aj(&["Symbol".into(), "Time".into()], &t, &quotes()).unwrap();
        let bid = out.column("Bid").unwrap();
        match bid {
            Value::Floats(v) => assert!(v[0].is_nan(), "no quote at or before t=100"),
            other => panic!("expected floats, got {other:?}"),
        }
    }

    #[test]
    fn asof_join_equal_time_matches() {
        // As-of is <=, not <.
        let t = Table::new(
            vec!["Symbol".into(), "Time".into()],
            vec![Value::Symbols(vec!["GOOG".into()]), Value::Times(vec![900])],
        )
        .unwrap();
        let out = aj(&["Symbol".into(), "Time".into()], &t, &quotes()).unwrap();
        assert!(out.column("Bid").unwrap().q_eq(&Value::Floats(vec![99.0])));
    }

    #[test]
    fn asof_join_respects_symbol_partition() {
        // IBM quote at 1400 must not leak into GOOG rows.
        let t = Table::new(
            vec!["Symbol".into(), "Time".into()],
            vec![Value::Symbols(vec!["IBM".into()]), Value::Times(vec![1000])],
        )
        .unwrap();
        let out = aj(&["Symbol".into(), "Time".into()], &t, &quotes()).unwrap();
        match out.column("Bid").unwrap() {
            Value::Floats(v) => assert!(v[0].is_nan()),
            other => panic!("expected floats, got {other:?}"),
        }
    }

    #[test]
    fn left_join_on_keyed_table() {
        let left = Table::new(
            vec!["Sym".into(), "Qty".into()],
            vec![
                Value::Symbols(vec!["a".into(), "b".into(), "z".into()]),
                Value::Longs(vec![1, 2, 3]),
            ],
        )
        .unwrap();
        let right = KeyedTable {
            key: Table::new(vec!["Sym".into()], vec![Value::Symbols(vec!["a".into(), "b".into()])])
                .unwrap(),
            value: Table::new(vec!["Px".into()], vec![Value::Floats(vec![10.0, 20.0])]).unwrap(),
        };
        let out = lj(&left, &right).unwrap();
        assert_eq!(out.rows(), 3);
        match out.column("Px").unwrap() {
            Value::Floats(v) => {
                assert_eq!(v[0], 10.0);
                assert_eq!(v[1], 20.0);
                assert!(v[2].is_nan(), "unmatched row gets null");
            }
            other => panic!("expected floats, got {other:?}"),
        }
    }

    #[test]
    fn inner_join_drops_unmatched() {
        let left = Table::new(
            vec!["Sym".into()],
            vec![Value::Symbols(vec!["a".into(), "z".into()])],
        )
        .unwrap();
        let right = KeyedTable {
            key: Table::new(vec!["Sym".into()], vec![Value::Symbols(vec!["a".into()])]).unwrap(),
            value: Table::new(vec!["Px".into()], vec![Value::Floats(vec![10.0])]).unwrap(),
        };
        let out = ij(&left, &right).unwrap();
        assert_eq!(out.rows(), 1);
    }

    #[test]
    fn union_aligns_columns() {
        let a = Table::new(vec!["x".into()], vec![Value::Longs(vec![1])]).unwrap();
        let b = Table::new(
            vec!["x".into(), "y".into()],
            vec![Value::Longs(vec![2]), Value::Floats(vec![9.0])],
        )
        .unwrap();
        let out = union_tables(&a, &b).unwrap();
        match out {
            Value::Table(t) => {
                assert_eq!(t.rows(), 2);
                assert_eq!(t.width(), 2);
                match t.column("y").unwrap() {
                    Value::Floats(v) => {
                        assert!(v[0].is_nan());
                        assert_eq!(v[1], 9.0);
                    }
                    other => panic!("expected floats, got {other:?}"),
                }
            }
            other => panic!("expected table, got {other:?}"),
        }
    }

    #[test]
    fn xasc_sorts_stably_by_multiple_columns() {
        let t = trades();
        let sorted = xasc(&["Symbol".into(), "Time".into()], &t).unwrap();
        assert!(sorted
            .column("Symbol")
            .unwrap()
            .q_eq(&Value::Symbols(vec!["GOOG".into(), "GOOG".into(), "IBM".into()])));
        assert!(sorted.column("Time").unwrap().q_eq(&Value::Times(vec![1000, 3000, 1500])));
    }

    #[test]
    fn xdesc_reverses_order() {
        let t = trades();
        let sorted = xdesc(&["Price".into()], &t).unwrap();
        assert!(sorted.column("Price").unwrap().q_eq(&Value::Floats(vec![101.0, 100.0, 50.0])));
    }

    #[test]
    fn xkey_splits_columns() {
        let t = trades();
        match xkey(&["Symbol".into()], &t).unwrap() {
            Value::KeyedTable(k) => {
                assert_eq!(k.key.names, vec!["Symbol".to_string()]);
                assert_eq!(k.value.names, vec!["Time".to_string(), "Price".into()]);
            }
            other => panic!("expected keyed table, got {other:?}"),
        }
    }

    #[test]
    fn xcol_renames_positionally() {
        let t = trades();
        let renamed = xcol(&["sym".into()], &t).unwrap();
        assert_eq!(renamed.names[0], "sym");
        assert_eq!(renamed.names[1], "Time");
    }

    #[test]
    fn nulls_join_with_nulls() {
        // Two-valued logic: a null key matches a null key.
        let left = Table::new(
            vec!["Sym".into()],
            vec![Value::Symbols(vec!["".into()])],
        )
        .unwrap();
        let right = KeyedTable {
            key: Table::new(vec!["Sym".into()], vec![Value::Symbols(vec!["".into()])]).unwrap(),
            value: Table::new(vec!["v".into()], vec![Value::Longs(vec![42])]).unwrap(),
        };
        let out = lj(&left, &right).unwrap();
        assert!(out.column("v").unwrap().q_eq(&Value::Longs(vec![42])));
    }
}
