//! Canonical hashable keys over Q atoms.
//!
//! `distinct` and `group` bucket list elements by [`Atom::q_eq`], which
//! is *two-valued*: NaN = NaN, same-type nulls compare equal, and all
//! numeric/temporal atoms compare cross-type through `f64`. [`QKey`] is
//! a normalized projection such that
//!
//! ```text
//! QKey::from_atom(a) == QKey::from_atom(b)  ⟺  a.q_eq(b)
//! ```
//!
//! letting those builtins (and the q-sql `by` path) use hash maps
//! instead of linear scans over the distinct set. Note this is a
//! different relation from [`crate::joins::KeyAtom`], which collapses
//! *all* typed nulls into one join key; `q_eq` keeps e.g. `0N` and
//! `0Nd` distinct because their `f64` views differ.

use qlang::value::{Atom, Value};

/// Normalized, hashable projection of one [`Atom`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum QKey {
    /// Chars compare only against chars.
    Char(char),
    /// Symbols compare only against symbols (the null symbol is just
    /// the empty string — symbols have no special null handling in
    /// `q_eq` beyond ordinary string equality).
    Symbol(String),
    /// Every other atom, keyed by the canonical bit pattern of its
    /// `f64` view: all NaNs collapse to one pattern (`q_eq`'s
    /// NaN = NaN) and `-0.0` folds into `0.0`. Using the `f64` view
    /// directly mirrors `q_eq`'s cross-type promotion, including its
    /// precision loss for longs beyond 2^53.
    Num(u64),
}

impl QKey {
    pub fn from_atom(a: &Atom) -> QKey {
        match a {
            Atom::Char(c) => QKey::Char(*c),
            Atom::Symbol(s) => QKey::Symbol(s.clone()),
            other => {
                let f = other.as_f64().expect("non-char/symbol atom is numeric");
                if f.is_nan() {
                    QKey::Num(f64::NAN.to_bits())
                } else if f == 0.0 {
                    QKey::Num(0f64.to_bits())
                } else {
                    QKey::Num(f.to_bits())
                }
            }
        }
    }
}

/// Keys for every element of `a`, provided they are all atoms.
/// `None` (→ caller falls back to the naive `q_eq` scan) as soon as a
/// non-atom element appears, e.g. rows of a mixed list of lists.
pub fn atom_keys(a: &Value, n: usize) -> Option<Vec<QKey>> {
    let mut keys = Vec::with_capacity(n);
    for i in 0..n {
        match a.index(i) {
            Some(Value::Atom(at)) => keys.push(QKey::from_atom(&at)),
            _ => return None,
        }
    }
    Some(keys)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agree(a: &Atom, b: &Atom) {
        assert_eq!(
            QKey::from_atom(a) == QKey::from_atom(b),
            a.q_eq(b),
            "key/q_eq disagree on {a:?} vs {b:?}"
        );
    }

    #[test]
    fn keys_match_q_eq_semantics() {
        let atoms = [
            Atom::Bool(true),
            Atom::Bool(false),
            Atom::Byte(1),
            Atom::Short(1),
            Atom::Short(i16::MIN),
            Atom::Int(1),
            Atom::Int(i32::MIN),
            Atom::Long(0),
            Atom::Long(1),
            Atom::Long(i64::MIN),
            Atom::Real(1.0),
            Atom::Real(f32::NAN),
            Atom::Float(0.0),
            Atom::Float(-0.0),
            Atom::Float(1.0),
            Atom::Float(2.5),
            Atom::Float(f64::NAN),
            Atom::Char('a'),
            Atom::Char(' '),
            Atom::Symbol(String::new()),
            Atom::Symbol("a".into()),
            Atom::Timestamp(1),
            Atom::Timestamp(i64::MIN),
            Atom::Date(1),
            Atom::Date(i32::MIN),
            Atom::Time(1),
        ];
        for a in &atoms {
            for b in &atoms {
                agree(a, b);
            }
        }
    }

    #[test]
    fn cross_type_numerics_share_keys() {
        assert_eq!(QKey::from_atom(&Atom::Long(1)), QKey::from_atom(&Atom::Float(1.0)));
        assert_eq!(QKey::from_atom(&Atom::Bool(true)), QKey::from_atom(&Atom::Short(1)));
        assert_eq!(
            QKey::from_atom(&Atom::Float(f64::NAN)),
            QKey::from_atom(&Atom::Real(f32::NAN))
        );
    }

    #[test]
    fn atom_keys_bails_on_non_atoms() {
        let mixed = Value::Mixed(vec![Value::long(1), Value::Longs(vec![1, 2])]);
        assert!(atom_keys(&mixed, 2).is_none());
        let longs = Value::Longs(vec![1, 2, 3]);
        assert_eq!(atom_keys(&longs, 3).map(|k| k.len()), Some(3));
    }
}
