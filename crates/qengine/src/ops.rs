//! Vector primitives: dyadic and monadic operators with Q semantics.
//!
//! The rules implemented here are the ones the paper calls out as
//! translation hazards (§2.2):
//!
//! * **pairwise broadcasting** — `x+y` is scalar addition, list+scalar
//!   broadcast, or pairwise list addition depending on runtime types, with
//!   a `'length` error for mismatched list lengths;
//! * **two-valued logic** — `=` on two nulls yields `1b`;
//! * **null propagation** — arithmetic over a typed null yields null;
//! * **temporal arithmetic** — date ± int stays a date, date − date is a
//!   day count, and so on.

use qlang::value::{Atom, Dict, Table, Value};
use qlang::{QError, QResult};

/// Apply a dyadic operator with broadcasting.
pub fn dyad(op: &str, a: &Value, b: &Value) -> QResult<Value> {
    match op {
        "+" | "-" | "*" | "%" | "&" | "|" | "mod" | "div" | "and" | "or" => arith(op, a, b),
        "=" | "<" | ">" | "<=" | ">=" | "<>" => compare(op, a, b),
        "~" => Ok(Value::bool(a.q_eq(b))),
        "," => concat(a, b),
        "^" => fill(a, b),
        "in" => in_op(a, b),
        "within" => within_op(a, b),
        "like" => like_op(a, b),
        "#" => take(a, b),
        "_" => drop_op(a, b),
        "?" => find_or_rand(a, b),
        "!" => bang(a, b),
        "@" => index_apply(a, b),
        other => Err(QError::type_err(format!("unknown dyadic operator {other}"))),
    }
}

/// Broadcast a dyadic atom operation over two values.
fn broadcast(a: &Value, b: &Value, f: &mut impl FnMut(&Atom, &Atom) -> QResult<Atom>) -> QResult<Value> {
    match (a, b) {
        (Value::Atom(x), Value::Atom(y)) => Ok(Value::Atom(f(x, y)?)),
        (Value::Atom(_), _) if b.len().is_some() => {
            let n = b.len().unwrap();
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let bi = b.index(i).unwrap();
                out.push(apply_atom(a, &bi, f)?);
            }
            Ok(Value::from_elements(out))
        }
        (_, Value::Atom(_)) if a.len().is_some() => {
            let n = a.len().unwrap();
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let ai = a.index(i).unwrap();
                out.push(apply_atom(&ai, b, f)?);
            }
            Ok(Value::from_elements(out))
        }
        _ => {
            let (la, lb) = (a.len(), b.len());
            match (la, lb) {
                (Some(la), Some(lb)) if la == lb => {
                    let mut out = Vec::with_capacity(la);
                    for i in 0..la {
                        let ai = a.index(i).unwrap();
                        let bi = b.index(i).unwrap();
                        out.push(apply_atom(&ai, &bi, f)?);
                    }
                    Ok(Value::from_elements(out))
                }
                (Some(la), Some(lb)) => Err(QError::length(format!(
                    "length mismatch: {la} vs {lb}"
                ))),
                _ => Err(QError::type_err(format!(
                    "cannot apply operator to {} and {}",
                    a.type_name(),
                    b.type_name()
                ))),
            }
        }
    }
}

fn apply_atom(
    a: &Value,
    b: &Value,
    f: &mut impl FnMut(&Atom, &Atom) -> QResult<Atom>,
) -> QResult<Value> {
    match (a, b) {
        (Value::Atom(x), Value::Atom(y)) => Ok(Value::Atom(f(x, y)?)),
        // Nested lists recurse.
        _ => broadcast(a, b, f),
    }
}

/// Arithmetic and min/max with type promotion, null propagation and
/// temporal rules.
fn arith(op: &str, a: &Value, b: &Value) -> QResult<Value> {
    broadcast(a, b, &mut |x, y| atom_arith(op, x, y))
}

fn atom_arith(op: &str, x: &Atom, y: &Atom) -> QResult<Atom> {
    use Atom::*;
    // Boolean logic via and/or/&/| on bools.
    if let (Bool(p), Bool(q)) = (x, y) {
        match op {
            "&" | "and" => return Ok(Bool(*p && *q)),
            "|" | "or" => return Ok(Bool(*p || *q)),
            _ => {}
        }
    }
    // Null propagation.
    let result_null = |x: &Atom, y: &Atom| -> Atom {
        // Null of the promoted type.
        match (x, y) {
            (Float(_), _) | (_, Float(_)) | (Real(_), _) | (_, Real(_)) => Float(f64::NAN),
            (Timestamp(_), _) | (_, Timestamp(_)) => Timestamp(i64::MIN),
            (Date(_), _) | (_, Date(_)) => Date(i32::MIN),
            (Time(_), _) | (_, Time(_)) => Time(i32::MIN),
            _ => Long(i64::MIN),
        }
    };
    if x.is_null() || y.is_null() {
        if op == "%" {
            return Ok(Float(f64::NAN));
        }
        return Ok(result_null(x, y));
    }

    // Temporal arithmetic.
    match (x, y, op) {
        (Date(d), _, "+") if y.as_i64().is_some() && !matches!(y, Date(_)) => {
            return Ok(Date(d + y.as_i64().unwrap() as i32))
        }
        (_, Date(d), "+") if x.as_i64().is_some() && !matches!(x, Date(_)) => {
            return Ok(Date(d + x.as_i64().unwrap() as i32))
        }
        (Date(d), Date(e), "-") => return Ok(Long((d - e) as i64)),
        (Date(d), _, "-") if y.as_i64().is_some() && !matches!(y, Date(_)) => {
            return Ok(Date(d - y.as_i64().unwrap() as i32))
        }
        (Timestamp(t), Timestamp(u), "-") => return Ok(Long(t - u)),
        (Timestamp(t), _, "+") if y.as_i64().is_some() && !matches!(y, Timestamp(_)) => {
            return Ok(Timestamp(t + y.as_i64().unwrap()))
        }
        (Timestamp(t), _, "-") if y.as_i64().is_some() && !matches!(y, Timestamp(_)) => {
            return Ok(Timestamp(t - y.as_i64().unwrap()))
        }
        (Time(t), Time(u), "-") => return Ok(Long((t - u) as i64)),
        (Time(t), _, "+") if y.as_i64().is_some() && !matches!(y, Time(_)) => {
            return Ok(Time(t + y.as_i64().unwrap() as i32))
        }
        (Time(t), _, "-") if y.as_i64().is_some() && !matches!(y, Time(_)) => {
            return Ok(Time(t - y.as_i64().unwrap() as i32))
        }
        _ => {}
    }

    let float_mode = matches!(x, Float(_) | Real(_)) || matches!(y, Float(_) | Real(_)) || op == "%";
    if float_mode {
        let (fx, fy) = match (x.as_f64(), y.as_f64()) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(QError::type_err(format!(
                    "cannot apply {op} to {x:?} and {y:?}"
                )))
            }
        };
        let r = match op {
            "+" => fx + fy,
            "-" => fx - fy,
            "*" => fx * fy,
            "%" => fx / fy,
            "&" | "and" => fx.min(fy),
            "|" | "or" => fx.max(fy),
            "mod" => fx.rem_euclid(fy),
            "div" => (fx / fy).floor(),
            _ => return Err(QError::type_err(format!("bad arithmetic op {op}"))),
        };
        Ok(Float(r))
    } else {
        let (ix, iy) = match (x.as_i64(), y.as_i64()) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(QError::type_err(format!(
                    "cannot apply {op} to {x:?} and {y:?}"
                )))
            }
        };
        let r = match op {
            "+" => ix.wrapping_add(iy),
            "-" => ix.wrapping_sub(iy),
            "*" => ix.wrapping_mul(iy),
            "&" | "and" => ix.min(iy),
            "|" | "or" => ix.max(iy),
            "mod" => {
                if iy == 0 {
                    return Ok(Long(i64::MIN));
                }
                ix.rem_euclid(iy)
            }
            "div" => {
                if iy == 0 {
                    return Ok(Long(i64::MIN));
                }
                ix.div_euclid(iy)
            }
            _ => return Err(QError::type_err(format!("bad arithmetic op {op}"))),
        };
        Ok(Long(r))
    }
}

/// Comparison operators. Q equality is two-valued: nulls compare equal.
fn compare(op: &str, a: &Value, b: &Value) -> QResult<Value> {
    broadcast(a, b, &mut |x, y| {
        let r = match op {
            "=" => x.q_eq(y),
            "<>" => !x.q_eq(y),
            "<" => x.q_cmp(y) == std::cmp::Ordering::Less,
            ">" => x.q_cmp(y) == std::cmp::Ordering::Greater,
            "<=" => x.q_cmp(y) != std::cmp::Ordering::Greater,
            ">=" => x.q_cmp(y) != std::cmp::Ordering::Less,
            _ => unreachable!(),
        };
        Ok(Atom::Bool(r))
    })
}

/// `,` — join (concatenation). Atoms are enlisted first; tables union.
pub fn concat(a: &Value, b: &Value) -> QResult<Value> {
    if let (Value::Table(t1), Value::Table(t2)) = (a, b) {
        return crate::joins::union_tables(t1, t2);
    }
    let la = a.clone();
    let lb = b.clone();
    let la = if la.is_atom() { la.enlist() } else { la };
    let lb = if lb.is_atom() { lb.enlist() } else { lb };
    let na = la.len().unwrap_or(0);
    let nb = lb.len().unwrap_or(0);
    let mut out = Vec::with_capacity(na + nb);
    for i in 0..na {
        out.push(la.index(i).unwrap());
    }
    for i in 0..nb {
        out.push(lb.index(i).unwrap());
    }
    Ok(Value::from_elements(out))
}

/// `^` — fill: replace nulls in `b` with `a`.
fn fill(a: &Value, b: &Value) -> QResult<Value> {
    broadcast(a, b, &mut |filler, x| {
        Ok(if x.is_null() { filler.clone() } else { x.clone() })
    })
}

/// `in` — membership of left elements in the right list.
fn in_op(a: &Value, b: &Value) -> QResult<Value> {
    let contains = |needle: &Value| -> bool {
        match b.len() {
            Some(n) => (0..n).any(|i| b.index(i).map(|x| x.q_eq(needle)).unwrap_or(false)),
            None => b.q_eq(needle),
        }
    };
    match a {
        Value::Atom(_) => Ok(Value::bool(contains(a))),
        _ => {
            let n = a.len().ok_or_else(|| QError::type_err("in: bad left operand"))?;
            Ok(Value::Bools((0..n).map(|i| contains(&a.index(i).unwrap())).collect()))
        }
    }
}

/// `within` — range containment: `x within (lo;hi)` is `lo<=x and x<=hi`.
fn within_op(a: &Value, b: &Value) -> QResult<Value> {
    let lo = b.index(0).ok_or_else(|| QError::length("within: need (lo;hi)"))?;
    let hi = b.index(1).ok_or_else(|| QError::length("within: need (lo;hi)"))?;
    let ge = compare(">=", a, &lo)?;
    let le = compare("<=", a, &hi)?;
    arith("&", &ge, &le)
}

/// `like` — glob match with `*` and `?` wildcards.
fn like_op(a: &Value, b: &Value) -> QResult<Value> {
    let pattern = match b {
        Value::Chars(s) => s.clone(),
        Value::Atom(Atom::Symbol(s)) => s.clone(),
        _ => return Err(QError::type_err("like: pattern must be a string")),
    };
    let matches = |text: &str| glob_match(&pattern, text);
    let as_text = |v: &Value| -> Option<String> {
        match v {
            Value::Chars(s) => Some(s.clone()),
            Value::Atom(Atom::Symbol(s)) => Some(s.clone()),
            Value::Atom(Atom::Char(c)) => Some(c.to_string()),
            _ => None,
        }
    };
    match a {
        Value::Symbols(v) => Ok(Value::Bools(v.iter().map(|s| matches(s)).collect())),
        Value::Mixed(items) => Ok(Value::Bools(
            items
                .iter()
                .map(|i| as_text(i).map(|t| matches(&t)).unwrap_or(false))
                .collect(),
        )),
        other => match as_text(other) {
            Some(t) => Ok(Value::bool(matches(&t))),
            None => Err(QError::type_err("like: left operand must be textual")),
        },
    }
}

/// Glob matching with `*` (any run) and `?` (any single char).
pub fn glob_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    fn go(p: &[char], t: &[char]) -> bool {
        match (p.first(), t.first()) {
            (None, None) => true,
            (Some('*'), _) => go(&p[1..], t) || (!t.is_empty() && go(p, &t[1..])),
            (Some('?'), Some(_)) => go(&p[1..], &t[1..]),
            (Some(c), Some(d)) if c == d => go(&p[1..], &t[1..]),
            _ => false,
        }
    }
    go(&p, &t)
}

/// `#` — take: `n#list` (cyclic), `-n#list` (from the end), `syms#table`
/// (column subset), `n#atom` (replicate).
fn take(a: &Value, b: &Value) -> QResult<Value> {
    // Column subset of a table.
    if let (Value::Symbols(cols), Value::Table(t)) = (a, b) {
        let mut names = Vec::new();
        let mut columns = Vec::new();
        for c in cols {
            let idx = t
                .column_index(c)
                .ok_or_else(|| QError::type_err(format!("take: no column {c}")))?;
            names.push(c.clone());
            columns.push(t.columns[idx].clone());
        }
        return Ok(Value::Table(Box::new(Table { names, columns })));
    }
    let n = match a {
        Value::Atom(at) => at
            .as_i64()
            .ok_or_else(|| QError::type_err("take: count must be integral"))?,
        _ => return Err(QError::type_err("take: left operand must be an integer")),
    };
    let src = if b.is_atom() { b.clone().enlist() } else { b.clone() };
    if let Value::Table(t) = &src {
        let rows = t.rows();
        let indices = take_indices(n, rows);
        return Ok(Value::Table(Box::new(t.take_rows(&indices))));
    }
    let len = src.len().unwrap_or(0);
    let indices = take_indices(n, len);
    Ok(src.take_indices(&indices))
}

fn take_indices(n: i64, len: usize) -> Vec<usize> {
    if len == 0 {
        return vec![];
    }
    if n >= 0 {
        (0..n as usize).map(|i| i % len).collect()
    } else {
        let k = (-n) as usize;
        if k >= len {
            // Cyclic from the end.
            (0..k).map(|i| (len - (k % len) + i) % len).collect()
        } else {
            (len - k..len).collect()
        }
    }
}

/// `_` — drop: `n_list` drops the first n, `-n_list` the last n;
/// `syms _ table` drops columns.
fn drop_op(a: &Value, b: &Value) -> QResult<Value> {
    if let (Value::Symbols(cols), Value::Table(t)) = (a, b) {
        let mut names = Vec::new();
        let mut columns = Vec::new();
        for (n, c) in t.names.iter().zip(&t.columns) {
            if !cols.contains(n) {
                names.push(n.clone());
                columns.push(c.clone());
            }
        }
        return Ok(Value::Table(Box::new(Table { names, columns })));
    }
    if let (Value::Atom(Atom::Symbol(col)), Value::Table(_)) = (a, b) {
        return drop_op(&Value::Symbols(vec![col.clone()]), b);
    }
    let n = match a {
        Value::Atom(at) => at
            .as_i64()
            .ok_or_else(|| QError::type_err("drop: count must be integral"))?,
        _ => return Err(QError::type_err("drop: left operand must be an integer")),
    };
    if let Value::Table(t) = b {
        let rows = t.rows();
        let indices = drop_indices(n, rows);
        return Ok(Value::Table(Box::new(t.take_rows(&indices))));
    }
    let len = b.len().ok_or_else(|| QError::type_err("drop: right operand must be a list"))?;
    Ok(b.take_indices(&drop_indices(n, len)))
}

fn drop_indices(n: i64, len: usize) -> Vec<usize> {
    if n >= 0 {
        let k = (n as usize).min(len);
        (k..len).collect()
    } else {
        let k = ((-n) as usize).min(len);
        (0..len - k).collect()
    }
}

/// `?` — find (`list?x` → first index of x, or count if absent) or
/// deterministic "roll" (`n?m` → n pseudo-random longs below m).
fn find_or_rand(a: &Value, b: &Value) -> QResult<Value> {
    match a {
        Value::Atom(at) => {
            let n = at.as_i64().ok_or_else(|| QError::type_err("?: bad left operand"))?;
            roll(n, b)
        }
        _ => {
            let la = a.len().unwrap_or(0);
            let find_one = |needle: &Value| -> i64 {
                for i in 0..la {
                    if a.index(i).map(|x| x.q_eq(needle)).unwrap_or(false) {
                        return i as i64;
                    }
                }
                la as i64
            };
            match b {
                Value::Atom(_) => Ok(Value::long(find_one(b))),
                _ => {
                    let lb = b.len().unwrap_or(0);
                    Ok(Value::Longs((0..lb).map(|i| find_one(&b.index(i).unwrap())).collect()))
                }
            }
        }
    }
}

/// Deterministic xorshift-based roll: `n?m`. Uses a fixed seed so the
/// reference engine is reproducible (the real kdb+ seeds from `\S`).
fn roll(n: i64, b: &Value) -> QResult<Value> {
    if n < 0 {
        return Err(QError::domain("?: negative roll count"));
    }
    let mut state: u64 = 0x9E3779B97F4A7C15;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    match b {
        Value::Atom(Atom::Long(m)) if *m > 0 => {
            Ok(Value::Longs((0..n).map(|_| (next() % (*m as u64)) as i64).collect()))
        }
        Value::Atom(Atom::Float(m)) if *m > 0.0 => Ok(Value::Floats(
            (0..n).map(|_| (next() as f64 / u64::MAX as f64) * m).collect(),
        )),
        // n?list — sample with replacement.
        _ if b.len().is_some() => {
            let len = b.len().unwrap();
            if len == 0 {
                return Err(QError::domain("?: empty list"));
            }
            let idx: Vec<usize> = (0..n).map(|_| (next() % len as u64) as usize).collect();
            Ok(b.take_indices(&idx))
        }
        _ => Err(QError::type_err("?: bad right operand")),
    }
}

/// `!` — dictionary construction (`keys!values`) or table keying
/// (`n!table`).
fn bang(a: &Value, b: &Value) -> QResult<Value> {
    match (a, b) {
        (Value::Atom(Atom::Long(n)), Value::Table(t)) => {
            let n = *n as usize;
            if n > t.width() {
                return Err(QError::length("!: key count exceeds column count"));
            }
            let key = Table {
                names: t.names[..n].to_vec(),
                columns: t.columns[..n].to_vec(),
            };
            let value = Table {
                names: t.names[n..].to_vec(),
                columns: t.columns[n..].to_vec(),
            };
            Ok(Value::KeyedTable(Box::new(qlang::KeyedTable { key, value })))
        }
        (Value::Symbols(keys), Value::Table(t)) => {
            // `cols xkey t` equivalent.
            crate::joins::xkey(keys, t)
        }
        _ => {
            let d = Dict::new(a.clone(), b.clone())?;
            Ok(Value::Dict(Box::new(d)))
        }
    }
}

/// `@` — indexing (list@indices) / dict lookup.
fn index_apply(a: &Value, b: &Value) -> QResult<Value> {
    match a {
        Value::Dict(d) => match b {
            Value::Atom(_) => Ok(d.get(b)),
            _ => {
                let n = b.len().unwrap_or(0);
                let items: Vec<Value> = (0..n).map(|i| d.get(&b.index(i).unwrap())).collect();
                Ok(Value::from_elements(items))
            }
        },
        _ if a.len().is_some() => match b {
            Value::Atom(at) => {
                let i = at.as_i64().ok_or_else(|| QError::type_err("@: bad index"))?;
                if i < 0 {
                    return Ok(a.null_element());
                }
                Ok(a.index(i as usize).unwrap_or_else(|| a.null_element()))
            }
            _ => {
                let n = b.len().unwrap_or(0);
                let mut idx = Vec::with_capacity(n);
                for i in 0..n {
                    match b.index(i).and_then(|v| match v {
                        Value::Atom(at) => at.as_i64(),
                        _ => None,
                    }) {
                        Some(j) if j >= 0 => idx.push(j as usize),
                        _ => idx.push(usize::MAX),
                    }
                }
                Ok(a.take_indices(&idx))
            }
        },
        _ => Err(QError::type_err(format!("@: cannot index {}", a.type_name()))),
    }
}

/// Apply a monadic operator.
pub fn monad(op: &str, a: &Value) -> QResult<Value> {
    match op {
        "-" => dyad("-", &Value::long(0), a),
        "+" => match a {
            // Monadic `+` is flip (transpose) on tables/dicts.
            Value::Dict(d) => crate::builtins::flip_dict(d),
            other => Ok(other.clone()),
        },
        "#" => Ok(Value::long(a.count() as i64)),
        "?" => crate::builtins::distinct(a),
        "_" => Ok(match a {
            Value::Atom(Atom::Float(f)) => Value::long(f.floor() as i64),
            other => other.clone(),
        }),
        "~" => Ok(Value::bool(false)),
        "," => Ok(a.clone().enlist()),
        "!" => match a {
            Value::Dict(d) => Ok(d.keys.clone()),
            Value::KeyedTable(k) => Ok(Value::Table(Box::new(k.key.clone()))),
            _ => Err(QError::type_err("!: monadic key needs dict")),
        },
        "=" => crate::builtins::group(a),
        "|" => crate::builtins::reverse(a),
        "&" => crate::builtins::where_op(a),
        "*" => Ok(a.index(0).unwrap_or_else(|| a.clone())),
        other => Err(QError::type_err(format!("unknown monadic operator {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_addition() {
        assert!(dyad("+", &Value::long(1), &Value::long(2)).unwrap().q_eq(&Value::long(3)));
    }

    #[test]
    fn broadcast_atom_list() {
        let r = dyad("+", &Value::long(10), &Value::Longs(vec![1, 2, 3])).unwrap();
        assert!(r.q_eq(&Value::Longs(vec![11, 12, 13])));
        let r = dyad("*", &Value::Longs(vec![1, 2, 3]), &Value::long(2)).unwrap();
        assert!(r.q_eq(&Value::Longs(vec![2, 4, 6])));
    }

    #[test]
    fn pairwise_list_addition() {
        let r = dyad("+", &Value::Longs(vec![1, 2]), &Value::Longs(vec![10, 20])).unwrap();
        assert!(r.q_eq(&Value::Longs(vec![11, 22])));
    }

    #[test]
    fn length_mismatch_errors() {
        let e = dyad("+", &Value::Longs(vec![1, 2]), &Value::Longs(vec![1, 2, 3]));
        assert!(e.is_err());
        assert_eq!(e.unwrap_err().kind, qlang::error::QErrorKind::Length);
    }

    #[test]
    fn division_is_float() {
        let r = dyad("%", &Value::long(1), &Value::long(2)).unwrap();
        assert!(r.q_eq(&Value::float(0.5)));
    }

    #[test]
    fn null_propagates_through_arithmetic() {
        let null = Value::Atom(Atom::Long(i64::MIN));
        let r = dyad("+", &null, &Value::long(5)).unwrap();
        assert!(matches!(r, Value::Atom(a) if a.is_null()));
    }

    #[test]
    fn two_valued_equality_on_nulls() {
        let null = Value::Atom(Atom::Long(i64::MIN));
        let r = dyad("=", &null, &null).unwrap();
        assert!(r.q_eq(&Value::bool(true)), "Q nulls compare equal (2VL)");
    }

    #[test]
    fn comparisons_broadcast() {
        let r = dyad("<", &Value::Longs(vec![1, 5, 3]), &Value::long(3)).unwrap();
        assert!(r.q_eq(&Value::Bools(vec![true, false, false])));
    }

    #[test]
    fn temporal_arithmetic() {
        let d = Value::Atom(Atom::Date(100));
        let r = dyad("+", &d, &Value::long(5)).unwrap();
        assert!(matches!(r, Value::Atom(Atom::Date(105))));
        let diff = dyad("-", &Value::Atom(Atom::Date(105)), &Value::Atom(Atom::Date(100))).unwrap();
        assert!(diff.q_eq(&Value::long(5)));
    }

    #[test]
    fn min_max_via_amp_pipe() {
        assert!(dyad("&", &Value::long(3), &Value::long(5)).unwrap().q_eq(&Value::long(3)));
        assert!(dyad("|", &Value::long(3), &Value::long(5)).unwrap().q_eq(&Value::long(5)));
        assert!(dyad("&", &Value::bool(true), &Value::bool(false)).unwrap().q_eq(&Value::bool(false)));
    }

    #[test]
    fn match_operator() {
        assert!(dyad("~", &Value::Longs(vec![1, 2]), &Value::Longs(vec![1, 2]))
            .unwrap()
            .q_eq(&Value::bool(true)));
        assert!(dyad("~", &Value::long(1), &Value::Longs(vec![1]))
            .unwrap()
            .q_eq(&Value::bool(false)));
    }

    #[test]
    fn concat_lists_and_atoms() {
        let r = concat(&Value::long(1), &Value::Longs(vec![2, 3])).unwrap();
        assert!(r.q_eq(&Value::Longs(vec![1, 2, 3])));
        let r = concat(&Value::symbol("a"), &Value::symbol("b")).unwrap();
        assert!(r.q_eq(&Value::Symbols(vec!["a".into(), "b".into()])));
    }

    #[test]
    fn fill_replaces_nulls() {
        let v = Value::Longs(vec![1, i64::MIN, 3]);
        let r = dyad("^", &Value::long(0), &v).unwrap();
        assert!(r.q_eq(&Value::Longs(vec![1, 0, 3])));
    }

    #[test]
    fn membership() {
        let list = Value::Symbols(vec!["GOOG".into(), "IBM".into()]);
        assert!(dyad("in", &Value::symbol("GOOG"), &list).unwrap().q_eq(&Value::bool(true)));
        assert!(dyad("in", &Value::symbol("AAPL"), &list).unwrap().q_eq(&Value::bool(false)));
        let r = dyad("in", &Value::Symbols(vec!["IBM".into(), "X".into()]), &list).unwrap();
        assert!(r.q_eq(&Value::Bools(vec![true, false])));
    }

    #[test]
    fn within_range() {
        let r = dyad("within", &Value::Longs(vec![1, 5, 10]), &Value::Longs(vec![2, 6])).unwrap();
        assert!(r.q_eq(&Value::Bools(vec![false, true, false])));
    }

    #[test]
    fn like_globs() {
        assert!(glob_match("GO*", "GOOG"));
        assert!(glob_match("?BM", "IBM"));
        assert!(!glob_match("GO*", "IBM"));
        let r = dyad(
            "like",
            &Value::Symbols(vec!["GOOG".into(), "IBM".into()]),
            &Value::Chars("GO*".into()),
        )
        .unwrap();
        assert!(r.q_eq(&Value::Bools(vec![true, false])));
    }

    #[test]
    fn take_cyclic_and_negative() {
        let v = Value::Longs(vec![1, 2, 3]);
        assert!(dyad("#", &Value::long(2), &v).unwrap().q_eq(&Value::Longs(vec![1, 2])));
        assert!(dyad("#", &Value::long(5), &v).unwrap().q_eq(&Value::Longs(vec![1, 2, 3, 1, 2])));
        assert!(dyad("#", &Value::long(-2), &v).unwrap().q_eq(&Value::Longs(vec![2, 3])));
        // Atom replication.
        assert!(dyad("#", &Value::long(3), &Value::long(7)).unwrap().q_eq(&Value::Longs(vec![7, 7, 7])));
    }

    #[test]
    fn take_columns_from_table() {
        let t = Table::new(
            vec!["a".into(), "b".into()],
            vec![Value::Longs(vec![1]), Value::Longs(vec![2])],
        )
        .unwrap();
        let r = dyad("#", &Value::Symbols(vec!["b".into()]), &Value::Table(Box::new(t))).unwrap();
        match r {
            Value::Table(t) => assert_eq!(t.names, vec!["b".to_string()]),
            other => panic!("expected table, got {other:?}"),
        }
    }

    #[test]
    fn drop_rows_and_columns() {
        let v = Value::Longs(vec![1, 2, 3, 4]);
        assert!(dyad("_", &Value::long(2), &v).unwrap().q_eq(&Value::Longs(vec![3, 4])));
        assert!(dyad("_", &Value::long(-1), &v).unwrap().q_eq(&Value::Longs(vec![1, 2, 3])));
    }

    #[test]
    fn find_returns_first_index_or_count() {
        let v = Value::Symbols(vec!["a".into(), "b".into(), "a".into()]);
        assert!(dyad("?", &v, &Value::symbol("a")).unwrap().q_eq(&Value::long(0)));
        assert!(dyad("?", &v, &Value::symbol("z")).unwrap().q_eq(&Value::long(3)));
    }

    #[test]
    fn roll_is_deterministic_and_bounded() {
        let r1 = dyad("?", &Value::long(10), &Value::long(5)).unwrap();
        let r2 = dyad("?", &Value::long(10), &Value::long(5)).unwrap();
        assert!(r1.q_eq(&r2));
        if let Value::Longs(v) = r1 {
            assert!(v.iter().all(|&x| (0..5).contains(&x)));
        } else {
            panic!("expected longs");
        }
    }

    #[test]
    fn bang_builds_dict_and_keyed_table() {
        let d = dyad(
            "!",
            &Value::Symbols(vec!["a".into(), "b".into()]),
            &Value::Longs(vec![1, 2]),
        )
        .unwrap();
        assert!(matches!(d, Value::Dict(_)));

        let t = Table::new(
            vec!["k".into(), "v".into()],
            vec![Value::Longs(vec![1]), Value::Longs(vec![10])],
        )
        .unwrap();
        let kt = dyad("!", &Value::long(1), &Value::Table(Box::new(t))).unwrap();
        match kt {
            Value::KeyedTable(k) => {
                assert_eq!(k.key.names, vec!["k".to_string()]);
                assert_eq!(k.value.names, vec!["v".to_string()]);
            }
            other => panic!("expected keyed table, got {other:?}"),
        }
    }

    #[test]
    fn at_indexes_lists_and_dicts() {
        let v = Value::Longs(vec![10, 20, 30]);
        assert!(dyad("@", &v, &Value::long(1)).unwrap().q_eq(&Value::long(20)));
        // Out-of-range yields typed null.
        let miss = dyad("@", &v, &Value::long(9)).unwrap();
        assert!(matches!(miss, Value::Atom(a) if a.is_null()));
        let idx = dyad("@", &v, &Value::Longs(vec![2, 0])).unwrap();
        assert!(idx.q_eq(&Value::Longs(vec![30, 10])));
    }

    #[test]
    fn monadic_negate_and_count() {
        assert!(monad("-", &Value::long(5)).unwrap().q_eq(&Value::long(-5)));
        assert!(monad("#", &Value::Longs(vec![1, 2, 3])).unwrap().q_eq(&Value::long(3)));
    }
}
