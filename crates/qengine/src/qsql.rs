//! q-sql template execution: `select` / `exec` / `update` / `delete`.
//!
//! Template semantics diverge from SQL in ways the paper emphasises
//! (§2.2): `update` only rewrites the query *output*, never persisted
//! state; `where` clauses are applied left to right, each filtering the
//! rows the next one sees; `by` produces a keyed table sorted by group
//! key; and the virtual column `i` exposes row indices — ordered-list
//! thinking throughout.

use crate::builtins;
use crate::interp::{expect_table, Interp};
use crate::joins::KeyAtom;
use qlang::ast::{Expr, SelectKind, TemplateExpr};
use qlang::value::{Dict, KeyedTable, Table, Value};
use qlang::{QError, QResult};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Execute a q-sql template.
pub fn exec_template(interp: &mut Interp, t: &TemplateExpr) -> QResult<Value> {
    let source = interp.eval(&t.from)?;
    let table = expect_table(&source, "q-sql")?;

    match t.kind {
        SelectKind::Select => run_select(interp, t, table, false),
        SelectKind::Exec => run_select(interp, t, table, true),
        SelectKind::Update => run_update(interp, t, table),
        SelectKind::Delete => run_delete(interp, t, table),
    }
}

/// Bind a table's columns (restricted to `rows`) plus the virtual `i`
/// column into a fresh local frame.
fn push_column_frame(interp: &mut Interp, table: &Table, rows: &[usize]) {
    interp.env.push_frame();
    for (name, col) in table.names.iter().zip(&table.columns) {
        interp.env.assign(name.clone(), col.take_indices(rows));
    }
    interp.env.assign("i", Value::Longs(rows.iter().map(|&r| r as i64).collect()));
}

/// Apply the template's where clauses sequentially, returning the
/// surviving row indices.
fn filter_rows(interp: &mut Interp, t: &TemplateExpr, table: &Table) -> QResult<Vec<usize>> {
    let mut rows: Vec<usize> = (0..table.rows()).collect();
    for pred in &t.predicates {
        if rows.is_empty() {
            // No rows can survive further conjuncts — and predicates over
            // the now-empty column frame would evaluate to empty untyped
            // lists, which the boolean check below cannot classify.
            break;
        }
        push_column_frame(interp, table, &rows);
        let verdict = interp.eval(pred);
        interp.env.pop_frame();
        let verdict = verdict?;
        let keep: Vec<usize> = match &verdict {
            Value::Bools(bits) => {
                if bits.len() != rows.len() {
                    return Err(QError::length("where clause length mismatch"));
                }
                rows.iter().zip(bits).filter(|(_, &b)| b).map(|(&r, _)| r).collect()
            }
            Value::Atom(qlang::Atom::Bool(b)) => {
                if *b {
                    rows.clone()
                } else {
                    vec![]
                }
            }
            other => {
                return Err(QError::type_err(format!(
                    "where clause must yield booleans, got {}",
                    other.type_name()
                )))
            }
        };
        rows = keep;
    }
    Ok(rows)
}

/// Default output name for an unnamed select clause: the first column
/// reference inside it, kdb+-style, else `x`.
fn default_name(e: &Expr) -> String {
    match e {
        Expr::Var(n) => n.clone(),
        // `max Price` is named after the operand, not the function.
        Expr::Apply { arg, .. } => default_name(arg),
        Expr::Unary { arg, .. } => default_name(arg),
        Expr::Binary { lhs, .. } => default_name(lhs),
        Expr::Call { args, .. } => args
            .iter()
            .flatten()
            .last()
            .map(default_name)
            .unwrap_or_else(|| "x".to_string()),
        _ => "x".to_string(),
    }
}

/// Evaluate select clauses over a set of rows; atoms broadcast to the
/// common length (or stay atoms for aggregation results).
fn eval_clauses(
    interp: &mut Interp,
    clauses: &[(Option<String>, Expr)],
    table: &Table,
    rows: &[usize],
) -> QResult<Vec<(String, Value)>> {
    push_column_frame(interp, table, rows);
    let mut out = Vec::with_capacity(clauses.len());
    for (name, e) in clauses {
        let v = match interp.eval(e) {
            Ok(v) => v,
            Err(err) => {
                interp.env.pop_frame();
                return Err(err);
            }
        };
        out.push((name.clone().unwrap_or_else(|| default_name(e)), v));
    }
    interp.env.pop_frame();
    Ok(out)
}

/// Normalize evaluated clause results into equal-length columns.
fn columns_from_results(results: Vec<(String, Value)>, row_count: usize) -> QResult<Table> {
    // If every result is an atom, this is an aggregation row.
    let all_atoms = results.iter().all(|(_, v)| v.len().is_none());
    let target = if all_atoms { 1 } else { row_count };
    let mut t = Table::default();
    for (name, v) in results {
        let col = match v.len() {
            Some(n) if n == target => v,
            Some(n) => {
                return Err(QError::length(format!(
                    "column {name} has length {n}, expected {target}"
                )))
            }
            None => Value::from_elements(vec![v; target]),
        };
        t.push_column(name, col)?;
    }
    Ok(t)
}

fn run_select(
    interp: &mut Interp,
    t: &TemplateExpr,
    table: Table,
    exec_mode: bool,
) -> QResult<Value> {
    let rows = filter_rows(interp, t, &table)?;

    if t.by.is_empty() {
        let result = if t.columns.is_empty() {
            table.take_rows(&rows)
        } else {
            let results = eval_clauses(interp, &t.columns, &table, &rows)?;
            // `exec` over pure aggregates returns atoms, not 1-row lists.
            if exec_mode && results.iter().all(|(_, v)| v.len().is_none()) {
                if results.len() == 1 {
                    return Ok(results.into_iter().next().unwrap().1);
                }
                let (names, vals): (Vec<String>, Vec<Value>) = results.into_iter().unzip();
                return Ok(Value::Dict(Box::new(Dict::new(
                    Value::Symbols(names),
                    Value::Mixed(vals),
                )?)));
            }
            columns_from_results(results, rows.len())?
        };
        if exec_mode {
            // exec: single column → vector; multiple → dict of columns.
            return Ok(if result.width() == 1 {
                result.columns.into_iter().next().unwrap()
            } else {
                Value::Dict(Box::new(Dict::new(
                    Value::Symbols(result.names),
                    Value::Mixed(result.columns),
                )?))
            });
        }
        return Ok(Value::Table(Box::new(result)));
    }

    // Grouped select: evaluate by-exprs over the filtered rows, group,
    // then evaluate the select clauses per group.
    let by_results = eval_clauses(interp, &t.by, &table, &rows)?;
    let by_names: Vec<String> = by_results.iter().map(|(n, _)| n.clone()).collect();
    let by_cols: Vec<Value> = by_results.into_iter().map(|(_, v)| v).collect();
    for c in &by_cols {
        if c.len() != Some(rows.len()) {
            return Err(QError::length("by clause must yield one value per row"));
        }
    }

    // Group rows by key via a hash index (first-seen order), then sort
    // keys ascending (kdb+ `by` returns a keyed table sorted by key).
    let mut key_index: HashMap<Vec<KeyAtom>, usize> = HashMap::new();
    let mut key_rows: Vec<Vec<usize>> = Vec::new();
    let mut key_samples: Vec<Vec<Value>> = Vec::new();
    for (pos, &row) in rows.iter().enumerate() {
        let key: Vec<KeyAtom> =
            by_cols.iter().map(|c| KeyAtom::from_value(&c.index(pos).unwrap())).collect();
        match key_index.entry(key) {
            Entry::Occupied(e) => key_rows[*e.get()].push(row),
            Entry::Vacant(e) => {
                e.insert(key_rows.len());
                key_rows.push(vec![row]);
                key_samples.push(by_cols.iter().map(|c| c.index(pos).unwrap()).collect());
            }
        }
    }
    // Sort groups by key ascending.
    let mut group_idx: Vec<usize> = (0..key_rows.len()).collect();
    group_idx.sort_by(|&a, &b| {
        for (ka, kb) in key_samples[a].iter().zip(&key_samples[b]) {
            if let (Value::Atom(x), Value::Atom(y)) = (ka, kb) {
                let ord = x.q_cmp(y);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
        }
        std::cmp::Ordering::Equal
    });

    // `select by k from t` with no columns: last row of each group.
    let clauses: Vec<(Option<String>, Expr)> = if t.columns.is_empty() {
        table
            .names
            .iter()
            .filter(|n| !by_names.contains(n))
            .map(|n| {
                (
                    Some(n.clone()),
                    Expr::Apply {
                        func: Box::new(Expr::var("last")),
                        arg: Box::new(Expr::var(n.clone())),
                    },
                )
            })
            .collect()
    } else {
        t.columns.clone()
    };

    let mut agg_names: Vec<String> = Vec::new();
    let mut agg_cols: Vec<Vec<Value>> = Vec::new();
    if group_idx.is_empty() {
        // No groups: still derive the output column names so the empty
        // keyed table has the right schema.
        let results = eval_clauses(interp, &clauses, &table, &[])?;
        agg_names = results.iter().map(|(n, _)| n.clone()).collect();
        agg_cols = vec![Vec::new(); agg_names.len()];
    }
    for &g in &group_idx {
        let results = eval_clauses(interp, &clauses, &table, &key_rows[g])?;
        if agg_names.is_empty() {
            agg_names = results.iter().map(|(n, _)| n.clone()).collect();
            agg_cols = vec![Vec::with_capacity(group_idx.len()); results.len()];
        }
        for (ci, (_, v)) in results.into_iter().enumerate() {
            agg_cols[ci].push(v);
        }
    }

    let key_table = {
        let mut kt = Table::default();
        for (ci, name) in by_names.iter().enumerate() {
            let col: Vec<Value> =
                group_idx.iter().map(|&g| key_samples[g][ci].clone()).collect();
            kt.push_column(name.clone(), Value::from_elements(col))?;
        }
        kt
    };
    let value_table = {
        let mut vt = Table::default();
        for (name, col) in agg_names.into_iter().zip(agg_cols) {
            vt.push_column(name, Value::from_elements(col))?;
        }
        vt
    };

    if exec_mode {
        // exec by: dict keyed by group key (single by column, single agg).
        let keys = key_table.columns.into_iter().next().unwrap_or(Value::Mixed(vec![]));
        let vals = value_table.columns.into_iter().next().unwrap_or(Value::Mixed(vec![]));
        return Ok(Value::Dict(Box::new(Dict::new(keys, vals)?)));
    }
    Ok(Value::KeyedTable(Box::new(KeyedTable { key: key_table, value: value_table })))
}

fn run_update(interp: &mut Interp, t: &TemplateExpr, table: Table) -> QResult<Value> {
    let rows = filter_rows(interp, t, &table)?;
    let results = eval_clauses(interp, &t.columns, &table, &rows)?;

    let mut out = table.clone();
    for (name, v) in results {
        // Normalize to one value per filtered row.
        let vals: Vec<Value> = match v.len() {
            Some(n) if n == rows.len() => (0..n).map(|i| v.index(i).unwrap()).collect(),
            Some(_) => return Err(QError::length(format!("update column {name} length mismatch"))),
            None => vec![v; rows.len()],
        };
        match out.column_index(&name) {
            Some(ci) => {
                // Replace at the filtered positions only.
                let existing = &out.columns[ci];
                let n = out.rows();
                let mut elems: Vec<Value> =
                    (0..n).map(|i| existing.index(i).unwrap()).collect();
                for (k, &r) in rows.iter().enumerate() {
                    elems[r] = vals[k].clone();
                }
                out.columns[ci] = Value::from_elements(elems);
            }
            None => {
                // New column: nulls outside the filtered rows.
                let n = out.rows();
                let proto = Value::from_elements(vals.clone());
                let mut elems: Vec<Value> = (0..n).map(|_| proto.null_element()).collect();
                for (k, &r) in rows.iter().enumerate() {
                    elems[r] = vals[k].clone();
                }
                out.push_column(name, Value::from_elements(elems))?;
            }
        }
    }
    Ok(Value::Table(Box::new(out)))
}

fn run_delete(interp: &mut Interp, t: &TemplateExpr, table: Table) -> QResult<Value> {
    if !t.columns.is_empty() {
        // Delete columns.
        let mut names: Vec<String> = Vec::new();
        for (_, e) in &t.columns {
            match e {
                Expr::Var(n) => names.push(n.clone()),
                _ => return Err(QError::type_err("delete: column clause must be a name")),
            }
        }
        let mut out = Table::default();
        for (n, c) in table.names.iter().zip(&table.columns) {
            if !names.contains(n) {
                out.push_column(n.clone(), c.clone())?;
            }
        }
        return Ok(Value::Table(Box::new(out)));
    }
    let doomed = filter_rows(interp, t, &table)?;
    let keep: Vec<usize> = (0..table.rows()).filter(|r| !doomed.contains(r)).collect();
    Ok(Value::Table(Box::new(table.take_rows(&keep))))
}

/// Convenience for hosts: evaluate `select ... from` text and coerce to a
/// plain table.
pub fn select_to_table(interp: &mut Interp, src: &str) -> QResult<Table> {
    let v = interp.run(src)?;
    match v {
        Value::Table(t) => Ok(*t),
        Value::KeyedTable(_) => expect_table(&v, "select"),
        other => Err(QError::type_err(format!("expected table result, got {}", other.type_name()))),
    }
}

#[allow(unused_imports)]
use builtins as _builtins_used_in_tests;

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> Interp {
        let mut i = Interp::new();
        i.run(concat!(
            "trades: ([] Date:2016.06.26 2016.06.26 2016.06.27; ",
            "Symbol:`GOOG`IBM`GOOG; Price:100.0 50.0 101.5; Size:10 20 30)"
        ))
        .unwrap();
        i
    }

    #[test]
    fn select_all_rows() {
        let mut i = setup();
        let v = i.run("select from trades").unwrap();
        match v {
            Value::Table(t) => assert_eq!(t.rows(), 3),
            other => panic!("expected table, got {other:?}"),
        }
    }

    #[test]
    fn select_columns_with_filter() {
        let mut i = setup();
        let v = i.run("select Price from trades where Symbol=`GOOG").unwrap();
        match v {
            Value::Table(t) => {
                assert_eq!(t.names, vec!["Price".to_string()]);
                assert!(t.column("Price").unwrap().q_eq(&Value::Floats(vec![100.0, 101.5])));
            }
            other => panic!("expected table, got {other:?}"),
        }
    }

    #[test]
    fn sequential_where_clauses() {
        let mut i = setup();
        // Paper Example 1 shape: Date filter then membership filter.
        let v = i
            .run("select Price from trades where Date=2016.06.26, Symbol in `GOOG`MSFT")
            .unwrap();
        match v {
            Value::Table(t) => {
                assert!(t.column("Price").unwrap().q_eq(&Value::Floats(vec![100.0])));
            }
            other => panic!("expected table, got {other:?}"),
        }
    }

    #[test]
    fn aggregation_without_by_returns_one_row() {
        let mut i = setup();
        let v = i.run("select mx: max Price, n: count i from trades").unwrap();
        match v {
            Value::Table(t) => {
                assert_eq!(t.rows(), 1);
                assert!(t.column("mx").unwrap().q_eq(&Value::Floats(vec![101.5])));
                assert!(t.column("n").unwrap().q_eq(&Value::Longs(vec![3])));
            }
            other => panic!("expected table, got {other:?}"),
        }
    }

    #[test]
    fn default_column_name_comes_from_expression() {
        let mut i = setup();
        let v = i.run("select max Price from trades").unwrap();
        match v {
            Value::Table(t) => assert_eq!(t.names, vec!["Price".to_string()]),
            other => panic!("expected table, got {other:?}"),
        }
    }

    #[test]
    fn group_by_returns_sorted_keyed_table() {
        let mut i = setup();
        let v = i.run("select mx: max Price by Symbol from trades").unwrap();
        match v {
            Value::KeyedTable(k) => {
                assert!(k
                    .key
                    .column("Symbol")
                    .unwrap()
                    .q_eq(&Value::Symbols(vec!["GOOG".into(), "IBM".into()])));
                assert!(k.value.column("mx").unwrap().q_eq(&Value::Floats(vec![101.5, 50.0])));
            }
            other => panic!("expected keyed table, got {other:?}"),
        }
    }

    #[test]
    fn select_by_without_columns_takes_last_per_group() {
        let mut i = setup();
        let v = i.run("select by Symbol from trades").unwrap();
        match v {
            Value::KeyedTable(k) => {
                assert!(k.value.column("Price").unwrap().q_eq(&Value::Floats(vec![101.5, 50.0])));
            }
            other => panic!("expected keyed table, got {other:?}"),
        }
    }

    #[test]
    fn exec_single_column_yields_vector() {
        let mut i = setup();
        let v = i.run("exec Price from trades").unwrap();
        assert!(v.q_eq(&Value::Floats(vec![100.0, 50.0, 101.5])));
    }

    #[test]
    fn exec_multiple_columns_yields_dict() {
        let mut i = setup();
        let v = i.run("exec Price, Size from trades").unwrap();
        assert!(matches!(v, Value::Dict(_)));
    }

    #[test]
    fn exec_by_yields_keyed_dict() {
        let mut i = setup();
        let v = i.run("exec max Price by Symbol from trades").unwrap();
        match v {
            Value::Dict(d) => {
                assert!(d.get(&Value::symbol("GOOG")).q_eq(&Value::float(101.5)));
            }
            other => panic!("expected dict, got {other:?}"),
        }
    }

    #[test]
    fn update_is_output_only() {
        // The paper stresses: Q UPDATE replaces columns in the *output*,
        // never persisted state.
        let mut i = setup();
        let v = i.run("update Price: 2*Price from trades").unwrap();
        match v {
            Value::Table(t) => {
                assert!(t.column("Price").unwrap().q_eq(&Value::Floats(vec![200.0, 100.0, 203.0])));
            }
            other => panic!("expected table, got {other:?}"),
        }
        // Source table unchanged.
        let orig = i.run("exec Price from trades").unwrap();
        assert!(orig.q_eq(&Value::Floats(vec![100.0, 50.0, 101.5])));
    }

    #[test]
    fn update_with_where_touches_only_matching_rows() {
        let mut i = setup();
        let v = i.run("update Price: 0.0 from trades where Symbol=`IBM").unwrap();
        match v {
            Value::Table(t) => {
                assert!(t.column("Price").unwrap().q_eq(&Value::Floats(vec![100.0, 0.0, 101.5])));
            }
            other => panic!("expected table, got {other:?}"),
        }
    }

    #[test]
    fn update_adds_new_column() {
        let mut i = setup();
        let v = i.run("update Notional: Price*Size from trades").unwrap();
        match v {
            Value::Table(t) => {
                assert!(t
                    .column("Notional")
                    .unwrap()
                    .q_eq(&Value::Floats(vec![1000.0, 1000.0, 3045.0])));
            }
            other => panic!("expected table, got {other:?}"),
        }
    }

    #[test]
    fn delete_rows() {
        let mut i = setup();
        let v = i.run("delete from trades where Symbol=`IBM").unwrap();
        match v {
            Value::Table(t) => assert_eq!(t.rows(), 2),
            other => panic!("expected table, got {other:?}"),
        }
    }

    #[test]
    fn delete_columns() {
        let mut i = setup();
        let v = i.run("delete Size from trades").unwrap();
        match v {
            Value::Table(t) => assert!(t.column("Size").is_none()),
            other => panic!("expected table, got {other:?}"),
        }
    }

    #[test]
    fn virtual_column_i() {
        let mut i = setup();
        let v = i.run("exec i from trades where Symbol=`GOOG").unwrap();
        assert!(v.q_eq(&Value::Longs(vec![0, 2])));
    }

    #[test]
    fn computed_select_columns() {
        let mut i = setup();
        let v = i.run("select Notional: Price*Size from trades").unwrap();
        match v {
            Value::Table(t) => {
                assert!(t
                    .column("Notional")
                    .unwrap()
                    .q_eq(&Value::Floats(vec![1000.0, 1000.0, 3045.0])));
            }
            other => panic!("expected table, got {other:?}"),
        }
    }

    #[test]
    fn where_uses_outer_variables() {
        let mut i = setup();
        i.run("SYMLIST: `GOOG`MSFT").unwrap();
        let v = i.run("select Price from trades where Symbol in SYMLIST").unwrap();
        match v {
            Value::Table(t) => assert_eq!(t.rows(), 2),
            other => panic!("expected table, got {other:?}"),
        }
    }

    #[test]
    fn paper_example_3_function_with_local_table() {
        let mut i = setup();
        i.run("f: {[Sym] dt: select Price from trades where Symbol=Sym; :select max Price from dt}")
            .unwrap();
        let v = i.run("f[`GOOG]").unwrap();
        match v {
            Value::Table(t) => {
                assert!(t.column("Price").unwrap().q_eq(&Value::Floats(vec![101.5])));
            }
            other => panic!("expected table, got {other:?}"),
        }
        // dt is local and must not leak.
        assert!(i.run("dt").is_err());
    }

    #[test]
    fn nested_template_from() {
        let mut i = setup();
        let v = i
            .run("select max Price from select from trades where Symbol=`GOOG")
            .unwrap();
        match v {
            Value::Table(t) => {
                assert!(t.column("Price").unwrap().q_eq(&Value::Floats(vec![101.5])));
            }
            other => panic!("expected table, got {other:?}"),
        }
    }
}
