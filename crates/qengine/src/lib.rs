//! # qengine — a reference Q interpreter (the kdb+ stand-in)
//!
//! The paper's Hyper-Q translates Q applications onto SQL backends; to
//! reproduce its §5 side-by-side correctness framework we need an actual
//! Q engine to compare against, and kdb+ is closed source. This crate is
//! that substitute: a from-scratch interpreter over the `qlang` value
//! model implementing
//!
//! * strictly right-to-left evaluation with no operator precedence,
//! * vector primitives with broadcasting, typed nulls and two-valued
//!   logic ([`ops`]),
//! * the named builtin vocabulary — aggregates, sorts, list ops
//!   ([`builtins`]),
//! * q-sql templates with sequential `where` clauses, `by` grouping and
//!   output-only `update` ([`qsql`]),
//! * time-series joins, notably the as-of join `aj` ([`joins`]),
//! * the local/session/server variable-scope hierarchy of paper
//!   Figure 3 ([`env`]).
//!
//! Like kdb+, the engine executes one request at a time (isolation by
//! serialization) and provides no ACID machinery — persistence is the
//! host's concern.
//!
//! # Example
//!
//! ```
//! use qengine::Interp;
//!
//! let mut q = Interp::new();
//! // Right-to-left evaluation, no precedence: 2*(3+4).
//! assert!(q.run("2*3+4").unwrap().q_eq(&qlang::Value::long(14)));
//!
//! q.run("trades: ([] Sym:`a`b`a; Px:1.0 2.0 3.0)").unwrap();
//! let v = q.run("select mx: max Px by Sym from trades").unwrap();
//! assert!(matches!(v, qlang::Value::KeyedTable(_)));
//! ```

pub mod builtins;
pub mod colbridge;
pub mod env;
pub mod hashkey;
pub mod interp;
pub mod joins;
pub mod ops;
pub mod qsql;

pub use env::Env;
pub use interp::Interp;

#[cfg(test)]
mod integration {
    use super::*;
    use qlang::Value;

    /// End-to-end: the paper's Example 1 point-in-time query shape.
    #[test]
    fn prevailing_quote_as_of_each_trade() {
        let mut q = Interp::new();
        q.run(concat!(
            "trades: ([] Date:2016.06.26 2016.06.26; Symbol:`GOOG`GOOG; ",
            "Time:09:30:05.000 09:31:00.000; Price:100.0 100.5)"
        ))
        .unwrap();
        q.run(concat!(
            "quotes: ([] Date:2016.06.26 2016.06.26 2016.06.26; Symbol:`GOOG`GOOG`GOOG; ",
            "Time:09:30:00.000 09:30:30.000 09:32:00.000; ",
            "Bid:99.9 100.2 100.6; Ask:100.1 100.4 100.8)"
        ))
        .unwrap();
        let out = q
            .run(concat!(
                "aj[`Symbol`Time; ",
                "select Symbol, Time, Price from trades where Date=2016.06.26, Symbol in `GOOG`IBM; ",
                "select Symbol, Time, Bid, Ask from quotes where Date=2016.06.26]"
            ))
            .unwrap();
        match out {
            Value::Table(t) => {
                assert_eq!(t.rows(), 2);
                assert!(t.column("Bid").unwrap().q_eq(&Value::Floats(vec![99.9, 100.2])));
                assert!(t.column("Ask").unwrap().q_eq(&Value::Floats(vec![100.1, 100.4])));
            }
            other => panic!("expected table, got {other:?}"),
        }
    }

    /// Global function definitions are visible across "clients" of the
    /// same server (paper §3.2.3).
    #[test]
    fn server_scope_shared_across_sessions() {
        let mut q = Interp::new();
        q.run("f:: {x*x}").unwrap();
        q.env.end_session();
        // A new session on the same server still sees f.
        assert!(q.run("f 7").unwrap().q_eq(&Value::long(49)));
    }
}
