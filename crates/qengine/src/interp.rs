//! The Q evaluator.
//!
//! Evaluation is strictly right-to-left (the parser already encodes this
//! in the AST shape: the right operand of every verb is the entire rest of
//! the expression). Dyadic application evaluates its *right* argument
//! first, matching kdb+ — observable when both sides have side effects.

use crate::builtins;
use crate::env::Env;
use crate::joins;
use crate::ops;
use crate::qsql;
use qlang::ast::{Adverb, Expr, LambdaDef};
use qlang::value::{Atom, Table, Value};
use qlang::{QError, QResult};

/// A Q interpreter instance: one "server" with its scope hierarchy.
#[derive(Debug, Default)]
pub struct Interp {
    /// The variable environment (local/session/server scopes).
    pub env: Env,
    /// Set when a `:x` return statement fired; unwinds to the enclosing
    /// lambda invocation.
    returning: bool,
}

impl Interp {
    /// Create a fresh interpreter.
    pub fn new() -> Self {
        Interp::default()
    }

    /// Parse and evaluate a Q program; the value of the last statement is
    /// returned (kdb+ console behaviour).
    pub fn run(&mut self, src: &str) -> QResult<Value> {
        let stmts = qlang::parse(src)?;
        let mut last = Value::Nil;
        for stmt in &stmts {
            last = self.eval(stmt)?;
            if self.returning {
                self.returning = false;
                break;
            }
        }
        Ok(last)
    }

    /// Deterministic batch entry point for differential harnesses: parse
    /// and evaluate each statement of `stmts` independently, returning one
    /// result per statement. Unlike [`Interp::run`], an erroring statement
    /// does **not** abort the batch — later statements still execute
    /// against whatever state the earlier ones left behind, exactly as a
    /// console session would after an error. The engine has no wall-clock
    /// or entropy inputs (`?` rolls from a fixed seed), so for a fixed
    /// statement list over fixed data the returned vector is a pure
    /// function of its inputs.
    pub fn run_statements(&mut self, stmts: &[String]) -> Vec<QResult<Value>> {
        stmts.iter().map(|s| self.run(s)).collect()
    }

    /// Build a fresh interpreter preloaded with server-global tables —
    /// the reference-side constructor used by the qgen fuzz loop, which
    /// needs many short-lived engines over generated datasets.
    pub fn with_tables<'a>(tables: impl IntoIterator<Item = (&'a str, &'a Table)>) -> Self {
        let mut interp = Interp::new();
        for (name, table) in tables {
            interp.define_table(name, table.clone());
        }
        interp
    }

    /// Define a server-global table (used by hosts to load data).
    pub fn define_table(&mut self, name: &str, table: Table) {
        self.env.define_server(name, Value::Table(Box::new(table)));
    }

    /// Evaluate one expression.
    pub fn eval(&mut self, e: &Expr) -> QResult<Value> {
        match e {
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Empty => Ok(Value::Nil),
            Expr::Var(name) => self.resolve(name),
            Expr::List(items) => {
                // Right-to-left evaluation of list elements.
                let mut vals = vec![Value::Nil; items.len()];
                for (i, item) in items.iter().enumerate().rev() {
                    vals[i] = self.eval(item)?;
                }
                Ok(Value::from_elements(vals))
            }
            Expr::Unary { op, arg } => {
                let v = self.eval(arg)?;
                ops::monad(op, &v)
            }
            Expr::Binary { op, lhs, rhs } => {
                // Right argument first.
                let r = self.eval(rhs)?;
                let l = self.eval(lhs)?;
                self.dyadic(op, l, r)
            }
            Expr::Apply { func, arg } => {
                let a = self.eval(arg)?;
                self.apply_expr(func, vec![a])
            }
            Expr::Call { func, args } => {
                if args.iter().any(|a| a.is_none()) {
                    return Err(QError::rank(
                        "projection (elided arguments) is not supported by the reference engine",
                    ));
                }
                // Right-to-left argument evaluation.
                let mut vals = vec![Value::Nil; args.len()];
                for (i, a) in args.iter().enumerate().rev() {
                    vals[i] = self.eval(a.as_ref().unwrap())?;
                }
                self.apply_expr(func, vals)
            }
            Expr::Lambda(def) => Ok(Value::Lambda(Box::new(def.clone()))),
            Expr::AdverbApply { .. } => Err(QError::type_err(
                "derived verb used as a value; apply it to arguments instead",
            )),
            Expr::Assign { name, global, value } => {
                let v = self.eval(value)?;
                if *global {
                    self.env.assign_global(name.clone(), v.clone());
                } else {
                    self.env.assign(name.clone(), v.clone());
                }
                Ok(v)
            }
            Expr::IndexAssign { name, indices, value } => {
                let v = self.eval(value)?;
                let idx: Vec<Value> =
                    indices.iter().map(|i| self.eval(i)).collect::<QResult<_>>()?;
                let current = self.resolve(name)?;
                let updated = index_assign(&current, &idx, &v)?;
                self.env.assign(name.clone(), updated);
                Ok(v)
            }
            Expr::Return(inner) => {
                let v = self.eval(inner)?;
                self.returning = true;
                Ok(v)
            }
            Expr::Template(t) => qsql::exec_template(self, t),
            Expr::TableLit { keys, columns } => self.table_literal(keys, columns),
            Expr::Cond(items) => self.eval_cond(items),
        }
    }

    /// `$[c1;r1;c2;r2;...;else]` — conditions evaluated until one holds.
    fn eval_cond(&mut self, items: &[Expr]) -> QResult<Value> {
        if items.len() < 3 {
            return Err(QError::rank("$[;;]: need condition, then, else"));
        }
        let mut i = 0;
        while i + 1 < items.len() {
            let c = self.eval(&items[i])?;
            if self.returning {
                return Ok(c);
            }
            let truthy = match &c {
                Value::Atom(Atom::Bool(b)) => *b,
                Value::Atom(a) => a.as_f64().map(|f| f != 0.0).unwrap_or(false),
                _ => return Err(QError::type_err("$: condition must be an atom")),
            };
            if truthy {
                return self.eval(&items[i + 1]);
            }
            i += 2;
        }
        if i < items.len() {
            self.eval(&items[i])
        } else {
            Ok(Value::Nil)
        }
    }

    /// Build a table (or keyed table) from a literal.
    fn table_literal(
        &mut self,
        keys: &[(String, Expr)],
        columns: &[(String, Expr)],
    ) -> QResult<Value> {
        let eval_cols = |me: &mut Self, specs: &[(String, Expr)]| -> QResult<Vec<(String, Value)>> {
            let mut out = Vec::with_capacity(specs.len());
            for (name, e) in specs.iter().rev() {
                out.push((name.clone(), me.eval(e)?));
            }
            out.reverse();
            Ok(out)
        };
        let key_cols = eval_cols(self, keys)?;
        let val_cols = eval_cols(self, columns)?;

        // Atoms broadcast to the longest column.
        let max_len = key_cols
            .iter()
            .chain(&val_cols)
            .filter_map(|(_, v)| v.len())
            .max()
            .unwrap_or(1);
        let normalize = |v: Value| -> Value {
            match v.len() {
                Some(_) => v,
                None => {
                    let items = vec![v; max_len];
                    Value::from_elements(items)
                }
            }
        };
        let build = |cols: Vec<(String, Value)>| -> QResult<Table> {
            let mut t = Table::default();
            for (n, v) in cols {
                t.push_column(n, normalize(v))?;
            }
            Ok(t)
        };
        let value = build(val_cols)?;
        if keys.is_empty() {
            Ok(Value::Table(Box::new(value)))
        } else {
            let key = build(key_cols)?;
            Ok(Value::KeyedTable(Box::new(qlang::KeyedTable { key, value })))
        }
    }

    /// Resolve a name: environment first, then recognise builtins used as
    /// values (rare, e.g. `f: count`).
    fn resolve(&mut self, name: &str) -> QResult<Value> {
        if let Some(v) = self.env.lookup(name) {
            return Ok(v.clone());
        }
        Err(QError::undefined(name))
    }

    /// Dyadic dispatch: operator glyphs, named verbs, and table verbs.
    fn dyadic(&mut self, op: &str, l: Value, r: Value) -> QResult<Value> {
        match op {
            "xasc" | "xdesc" => {
                let cols = symbol_list(&l, op)?;
                let t = expect_table(&r, op)?;
                let sorted = if op == "xasc" {
                    joins::xasc(&cols, &t)?
                } else {
                    joins::xdesc(&cols, &t)?
                };
                Ok(Value::Table(Box::new(sorted)))
            }
            "xkey" => {
                let cols = symbol_list(&l, op)?;
                let t = expect_table(&r, op)?;
                joins::xkey(&cols, &t)
            }
            "xcol" => {
                let cols = symbol_list(&l, op)?;
                let t = expect_table(&r, op)?;
                Ok(Value::Table(Box::new(joins::xcol(&cols, &t)?)))
            }
            "xcols" => {
                // Reorder: named columns first.
                let cols = symbol_list(&l, op)?;
                let t = expect_table(&r, op)?;
                let mut names = cols.clone();
                for n in &t.names {
                    if !names.contains(n) {
                        names.push(n.clone());
                    }
                }
                let columns = names
                    .iter()
                    .map(|n| {
                        t.column(n)
                            .cloned()
                            .ok_or_else(|| QError::type_err(format!("xcols: no column {n}")))
                    })
                    .collect::<QResult<Vec<_>>>()?;
                Ok(Value::Table(Box::new(Table { names, columns })))
            }
            "lj" | "ij" => {
                let t = expect_table(&l, op)?;
                let kt = match r {
                    Value::KeyedTable(k) => *k,
                    _ => return Err(QError::type_err(format!("{op}: right operand must be keyed"))),
                };
                let out =
                    if op == "lj" { joins::lj(&t, &kt)? } else { joins::ij(&t, &kt)? };
                Ok(Value::Table(Box::new(out)))
            }
            "uj" => {
                let a = expect_table(&l, op)?;
                let b = expect_table(&r, op)?;
                joins::union_tables(&a, &b)
            }
            "cross" => cross(&l, &r),
            "except" => {
                let n = l.len().ok_or_else(|| QError::type_err("except: need list"))?;
                let mut out = Vec::new();
                for i in 0..n {
                    let v = l.index(i).unwrap();
                    let inside = ops::dyad("in", &v, &r)?;
                    if inside.q_eq(&Value::bool(false)) {
                        out.push(v);
                    }
                }
                Ok(Value::from_elements(out))
            }
            "inter" => {
                let n = l.len().ok_or_else(|| QError::type_err("inter: need list"))?;
                let mut out = Vec::new();
                for i in 0..n {
                    let v = l.index(i).unwrap();
                    let inside = ops::dyad("in", &v, &r)?;
                    if inside.q_eq(&Value::bool(true)) {
                        out.push(v);
                    }
                }
                Ok(Value::from_elements(out))
            }
            "union" => {
                let joined = ops::concat(&l, &r)?;
                builtins::distinct(&joined)
            }
            "each" => self.map_each(&l, &r),
            "over" => self.fold_over(&l, &r, false),
            "scan" => self.fold_over(&l, &r, true),
            "set" => {
                let name = match &l {
                    Value::Atom(Atom::Symbol(s)) => s.clone(),
                    _ => return Err(QError::type_err("set: left operand must be a symbol")),
                };
                self.env.assign_global(name, r.clone());
                Ok(l)
            }
            "insert" => {
                let name = match &l {
                    Value::Atom(Atom::Symbol(s)) => s.clone(),
                    _ => return Err(QError::type_err("insert: left operand must be a symbol")),
                };
                let existing = self.resolve(&name)?;
                let t = expect_table(&existing, "insert")?;
                let rows = expect_table(&r, "insert")?;
                let merged = joins::union_tables(&t, &rows)?;
                self.env.assign_global(name, merged);
                Ok(Value::Longs(vec![]))
            }
            "upsert" => {
                let t = expect_table(&l, op)?;
                let rows = expect_table(&r, op)?;
                joins::union_tables(&t, &rows)
            }
            "xbar" => {
                // `n xbar x` — round x down to the nearest multiple of n.
                let m = ops::dyad("mod", &r, &l)?;
                ops::dyad("-", &r, &m)
            }
            "bin" => bin_search(&l, &r, true),
            "binr" => bin_search(&l, &r, false),
            "$" => cast(&l, &r),
            "." => {
                // l . args — apply with argument list.
                let args: Vec<Value> = match &r {
                    Value::Mixed(items) => items.clone(),
                    other => vec![other.clone()],
                };
                self.apply_value(&l, args)
            }
            "@" if matches!(l, Value::Lambda(_)) => self.apply_value(&l, vec![r]),
            _ => ops::dyad(op, &l, &r),
        }
    }

    /// `f each list` — map a function over list elements.
    fn map_each(&mut self, f: &Value, list: &Value) -> QResult<Value> {
        let n = list
            .len()
            .ok_or_else(|| QError::type_err("each: right operand must be a list"))?;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(self.apply_value(f, vec![list.index(i).unwrap()])?);
        }
        Ok(Value::from_elements(out))
    }

    /// `f over list` / `f scan list` — fold with first element as seed.
    fn fold_over(&mut self, f: &Value, list: &Value, emit_intermediate: bool) -> QResult<Value> {
        let n = list
            .len()
            .ok_or_else(|| QError::type_err("over: right operand must be a list"))?;
        if n == 0 {
            return Ok(Value::Nil);
        }
        let mut acc = list.index(0).unwrap();
        let mut trace = vec![acc.clone()];
        for i in 1..n {
            acc = self.apply_value(f, vec![acc, list.index(i).unwrap()])?;
            if emit_intermediate {
                trace.push(acc.clone());
            }
        }
        Ok(if emit_intermediate { Value::from_elements(trace) } else { acc })
    }

    /// Apply a callee *expression* to evaluated arguments. Handles named
    /// builtins, adverb-derived verbs and ordinary values.
    pub fn apply_expr(&mut self, func: &Expr, args: Vec<Value>) -> QResult<Value> {
        match func {
            Expr::Var(name) => {
                // User definitions shadow builtins.
                if let Some(v) = self.env.lookup(name) {
                    let v = v.clone();
                    return self.apply_value(&v, args);
                }
                self.call_builtin(name, args)
            }
            Expr::AdverbApply { verb, adverb } => self.apply_adverb(verb, *adverb, args),
            other => {
                let f = self.eval(other)?;
                self.apply_value(&f, args)
            }
        }
    }

    /// Apply an adverb-derived verb to arguments.
    fn apply_adverb(&mut self, verb: &Expr, adverb: Adverb, args: Vec<Value>) -> QResult<Value> {
        let call2 = |me: &mut Self, a: Value, b: Value| -> QResult<Value> {
            match verb {
                Expr::Var(op) if is_operator_glyph(op) => me.dyadic(op, a, b),
                _ => {
                    let f = me.eval(verb)?;
                    me.apply_value(&f, vec![a, b])
                }
            }
        };
        match (adverb, args.len()) {
            (Adverb::Over | Adverb::Scan, 1) => {
                let list = &args[0];
                let n = list.len().ok_or_else(|| QError::type_err("fold: need a list"))?;
                if n == 0 {
                    return Ok(Value::Nil);
                }
                let mut acc = list.index(0).unwrap();
                let mut trace = vec![acc.clone()];
                for i in 1..n {
                    acc = call2(self, acc, list.index(i).unwrap())?;
                    if adverb == Adverb::Scan {
                        trace.push(acc.clone());
                    }
                }
                Ok(if adverb == Adverb::Scan { Value::from_elements(trace) } else { acc })
            }
            (Adverb::Over | Adverb::Scan, 2) => {
                // Seeded fold: f/[seed; list].
                let mut acc = args[0].clone();
                let list = &args[1];
                let n = list.len().ok_or_else(|| QError::type_err("fold: need a list"))?;
                let mut trace = vec![];
                for i in 0..n {
                    acc = call2(self, acc, list.index(i).unwrap())?;
                    if adverb == Adverb::Scan {
                        trace.push(acc.clone());
                    }
                }
                Ok(if adverb == Adverb::Scan { Value::from_elements(trace) } else { acc })
            }
            (Adverb::Each, 1) => {
                let list = &args[0];
                let n = list.len().ok_or_else(|| QError::type_err("each: need a list"))?;
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    let item = list.index(i).unwrap();
                    let r = match verb {
                        Expr::Var(op) if is_operator_glyph(op) => ops::monad(op, &item)?,
                        Expr::Var(name) if self.env.lookup(name).is_none() => {
                            self.call_builtin(name, vec![item])?
                        }
                        _ => {
                            let f = self.eval(verb)?;
                            self.apply_value(&f, vec![item])?
                        }
                    };
                    out.push(r);
                }
                Ok(Value::from_elements(out))
            }
            (Adverb::Each, 2) => {
                // x f' y — pairwise.
                let (a, b) = (&args[0], &args[1]);
                let n = a.len().or(b.len()).ok_or_else(|| QError::type_err("each: need lists"))?;
                let get = |v: &Value, i: usize| -> Value {
                    if v.is_atom() {
                        v.clone()
                    } else {
                        v.index(i).unwrap_or(Value::Nil)
                    }
                };
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    out.push(call2(self, get(a, i), get(b, i))?);
                }
                Ok(Value::from_elements(out))
            }
            (Adverb::EachLeft, 2) => {
                let (a, b) = (&args[0], &args[1]);
                let n = a.len().ok_or_else(|| QError::type_err("\\: needs a left list"))?;
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    out.push(call2(self, a.index(i).unwrap(), b.clone())?);
                }
                Ok(Value::from_elements(out))
            }
            (Adverb::EachRight, 2) => {
                let (a, b) = (&args[0], &args[1]);
                let n = b.len().ok_or_else(|| QError::type_err("/: needs a right list"))?;
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    out.push(call2(self, a.clone(), b.index(i).unwrap())?);
                }
                Ok(Value::from_elements(out))
            }
            (Adverb::EachPrior, 1) => {
                let list = &args[0];
                let n = list.len().ok_or_else(|| QError::type_err("': needs a list"))?;
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    if i == 0 {
                        out.push(list.index(0).unwrap());
                    } else {
                        out.push(call2(self, list.index(i).unwrap(), list.index(i - 1).unwrap())?);
                    }
                }
                Ok(Value::from_elements(out))
            }
            (adv, n) => Err(QError::rank(format!("adverb {adv} applied to {n} arguments"))),
        }
    }

    /// Apply a first-class value (lambda, table, list, dict) to arguments.
    pub fn apply_value(&mut self, f: &Value, args: Vec<Value>) -> QResult<Value> {
        match f {
            Value::Lambda(def) => self.invoke_lambda(def, args),
            // Indexing tables/lists/dicts by application.
            Value::Table(_) | Value::Dict(_) | Value::KeyedTable(_) => {
                if args.len() != 1 {
                    return Err(QError::rank("indexing takes one argument"));
                }
                match f {
                    Value::KeyedTable(k) => keyed_lookup(k, &args[0]),
                    _ => ops::dyad("@", f, &args[0]),
                }
            }
            _ if f.len().is_some() => {
                if args.len() != 1 {
                    return Err(QError::rank("indexing takes one argument"));
                }
                ops::dyad("@", f, &args[0])
            }
            other => Err(QError::type_err(format!("cannot apply {}", other.type_name()))),
        }
    }

    /// Invoke a lambda: fresh local frame, parameters bound (implicit
    /// `x`/`y`/`z` when none declared), body evaluated statement by
    /// statement, early `:return` honoured.
    fn invoke_lambda(&mut self, def: &LambdaDef, args: Vec<Value>) -> QResult<Value> {
        let params: Vec<String> = if def.params.is_empty() {
            ["x", "y", "z"].iter().take(args.len()).map(|s| s.to_string()).collect()
        } else {
            def.params.clone()
        };
        if args.len() > params.len() {
            return Err(QError::rank(format!(
                "function takes {} arguments, got {}",
                params.len(),
                args.len()
            )));
        }
        self.env.push_frame();
        for (p, a) in params.iter().zip(args) {
            self.env.assign(p.clone(), a);
        }
        let mut result = Value::Nil;
        for stmt in &def.body {
            match self.eval(stmt) {
                Ok(v) => {
                    result = v;
                    if self.returning {
                        self.returning = false;
                        break;
                    }
                }
                Err(e) => {
                    self.env.pop_frame();
                    return Err(e);
                }
            }
        }
        self.env.pop_frame();
        Ok(result)
    }

    /// Dispatch a named builtin.
    pub fn call_builtin(&mut self, name: &str, mut args: Vec<Value>) -> QResult<Value> {
        // Monadic builtins.
        if args.len() == 1 {
            let a = args.pop().unwrap();
            return match name {
                "til" => builtins::til(&a),
                "count" => builtins::count(&a),
                "first" => builtins::first(&a),
                "last" => builtins::last(&a),
                "sum" => builtins::sum(&a),
                "avg" => builtins::avg(&a),
                "min" => builtins::min(&a),
                "max" => builtins::max(&a),
                "med" => builtins::med(&a),
                "dev" => builtins::dev(&a),
                "var" => builtins::var(&a),
                "sums" => builtins::sums(&a),
                "deltas" => builtins::deltas(&a),
                "prev" => builtins::prev(&a),
                "next" => builtins::next(&a),
                "where" => builtins::where_op(&a),
                "distinct" => builtins::distinct(&a),
                "group" => builtins::group(&a),
                "reverse" => builtins::reverse(&a),
                "asc" => builtins::asc(&a),
                "desc" => builtins::desc(&a),
                "iasc" => builtins::iasc(&a),
                "idesc" => builtins::idesc(&a),
                "raze" => builtins::raze(&a),
                "enlist" => Ok(a.enlist()),
                "flip" => builtins::flip(&a),
                "key" => builtins::key(&a),
                "value" => builtins::value(&a),
                "cols" => builtins::cols(&a),
                "meta" => builtins::meta(&a),
                "ungroup" => builtins::unkey(&a),
                "not" => builtins::not(&a),
                "null" => builtins::null(&a),
                "abs" | "neg" | "sqrt" | "exp" | "log" | "floor" | "ceiling" | "signum" => {
                    builtins::numeric_monad(name, &a)
                }
                "string" => builtins::string(&a),
                "upper" | "lower" => builtins::case_fn(name, &a),
                "type" => builtins::type_of(&a),
                "get" => match &a {
                    Value::Atom(Atom::Symbol(s)) => self.resolve(s),
                    _ => Err(QError::type_err("get: need a symbol")),
                },
                _ => {
                    if let Some(v) = self.env.lookup(name) {
                        let v = v.clone();
                        self.apply_value(&v, vec![a])
                    } else {
                        Err(QError::undefined(name))
                    }
                }
            };
        }
        // Polyadic builtins.
        match (name, args.len()) {
            ("enlist", _) => Ok(Value::Mixed(args)),
            ("aj", 3) => {
                let cols = symbol_list(&args[0], "aj")?;
                let left = expect_table(&args[1], "aj")?;
                let right = expect_table(&args[2], "aj")?;
                Ok(Value::Table(Box::new(joins::aj(&cols, &left, &right)?)))
            }
            ("ej", 3) => {
                // Equi-join: ej[cols; t1; t2] — inner join on named columns.
                let cols = symbol_list(&args[0], "ej")?;
                let left = expect_table(&args[1], "ej")?;
                let right = expect_table(&args[2], "ej")?;
                let keyed = joins::xkey(&cols, &right)?;
                match keyed {
                    Value::KeyedTable(k) => Ok(Value::Table(Box::new(joins::ij(&left, &k)?))),
                    _ => unreachable!(),
                }
            }
            (_, n) => {
                if let Some(v) = self.env.lookup(name) {
                    let v = v.clone();
                    self.apply_value(&v, args)
                } else {
                    Err(QError::rank(format!("{name} applied to {n} arguments")))
                }
            }
        }
    }
}

/// Is this string an operator glyph (vs a named function)?
fn is_operator_glyph(s: &str) -> bool {
    matches!(
        s,
        "+" | "-" | "*" | "%" | "&" | "|" | "^" | "=" | "<" | ">" | "<=" | ">=" | "<>" | "~"
            | "!" | "?" | "@" | "." | "#" | "_" | "$" | ","
    )
}

/// Lookup into a keyed table by key value (dict-like application).
fn keyed_lookup(k: &qlang::KeyedTable, key: &Value) -> QResult<Value> {
    use crate::joins::KeyAtom;
    let target: Vec<KeyAtom> = match key {
        Value::Dict(d) => {
            let n = d.len();
            (0..n).map(|i| KeyAtom::from_value(&d.values.index(i).unwrap())).collect()
        }
        Value::Atom(_) => vec![KeyAtom::from_value(key)],
        other => {
            let n = other.len().unwrap_or(0);
            (0..n).map(|i| KeyAtom::from_value(&other.index(i).unwrap())).collect()
        }
    };
    for row in 0..k.key.rows() {
        let rk: Vec<KeyAtom> = k
            .key
            .columns
            .iter()
            .map(|c| KeyAtom::from_value(&c.index(row).unwrap()))
            .collect();
        if rk == target {
            let d = qlang::Dict::new(
                Value::Symbols(k.value.names.clone()),
                Value::Mixed(k.value.row(row)),
            )?;
            return Ok(Value::Dict(Box::new(d)));
        }
    }
    // Miss: dict of nulls.
    let d = qlang::Dict::new(
        Value::Symbols(k.value.names.clone()),
        Value::Mixed(k.value.columns.iter().map(|c| c.null_element()).collect()),
    )?;
    Ok(Value::Dict(Box::new(d)))
}

/// `x cross y` — cartesian product of two lists or tables.
fn cross(a: &Value, b: &Value) -> QResult<Value> {
    let na = a.len().ok_or_else(|| QError::type_err("cross: need lists"))?;
    let nb = b.len().ok_or_else(|| QError::type_err("cross: need lists"))?;
    let mut out = Vec::with_capacity(na * nb);
    for i in 0..na {
        for j in 0..nb {
            out.push(Value::Mixed(vec![a.index(i).unwrap(), b.index(j).unwrap()]));
        }
    }
    Ok(Value::Mixed(out))
}

/// `list bin x` — index of the last element ≤ x (binary search); `binr`
/// finds the first element ≥ x.
fn bin_search(list: &Value, x: &Value, last_le: bool) -> QResult<Value> {
    let n = list.len().ok_or_else(|| QError::type_err("bin: need a sorted list"))?;
    let one = |needle: &Value| -> i64 {
        let needle_atom = match needle {
            Value::Atom(a) => a.clone(),
            _ => return -1,
        };
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let v = match list.index(mid) {
                Some(Value::Atom(a)) => a,
                _ => return -1,
            };
            let le = v.q_cmp(&needle_atom) != std::cmp::Ordering::Greater;
            if le {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if last_le {
            lo as i64 - 1
        } else {
            lo as i64
        }
    };
    match x {
        Value::Atom(_) => Ok(Value::long(one(x))),
        _ => {
            let m = x.len().unwrap_or(0);
            Ok(Value::Longs((0..m).map(|i| one(&x.index(i).unwrap())).collect()))
        }
    }
}

/// `` `type$x`` — cast.
fn cast(target: &Value, v: &Value) -> QResult<Value> {
    let t = match target {
        Value::Atom(Atom::Symbol(s)) => s.clone(),
        _ => return Err(QError::type_err("$: cast target must be a symbol")),
    };
    let cast_atom = |a: &Atom| -> QResult<Atom> {
        if a.is_null() {
            // Null casts to the target's null.
            return Ok(match t.as_str() {
                "long" | "int" | "short" => Atom::Long(i64::MIN),
                "float" | "real" => Atom::Float(f64::NAN),
                "symbol" => Atom::Symbol(String::new()),
                "date" => Atom::Date(i32::MIN),
                "time" => Atom::Time(i32::MIN),
                "timestamp" => Atom::Timestamp(i64::MIN),
                _ => a.clone(),
            });
        }
        Ok(match t.as_str() {
            "long" | "int" | "short" => Atom::Long(
                a.as_i64()
                    .or_else(|| a.as_f64().map(|f| f as i64))
                    .ok_or_else(|| QError::type_err("$: cannot cast to long"))?,
            ),
            "float" | "real" => Atom::Float(
                a.as_f64().ok_or_else(|| QError::type_err("$: cannot cast to float"))?,
            ),
            "symbol" => Atom::Symbol(match a {
                Atom::Symbol(s) => s.clone(),
                other => other.to_string(),
            }),
            "boolean" => Atom::Bool(a.as_f64().map(|f| f != 0.0).unwrap_or(false)),
            "date" => match a {
                Atom::Timestamp(ns) => Atom::Date(qlang::temporal::timestamp_to_date(*ns)),
                Atom::Date(d) => Atom::Date(*d),
                other => Atom::Date(
                    other.as_i64().ok_or_else(|| QError::type_err("$: bad date cast"))? as i32,
                ),
            },
            "time" => match a {
                Atom::Timestamp(ns) => Atom::Time(qlang::temporal::timestamp_to_time(*ns)),
                Atom::Time(t) => Atom::Time(*t),
                other => Atom::Time(
                    other.as_i64().ok_or_else(|| QError::type_err("$: bad time cast"))? as i32,
                ),
            },
            "timestamp" => match a {
                Atom::Date(d) => Atom::Timestamp(qlang::temporal::date_to_timestamp(*d)),
                Atom::Timestamp(ts) => Atom::Timestamp(*ts),
                other => Atom::Timestamp(
                    other.as_i64().ok_or_else(|| QError::type_err("$: bad timestamp cast"))?,
                ),
            },
            "string" => {
                return Err(QError::type_err("$: cast to string not supported on atoms"))
            }
            other => return Err(QError::domain(format!("$: unknown cast target {other}"))),
        })
    };
    match v {
        Value::Atom(a) => Ok(Value::Atom(cast_atom(a)?)),
        Value::Chars(s) if t == "symbol" => Ok(Value::symbol(s.clone())),
        _ => {
            let n = v.len().ok_or_else(|| QError::type_err("$: bad cast operand"))?;
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                match v.index(i) {
                    Some(Value::Atom(a)) => out.push(Value::Atom(cast_atom(&a)?)),
                    Some(other) => out.push(cast(target, &other)?),
                    None => {}
                }
            }
            Ok(Value::from_elements(out))
        }
    }
}

/// Assign into a list/table variable at the given indices.
fn index_assign(current: &Value, indices: &[Value], v: &Value) -> QResult<Value> {
    if indices.len() != 1 {
        return Err(QError::rank("indexed assignment takes one index"));
    }
    let n = current
        .len()
        .ok_or_else(|| QError::type_err("indexed assignment needs a list target"))?;
    let positions: Vec<usize> = match &indices[0] {
        Value::Atom(a) => {
            vec![a.as_i64().ok_or_else(|| QError::type_err("bad index"))? as usize]
        }
        other => {
            let m = other.len().unwrap_or(0);
            (0..m)
                .filter_map(|i| match other.index(i) {
                    Some(Value::Atom(a)) => a.as_i64().map(|x| x as usize),
                    _ => None,
                })
                .collect()
        }
    };
    let mut elems: Vec<Value> = (0..n).map(|i| current.index(i).unwrap()).collect();
    for (k, &p) in positions.iter().enumerate() {
        if p >= n {
            return Err(QError::length("index out of range"));
        }
        let newv = if v.is_atom() || positions.len() == 1 {
            v.clone()
        } else {
            v.index(k).unwrap_or(Value::Nil)
        };
        elems[p] = newv;
    }
    Ok(Value::from_elements(elems))
}

/// Coerce a value to a list of symbols.
pub fn symbol_list(v: &Value, ctx: &str) -> QResult<Vec<String>> {
    match v {
        Value::Atom(Atom::Symbol(s)) => Ok(vec![s.clone()]),
        Value::Symbols(ss) => Ok(ss.clone()),
        _ => Err(QError::type_err(format!("{ctx}: expected symbol(s), got {}", v.type_name()))),
    }
}

/// Coerce a value to a table (keyed tables are flattened).
pub fn expect_table(v: &Value, ctx: &str) -> QResult<Table> {
    match v {
        Value::Table(t) => Ok(t.as_ref().clone()),
        Value::KeyedTable(k) => Ok(Table {
            names: k.key.names.iter().chain(&k.value.names).cloned().collect(),
            columns: k.key.columns.iter().chain(&k.value.columns).cloned().collect(),
        }),
        _ => Err(QError::type_err(format!("{ctx}: expected table, got {}", v.type_name()))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Value {
        Interp::new().run(src).unwrap_or_else(|e| panic!("run {src:?} failed: {e}"))
    }

    #[test]
    fn arithmetic_right_to_left() {
        assert!(run("2*3+4").q_eq(&Value::long(14)));
        assert!(run("10-3-2").q_eq(&Value::long(9)), "10-(3-2)");
    }

    #[test]
    fn variables_and_reassignment() {
        let mut i = Interp::new();
        i.run("x: 1").unwrap();
        i.run("x: 1 2 3").unwrap();
        // Paper §3.2.1: x can be rebound to any type.
        assert!(i.run("x").unwrap().q_eq(&Value::Longs(vec![1, 2, 3])));
        i.run("x: `sym").unwrap();
        assert!(i.run("x").unwrap().q_eq(&Value::symbol("sym")));
    }

    #[test]
    fn undefined_variable_errors() {
        let e = Interp::new().run("nosuch + 1").unwrap_err();
        assert_eq!(e.kind, qlang::error::QErrorKind::Value);
    }

    #[test]
    fn builtins_apply_by_juxtaposition() {
        assert!(run("til 5").q_eq(&Value::Longs(vec![0, 1, 2, 3, 4])));
        assert!(run("count 1 2 3").q_eq(&Value::long(3)));
        assert!(run("sum til 5").q_eq(&Value::long(10)));
        assert!(run("max 3 1 4").q_eq(&Value::Atom(Atom::Long(4))));
        assert!(run("avg 1 2 3").q_eq(&Value::float(2.0)));
    }

    #[test]
    fn lambda_invocation_and_locals() {
        let mut i = Interp::new();
        i.run("f: {[a;b] c: a+b; c*2}").unwrap();
        assert!(i.run("f[3;4]").unwrap().q_eq(&Value::long(14)));
        // Local c must not leak.
        assert!(i.run("c").is_err());
    }

    #[test]
    fn implicit_parameters() {
        assert!(run("{x+y}[3;4]").q_eq(&Value::long(7)));
        assert!(run("{2*x} 5").q_eq(&Value::long(10)));
    }

    #[test]
    fn early_return() {
        assert!(run("{:x+1; 99} 5").q_eq(&Value::long(6)));
    }

    #[test]
    fn locals_shadow_globals_paper_semantics() {
        let mut i = Interp::new();
        i.run("x: 100").unwrap();
        assert!(i.run("{x: 5; x} 0").unwrap().q_eq(&Value::long(5)));
        assert!(i.run("x").unwrap().q_eq(&Value::long(100)));
    }

    #[test]
    fn global_assignment_escapes_function() {
        let mut i = Interp::new();
        i.run("{g:: 42; 0} 0").unwrap();
        assert!(i.run("g").unwrap().q_eq(&Value::long(42)));
    }

    #[test]
    fn conditional_evaluation() {
        assert!(run("$[1>0; `yes; `no]").q_eq(&Value::symbol("yes")));
        assert!(run("$[1<0; `yes; `no]").q_eq(&Value::symbol("no")));
        // Multi-branch.
        assert!(run("$[0; `a; 1; `b; `c]").q_eq(&Value::symbol("b")));
    }

    #[test]
    fn adverb_fold_and_scan() {
        assert!(run("+/ 1 2 3 4").q_eq(&Value::long(10)));
        assert!(run("+\\ 1 2 3").q_eq(&Value::Longs(vec![1, 3, 6])));
        assert!(run("*/ 1 2 3 4").q_eq(&Value::long(24)));
    }

    #[test]
    fn adverb_each() {
        assert!(run("{x*x}' 1 2 3").q_eq(&Value::Longs(vec![1, 4, 9])));
    }

    #[test]
    fn each_left_right() {
        assert!(run("1 2 +\\: 10").q_eq(&Value::Longs(vec![11, 12])));
        assert!(run("10 +/: 1 2").q_eq(&Value::Longs(vec![11, 12])));
    }

    #[test]
    fn table_literal_and_indexing() {
        let v = run("t: ([] s:`a`b; p:1 2); t");
        match v {
            Value::Table(t) => {
                assert_eq!(t.rows(), 2);
                assert_eq!(t.names, vec!["s".to_string(), "p".into()]);
            }
            other => panic!("expected table, got {other:?}"),
        }
    }

    #[test]
    fn table_literal_broadcasts_atoms() {
        let v = run("([] s:`a`b`c; p:0)");
        match v {
            Value::Table(t) => {
                assert!(t.column("p").unwrap().q_eq(&Value::Longs(vec![0, 0, 0])));
            }
            other => panic!("expected table, got {other:?}"),
        }
    }

    #[test]
    fn keyed_table_literal_and_lookup() {
        let v = run("kt: ([s:`a`b] p:10 20); kt[`b]");
        match v {
            Value::Dict(d) => assert!(d.get(&Value::symbol("p")).q_eq(&Value::long(20))),
            other => panic!("expected dict, got {other:?}"),
        }
    }

    #[test]
    fn dict_construction_and_lookup() {
        assert!(run("d: `a`b!1 2; d[`a]").q_eq(&Value::long(1)));
    }

    #[test]
    fn casting() {
        assert!(run("`float$3").q_eq(&Value::float(3.0)));
        assert!(run("`long$3.7").q_eq(&Value::long(3)));
        assert!(run("`symbol$\"abc\"").q_eq(&Value::symbol("abc")));
    }

    #[test]
    fn set_and_get() {
        let mut i = Interp::new();
        i.run("`tbl set ([] a:1 2)").unwrap();
        let v = i.run("get `tbl").unwrap();
        assert!(matches!(v, Value::Table(_)));
    }

    #[test]
    fn bin_finds_last_le() {
        assert!(run("1 3 5 7 bin 4").q_eq(&Value::long(1)));
        assert!(run("1 3 5 7 bin 0").q_eq(&Value::long(-1)));
        assert!(run("1 3 5 7 bin 7").q_eq(&Value::long(3)));
    }

    #[test]
    fn except_inter_union() {
        assert!(run("1 2 3 except 2").q_eq(&Value::Longs(vec![1, 3])));
        assert!(run("1 2 3 inter 2 3 4").q_eq(&Value::Longs(vec![2, 3])));
        assert!(run("1 2 union 2 3").q_eq(&Value::Longs(vec![1, 2, 3])));
    }

    #[test]
    fn index_assignment_updates_in_place() {
        let mut i = Interp::new();
        i.run("v: 1 2 3").unwrap();
        i.run("v[1]: 99").unwrap();
        assert!(i.run("v").unwrap().q_eq(&Value::Longs(vec![1, 99, 3])));
    }

    #[test]
    fn right_to_left_argument_evaluation() {
        // kdb+ evaluates the right argument first: the assignment in the
        // right operand is visible to the left operand.
        let mut i = Interp::new();
        let v = i.run("(x*2) + x: 10").unwrap();
        assert!(v.q_eq(&Value::long(30)));
    }

    #[test]
    fn aj_via_builtin_call() {
        let mut i = Interp::new();
        i.run("trades: ([] Symbol:`G`G; Time:10:00:00 10:05:00; Price:1.0 2.0)").unwrap();
        i.run("quotes: ([] Symbol:`G`G; Time:09:59:00 10:04:00; Bid:0.9 1.9)").unwrap();
        let v = i.run("aj[`Symbol`Time; trades; quotes]").unwrap();
        match v {
            Value::Table(t) => {
                assert!(t.column("Bid").unwrap().q_eq(&Value::Floats(vec![0.9, 1.9])));
            }
            other => panic!("expected table, got {other:?}"),
        }
    }

    #[test]
    fn string_function() {
        assert!(run("string `GOOG").q_eq(&Value::Chars("GOOG".into())));
    }

    #[test]
    fn enlist_builds_singleton() {
        assert!(run("enlist 5").q_eq(&Value::Longs(vec![5])));
    }

    #[test]
    fn each_prior_pairwise() {
        // (-':) style: subtract each prior element.
        assert!(run("-': 1 3 6").q_eq(&Value::Longs(vec![1, 2, 3])));
    }

    #[test]
    fn seeded_fold() {
        assert!(run("+/[100; 1 2 3]").q_eq(&Value::long(106)));
        assert!(run("+\\[0; 1 2 3]").q_eq(&Value::Longs(vec![1, 3, 6])));
    }

    #[test]
    fn take_from_table_end() {
        let mut i = Interp::new();
        i.run("t: ([] x: 1 2 3 4 5)").unwrap();
        let v = i.run("-2#t").unwrap();
        match v {
            Value::Table(t) => {
                assert!(t.column("x").unwrap().q_eq(&Value::Longs(vec![4, 5])));
            }
            other => panic!("expected table, got {other:?}"),
        }
    }

    #[test]
    fn prev_next_builtins() {
        let v = run("prev 1 2 3");
        match v {
            Value::Longs(x) => assert_eq!(&x[1..], &[1, 2]),
            other => panic!("expected longs, got {other:?}"),
        }
        let v = run("next 1 2 3");
        match v {
            Value::Longs(x) => assert_eq!(&x[..2], &[2, 3]),
            other => panic!("expected longs, got {other:?}"),
        }
    }

    #[test]
    fn xbar_buckets() {
        assert!(run("5 xbar 0 3 5 7 12").q_eq(&Value::Longs(vec![0, 0, 5, 5, 10])));
    }

    #[test]
    fn cross_product() {
        let v = run("1 2 cross `a`b");
        assert_eq!(v.len(), Some(4));
    }
}
