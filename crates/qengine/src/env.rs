//! Variable scopes.
//!
//! Mirrors the three-level hierarchy of paper Figure 3: **local** scopes
//! (function frames), a **session** scope, and the **server** scope (kdb+
//! server memory, visible to every connected client). Lookup walks
//! local → session → server; local upserts never get promoted to higher
//! scopes, and session variables are promoted to server variables when the
//! session is destroyed.

use qlang::Value;
use std::collections::HashMap;

/// A three-level variable store: local frames over a session scope over
/// the server scope.
#[derive(Debug, Default)]
pub struct Env {
    server: HashMap<String, Value>,
    session: HashMap<String, Value>,
    locals: Vec<HashMap<String, Value>>,
}

impl Env {
    /// Create an empty environment.
    pub fn new() -> Self {
        Env::default()
    }

    /// Look a name up through the scope hierarchy:
    /// innermost local frame first, then session, then server.
    pub fn lookup(&self, name: &str) -> Option<&Value> {
        for frame in self.locals.iter().rev() {
            if let Some(v) = frame.get(name) {
                return Some(v);
            }
        }
        self.session.get(name).or_else(|| self.server.get(name))
    }

    /// Upsert under Q rules: inside a function the write goes to the
    /// current local frame (and never escapes it); outside, to the
    /// session scope.
    pub fn assign(&mut self, name: impl Into<String>, value: Value) {
        if let Some(frame) = self.locals.last_mut() {
            frame.insert(name.into(), value);
        } else {
            self.session.insert(name.into(), value);
        }
    }

    /// Global assignment (`::`): writes the server scope directly,
    /// regardless of the current frame.
    pub fn assign_global(&mut self, name: impl Into<String>, value: Value) {
        self.server.insert(name.into(), value);
    }

    /// Enter a function: push a fresh local frame.
    pub fn push_frame(&mut self) {
        self.locals.push(HashMap::new());
    }

    /// Leave a function: pop the innermost local frame. Local variables
    /// are discarded — they are never promoted.
    pub fn pop_frame(&mut self) {
        self.locals.pop();
    }

    /// Current function-nesting depth.
    pub fn depth(&self) -> usize {
        self.locals.len()
    }

    /// Destroy the session: session variables are promoted to server
    /// (global) variables, as the paper describes for session scope
    /// destruction (§3.2.3).
    pub fn end_session(&mut self) {
        for (k, v) in self.session.drain() {
            self.server.insert(k, v);
        }
    }

    /// Names defined at server scope (for `\v`-style introspection and
    /// the side-by-side test framework).
    pub fn server_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.server.keys().cloned().collect();
        names.sort();
        names
    }

    /// Directly define a server-scope variable (used to load tables).
    pub fn define_server(&mut self, name: impl Into<String>, value: Value) {
        self.server.insert(name.into(), value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_walks_hierarchy() {
        let mut env = Env::new();
        env.define_server("g", Value::long(1));
        assert!(env.lookup("g").is_some());

        env.assign("s", Value::long(2)); // session (no frame)
        env.push_frame();
        env.assign("l", Value::long(3)); // local
        assert!(env.lookup("l").is_some());
        assert!(env.lookup("s").is_some());
        assert!(env.lookup("g").is_some());
        env.pop_frame();
        assert!(env.lookup("l").is_none(), "locals must not escape the frame");
    }

    #[test]
    fn locals_shadow_globals() {
        let mut env = Env::new();
        env.define_server("x", Value::long(1));
        env.push_frame();
        env.assign("x", Value::long(99));
        assert!(env.lookup("x").unwrap().q_eq(&Value::long(99)));
        env.pop_frame();
        assert!(env.lookup("x").unwrap().q_eq(&Value::long(1)));
    }

    #[test]
    fn global_assign_bypasses_frames() {
        let mut env = Env::new();
        env.push_frame();
        env.assign_global("x", Value::long(5));
        env.pop_frame();
        assert!(env.lookup("x").unwrap().q_eq(&Value::long(5)));
    }

    #[test]
    fn session_end_promotes_to_server() {
        let mut env = Env::new();
        env.assign("t", Value::long(7)); // session scope
        env.end_session();
        assert!(env.lookup("t").unwrap().q_eq(&Value::long(7)));
        assert_eq!(env.server_names(), vec!["t".to_string()]);
    }

    #[test]
    fn nested_frames_shadow_in_order() {
        let mut env = Env::new();
        env.push_frame();
        env.assign("x", Value::long(1));
        env.push_frame();
        env.assign("x", Value::long(2));
        assert!(env.lookup("x").unwrap().q_eq(&Value::long(2)));
        env.pop_frame();
        assert!(env.lookup("x").unwrap().q_eq(&Value::long(1)));
        assert_eq!(env.depth(), 1);
    }
}
