//! Readiness-polled connection multiplexing (ROADMAP item 1).
//!
//! Both Hyper-Q servers — the pgdb PG v3 server and the QIPC endpoint —
//! historically ran one thread per connection with a hard cap. That
//! model prices a *session* at a thread, which is exactly wrong for a
//! gateway whose sessions are mostly idle: thousands of Q applications
//! hold connections open and speak rarely (the translation cache already
//! makes the per-statement cost small; the per-*session* cost was the
//! bottleneck). This crate replaces the model with:
//!
//! * non-blocking sockets registered with an epoll [`poll::Poller`]
//!   (one-shot, level-triggered);
//! * a single poll thread that converts readiness into dispatch tickets;
//! * a **bounded worker pool** that runs the protocol state machine for
//!   whichever sessions are actually speaking;
//! * per-session buffers, so a partial frame survives parking: bytes
//!   accumulate in the handler's own framing state across dispatches,
//!   and un-flushed response bytes wait in the session's write buffer
//!   until the socket drains.
//!
//! A session that is registered but not being processed is **parked**:
//! it costs one fd, its buffered state, and nothing else — no thread, no
//! stack. `net_sessions_active` minus `net_worker_busy` of the gauges
//! below is the number of parked sessions at any instant.
//!
//! The protocol logic plugs in through [`SessionHandler`] — a sans-io
//! state machine fed raw bytes that answers with response bytes. The
//! same machines drive the legacy thread-per-connection mode
//! ([`IoModel::ThreadPerConn`]), which is why the two io models are
//! byte-identical on the wire and the park differential suite can hold
//! them to it.

pub mod poll;

use poll::{Event, Interest, Poller};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Io model switch
// ---------------------------------------------------------------------

/// Which connection layer a server runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoModel {
    /// One OS thread per accepted connection (the legacy model). Kept
    /// as the differential baseline: the park differential suite pins
    /// the multiplexed path to byte-identical results against it.
    ThreadPerConn,
    /// Readiness-polled sessions multiplexed over a bounded worker
    /// pool (this crate). The default since the differential suites
    /// went green.
    #[default]
    Multiplexed,
}

impl IoModel {
    /// Resolve from `HQ_IO_MODEL` (`threads` / `thread-per-conn` forces
    /// the legacy model, `multiplexed` / `mux` forces the poller);
    /// unset or unrecognized falls back to the default (multiplexed).
    pub fn from_env() -> IoModel {
        match std::env::var("HQ_IO_MODEL").as_deref() {
            Ok("threads") | Ok("thread-per-conn") | Ok("thread_per_conn") => {
                IoModel::ThreadPerConn
            }
            Ok("multiplexed") | Ok("mux") | Ok("epoll") => IoModel::Multiplexed,
            _ => IoModel::default(),
        }
    }
}

/// Resolve the worker-pool width: an explicit non-zero config wins,
/// then `HQ_NET_WORKERS`, then a small default (4 — the pool exists to
/// be an order of magnitude narrower than the session count, and the
/// workloads behind it are short protocol bursts, not long computations).
pub fn resolve_workers(configured: usize) -> usize {
    if configured > 0 {
        return configured;
    }
    std::env::var("HQ_NET_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4)
}

// ---------------------------------------------------------------------
// Accept-loop backoff
// ---------------------------------------------------------------------

/// Capped exponential backoff for transient `accept()` failures.
///
/// The previous fixed 10 ms sleep could spin a CPU core at 100 Hz for
/// as long as the fault persisted (fd exhaustion lasts until *some*
/// connection closes) and was flaky-prone under CI schedulers. The
/// backoff starts at 1 ms, doubles per consecutive failure, caps at
/// 200 ms, and resets on the first successful accept.
#[derive(Debug)]
pub struct AcceptBackoff {
    next: Duration,
}

impl AcceptBackoff {
    const FLOOR: Duration = Duration::from_millis(1);
    const CAP: Duration = Duration::from_millis(200);

    /// A fresh backoff at the floor delay.
    pub fn new() -> AcceptBackoff {
        AcceptBackoff { next: Self::FLOOR }
    }

    /// Sleep for the current delay, then double it (capped).
    pub fn sleep(&mut self) {
        std::thread::sleep(self.next);
        self.next = (self.next * 2).min(Self::CAP);
    }

    /// A successful accept ends the fault episode.
    pub fn reset(&mut self) {
        self.next = Self::FLOOR;
    }

    /// The delay the next [`AcceptBackoff::sleep`] would incur.
    pub fn current(&self) -> Duration {
        self.next
    }
}

impl Default for AcceptBackoff {
    fn default() -> Self {
        Self::new()
    }
}

/// Is this `accept()` failure one connection's problem rather than the
/// listener's? (Peer reset in the backlog, fd pressure, a signal.)
pub fn transient_accept_error(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut
    )
}

// ---------------------------------------------------------------------
// Session handler
// ---------------------------------------------------------------------

/// What the handler wants done with the connection after a dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandlerControl {
    /// Keep the session: flush pending output, park until readable.
    Continue,
    /// Flush pending output, then close the connection.
    Close,
}

/// A sans-io protocol state machine driven by the scheduler.
///
/// The scheduler owns the socket; the handler never sees it. Bytes read
/// off the wire are fed to [`SessionHandler::on_bytes`], response bytes
/// are appended to `out`, and partial frames live inside the handler's
/// own framing state between dispatches — that is what lets a session
/// park mid-frame and resume on a different worker thread.
pub trait SessionHandler: Send {
    /// Feed freshly read bytes; append any response bytes to `out`.
    fn on_bytes(&mut self, bytes: &[u8], out: &mut Vec<u8>) -> HandlerControl;

    /// The peer shut down its write side (EOF). Final bytes may still
    /// be appended to `out`; the connection closes afterwards.
    fn on_eof(&mut self, _out: &mut Vec<u8>) {}

    /// Is a partially received frame buffered? Sessions idle *between*
    /// frames owe us nothing and park indefinitely; a session stalled
    /// **mid-frame** past its read deadline is presumed dead and swept.
    fn mid_frame(&self) -> bool {
        false
    }
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

/// Process-wide connection-layer metrics (summed across every NetPool
/// instance in the process — one per listening server).
struct NetMetrics {
    sessions_active: Arc<obs::Gauge>,
    sessions_parked: Arc<obs::Gauge>,
    worker_busy: Arc<obs::Gauge>,
    dispatches: Arc<obs::Counter>,
    sessions_opened: Arc<obs::Counter>,
    sessions_closed: Arc<obs::Counter>,
    stalled_swept: Arc<obs::Counter>,
}

fn net_metrics() -> &'static NetMetrics {
    static METRICS: OnceLock<NetMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = obs::global_registry();
        NetMetrics {
            sessions_active: reg.gauge("net_sessions_active"),
            sessions_parked: reg.gauge("net_sessions_parked"),
            worker_busy: reg.gauge("net_worker_busy"),
            dispatches: reg.counter("net_dispatches_total"),
            sessions_opened: reg.counter("net_sessions_opened_total"),
            sessions_closed: reg.counter("net_sessions_closed_total"),
            stalled_swept: reg.counter("net_stalled_sessions_swept_total"),
        }
    })
}

// ---------------------------------------------------------------------
// The scheduler
// ---------------------------------------------------------------------

/// One multiplexed session: socket, protocol machine, pending output.
struct Slot {
    stream: TcpStream,
    handler: Box<dyn SessionHandler>,
    /// Response bytes accepted from the handler but not yet accepted by
    /// the socket. Non-empty ⇒ the registration includes write interest.
    wbuf: VecDeque<u8>,
    /// Set once the handler asked to close; the session lingers only to
    /// drain `wbuf`.
    closing: bool,
    /// Last moment bytes moved on this session (for the stall sweep).
    last_activity: Instant,
    /// Mid-frame read deadline; `None` disables sweeping.
    read_deadline: Option<Duration>,
}

struct Shared {
    poller: Poller,
    slots: Mutex<HashMap<u64, Slot>>,
    queue: Mutex<VecDeque<Event>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    next_token: AtomicU64,
    workers: usize,
}

/// A readiness-polled session scheduler: one poll thread, `workers`
/// dispatch threads, any number of registered sessions.
pub struct NetPool {
    shared: Arc<Shared>,
}

impl NetPool {
    /// Start a scheduler with `workers` dispatch threads (`0` defers to
    /// `HQ_NET_WORKERS`, then the built-in default).
    pub fn start(workers: usize) -> std::io::Result<Arc<NetPool>> {
        let workers = resolve_workers(workers);
        let shared = Arc::new(Shared {
            poller: Poller::new()?,
            slots: Mutex::new(HashMap::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_token: AtomicU64::new(1),
            workers,
        });
        {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("netpool-poll".into())
                .spawn(move || poll_loop(&shared))?;
        }
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("netpool-worker-{i}"))
                .spawn(move || worker_loop(&shared))?;
        }
        Ok(Arc::new(NetPool { shared }))
    }

    /// The number of dispatch threads this scheduler runs.
    pub fn workers(&self) -> usize {
        self.shared.workers
    }

    /// Number of currently registered sessions on this scheduler.
    pub fn sessions(&self) -> usize {
        self.shared.slots.lock().unwrap().len()
    }

    /// Register a connection. The stream is switched to non-blocking;
    /// the handler runs on worker threads whenever the peer speaks.
    /// `read_deadline` bounds a *mid-frame* stall (a peer idle between
    /// frames parks forever, matching the thread-per-conn posture).
    pub fn register(
        &self,
        stream: TcpStream,
        handler: Box<dyn SessionHandler>,
        read_deadline: Option<Duration>,
    ) -> std::io::Result<()> {
        stream.set_nonblocking(true)?;
        let token = self.shared.next_token.fetch_add(1, Ordering::Relaxed);
        let fd = stream.as_raw_fd();
        let slot = Slot {
            stream,
            handler,
            wbuf: VecDeque::new(),
            closing: false,
            last_activity: Instant::now(),
            read_deadline,
        };
        self.shared.slots.lock().unwrap().insert(token, slot);
        let m = net_metrics();
        m.sessions_active.add(1);
        m.sessions_parked.add(1);
        m.sessions_opened.inc();
        if let Err(e) = self.shared.poller.register(fd, token, Interest::READ) {
            // Roll back: the session never became pollable.
            self.shared.slots.lock().unwrap().remove(&token);
            m.sessions_active.add(-1);
            m.sessions_parked.add(-1);
            m.sessions_closed.inc();
            return Err(e);
        }
        Ok(())
    }
}

impl Drop for NetPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
    }
}

/// The poll thread: readiness in, dispatch tickets out — plus the
/// periodic mid-frame stall sweep.
fn poll_loop(shared: &Shared) {
    let mut events: Vec<Event> = Vec::new();
    let mut last_sweep = Instant::now();
    while !shared.shutdown.load(Ordering::SeqCst) {
        events.clear();
        if shared.poller.wait(&mut events, 100).is_err() {
            break;
        }
        if !events.is_empty() {
            let mut q = shared.queue.lock().unwrap();
            for ev in &events {
                q.push_back(*ev);
            }
            drop(q);
            shared.queue_cv.notify_all();
        }
        // Sweep sessions stalled mid-frame past their read deadline.
        // One-shot registration guarantees a swept token is not also in
        // flight on a worker (in-flight slots are out of the map).
        if last_sweep.elapsed() >= Duration::from_millis(100) {
            last_sweep = Instant::now();
            let mut slots = shared.slots.lock().unwrap();
            let expired: Vec<u64> = slots
                .iter()
                .filter(|(_, s)| {
                    s.read_deadline
                        .is_some_and(|d| s.handler.mid_frame() && s.last_activity.elapsed() > d)
                })
                .map(|(t, _)| *t)
                .collect();
            for token in expired {
                if let Some(slot) = slots.remove(&token) {
                    drop(slot); // fd close deregisters it from epoll
                    let m = net_metrics();
                    m.sessions_active.add(-1);
                    m.sessions_parked.add(-1);
                    m.sessions_closed.inc();
                    m.stalled_swept.inc();
                }
            }
        }
    }
}

/// A dispatch thread: claim a ticket, own the session exclusively (the
/// slot comes *out* of the map, and one-shot registration stops further
/// events), run the protocol machine, flush, re-arm, park.
fn worker_loop(shared: &Shared) {
    loop {
        let event = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(ev) = q.pop_front() {
                    break ev;
                }
                q = shared.queue_cv.wait(q).unwrap();
            }
        };
        let Some(mut slot) = shared.slots.lock().unwrap().remove(&event.token) else {
            continue; // already closed (e.g. swept)
        };
        let m = net_metrics();
        m.worker_busy.add(1);
        m.sessions_parked.add(-1);
        m.dispatches.inc();

        let close = process(&mut slot, &event);

        if close {
            finish_close(&mut slot);
            m.sessions_active.add(-1);
            m.sessions_closed.inc();
        } else {
            // Park again: re-insert, then re-arm. Order matters — the
            // next event may fire the instant the rearm lands, and the
            // dispatching worker must find the slot present.
            let interest = Interest { readable: true, writable: !slot.wbuf.is_empty() };
            let fd = slot.stream.as_raw_fd();
            shared.slots.lock().unwrap().insert(event.token, slot);
            m.sessions_parked.add(1);
            if shared.poller.rearm(fd, event.token, interest).is_err() {
                // The fd is gone; drop the session.
                if shared.slots.lock().unwrap().remove(&event.token).is_some() {
                    m.sessions_active.add(-1);
                    m.sessions_parked.add(-1);
                    m.sessions_closed.inc();
                }
            }
        }
        m.worker_busy.add(-1);
    }
}

/// Run one dispatch on an exclusively owned session. Returns whether
/// the connection is finished.
fn process(slot: &mut Slot, event: &Event) -> bool {
    // Drain pending output first (we may only be here for writability).
    if flush(slot).is_err() {
        return true;
    }
    if slot.closing {
        return slot.wbuf.is_empty();
    }
    if !event.readable && !event.hangup {
        return false;
    }
    let mut chunk = [0u8; 16384];
    let mut out = Vec::new();
    loop {
        match slot.stream.read(&mut chunk) {
            Ok(0) => {
                slot.handler.on_eof(&mut out);
                queue_out(slot, out);
                let _ = flush(slot);
                return true;
            }
            Ok(n) => {
                slot.last_activity = Instant::now();
                let control = slot.handler.on_bytes(&chunk[..n], &mut out);
                queue_out(slot, std::mem::take(&mut out));
                if flush(slot).is_err() {
                    return true;
                }
                if control == HandlerControl::Close {
                    slot.closing = true;
                    return slot.wbuf.is_empty();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return false,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
}

fn queue_out(slot: &mut Slot, out: Vec<u8>) {
    if !out.is_empty() {
        slot.wbuf.extend(out);
    }
}

/// Push as much of the write buffer as the socket will take.
fn flush(slot: &mut Slot) -> std::io::Result<()> {
    while !slot.wbuf.is_empty() {
        let (front, _) = slot.wbuf.as_slices();
        match slot.stream.write(front) {
            Ok(0) => return Err(std::io::ErrorKind::WriteZero.into()),
            Ok(n) => {
                slot.wbuf.drain(..n);
                slot.last_activity = Instant::now();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Closing with bytes still buffered: give the peer a bounded, blocking
/// chance to take them (a FATAL error frame is worthless if the close
/// races it off the wire).
fn finish_close(slot: &mut Slot) {
    if slot.wbuf.is_empty() {
        return;
    }
    let _ = slot.stream.set_nonblocking(false);
    let _ = slot
        .stream
        .set_write_timeout(Some(Duration::from_secs(5)));
    let (a, b) = slot.wbuf.as_slices();
    let _ = slot.stream.write_all(a);
    let _ = slot.stream.write_all(b);
    slot.wbuf.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;

    /// A line-echo protocol: proves framing state survives parking.
    struct EchoLines {
        partial: Vec<u8>,
    }

    impl SessionHandler for EchoLines {
        fn on_bytes(&mut self, bytes: &[u8], out: &mut Vec<u8>) -> HandlerControl {
            self.partial.extend_from_slice(bytes);
            while let Some(pos) = self.partial.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.partial.drain(..=pos).collect();
                if line.starts_with(b"quit") {
                    return HandlerControl::Close;
                }
                out.extend_from_slice(b"echo: ");
                out.extend_from_slice(&line);
            }
            HandlerControl::Continue
        }

        fn mid_frame(&self) -> bool {
            !self.partial.is_empty()
        }
    }

    fn echo_server(
        pool: &Arc<NetPool>,
        deadline: Option<Duration>,
    ) -> std::net::SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let pool = Arc::clone(pool);
        std::thread::spawn(move || {
            while let Ok((stream, _)) = listener.accept() {
                pool.register(stream, Box::new(EchoLines { partial: Vec::new() }), deadline)
                    .unwrap();
            }
        });
        addr
    }

    #[test]
    fn sessions_multiplex_over_a_small_worker_pool() {
        let pool = NetPool::start(2).unwrap();
        let addr = echo_server(&pool, None);
        // Many more sessions than workers, all concurrently connected.
        let mut clients: Vec<TcpStream> = (0..32)
            .map(|_| TcpStream::connect(addr).unwrap())
            .collect();
        // Let registrations land.
        for _ in 0..100 {
            if pool.sessions() == 32 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(pool.sessions(), 32);
        for (i, c) in clients.iter_mut().enumerate() {
            c.write_all(format!("hello {i}\n").as_bytes()).unwrap();
            let mut buf = [0u8; 64];
            let n = c.read(&mut buf).unwrap();
            assert_eq!(
                String::from_utf8_lossy(&buf[..n]),
                format!("echo: hello {i}\n")
            );
        }
    }

    #[test]
    fn partial_frames_survive_parking() {
        let pool = NetPool::start(2).unwrap();
        let addr = echo_server(&pool, None);
        let mut c = TcpStream::connect(addr).unwrap();
        // Half a line, a pause long enough to guarantee the session
        // parks, then the rest.
        c.write_all(b"split ").unwrap();
        std::thread::sleep(Duration::from_millis(150));
        c.write_all(b"frame\n").unwrap();
        let mut buf = [0u8; 64];
        let n = c.read(&mut buf).unwrap();
        assert_eq!(String::from_utf8_lossy(&buf[..n]), "echo: split frame\n");
    }

    #[test]
    fn close_control_flushes_then_closes() {
        let pool = NetPool::start(1).unwrap();
        let addr = echo_server(&pool, None);
        let mut c = TcpStream::connect(addr).unwrap();
        c.write_all(b"quit\n").unwrap();
        let mut buf = Vec::new();
        c.read_to_end(&mut buf).unwrap(); // EOF proves the server closed
        assert!(buf.is_empty());
    }

    #[test]
    fn mid_frame_stall_is_swept_but_idle_sessions_park_forever() {
        let pool = NetPool::start(1).unwrap();
        let addr = echo_server(&pool, Some(Duration::from_millis(200)));
        // Idle session: never speaks, must survive well past the deadline.
        let mut idle = TcpStream::connect(addr).unwrap();
        // Stalled session: sends half a frame and goes silent.
        let mut stalled = TcpStream::connect(addr).unwrap();
        stalled.write_all(b"never finis").unwrap();
        std::thread::sleep(Duration::from_millis(600));
        // The stalled session was closed by the sweep…
        let mut buf = [0u8; 16];
        assert_eq!(stalled.read(&mut buf).unwrap(), 0, "stalled session must be swept");
        // …while the idle one still answers.
        idle.write_all(b"ping\n").unwrap();
        let n = idle.read(&mut buf).unwrap();
        assert_eq!(String::from_utf8_lossy(&buf[..n]), "echo: ping\n");
    }

    #[test]
    fn io_model_env_parsing() {
        assert_eq!(IoModel::default(), IoModel::Multiplexed);
        // from_env with nothing set falls back to the default.
        std::env::remove_var("HQ_IO_MODEL");
        assert_eq!(IoModel::from_env(), IoModel::default());
    }

    #[test]
    fn accept_backoff_doubles_and_caps() {
        let mut b = AcceptBackoff::new();
        assert_eq!(b.current(), Duration::from_millis(1));
        b.sleep();
        assert_eq!(b.current(), Duration::from_millis(2));
        b.sleep();
        b.sleep();
        assert_eq!(b.current(), Duration::from_millis(8));
        for _ in 0..10 {
            // Capped: never exceeds 200ms no matter how long the episode.
            let before = b.current();
            assert!(before <= Duration::from_millis(200));
            if before == Duration::from_millis(200) {
                break;
            }
            b.sleep();
        }
        b.reset();
        assert_eq!(b.current(), Duration::from_millis(1));
    }
}
