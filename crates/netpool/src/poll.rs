//! A thin, zero-dependency `epoll` wrapper.
//!
//! The repo bans external crates (deps come from offline shims), so the
//! poller binds the four `epoll` entry points directly from libc — which
//! is already linked by `std` — rather than pulling in `mio` or `libc`.
//! Only what the session scheduler needs is exposed: level-triggered
//! one-shot registration keyed by a `u64` token, modification for
//! re-arming, and a timeout-bounded wait.
//!
//! One-shot is the concurrency cornerstone: after an event is delivered
//! for a token, the kernel disables the registration until it is
//! re-armed with [`Poller::rearm`]. A worker can therefore own a
//! session exclusively — no second event for the same connection can
//! fire while the first is being processed — without any user-space
//! locking around the readiness state.

use std::io;
use std::os::unix::io::RawFd;

// Direct bindings; `std` already links libc, so no crate is needed.
extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
}

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EPOLLONESHOT: u32 = 1 << 30;

/// `struct epoll_event`. Packed on x86-64 (the kernel ABI predates
/// alignment conventions); the layout matters, the field order is ABI.
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// What a session is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when readable (or the peer half-closed).
    pub readable: bool,
    /// Wake when writable (armed only while a write buffer is pending).
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the parked-session steady state.
    pub const READ: Interest = Interest { readable: true, writable: false };

    fn bits(self) -> u32 {
        let mut bits = EPOLLONESHOT | EPOLLRDHUP;
        if self.readable {
            bits |= EPOLLIN;
        }
        if self.writable {
            bits |= EPOLLOUT;
        }
        bits
    }
}

/// A delivered readiness event.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the connection was registered under.
    pub token: u64,
    /// Bytes (or EOF) are waiting to be read.
    pub readable: bool,
    /// The socket will accept more bytes.
    pub writable: bool,
    /// The peer hung up or the socket errored; the next read tells why.
    pub hangup: bool,
}

/// An owned epoll instance.
pub struct Poller {
    epfd: RawFd,
}

// The fd is just an integer capability; epoll instances are documented
// thread-safe for concurrent ctl/wait.
unsafe impl Send for Poller {}
unsafe impl Sync for Poller {}

impl Poller {
    /// Create a new epoll instance.
    pub fn new() -> io::Result<Poller> {
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, interest: Option<(u64, Interest)>) -> io::Result<()> {
        let mut ev = EpollEvent { events: 0, data: 0 };
        let ptr = match interest {
            Some((token, i)) => {
                ev.events = i.bits();
                ev.data = token;
                &mut ev as *mut EpollEvent
            }
            None => std::ptr::null_mut(),
        };
        if unsafe { epoll_ctl(self.epfd, op, fd, ptr) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register `fd` under `token`, one-shot: after the first event the
    /// registration is disabled until [`Poller::rearm`].
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, Some((token, interest)))
    }

    /// Re-arm a one-shot registration that has delivered an event.
    pub fn rearm(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, Some((token, interest)))
    }

    /// Remove a registration. Closing the fd also removes it; this is
    /// for when the fd must outlive its registration.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, None)
    }

    /// Wait up to `timeout_ms` for events, appending them to `out`.
    /// Returns the number of events delivered (0 on timeout).
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        const MAX: usize = 256;
        let mut raw = [EpollEvent { events: 0, data: 0 }; MAX];
        let n = unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), MAX as i32, timeout_ms) };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        for ev in raw.iter().take(n as usize) {
            let bits = ev.events;
            out.push(Event {
                token: ev.data,
                readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                writable: bits & EPOLLOUT != 0,
                hangup: bits & (EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(n as usize)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            close(self.epfd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn readiness_round_trip_with_oneshot_semantics() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.register(server.as_raw_fd(), 7, Interest::READ).unwrap();

        // Nothing to read yet: wait times out.
        let mut events = Vec::new();
        poller.wait(&mut events, 50).unwrap();
        assert!(events.is_empty());

        // Bytes arrive: one event, token 7, readable.
        client.write_all(b"ping").unwrap();
        while events.is_empty() {
            poller.wait(&mut events, 1000).unwrap();
        }
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // One-shot: without a rearm, no second event fires even though
        // the bytes are still unread.
        events.clear();
        poller.wait(&mut events, 50).unwrap();
        assert!(events.is_empty());

        // Re-arm: the level-triggered event fires again immediately.
        poller.rearm(server.as_raw_fd(), 7, Interest::READ).unwrap();
        while events.is_empty() {
            poller.wait(&mut events, 1000).unwrap();
        }
        assert_eq!(events[0].token, 7);

        // Drain and verify the payload survived the parking.
        let mut server = server;
        let mut buf = [0u8; 16];
        let n = server.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");
    }

    #[test]
    fn hangup_is_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.register(server.as_raw_fd(), 1, Interest::READ).unwrap();
        drop(client);

        let mut events = Vec::new();
        while events.is_empty() {
            poller.wait(&mut events, 1000).unwrap();
        }
        // A clean FIN surfaces as readable (read returns 0) and/or RDHUP.
        assert!(events[0].readable || events[0].hangup);
    }
}
