//! SQL-side type system and constant datums.
//!
//! These are the types of the *target* dialect (PostgreSQL-compatible).
//! The Algebrizer maps Q types onto them when binding literals and table
//! columns: Q symbols become `VARCHAR`, Q strings become `TEXT`, Q longs
//! become `BIGINT`, and Q temporal types map onto the PG temporal types
//! (with epoch conversion handled at the protocol boundary).

use std::fmt;

/// A PostgreSQL-compatible column type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SqlType {
    /// `BOOLEAN`
    Bool,
    /// `SMALLINT`
    Int2,
    /// `INTEGER`
    Int4,
    /// `BIGINT`
    Int8,
    /// `REAL`
    Float4,
    /// `DOUBLE PRECISION`
    Float8,
    /// `VARCHAR` — target type for Q symbols.
    Varchar,
    /// `TEXT` — target type for Q strings (char vectors).
    Text,
    /// `DATE`
    Date,
    /// `TIME`
    Time,
    /// `TIMESTAMP`
    Timestamp,
}

impl SqlType {
    /// The SQL spelling of this type, as used in casts and DDL.
    pub fn sql_name(&self) -> &'static str {
        match self {
            SqlType::Bool => "boolean",
            SqlType::Int2 => "smallint",
            SqlType::Int4 => "integer",
            SqlType::Int8 => "bigint",
            SqlType::Float4 => "real",
            SqlType::Float8 => "double precision",
            SqlType::Varchar => "varchar",
            SqlType::Text => "text",
            SqlType::Date => "date",
            SqlType::Time => "time",
            SqlType::Timestamp => "timestamp",
        }
    }

    /// Is this a numeric type (arithmetic applies)?
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            SqlType::Int2 | SqlType::Int4 | SqlType::Int8 | SqlType::Float4 | SqlType::Float8
        )
    }

    /// Is this a temporal type?
    pub fn is_temporal(&self) -> bool {
        matches!(self, SqlType::Date | SqlType::Time | SqlType::Timestamp)
    }

    /// Result type of arithmetic between two numeric/temporal types
    /// (wider type wins; float beats integer).
    pub fn promote(a: SqlType, b: SqlType) -> SqlType {
        use SqlType::*;
        if a == b {
            return a;
        }
        match (a, b) {
            (Float8, _) | (_, Float8) => Float8,
            (Float4, _) | (_, Float4) => Float8,
            (Int8, _) | (_, Int8) => Int8,
            (Int4, _) | (_, Int4) => Int4,
            (Int2, _) | (_, Int2) => Int2,
            _ => a,
        }
    }
}

impl fmt::Display for SqlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

/// A column definition: name, type, nullability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (case-sensitive; Hyper-Q quotes identifiers).
    pub name: String,
    /// Column type.
    pub ty: SqlType,
    /// Whether NULLs may appear.
    pub nullable: bool,
}

impl ColumnDef {
    /// Construct a nullable column.
    pub fn new(name: impl Into<String>, ty: SqlType) -> Self {
        ColumnDef { name: name.into(), ty, nullable: true }
    }

    /// Construct a NOT NULL column.
    pub fn not_null(name: impl Into<String>, ty: SqlType) -> Self {
        ColumnDef { name: name.into(), ty, nullable: false }
    }
}

/// A constant value in an XTRA expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Datum {
    /// Typed NULL.
    Null(SqlType),
    /// Boolean.
    Bool(bool),
    /// 16-bit integer.
    I16(i16),
    /// 32-bit integer.
    I32(i32),
    /// 64-bit integer.
    I64(i64),
    /// 32-bit float.
    F32(f32),
    /// 64-bit float.
    F64(f64),
    /// String (varchar/text).
    Str(String),
    /// Days since 2000-01-01 (Q epoch; converted at the protocol boundary).
    Date(i32),
    /// Microseconds since midnight.
    Time(i64),
    /// Microseconds since 2000-01-01.
    Timestamp(i64),
}

impl Datum {
    /// The SQL type of this datum.
    pub fn sql_type(&self) -> SqlType {
        match self {
            Datum::Null(t) => *t,
            Datum::Bool(_) => SqlType::Bool,
            Datum::I16(_) => SqlType::Int2,
            Datum::I32(_) => SqlType::Int4,
            Datum::I64(_) => SqlType::Int8,
            Datum::F32(_) => SqlType::Float4,
            Datum::F64(_) => SqlType::Float8,
            Datum::Str(_) => SqlType::Varchar,
            Datum::Date(_) => SqlType::Date,
            Datum::Time(_) => SqlType::Time,
            Datum::Timestamp(_) => SqlType::Timestamp,
        }
    }

    /// Is this datum NULL?
    pub fn is_null(&self) -> bool {
        matches!(self, Datum::Null(_))
    }

    /// Render as a SQL literal (with cast for unambiguous typing, the way
    /// Hyper-Q's generated SQL in the paper casts `` `GOOG``::varchar`).
    pub fn to_sql_literal(&self) -> String {
        match self {
            Datum::Null(t) => format!("NULL::{}", t.sql_name()),
            Datum::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
            Datum::I16(v) => format!("{v}::smallint"),
            Datum::I32(v) => format!("{v}::integer"),
            Datum::I64(v) => format!("{v}"),
            Datum::F32(v) => format!("{v}::real"),
            Datum::F64(v) => {
                if v.is_nan() {
                    "'NaN'::double precision".to_string()
                } else if v.fract() == 0.0 && v.is_finite() {
                    format!("{v:.1}")
                } else {
                    format!("{v}")
                }
            }
            Datum::Str(s) => format!("'{}'::varchar", s.replace('\'', "''")),
            Datum::Date(d) => {
                let (y, m, dd) = crate::types::days_to_ymd(*d);
                format!("DATE '{y:04}-{m:02}-{dd:02}'")
            }
            Datum::Time(us) => {
                let total_secs = us / 1_000_000;
                let frac = us % 1_000_000;
                format!(
                    "TIME '{:02}:{:02}:{:02}.{:06}'",
                    total_secs / 3600,
                    (total_secs / 60) % 60,
                    total_secs % 60,
                    frac
                )
            }
            Datum::Timestamp(us) => {
                let days = us.div_euclid(86_400_000_000);
                let intraday = us.rem_euclid(86_400_000_000);
                let (y, m, d) = days_to_ymd(days as i32);
                let total_secs = intraday / 1_000_000;
                let frac = intraday % 1_000_000;
                format!(
                    "TIMESTAMP '{y:04}-{m:02}-{d:02} {:02}:{:02}:{:02}.{:06}'",
                    total_secs / 3600,
                    (total_secs / 60) % 60,
                    total_secs % 60,
                    frac
                )
            }
        }
    }
}

/// Convert days-since-2000-01-01 to `(year, month, day)`.
///
/// Duplicated from `qlang::temporal` so that `xtra` stays independent of
/// the Q front end (the algebra is language-agnostic by design — the paper
/// envisions plugins for other source languages).
pub fn days_to_ymd(mut days: i32) -> (i32, u32, u32) {
    fn leap(y: i32) -> bool {
        (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
    }
    fn dim(y: i32, m: u32) -> i32 {
        match m {
            1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
            4 | 6 | 9 | 11 => 30,
            2 => {
                if leap(y) {
                    29
                } else {
                    28
                }
            }
            _ => unreachable!(),
        }
    }
    let mut year = 2000;
    loop {
        let len = if leap(year) { 366 } else { 365 };
        if days >= 0 && days < len {
            break;
        }
        if days < 0 {
            year -= 1;
            days += if leap(year) { 366 } else { 365 };
        } else {
            days -= len;
            year += 1;
        }
    }
    let mut month = 1u32;
    while days >= dim(year, month) {
        days -= dim(year, month);
        month += 1;
    }
    (year, month, days as u32 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promotion_prefers_floats_and_width() {
        assert_eq!(SqlType::promote(SqlType::Int4, SqlType::Int8), SqlType::Int8);
        assert_eq!(SqlType::promote(SqlType::Int8, SqlType::Float8), SqlType::Float8);
        assert_eq!(SqlType::promote(SqlType::Float4, SqlType::Int2), SqlType::Float8);
        assert_eq!(SqlType::promote(SqlType::Varchar, SqlType::Varchar), SqlType::Varchar);
    }

    #[test]
    fn datum_types() {
        assert_eq!(Datum::I64(1).sql_type(), SqlType::Int8);
        assert_eq!(Datum::Null(SqlType::Date).sql_type(), SqlType::Date);
        assert!(Datum::Null(SqlType::Bool).is_null());
        assert!(!Datum::Bool(false).is_null());
    }

    #[test]
    fn sql_literals() {
        assert_eq!(Datum::I64(42).to_sql_literal(), "42");
        assert_eq!(Datum::Str("GOOG".into()).to_sql_literal(), "'GOOG'::varchar");
        assert_eq!(Datum::Str("O'Neil".into()).to_sql_literal(), "'O''Neil'::varchar");
        assert_eq!(Datum::Bool(true).to_sql_literal(), "TRUE");
        assert_eq!(Datum::Null(SqlType::Int8).to_sql_literal(), "NULL::bigint");
    }

    #[test]
    fn temporal_literals() {
        // 2016-06-26 is 6021 days after 2000-01-01.
        assert_eq!(Datum::Date(6021).to_sql_literal(), "DATE '2016-06-26'");
        assert_eq!(
            Datum::Time(9 * 3_600_000_000 + 30 * 60_000_000).to_sql_literal(),
            "TIME '09:30:00.000000'"
        );
    }

    #[test]
    fn days_to_ymd_matches_qlang() {
        assert_eq!(days_to_ymd(0), (2000, 1, 1));
        assert_eq!(days_to_ymd(6021), (2016, 6, 26));
        assert_eq!(days_to_ymd(-1), (1999, 12, 31));
    }

    #[test]
    fn type_names() {
        assert_eq!(SqlType::Int8.sql_name(), "bigint");
        assert_eq!(SqlType::Varchar.sql_name(), "varchar");
        assert!(SqlType::Float8.is_numeric());
        assert!(SqlType::Date.is_temporal());
        assert!(!SqlType::Text.is_numeric());
    }
}
