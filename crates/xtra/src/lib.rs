//! # xtra — the eXTended Relational Algebra
//!
//! XTRA is Hyper-Q's internal query representation (paper §3.2): a general,
//! extensible algebra that Q queries are *bound* into and SQL queries are
//! *serialized* out of. It is deliberately richer than plain relational
//! algebra:
//!
//! * every relational operator carries **derived properties** — output
//!   columns with names and types, candidate keys, delivered sort order,
//!   whether the operator *preserves* its input order, and the name of the
//!   implicit **order column** that models Q's ordered-list semantics
//!   (paper §3.3 "Transparency");
//! * scalar expressions carry result types and a side-effect flag;
//! * the `IsNotDistinctFrom` predicate exists as a first-class operator so
//!   the Xformer can bridge Q's two-valued null logic onto SQL's
//!   three-valued logic (paper §3.3 "Correctness").
//!
//! The tree is immutable; transformations build rewritten copies.

pub mod rel;
pub mod scalar;
pub mod types;

pub use rel::{JoinKind, RelNode, RelProps, SetOpKind, SortKey};
pub use scalar::{AggFunc, BinOp, ScalarExpr, UnOp, WinFunc};
pub use types::{ColumnDef, Datum, SqlType};

/// The name Hyper-Q uses for the implicit order column it injects into
/// backend schemas to preserve Q's ordered-list semantics (paper §4.3 shows
/// generated SQL referring to `ordcol`).
pub const ORD_COL: &str = "ordcol";
