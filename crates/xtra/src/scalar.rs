//! Scalar expressions in the XTRA algebra.
//!
//! Scalar operators carry two derived properties the binder checks when
//! composing trees (paper §3.2.2): the **output type** and whether the
//! expression **has side effects** (side-effecting expressions force eager
//! materialization in the Cross Compiler, §4.3).

use crate::types::{ColumnDef, Datum, SqlType};
use std::fmt;

/// Dyadic scalar operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (Q spells division `%`)
    Div,
    /// `%` modulo
    Mod,
    /// `=` three-valued SQL equality.
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `IS NOT DISTINCT FROM` — null-safe equality. The Xformer's
    /// correctness pass rewrites Q equalities to this operator to impose
    /// Q's two-valued logic on the SQL backend (paper §3.3).
    IsNotDistinctFrom,
    /// `||` string concatenation.
    Concat,
    /// `LIKE` pattern match.
    Like,
}

impl BinOp {
    /// SQL spelling of the operator.
    pub fn sql(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::Neq => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::IsNotDistinctFrom => "IS NOT DISTINCT FROM",
            BinOp::Concat => "||",
            BinOp::Like => "LIKE",
        }
    }

    /// Does this operator yield a boolean?
    pub fn is_predicate(&self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::Neq
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::And
                | BinOp::Or
                | BinOp::IsNotDistinctFrom
                | BinOp::Like
        )
    }

    /// Is this a plain (three-valued) comparison that the null-logic
    /// transformation must consider rewriting?
    pub fn is_equality(&self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Neq)
    }
}

/// Monadic scalar operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical NOT.
    Not,
    /// Absolute value.
    Abs,
}

impl UnOp {
    /// SQL spelling (function-style for `abs`).
    pub fn sql(&self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Not => "NOT",
            UnOp::Abs => "abs",
        }
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` / `COUNT(x)`
    Count,
    /// `SUM`
    Sum,
    /// `AVG`
    Avg,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
    /// `STDDEV_SAMP` — Q's `dev` maps here.
    StdDev,
    /// `VAR_SAMP` — Q's `var`.
    Variance,
    /// First value in order (Q `first`); serialized via an ordered window
    /// or `MIN` on the order column join-back depending on context.
    First,
    /// Last value in order (Q `last`).
    Last,
    /// `COUNT(DISTINCT x)`.
    CountDistinct,
}

impl AggFunc {
    /// SQL function name.
    pub fn sql(&self) -> &'static str {
        match self {
            AggFunc::Count | AggFunc::CountDistinct => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::StdDev => "stddev_samp",
            AggFunc::Variance => "var_samp",
            AggFunc::First => "first_value_agg",
            AggFunc::Last => "last_value_agg",
        }
    }
}

/// Window functions, used by the ordering/as-of-join machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WinFunc {
    /// `ROW_NUMBER()` — generates implicit order columns (paper §3.3:
    /// "The Xformer may also generate implicit order columns by injecting
    /// window functions").
    RowNumber,
    /// `LEAD(x)` — upper bound of an as-of validity interval.
    Lead,
    /// `LAG(x)`.
    Lag,
    /// `FIRST_VALUE(x)`.
    FirstValue,
    /// `LAST_VALUE(x)`.
    LastValue,
    /// `RANK()`.
    Rank,
}

impl WinFunc {
    /// SQL function name.
    pub fn sql(&self) -> &'static str {
        match self {
            WinFunc::RowNumber => "row_number",
            WinFunc::Lead => "lead",
            WinFunc::Lag => "lag",
            WinFunc::FirstValue => "first_value",
            WinFunc::LastValue => "last_value",
            WinFunc::Rank => "rank",
        }
    }
}

/// A sort direction within an ORDER BY.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SortDir {
    /// Ascending, nulls first (Q convention).
    Asc,
    /// Descending.
    Desc,
}

/// A scalar XTRA expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// Reference to a column of the operator's input.
    Column {
        /// Column name.
        name: String,
        /// Result type (filled in by the binder).
        ty: SqlType,
    },
    /// A constant.
    Const(Datum),
    /// Dyadic operator application.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<ScalarExpr>,
        /// Right operand.
        rhs: Box<ScalarExpr>,
    },
    /// Monadic operator application.
    Unary {
        /// The operator.
        op: UnOp,
        /// Operand.
        arg: Box<ScalarExpr>,
    },
    /// Aggregate application. Only valid inside an `Aggregate` rel node.
    Agg {
        /// Aggregate function.
        func: AggFunc,
        /// Argument; `None` for `COUNT(*)`.
        arg: Option<Box<ScalarExpr>>,
    },
    /// Window function application. Only valid inside a `Window` rel node.
    Window {
        /// The window function.
        func: WinFunc,
        /// Function arguments.
        args: Vec<ScalarExpr>,
        /// PARTITION BY expressions.
        partition_by: Vec<ScalarExpr>,
        /// ORDER BY keys.
        order_by: Vec<(ScalarExpr, SortDir)>,
    },
    /// Generic function call (backend builtin or UDF from the PG
    /// "toolbox" the paper describes for non-mappable Q constructs).
    Func {
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<ScalarExpr>,
        /// Result type.
        ty: SqlType,
        /// Whether the function is volatile (forces materialization).
        volatile: bool,
    },
    /// `CASE WHEN ... THEN ... [ELSE ...] END`.
    Case {
        /// `(condition, result)` branches.
        branches: Vec<(ScalarExpr, ScalarExpr)>,
        /// ELSE result.
        else_result: Option<Box<ScalarExpr>>,
    },
    /// `expr::type` cast.
    Cast {
        /// Operand.
        arg: Box<ScalarExpr>,
        /// Target type.
        ty: SqlType,
    },
    /// `x IN (a, b, c)`.
    InList {
        /// Needle.
        needle: Box<ScalarExpr>,
        /// Haystack constants/expressions.
        list: Vec<ScalarExpr>,
        /// `NOT IN` when true.
        negated: bool,
    },
    /// `x IS [NOT] NULL`.
    IsNull {
        /// Operand.
        arg: Box<ScalarExpr>,
        /// `IS NOT NULL` when true.
        negated: bool,
    },
    /// `x [NOT] IN (SELECT ...)` — an uncorrelated relational subquery
    /// (how `Symbol in exec Symbol from universe` binds).
    InSubquery {
        /// Needle.
        needle: Box<ScalarExpr>,
        /// The subquery plan; its first output column is the haystack.
        plan: Box<crate::rel::RelNode>,
        /// `NOT IN` when true.
        negated: bool,
    },
}

impl ScalarExpr {
    /// Convenience: column reference.
    pub fn col(name: impl Into<String>, ty: SqlType) -> ScalarExpr {
        ScalarExpr::Column { name: name.into(), ty }
    }

    /// Convenience: bigint constant.
    pub fn i64(v: i64) -> ScalarExpr {
        ScalarExpr::Const(Datum::I64(v))
    }

    /// Convenience: varchar constant.
    pub fn str(v: impl Into<String>) -> ScalarExpr {
        ScalarExpr::Const(Datum::Str(v.into()))
    }

    /// Convenience: dyadic application.
    pub fn binary(op: BinOp, lhs: ScalarExpr, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }

    /// Conjunction of a list of predicates (`TRUE` for an empty list).
    pub fn conjunction(mut preds: Vec<ScalarExpr>) -> ScalarExpr {
        match preds.len() {
            0 => ScalarExpr::Const(Datum::Bool(true)),
            1 => preds.pop().unwrap(),
            _ => {
                let mut it = preds.into_iter();
                let first = it.next().unwrap();
                it.fold(first, |acc, p| ScalarExpr::binary(BinOp::And, acc, p))
            }
        }
    }

    /// Derived property: result type.
    pub fn derived_type(&self) -> SqlType {
        match self {
            ScalarExpr::Column { ty, .. } => *ty,
            ScalarExpr::Const(d) => d.sql_type(),
            ScalarExpr::Binary { op, lhs, rhs } => {
                if op.is_predicate() {
                    SqlType::Bool
                } else if *op == BinOp::Concat {
                    SqlType::Text
                } else if *op == BinOp::Div {
                    // Q `%` is always float division.
                    SqlType::Float8
                } else {
                    let lt = lhs.derived_type();
                    let rt = rhs.derived_type();
                    // Temporal arithmetic: date/timestamp +- integer stays temporal.
                    if lt.is_temporal() && rt.is_numeric() {
                        lt
                    } else if rt.is_temporal() && lt.is_numeric() {
                        rt
                    } else if lt.is_temporal() && rt.is_temporal() {
                        SqlType::Int8
                    } else {
                        SqlType::promote(lt, rt)
                    }
                }
            }
            ScalarExpr::Unary { op, arg } => match op {
                UnOp::Not => SqlType::Bool,
                UnOp::Neg | UnOp::Abs => arg.derived_type(),
            },
            ScalarExpr::Agg { func, arg } => match func {
                AggFunc::Count | AggFunc::CountDistinct => SqlType::Int8,
                AggFunc::Avg | AggFunc::StdDev | AggFunc::Variance => SqlType::Float8,
                AggFunc::Sum | AggFunc::Min | AggFunc::Max | AggFunc::First | AggFunc::Last => {
                    arg.as_ref().map(|a| a.derived_type()).unwrap_or(SqlType::Int8)
                }
            },
            ScalarExpr::Window { func, args, .. } => match func {
                WinFunc::RowNumber | WinFunc::Rank => SqlType::Int8,
                WinFunc::Lead | WinFunc::Lag | WinFunc::FirstValue | WinFunc::LastValue => {
                    args.first().map(|a| a.derived_type()).unwrap_or(SqlType::Int8)
                }
            },
            ScalarExpr::Func { ty, .. } => *ty,
            ScalarExpr::Case { branches, else_result } => branches
                .first()
                .map(|(_, r)| r.derived_type())
                .or_else(|| else_result.as_ref().map(|e| e.derived_type()))
                .unwrap_or(SqlType::Text),
            ScalarExpr::Cast { ty, .. } => *ty,
            ScalarExpr::InList { .. }
            | ScalarExpr::IsNull { .. }
            | ScalarExpr::InSubquery { .. } => SqlType::Bool,
        }
    }

    /// Derived property: does evaluating this expression have side effects?
    pub fn has_side_effects(&self) -> bool {
        match self {
            ScalarExpr::Column { .. } | ScalarExpr::Const(_) => false,
            ScalarExpr::Binary { lhs, rhs, .. } => lhs.has_side_effects() || rhs.has_side_effects(),
            ScalarExpr::Unary { arg, .. } => arg.has_side_effects(),
            ScalarExpr::Agg { arg, .. } => {
                arg.as_ref().map(|a| a.has_side_effects()).unwrap_or(false)
            }
            ScalarExpr::Window { args, partition_by, order_by, .. } => {
                args.iter().any(|a| a.has_side_effects())
                    || partition_by.iter().any(|a| a.has_side_effects())
                    || order_by.iter().any(|(a, _)| a.has_side_effects())
            }
            ScalarExpr::Func { volatile, args, .. } => {
                *volatile || args.iter().any(|a| a.has_side_effects())
            }
            ScalarExpr::Case { branches, else_result } => {
                branches.iter().any(|(c, r)| c.has_side_effects() || r.has_side_effects())
                    || else_result.as_ref().map(|e| e.has_side_effects()).unwrap_or(false)
            }
            ScalarExpr::Cast { arg, .. } => arg.has_side_effects(),
            ScalarExpr::InList { needle, list, .. } => {
                needle.has_side_effects() || list.iter().any(|e| e.has_side_effects())
            }
            ScalarExpr::IsNull { arg, .. } => arg.has_side_effects(),
            ScalarExpr::InSubquery { needle, .. } => needle.has_side_effects(),
        }
    }

    /// Does this expression contain any aggregate application?
    pub fn contains_aggregate(&self) -> bool {
        match self {
            ScalarExpr::Agg { .. } => true,
            ScalarExpr::Column { .. } | ScalarExpr::Const(_) => false,
            ScalarExpr::Binary { lhs, rhs, .. } => {
                lhs.contains_aggregate() || rhs.contains_aggregate()
            }
            ScalarExpr::Unary { arg, .. } => arg.contains_aggregate(),
            ScalarExpr::Window { args, .. } => args.iter().any(|a| a.contains_aggregate()),
            ScalarExpr::Func { args, .. } => args.iter().any(|a| a.contains_aggregate()),
            ScalarExpr::Case { branches, else_result } => {
                branches.iter().any(|(c, r)| c.contains_aggregate() || r.contains_aggregate())
                    || else_result.as_ref().map(|e| e.contains_aggregate()).unwrap_or(false)
            }
            ScalarExpr::Cast { arg, .. } => arg.contains_aggregate(),
            ScalarExpr::InList { needle, list, .. } => {
                needle.contains_aggregate() || list.iter().any(|e| e.contains_aggregate())
            }
            ScalarExpr::IsNull { arg, .. } => arg.contains_aggregate(),
            ScalarExpr::InSubquery { needle, .. } => needle.contains_aggregate(),
        }
    }

    /// Does this expression contain any window function application?
    pub fn contains_window(&self) -> bool {
        match self {
            ScalarExpr::Window { .. } => true,
            ScalarExpr::Column { .. } | ScalarExpr::Const(_) => false,
            ScalarExpr::Binary { lhs, rhs, .. } => lhs.contains_window() || rhs.contains_window(),
            ScalarExpr::Unary { arg, .. } => arg.contains_window(),
            ScalarExpr::Agg { arg, .. } => {
                arg.as_ref().map(|a| a.contains_window()).unwrap_or(false)
            }
            ScalarExpr::Func { args, .. } => args.iter().any(|a| a.contains_window()),
            ScalarExpr::Case { branches, else_result } => {
                branches.iter().any(|(c, r)| c.contains_window() || r.contains_window())
                    || else_result.as_ref().map(|e| e.contains_window()).unwrap_or(false)
            }
            ScalarExpr::Cast { arg, .. } => arg.contains_window(),
            ScalarExpr::InList { needle, list, .. } => {
                needle.contains_window() || list.iter().any(|e| e.contains_window())
            }
            ScalarExpr::IsNull { arg, .. } => arg.contains_window(),
            ScalarExpr::InSubquery { needle, .. } => needle.contains_window(),
        }
    }

    /// Collect the names of all referenced columns into `out`.
    pub fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            ScalarExpr::Column { name, .. } => out.push(name.clone()),
            ScalarExpr::Const(_) => {}
            ScalarExpr::Binary { lhs, rhs, .. } => {
                lhs.collect_columns(out);
                rhs.collect_columns(out);
            }
            ScalarExpr::Unary { arg, .. } => arg.collect_columns(out),
            ScalarExpr::Agg { arg, .. } => {
                if let Some(a) = arg {
                    a.collect_columns(out);
                }
            }
            ScalarExpr::Window { args, partition_by, order_by, .. } => {
                args.iter().for_each(|a| a.collect_columns(out));
                partition_by.iter().for_each(|a| a.collect_columns(out));
                order_by.iter().for_each(|(a, _)| a.collect_columns(out));
            }
            ScalarExpr::Func { args, .. } => args.iter().for_each(|a| a.collect_columns(out)),
            ScalarExpr::Case { branches, else_result } => {
                for (c, r) in branches {
                    c.collect_columns(out);
                    r.collect_columns(out);
                }
                if let Some(e) = else_result {
                    e.collect_columns(out);
                }
            }
            ScalarExpr::Cast { arg, .. } => arg.collect_columns(out),
            ScalarExpr::InList { needle, list, .. } => {
                needle.collect_columns(out);
                list.iter().for_each(|e| e.collect_columns(out));
            }
            ScalarExpr::IsNull { arg, .. } => arg.collect_columns(out),
            // The subquery resolves its own columns internally; only the
            // needle references the enclosing scope.
            ScalarExpr::InSubquery { needle, .. } => needle.collect_columns(out),
        }
    }

    /// Rewrite every sub-expression bottom-up with `f`.
    pub fn rewrite(&self, f: &mut impl FnMut(ScalarExpr) -> ScalarExpr) -> ScalarExpr {
        let rebuilt = match self {
            ScalarExpr::Column { .. } | ScalarExpr::Const(_) => self.clone(),
            ScalarExpr::Binary { op, lhs, rhs } => ScalarExpr::Binary {
                op: *op,
                lhs: Box::new(lhs.rewrite(f)),
                rhs: Box::new(rhs.rewrite(f)),
            },
            ScalarExpr::Unary { op, arg } => {
                ScalarExpr::Unary { op: *op, arg: Box::new(arg.rewrite(f)) }
            }
            ScalarExpr::Agg { func, arg } => ScalarExpr::Agg {
                func: *func,
                arg: arg.as_ref().map(|a| Box::new(a.rewrite(f))),
            },
            ScalarExpr::Window { func, args, partition_by, order_by } => ScalarExpr::Window {
                func: *func,
                args: args.iter().map(|a| a.rewrite(f)).collect(),
                partition_by: partition_by.iter().map(|a| a.rewrite(f)).collect(),
                order_by: order_by.iter().map(|(a, d)| (a.rewrite(f), *d)).collect(),
            },
            ScalarExpr::Func { name, args, ty, volatile } => ScalarExpr::Func {
                name: name.clone(),
                args: args.iter().map(|a| a.rewrite(f)).collect(),
                ty: *ty,
                volatile: *volatile,
            },
            ScalarExpr::Case { branches, else_result } => ScalarExpr::Case {
                branches: branches.iter().map(|(c, r)| (c.rewrite(f), r.rewrite(f))).collect(),
                else_result: else_result.as_ref().map(|e| Box::new(e.rewrite(f))),
            },
            ScalarExpr::Cast { arg, ty } => {
                ScalarExpr::Cast { arg: Box::new(arg.rewrite(f)), ty: *ty }
            }
            ScalarExpr::InList { needle, list, negated } => ScalarExpr::InList {
                needle: Box::new(needle.rewrite(f)),
                list: list.iter().map(|e| e.rewrite(f)).collect(),
                negated: *negated,
            },
            ScalarExpr::IsNull { arg, negated } => {
                ScalarExpr::IsNull { arg: Box::new(arg.rewrite(f)), negated: *negated }
            }
            ScalarExpr::InSubquery { needle, plan, negated } => ScalarExpr::InSubquery {
                needle: Box::new(needle.rewrite(f)),
                plan: plan.clone(),
                negated: *negated,
            },
        };
        f(rebuilt)
    }

    /// Resolve this expression's type against a schema, refreshing stale
    /// column types (used after transformations reshape inputs).
    pub fn retype(&self, schema: &[ColumnDef]) -> ScalarExpr {
        self.rewrite(&mut |e| match e {
            ScalarExpr::Column { name, ty } => {
                let ty = schema.iter().find(|c| c.name == name).map(|c| c.ty).unwrap_or(ty);
                ScalarExpr::Column { name, ty }
            }
            other => other,
        })
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Column { name, .. } => write!(f, "{name}"),
            ScalarExpr::Const(d) => write!(f, "{}", d.to_sql_literal()),
            ScalarExpr::Binary { op, lhs, rhs } => write!(f, "({lhs} {} {rhs})", op.sql()),
            ScalarExpr::Unary { op, arg } => write!(f, "{}({arg})", op.sql()),
            ScalarExpr::Agg { func, arg } => match arg {
                Some(a) => write!(f, "{}({a})", func.sql()),
                None => write!(f, "{}(*)", func.sql()),
            },
            ScalarExpr::Window { func, .. } => write!(f, "{}() OVER (...)", func.sql()),
            ScalarExpr::Func { name, args, .. } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            ScalarExpr::Case { .. } => f.write_str("CASE ... END"),
            ScalarExpr::Cast { arg, ty } => write!(f, "({arg})::{}", ty.sql_name()),
            ScalarExpr::InList { needle, list, negated } => {
                write!(f, "{needle} {}IN ({} items)", if *negated { "NOT " } else { "" }, list.len())
            }
            ScalarExpr::IsNull { arg, negated } => {
                write!(f, "{arg} IS {}NULL", if *negated { "NOT " } else { "" })
            }
            ScalarExpr::InSubquery { needle, negated, .. } => {
                write!(f, "{needle} {}IN (subquery)", if *negated { "NOT " } else { "" })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates_type_as_bool() {
        let e = ScalarExpr::binary(
            BinOp::Eq,
            ScalarExpr::col("Symbol", SqlType::Varchar),
            ScalarExpr::str("GOOG"),
        );
        assert_eq!(e.derived_type(), SqlType::Bool);
    }

    #[test]
    fn arithmetic_promotes() {
        let e = ScalarExpr::binary(
            BinOp::Add,
            ScalarExpr::col("a", SqlType::Int4),
            ScalarExpr::col("b", SqlType::Float8),
        );
        assert_eq!(e.derived_type(), SqlType::Float8);
    }

    #[test]
    fn division_is_float() {
        let e = ScalarExpr::binary(BinOp::Div, ScalarExpr::i64(1), ScalarExpr::i64(2));
        assert_eq!(e.derived_type(), SqlType::Float8);
    }

    #[test]
    fn temporal_arithmetic() {
        let e = ScalarExpr::binary(
            BinOp::Add,
            ScalarExpr::col("d", SqlType::Date),
            ScalarExpr::i64(1),
        );
        assert_eq!(e.derived_type(), SqlType::Date);
        let diff = ScalarExpr::binary(
            BinOp::Sub,
            ScalarExpr::col("d1", SqlType::Date),
            ScalarExpr::col("d2", SqlType::Date),
        );
        assert_eq!(diff.derived_type(), SqlType::Int8);
    }

    #[test]
    fn volatile_functions_flag_side_effects() {
        let pure = ScalarExpr::Func {
            name: "length".into(),
            args: vec![ScalarExpr::str("x")],
            ty: SqlType::Int4,
            volatile: false,
        };
        assert!(!pure.has_side_effects());
        let vol = ScalarExpr::Func {
            name: "nextval".into(),
            args: vec![],
            ty: SqlType::Int8,
            volatile: true,
        };
        assert!(vol.has_side_effects());
        let nested = ScalarExpr::binary(BinOp::Add, ScalarExpr::i64(1), vol);
        assert!(nested.has_side_effects());
    }

    #[test]
    fn aggregate_detection() {
        let agg = ScalarExpr::Agg {
            func: AggFunc::Max,
            arg: Some(Box::new(ScalarExpr::col("Price", SqlType::Float8))),
        };
        assert!(agg.contains_aggregate());
        assert_eq!(agg.derived_type(), SqlType::Float8);
        let wrapped = ScalarExpr::binary(BinOp::Add, agg, ScalarExpr::i64(1));
        assert!(wrapped.contains_aggregate());
        assert!(!ScalarExpr::i64(1).contains_aggregate());
    }

    #[test]
    fn count_types_as_int8() {
        let c = ScalarExpr::Agg { func: AggFunc::Count, arg: None };
        assert_eq!(c.derived_type(), SqlType::Int8);
    }

    #[test]
    fn collect_columns_walks_everything() {
        let e = ScalarExpr::binary(
            BinOp::And,
            ScalarExpr::binary(
                BinOp::Eq,
                ScalarExpr::col("a", SqlType::Int8),
                ScalarExpr::col("b", SqlType::Int8),
            ),
            ScalarExpr::InList {
                needle: Box::new(ScalarExpr::col("c", SqlType::Varchar)),
                list: vec![ScalarExpr::str("x")],
                negated: false,
            },
        );
        let mut cols = vec![];
        e.collect_columns(&mut cols);
        assert_eq!(cols, vec!["a".to_string(), "b".into(), "c".into()]);
    }

    #[test]
    fn conjunction_builds_and_chain() {
        let p = ScalarExpr::conjunction(vec![]);
        assert_eq!(p, ScalarExpr::Const(Datum::Bool(true)));
        let p = ScalarExpr::conjunction(vec![ScalarExpr::i64(1)]);
        assert_eq!(p, ScalarExpr::i64(1));
        let p = ScalarExpr::conjunction(vec![
            ScalarExpr::Const(Datum::Bool(true)),
            ScalarExpr::Const(Datum::Bool(false)),
        ]);
        assert!(matches!(p, ScalarExpr::Binary { op: BinOp::And, .. }));
    }

    #[test]
    fn rewrite_replaces_bottom_up() {
        let e = ScalarExpr::binary(
            BinOp::Eq,
            ScalarExpr::col("x", SqlType::Int8),
            ScalarExpr::i64(1),
        );
        // Replace plain equality with null-safe equality — a miniature of
        // the Xformer's correctness pass.
        let rewritten = e.rewrite(&mut |node| match node {
            ScalarExpr::Binary { op: BinOp::Eq, lhs, rhs } => {
                ScalarExpr::Binary { op: BinOp::IsNotDistinctFrom, lhs, rhs }
            }
            other => other,
        });
        assert!(matches!(rewritten, ScalarExpr::Binary { op: BinOp::IsNotDistinctFrom, .. }));
    }

    #[test]
    fn in_subquery_properties() {
        use crate::rel::RelNode;
        let plan = RelNode::get("u", vec![ColumnDef::new("s", SqlType::Varchar)]);
        let e = ScalarExpr::InSubquery {
            needle: Box::new(ScalarExpr::col("Symbol", SqlType::Varchar)),
            plan: Box::new(plan),
            negated: false,
        };
        assert_eq!(e.derived_type(), SqlType::Bool);
        assert!(!e.has_side_effects());
        assert!(!e.contains_aggregate());
        // Only the needle's columns belong to the enclosing scope.
        let mut cols = vec![];
        e.collect_columns(&mut cols);
        assert_eq!(cols, vec!["Symbol".to_string()]);
    }

    #[test]
    fn retype_refreshes_column_types() {
        let e = ScalarExpr::col("x", SqlType::Text);
        let schema = vec![ColumnDef::new("x", SqlType::Int8)];
        assert_eq!(e.retype(&schema).derived_type(), SqlType::Int8);
    }
}
