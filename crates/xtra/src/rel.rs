//! Relational operators of the XTRA algebra and their derived properties.
//!
//! Property derivation is the binder's workhorse (paper §3.2.2): after
//! binding each operator's inputs, the binder derives the operator's output
//! columns, keys and order, then *checks* that the inputs are valid for the
//! operator. The Xformer additionally relies on the order-preservation
//! property to elide unnecessary `ORDER BY` clauses (§3.3).

use crate::scalar::{ScalarExpr, SortDir};
use crate::types::{ColumnDef, Datum, SqlType};
use std::fmt;

/// Join variants supported by XTRA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    /// Inner join.
    Inner,
    /// Left outer join — the shape Q's `aj` and `lj` bind to.
    LeftOuter,
    /// Cross join.
    Cross,
}

/// Set operation variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetOpKind {
    /// `UNION ALL` — Q's `uj`/`,` on tables keeps duplicates and order.
    UnionAll,
    /// `EXCEPT`
    Except,
    /// `INTERSECT`
    Intersect,
}

/// A sort key: expression plus direction.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    /// Key expression (usually a column reference).
    pub expr: ScalarExpr,
    /// Direction.
    pub dir: SortDir,
}

impl SortKey {
    /// Ascending sort on a column.
    pub fn asc(name: impl Into<String>, ty: SqlType) -> SortKey {
        SortKey { expr: ScalarExpr::col(name, ty), dir: SortDir::Asc }
    }

    /// Descending sort on a column.
    pub fn desc(name: impl Into<String>, ty: SqlType) -> SortKey {
        SortKey { expr: ScalarExpr::col(name, ty), dir: SortDir::Desc }
    }
}

/// Derived relational properties (paper §3.2.2: "derived properties
/// include the output columns with their names and types, keys, and
/// order"; §3.3 adds the implicit order column and order preservation).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RelProps {
    /// Output columns, in order.
    pub output: Vec<ColumnDef>,
    /// Candidate keys: each entry is a set of column names that uniquely
    /// identifies rows.
    pub keys: Vec<Vec<String>>,
    /// Sort order this operator delivers, outermost key first.
    pub order: Vec<SortKey>,
    /// Whether the operator preserves its (left) input's order.
    pub preserves_order: bool,
    /// Name of the implicit order column present in the output, if any.
    pub ord_col: Option<String>,
}

impl RelProps {
    /// Find a column by name.
    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.output.iter().find(|c| c.name == name)
    }

    /// Does the output contain the named column?
    pub fn has_column(&self, name: &str) -> bool {
        self.column(name).is_some()
    }
}

/// A relational XTRA operator.
#[derive(Debug, Clone, PartialEq)]
pub enum RelNode {
    /// Base-table access: `xtra_get` in the paper's Figure 2.
    Get {
        /// Backend table name.
        table: String,
        /// Column definitions, from the metadata interface.
        cols: Vec<ColumnDef>,
        /// Name of the table's implicit order column, when the table was
        /// created by Hyper-Q with ordered semantics.
        ord_col: Option<String>,
    },
    /// Projection / computed columns. Replaces the output with `items`.
    Project {
        /// Input operator.
        input: Box<RelNode>,
        /// `(alias, expression)` output items.
        items: Vec<(String, ScalarExpr)>,
    },
    /// Row filter.
    Filter {
        /// Input operator.
        input: Box<RelNode>,
        /// Boolean predicate.
        predicate: ScalarExpr,
    },
    /// Binary join.
    Join {
        /// Join kind.
        kind: JoinKind,
        /// Left input.
        left: Box<RelNode>,
        /// Right input.
        right: Box<RelNode>,
        /// Join condition (`TRUE` for cross joins).
        on: ScalarExpr,
    },
    /// Grouped or scalar aggregation. With empty `group_by` this is a
    /// scalar aggregate producing exactly one row.
    Aggregate {
        /// Input operator.
        input: Box<RelNode>,
        /// Grouping expressions with output aliases.
        group_by: Vec<(String, ScalarExpr)>,
        /// Aggregate output items (alias, expression containing `Agg`).
        aggs: Vec<(String, ScalarExpr)>,
    },
    /// Window-function computation: passes all input columns through and
    /// appends one column per item.
    Window {
        /// Input operator.
        input: Box<RelNode>,
        /// `(alias, window expression)` appended columns.
        items: Vec<(String, ScalarExpr)>,
    },
    /// Explicit sort.
    Sort {
        /// Input operator.
        input: Box<RelNode>,
        /// Sort keys, outermost first.
        keys: Vec<SortKey>,
    },
    /// Row-count limit/offset.
    Limit {
        /// Input operator.
        input: Box<RelNode>,
        /// Maximum rows to emit; `None` = unlimited.
        limit: Option<u64>,
        /// Rows to skip.
        offset: u64,
    },
    /// In-line constant relation.
    Values {
        /// Schema of the rows.
        schema: Vec<ColumnDef>,
        /// Row data.
        rows: Vec<Vec<Datum>>,
    },
    /// Set operation.
    SetOp {
        /// Variant.
        kind: SetOpKind,
        /// Left input.
        left: Box<RelNode>,
        /// Right input.
        right: Box<RelNode>,
    },
}

impl RelNode {
    /// Construct a `Get` over columns, marking `ord_col` when present.
    pub fn get(table: impl Into<String>, cols: Vec<ColumnDef>) -> RelNode {
        let ord = cols.iter().find(|c| c.name == crate::ORD_COL).map(|c| c.name.clone());
        RelNode::Get { table: table.into(), cols, ord_col: ord }
    }

    /// Immediate children of this node.
    pub fn inputs(&self) -> Vec<&RelNode> {
        match self {
            RelNode::Get { .. } | RelNode::Values { .. } => vec![],
            RelNode::Project { input, .. }
            | RelNode::Filter { input, .. }
            | RelNode::Aggregate { input, .. }
            | RelNode::Window { input, .. }
            | RelNode::Sort { input, .. }
            | RelNode::Limit { input, .. } => vec![input],
            RelNode::Join { left, right, .. } | RelNode::SetOp { left, right, .. } => {
                vec![left, right]
            }
        }
    }

    /// Rebuild this node with children transformed by `f` (bottom-up).
    pub fn rewrite(&self, f: &mut impl FnMut(RelNode) -> RelNode) -> RelNode {
        let rebuilt = match self {
            RelNode::Get { .. } | RelNode::Values { .. } => self.clone(),
            RelNode::Project { input, items } => RelNode::Project {
                input: Box::new(input.rewrite(f)),
                items: items.clone(),
            },
            RelNode::Filter { input, predicate } => RelNode::Filter {
                input: Box::new(input.rewrite(f)),
                predicate: predicate.clone(),
            },
            RelNode::Join { kind, left, right, on } => RelNode::Join {
                kind: *kind,
                left: Box::new(left.rewrite(f)),
                right: Box::new(right.rewrite(f)),
                on: on.clone(),
            },
            RelNode::Aggregate { input, group_by, aggs } => RelNode::Aggregate {
                input: Box::new(input.rewrite(f)),
                group_by: group_by.clone(),
                aggs: aggs.clone(),
            },
            RelNode::Window { input, items } => RelNode::Window {
                input: Box::new(input.rewrite(f)),
                items: items.clone(),
            },
            RelNode::Sort { input, keys } => RelNode::Sort {
                input: Box::new(input.rewrite(f)),
                keys: keys.clone(),
            },
            RelNode::Limit { input, limit, offset } => RelNode::Limit {
                input: Box::new(input.rewrite(f)),
                limit: *limit,
                offset: *offset,
            },
            RelNode::SetOp { kind, left, right } => RelNode::SetOp {
                kind: *kind,
                left: Box::new(left.rewrite(f)),
                right: Box::new(right.rewrite(f)),
            },
        };
        f(rebuilt)
    }

    /// Derive this operator's relational properties, recursively.
    pub fn props(&self) -> RelProps {
        match self {
            RelNode::Get { cols, ord_col, .. } => RelProps {
                output: cols.clone(),
                keys: vec![],
                order: ord_col
                    .as_ref()
                    .map(|c| vec![SortKey::asc(c.clone(), SqlType::Int8)])
                    .unwrap_or_default(),
                preserves_order: true,
                ord_col: ord_col.clone(),
            },
            RelNode::Values { schema, .. } => RelProps {
                output: schema.clone(),
                keys: vec![],
                order: vec![],
                preserves_order: true,
                ord_col: schema.iter().find(|c| c.name == crate::ORD_COL).map(|c| c.name.clone()),
            },
            RelNode::Project { input, items } => {
                let ip = input.props();
                let output = items
                    .iter()
                    .map(|(alias, e)| ColumnDef::new(alias.clone(), e.derived_type()))
                    .collect::<Vec<_>>();
                // Projection preserves row order; the implicit order column
                // survives only if projected through.
                let ord_col = ip.ord_col.filter(|oc| {
                    items.iter().any(|(alias, e)| {
                        alias == oc
                            && matches!(e, ScalarExpr::Column { name, .. } if name == oc)
                    })
                });
                RelProps {
                    output,
                    keys: vec![],
                    order: if ord_col.is_some() { ip.order.clone() } else { vec![] },
                    preserves_order: true,
                    ord_col,
                }
            }
            RelNode::Filter { input, .. } => {
                let ip = input.props();
                RelProps { preserves_order: true, ..ip }
            }
            RelNode::Join { left, right, kind, .. } => {
                let lp = left.props();
                let rp = right.props();
                let mut output = lp.output.clone();
                for c in &rp.output {
                    // Right-side columns become nullable under a left join.
                    let mut c = c.clone();
                    if *kind == JoinKind::LeftOuter {
                        c.nullable = true;
                    }
                    // Disambiguate duplicate names the way Hyper-Q's
                    // serializer will (suffix _r).
                    if output.iter().any(|l| l.name == c.name) {
                        c.name = format!("{}_r", c.name);
                    }
                    output.push(c);
                }
                RelProps {
                    output,
                    keys: vec![],
                    order: lp.order.clone(),
                    // Left/inner joins in the generated nested-loop SQL
                    // preserve left order only via explicit sort; be
                    // conservative.
                    preserves_order: false,
                    ord_col: lp.ord_col,
                }
            }
            RelNode::Aggregate { group_by, aggs, .. } => {
                let mut output = Vec::with_capacity(group_by.len() + aggs.len());
                for (alias, e) in group_by {
                    output.push(ColumnDef::new(alias.clone(), e.derived_type()));
                }
                for (alias, e) in aggs {
                    output.push(ColumnDef::new(alias.clone(), e.derived_type()));
                }
                let keys = if group_by.is_empty() {
                    // Scalar aggregate: single row — every column is a key.
                    vec![vec![]]
                } else {
                    vec![group_by.iter().map(|(a, _)| a.clone()).collect()]
                };
                RelProps {
                    output,
                    keys,
                    order: vec![],
                    // Aggregation destroys input order entirely.
                    preserves_order: false,
                    ord_col: None,
                }
            }
            RelNode::Window { input, items } => {
                let ip = input.props();
                let mut output = ip.output.clone();
                for (alias, e) in items {
                    output.push(ColumnDef::new(alias.clone(), e.derived_type()));
                }
                RelProps {
                    output,
                    keys: ip.keys.clone(),
                    order: ip.order.clone(),
                    preserves_order: true,
                    ord_col: ip.ord_col,
                }
            }
            RelNode::Sort { input, keys } => {
                let ip = input.props();
                RelProps { order: keys.clone(), preserves_order: true, ..ip }
            }
            RelNode::Limit { input, .. } => {
                let ip = input.props();
                RelProps { preserves_order: true, ..ip }
            }
            RelNode::SetOp { left, .. } => {
                let lp = left.props();
                RelProps {
                    output: lp.output,
                    keys: vec![],
                    order: vec![],
                    preserves_order: false,
                    ord_col: None,
                }
            }
        }
    }

    /// Operator name for explain output.
    pub fn name(&self) -> &'static str {
        match self {
            RelNode::Get { .. } => "xtra_get",
            RelNode::Project { .. } => "xtra_project",
            RelNode::Filter { .. } => "xtra_filter",
            RelNode::Join { kind: JoinKind::Inner, .. } => "xtra_join_inner",
            RelNode::Join { kind: JoinKind::LeftOuter, .. } => "xtra_join_left",
            RelNode::Join { kind: JoinKind::Cross, .. } => "xtra_join_cross",
            RelNode::Aggregate { .. } => "xtra_aggregate",
            RelNode::Window { .. } => "xtra_window",
            RelNode::Sort { .. } => "xtra_sort",
            RelNode::Limit { .. } => "xtra_limit",
            RelNode::Values { .. } => "xtra_values",
            RelNode::SetOp { .. } => "xtra_setop",
        }
    }

    /// Pretty-print the tree, one operator per line, indented by depth.
    pub fn explain(&self) -> String {
        fn walk(node: &RelNode, depth: usize, out: &mut String) {
            out.push_str(&"  ".repeat(depth));
            out.push_str(node.name());
            match node {
                RelNode::Get { table, .. } => {
                    out.push_str(&format!("({table})"));
                }
                RelNode::Project { items, .. } => {
                    let names: Vec<&str> = items.iter().map(|(a, _)| a.as_str()).collect();
                    out.push_str(&format!("[{}]", names.join(", ")));
                }
                RelNode::Filter { predicate, .. } => {
                    out.push_str(&format!("[{predicate}]"));
                }
                RelNode::Aggregate { group_by, aggs, .. } => {
                    let g: Vec<&str> = group_by.iter().map(|(a, _)| a.as_str()).collect();
                    let a: Vec<&str> = aggs.iter().map(|(a, _)| a.as_str()).collect();
                    out.push_str(&format!("[by: {}; aggs: {}]", g.join(", "), a.join(", ")));
                }
                _ => {}
            }
            out.push('\n');
            for child in node.inputs() {
                walk(child, depth + 1, out);
            }
        }
        let mut s = String::new();
        walk(self, 0, &mut s);
        s
    }

    /// Count operators in the tree (used by translation metrics).
    pub fn node_count(&self) -> usize {
        1 + self.inputs().iter().map(|c| c.node_count()).sum::<usize>()
    }
}

impl fmt::Display for RelNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.explain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::BinOp;

    fn trades_get() -> RelNode {
        RelNode::get(
            "trades",
            vec![
                ColumnDef::not_null(crate::ORD_COL, SqlType::Int8),
                ColumnDef::new("Symbol", SqlType::Varchar),
                ColumnDef::new("Price", SqlType::Float8),
            ],
        )
    }

    #[test]
    fn get_exposes_ord_col_and_order() {
        let g = trades_get();
        let p = g.props();
        assert_eq!(p.ord_col.as_deref(), Some(crate::ORD_COL));
        assert_eq!(p.order.len(), 1);
        assert!(p.preserves_order);
        assert_eq!(p.output.len(), 3);
    }

    #[test]
    fn get_without_ord_col() {
        let g = RelNode::get("ext", vec![ColumnDef::new("a", SqlType::Int8)]);
        let p = g.props();
        assert!(p.ord_col.is_none());
        assert!(p.order.is_empty());
    }

    #[test]
    fn filter_preserves_everything() {
        let f = RelNode::Filter {
            input: Box::new(trades_get()),
            predicate: ScalarExpr::binary(
                BinOp::Gt,
                ScalarExpr::col("Price", SqlType::Float8),
                ScalarExpr::i64(0),
            ),
        };
        let p = f.props();
        assert_eq!(p.output.len(), 3);
        assert_eq!(p.ord_col.as_deref(), Some(crate::ORD_COL));
    }

    #[test]
    fn project_keeps_ord_col_only_if_passed_through() {
        let keep = RelNode::Project {
            input: Box::new(trades_get()),
            items: vec![
                (crate::ORD_COL.into(), ScalarExpr::col(crate::ORD_COL, SqlType::Int8)),
                ("Price".into(), ScalarExpr::col("Price", SqlType::Float8)),
            ],
        };
        assert_eq!(keep.props().ord_col.as_deref(), Some(crate::ORD_COL));

        let drop = RelNode::Project {
            input: Box::new(trades_get()),
            items: vec![("Price".into(), ScalarExpr::col("Price", SqlType::Float8))],
        };
        assert!(drop.props().ord_col.is_none());
    }

    #[test]
    fn aggregate_destroys_order_and_sets_keys() {
        let agg = RelNode::Aggregate {
            input: Box::new(trades_get()),
            group_by: vec![("Symbol".into(), ScalarExpr::col("Symbol", SqlType::Varchar))],
            aggs: vec![(
                "mx".into(),
                ScalarExpr::Agg {
                    func: crate::AggFunc::Max,
                    arg: Some(Box::new(ScalarExpr::col("Price", SqlType::Float8))),
                },
            )],
        };
        let p = agg.props();
        assert!(!p.preserves_order);
        assert!(p.ord_col.is_none());
        assert_eq!(p.keys, vec![vec!["Symbol".to_string()]]);
        assert_eq!(p.output.len(), 2);
        assert_eq!(p.output[1].ty, SqlType::Float8);
    }

    #[test]
    fn scalar_aggregate_has_singleton_key() {
        let agg = RelNode::Aggregate {
            input: Box::new(trades_get()),
            group_by: vec![],
            aggs: vec![("n".into(), ScalarExpr::Agg { func: crate::AggFunc::Count, arg: None })],
        };
        assert_eq!(agg.props().keys, vec![Vec::<String>::new()]);
    }

    #[test]
    fn left_join_makes_right_nullable_and_disambiguates() {
        let quotes = RelNode::get(
            "quotes",
            vec![
                ColumnDef::new("Symbol", SqlType::Varchar),
                ColumnDef::not_null("Bid", SqlType::Float8),
            ],
        );
        let j = RelNode::Join {
            kind: JoinKind::LeftOuter,
            left: Box::new(trades_get()),
            right: Box::new(quotes),
            on: ScalarExpr::Const(Datum::Bool(true)),
        };
        let p = j.props();
        assert_eq!(p.output.len(), 5);
        let dup = p.output.iter().find(|c| c.name == "Symbol_r").unwrap();
        assert!(dup.nullable);
        let bid = p.output.iter().find(|c| c.name == "Bid").unwrap();
        assert!(bid.nullable, "left join right side must become nullable");
        assert_eq!(p.ord_col.as_deref(), Some(crate::ORD_COL));
    }

    #[test]
    fn window_appends_columns() {
        let w = RelNode::Window {
            input: Box::new(trades_get()),
            items: vec![(
                "rn".into(),
                ScalarExpr::Window {
                    func: crate::WinFunc::RowNumber,
                    args: vec![],
                    partition_by: vec![],
                    order_by: vec![],
                },
            )],
        };
        let p = w.props();
        assert_eq!(p.output.len(), 4);
        assert_eq!(p.output[3].name, "rn");
        assert_eq!(p.output[3].ty, SqlType::Int8);
        assert_eq!(p.ord_col.as_deref(), Some(crate::ORD_COL));
    }

    #[test]
    fn sort_sets_order() {
        let s = RelNode::Sort {
            input: Box::new(trades_get()),
            keys: vec![SortKey::desc("Price", SqlType::Float8)],
        };
        let p = s.props();
        assert_eq!(p.order.len(), 1);
        assert!(matches!(p.order[0].dir, SortDir::Desc));
    }

    #[test]
    fn explain_renders_tree() {
        let f = RelNode::Filter {
            input: Box::new(trades_get()),
            predicate: ScalarExpr::Const(Datum::Bool(true)),
        };
        let text = f.explain();
        assert!(text.contains("xtra_filter"));
        assert!(text.contains("  xtra_get(trades)"));
    }

    #[test]
    fn node_count_counts_all() {
        let f = RelNode::Filter {
            input: Box::new(trades_get()),
            predicate: ScalarExpr::Const(Datum::Bool(true)),
        };
        assert_eq!(f.node_count(), 2);
    }

    #[test]
    fn rewrite_bottom_up() {
        let f = RelNode::Filter {
            input: Box::new(trades_get()),
            predicate: ScalarExpr::Const(Datum::Bool(true)),
        };
        // Rename the scanned table.
        let rewritten = f.rewrite(&mut |node| match node {
            RelNode::Get { cols, ord_col, .. } => {
                RelNode::Get { table: "trades_hist".into(), cols, ord_col }
            }
            other => other,
        });
        assert!(rewritten.explain().contains("trades_hist"));
    }
}
