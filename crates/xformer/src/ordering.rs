//! Transparency: ordering elision.
//!
//! Ordering is a first-class citizen in Q but not in SQL, so the binder
//! conservatively injects `ORDER BY ordcol` everywhere. This pass removes
//! the orderings that are *unobservable*, using the order-preservation
//! property on XTRA operators (paper §3.3): "consider a nested query in
//! which the outer query performs a scalar aggregation on the result of
//! the inner query — the Xformer can remove the ordering requirement on
//! the inner query."
//!
//! A Sort is kept only where its order can be observed:
//! * at the root (the application sees rows in order),
//! * feeding an order-sensitive aggregate (`first`/`last`),
//! * feeding a Limit (take-n depends on order),
//! * feeding a Window with an empty ORDER BY (none in our binder).

use crate::XformReport;
use xtra::{AggFunc, RelNode, ScalarExpr};

/// Apply ordering elision.
pub fn apply(plan: RelNode, report: &mut XformReport) -> RelNode {
    walk(&plan, true, report)
}

/// Does any aggregate item depend on input order?
fn order_sensitive_aggs(aggs: &[(String, ScalarExpr)]) -> bool {
    fn sensitive(e: &ScalarExpr) -> bool {
        match e {
            ScalarExpr::Agg { func: AggFunc::First | AggFunc::Last, .. } => true,
            ScalarExpr::Agg { .. } | ScalarExpr::Column { .. } | ScalarExpr::Const(_) => false,
            ScalarExpr::Binary { lhs, rhs, .. } => sensitive(lhs) || sensitive(rhs),
            ScalarExpr::Unary { arg, .. } | ScalarExpr::Cast { arg, .. } => sensitive(arg),
            ScalarExpr::Func { args, .. } => args.iter().any(sensitive),
            ScalarExpr::Case { branches, else_result } => {
                branches.iter().any(|(c, r)| sensitive(c) || sensitive(r))
                    || else_result.as_ref().map(|e| sensitive(e)).unwrap_or(false)
            }
            ScalarExpr::InList { needle, list, .. } => {
                sensitive(needle) || list.iter().any(sensitive)
            }
            ScalarExpr::IsNull { arg, .. } => sensitive(arg),
            ScalarExpr::InSubquery { needle, .. } => sensitive(needle),
            ScalarExpr::Window { .. } => false,
        }
    }
    aggs.iter().any(|(_, e)| sensitive(e))
}

fn walk(node: &RelNode, order_needed: bool, report: &mut XformReport) -> RelNode {
    match node {
        RelNode::Sort { input, keys } => {
            if order_needed {
                // This sort is observable; below it, order delivery is
                // this sort's job, so children need not maintain one.
                RelNode::Sort {
                    input: Box::new(walk(input, false, report)),
                    keys: keys.clone(),
                }
            } else {
                // Unobservable: elide the operator entirely.
                report.sorts_elided += 1;
                walk(input, false, report)
            }
        }
        RelNode::Aggregate { input, group_by, aggs } => {
            let needs_order = order_sensitive_aggs(aggs);
            RelNode::Aggregate {
                input: Box::new(walk(input, needs_order, report)),
                group_by: group_by.clone(),
                aggs: aggs.clone(),
            }
        }
        RelNode::Limit { input, limit, offset } => {
            // Which rows a limit keeps depends on order.
            RelNode::Limit {
                input: Box::new(walk(input, true, report)),
                limit: *limit,
                offset: *offset,
            }
        }
        RelNode::Filter { input, predicate } => RelNode::Filter {
            input: Box::new(walk(input, order_needed, report)),
            predicate: predicate.clone(),
        },
        RelNode::Project { input, items } => RelNode::Project {
            input: Box::new(walk(input, order_needed, report)),
            items: items.clone(),
        },
        RelNode::Window { input, items } => {
            // Window functions carry their own ORDER BY clauses; the
            // input's delivery order is irrelevant.
            RelNode::Window {
                input: Box::new(walk(input, false, report)),
                items: items.clone(),
            }
        }
        RelNode::Join { kind, left, right, on } => RelNode::Join {
            kind: *kind,
            // Join implementations do not promise to preserve input
            // order; any required order is re-established above.
            left: Box::new(walk(left, false, report)),
            right: Box::new(walk(right, false, report)),
            on: on.clone(),
        },
        RelNode::SetOp { kind, left, right } => RelNode::SetOp {
            kind: *kind,
            left: Box::new(walk(left, false, report)),
            right: Box::new(walk(right, false, report)),
        },
        RelNode::Get { .. } | RelNode::Values { .. } => node.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtra::{ColumnDef, ScalarExpr, SortKey, SqlType, ORD_COL};

    fn table() -> RelNode {
        RelNode::get(
            "t",
            vec![
                ColumnDef::not_null(ORD_COL, SqlType::Int8),
                ColumnDef::new("Price", SqlType::Float8),
            ],
        )
    }

    fn sorted(input: RelNode) -> RelNode {
        RelNode::Sort {
            input: Box::new(input),
            keys: vec![SortKey::asc(ORD_COL, SqlType::Int8)],
        }
    }

    fn max_agg(input: RelNode) -> RelNode {
        RelNode::Aggregate {
            input: Box::new(input),
            group_by: vec![],
            aggs: vec![(
                "mx".into(),
                ScalarExpr::Agg {
                    func: AggFunc::Max,
                    arg: Some(Box::new(ScalarExpr::col("Price", SqlType::Float8))),
                },
            )],
        }
    }

    #[test]
    fn root_sort_is_kept() {
        let plan = sorted(table());
        let mut report = XformReport::default();
        let out = apply(plan.clone(), &mut report);
        assert_eq!(out, plan);
        assert_eq!(report.sorts_elided, 0);
    }

    #[test]
    fn sort_under_scalar_aggregate_is_elided() {
        // The paper's exact example: scalar aggregation over an ordered
        // inner query — the inner ordering is unobservable.
        let plan = max_agg(sorted(table()));
        let mut report = XformReport::default();
        let out = apply(plan, &mut report);
        assert_eq!(report.sorts_elided, 1);
        assert!(!out.explain().contains("xtra_sort"), "{}", out.explain());
    }

    #[test]
    fn sort_under_first_aggregate_is_kept() {
        let plan = RelNode::Aggregate {
            input: Box::new(sorted(table())),
            group_by: vec![],
            aggs: vec![(
                "f".into(),
                ScalarExpr::Agg {
                    func: AggFunc::First,
                    arg: Some(Box::new(ScalarExpr::col("Price", SqlType::Float8))),
                },
            )],
        };
        let mut report = XformReport::default();
        let out = apply(plan, &mut report);
        assert_eq!(report.sorts_elided, 0, "first() depends on order");
        assert!(out.explain().contains("xtra_sort"));
    }

    #[test]
    fn sort_under_limit_is_kept() {
        let plan = RelNode::Limit {
            input: Box::new(sorted(table())),
            limit: Some(5),
            offset: 0,
        };
        let mut report = XformReport::default();
        let out = apply(plan, &mut report);
        assert_eq!(report.sorts_elided, 0);
        assert!(out.explain().contains("xtra_sort"));
    }

    #[test]
    fn redundant_stacked_sorts_collapse() {
        let plan = sorted(sorted(table()));
        let mut report = XformReport::default();
        let out = apply(plan, &mut report);
        assert_eq!(report.sorts_elided, 1);
        assert_eq!(out.explain().matches("xtra_sort").count(), 1);
    }

    #[test]
    fn join_inputs_lose_their_sorts() {
        let plan = sorted(RelNode::Join {
            kind: xtra::JoinKind::Inner,
            left: Box::new(sorted(table())),
            right: Box::new(sorted(RelNode::get(
                "u",
                vec![ColumnDef::new("x", SqlType::Int8)],
            ))),
            on: ScalarExpr::Const(xtra::Datum::Bool(true)),
        });
        let mut report = XformReport::default();
        let out = apply(plan, &mut report);
        assert_eq!(report.sorts_elided, 2);
        // Only the root sort remains.
        assert_eq!(out.explain().matches("xtra_sort").count(), 1);
    }

    #[test]
    fn grouped_aggregate_without_first_last_drops_input_sort() {
        let plan = RelNode::Aggregate {
            input: Box::new(sorted(table())),
            group_by: vec![("Price".into(), ScalarExpr::col("Price", SqlType::Float8))],
            aggs: vec![("n".into(), ScalarExpr::Agg { func: AggFunc::Count, arg: None })],
        };
        let mut report = XformReport::default();
        apply(plan, &mut report);
        assert_eq!(report.sorts_elided, 1);
    }
}
