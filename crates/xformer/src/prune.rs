//! Performance: column pruning.
//!
//! Each XTRA node is annotated with all the columns it can produce, but
//! "the requested columns at each node may be however a small subset of
//! the available columns" (paper §3.3). Against the evaluation's
//! 500-column tables, serializing every available column would bloat the
//! SQL text by orders of magnitude and hurt backend performance. This
//! pass pushes the set of *required* columns down the tree and narrows
//! every operator to it.

use crate::XformReport;
use std::collections::BTreeSet;
use xtra::{RelNode, ScalarExpr};

/// Apply column pruning: the root requires all of its output columns.
pub fn apply(plan: RelNode, report: &mut XformReport) -> RelNode {
    let required: BTreeSet<String> =
        plan.props().output.iter().map(|c| c.name.clone()).collect();
    prune(&plan, &required, report)
}

fn cols_of(e: &ScalarExpr) -> Vec<String> {
    let mut v = Vec::new();
    e.collect_columns(&mut v);
    v
}

/// Prune the plans of nested `IN (SELECT ...)` subqueries; each subquery
/// requires all of its own output columns.
fn prune_scalar(e: &ScalarExpr, report: &mut XformReport) -> ScalarExpr {
    e.rewrite(&mut |node| match node {
        ScalarExpr::InSubquery { needle, plan, negated } => {
            let required: BTreeSet<String> =
                plan.props().output.iter().map(|c| c.name.clone()).collect();
            ScalarExpr::InSubquery {
                needle,
                plan: Box::new(prune(&plan, &required, report)),
                negated,
            }
        }
        other => other,
    })
}

fn prune(node: &RelNode, required: &BTreeSet<String>, report: &mut XformReport) -> RelNode {
    match node {
        RelNode::Get { table, cols, ord_col } => {
            let kept: Vec<_> = cols.iter().filter(|c| required.contains(&c.name)).cloned().collect();
            // A scan of zero columns is not valid SQL; keep the first
            // column as a witness.
            let kept = if kept.is_empty() {
                cols.first().cloned().into_iter().collect()
            } else {
                kept
            };
            report.columns_pruned += cols.len() - kept.len();
            let ord_col = ord_col.clone().filter(|oc| kept.iter().any(|c| c.name == *oc));
            RelNode::Get { table: table.clone(), cols: kept, ord_col }
        }
        RelNode::Values { schema, rows } => {
            let keep_idx: Vec<usize> = schema
                .iter()
                .enumerate()
                .filter(|(_, c)| required.contains(&c.name))
                .map(|(i, _)| i)
                .collect();
            let keep_idx = if keep_idx.is_empty() { vec![0] } else { keep_idx };
            report.columns_pruned += schema.len() - keep_idx.len();
            RelNode::Values {
                schema: keep_idx.iter().map(|&i| schema[i].clone()).collect(),
                rows: rows
                    .iter()
                    .map(|r| keep_idx.iter().map(|&i| r[i].clone()).collect())
                    .collect(),
            }
        }
        RelNode::Project { input, items } => {
            let kept: Vec<_> =
                items.iter().filter(|(n, _)| required.contains(n)).cloned().collect();
            let kept = if kept.is_empty() {
                items.first().cloned().into_iter().collect()
            } else {
                kept
            };
            report.columns_pruned += items.len() - kept.len();
            let mut child_req = BTreeSet::new();
            for (_, e) in &kept {
                child_req.extend(cols_of(e));
            }
            RelNode::Project { input: Box::new(prune(input, &child_req, report)), items: kept }
        }
        RelNode::Filter { input, predicate } => {
            let mut child_req = required.clone();
            child_req.extend(cols_of(predicate));
            RelNode::Filter {
                input: Box::new(prune(input, &child_req, report)),
                predicate: prune_scalar(predicate, report),
            }
        }
        RelNode::Join { kind, left, right, on } => {
            let mut needed = required.clone();
            needed.extend(cols_of(on));
            let l_names: BTreeSet<String> =
                left.props().output.iter().map(|c| c.name.clone()).collect();
            let r_names: BTreeSet<String> =
                right.props().output.iter().map(|c| c.name.clone()).collect();
            let l_req: BTreeSet<String> = needed.intersection(&l_names).cloned().collect();
            let r_req: BTreeSet<String> = needed.intersection(&r_names).cloned().collect();
            RelNode::Join {
                kind: *kind,
                left: Box::new(prune(left, &l_req, report)),
                right: Box::new(prune(right, &r_req, report)),
                on: on.clone(),
            }
        }
        RelNode::Aggregate { input, group_by, aggs } => {
            // Grouping expressions are semantically load-bearing; keep
            // them all. Aggregates not referenced upstream are dropped.
            let kept_aggs: Vec<_> =
                aggs.iter().filter(|(n, _)| required.contains(n)).cloned().collect();
            let kept_aggs = if kept_aggs.is_empty() && group_by.is_empty() {
                aggs.first().cloned().into_iter().collect()
            } else {
                kept_aggs
            };
            report.columns_pruned += aggs.len() - kept_aggs.len();
            let mut child_req = BTreeSet::new();
            for (_, e) in group_by {
                child_req.extend(cols_of(e));
            }
            for (_, e) in &kept_aggs {
                child_req.extend(cols_of(e));
            }
            RelNode::Aggregate {
                input: Box::new(prune(input, &child_req, report)),
                group_by: group_by.clone(),
                aggs: kept_aggs,
            }
        }
        RelNode::Window { input, items } => {
            let kept: Vec<_> =
                items.iter().filter(|(n, _)| required.contains(n)).cloned().collect();
            report.columns_pruned += items.len() - kept.len();
            let mut child_req: BTreeSet<String> = required
                .iter()
                .filter(|n| !items.iter().any(|(alias, _)| alias == *n))
                .cloned()
                .collect();
            for (_, e) in &kept {
                child_req.extend(cols_of(e));
            }
            RelNode::Window { input: Box::new(prune(input, &child_req, report)), items: kept }
        }
        RelNode::Sort { input, keys } => {
            let mut child_req = required.clone();
            for k in keys {
                child_req.extend(cols_of(&k.expr));
            }
            RelNode::Sort { input: Box::new(prune(input, &child_req, report)), keys: keys.clone() }
        }
        RelNode::Limit { input, limit, offset } => RelNode::Limit {
            input: Box::new(prune(input, required, report)),
            limit: *limit,
            offset: *offset,
        },
        RelNode::SetOp { kind, left, right } => RelNode::SetOp {
            kind: *kind,
            left: Box::new(prune(left, required, report)),
            right: Box::new(prune(right, required, report)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtra::{BinOp, ColumnDef, SortKey, SqlType, ORD_COL};

    /// A wide table in the spirit of the paper's 500-column workload.
    fn wide(n: usize) -> RelNode {
        let mut cols = vec![ColumnDef::not_null(ORD_COL, SqlType::Int8)];
        for i in 0..n {
            cols.push(ColumnDef::new(format!("c{i}"), SqlType::Float8));
        }
        RelNode::get("wide", cols)
    }

    #[test]
    fn scan_narrows_to_projected_columns() {
        let plan = RelNode::Project {
            input: Box::new(wide(500)),
            items: vec![
                (ORD_COL.into(), ScalarExpr::col(ORD_COL, SqlType::Int8)),
                ("c7".into(), ScalarExpr::col("c7", SqlType::Float8)),
            ],
        };
        let mut report = XformReport::default();
        let out = apply(plan, &mut report);
        assert_eq!(report.columns_pruned, 499, "499 of 501 scan columns dropped");
        match out {
            RelNode::Project { input, .. } => match *input {
                RelNode::Get { cols, .. } => {
                    assert_eq!(cols.len(), 2);
                }
                other => panic!("expected get, got {}", other.explain()),
            },
            other => panic!("expected project, got {}", other.explain()),
        }
    }

    #[test]
    fn filter_columns_are_retained() {
        let plan = RelNode::Project {
            input: Box::new(RelNode::Filter {
                input: Box::new(wide(10)),
                predicate: ScalarExpr::binary(
                    BinOp::Gt,
                    ScalarExpr::col("c9", SqlType::Float8),
                    ScalarExpr::i64(0),
                ),
            }),
            items: vec![("c0".into(), ScalarExpr::col("c0", SqlType::Float8))],
        };
        let mut report = XformReport::default();
        let out = apply(plan, &mut report);
        let text = out.explain();
        // c9 survives because the filter needs it, even though the
        // projection doesn't.
        fn scan_cols(n: &RelNode) -> Vec<String> {
            match n {
                RelNode::Get { cols, .. } => cols.iter().map(|c| c.name.clone()).collect(),
                _ => n.inputs().into_iter().flat_map(scan_cols).collect(),
            }
        }
        let cols = scan_cols(&out);
        assert!(cols.contains(&"c0".to_string()), "{text}");
        assert!(cols.contains(&"c9".to_string()), "{text}");
        assert_eq!(cols.len(), 2, "{text}");
    }

    #[test]
    fn sort_keys_are_retained() {
        let plan = RelNode::Sort {
            input: Box::new(RelNode::Project {
                input: Box::new(wide(5)),
                items: vec![
                    ("c0".into(), ScalarExpr::col("c0", SqlType::Float8)),
                    (ORD_COL.into(), ScalarExpr::col(ORD_COL, SqlType::Int8)),
                ],
            }),
            keys: vec![SortKey::asc(ORD_COL, SqlType::Int8)],
        };
        let mut report = XformReport::default();
        let out = apply(plan, &mut report);
        assert!(out.props().has_column(ORD_COL));
    }

    #[test]
    fn aggregate_inputs_narrow_to_args() {
        let plan = RelNode::Aggregate {
            input: Box::new(wide(100)),
            group_by: vec![("c0".into(), ScalarExpr::col("c0", SqlType::Float8))],
            aggs: vec![(
                "s".into(),
                ScalarExpr::Agg {
                    func: xtra::AggFunc::Sum,
                    arg: Some(Box::new(ScalarExpr::col("c1", SqlType::Float8))),
                },
            )],
        };
        let mut report = XformReport::default();
        let out = apply(plan, &mut report);
        match out {
            RelNode::Aggregate { input, .. } => match *input {
                RelNode::Get { cols, .. } => assert_eq!(cols.len(), 2),
                other => panic!("expected get, got {}", other.explain()),
            },
            other => panic!("expected aggregate, got {}", other.explain()),
        }
    }

    #[test]
    fn unreferenced_aggregates_are_dropped() {
        let agg = RelNode::Aggregate {
            input: Box::new(wide(10)),
            group_by: vec![],
            aggs: vec![
                (
                    "keep".into(),
                    ScalarExpr::Agg {
                        func: xtra::AggFunc::Sum,
                        arg: Some(Box::new(ScalarExpr::col("c1", SqlType::Float8))),
                    },
                ),
                (
                    "drop".into(),
                    ScalarExpr::Agg {
                        func: xtra::AggFunc::Max,
                        arg: Some(Box::new(ScalarExpr::col("c2", SqlType::Float8))),
                    },
                ),
            ],
        };
        let plan = RelNode::Project {
            input: Box::new(agg),
            items: vec![("keep".into(), ScalarExpr::col("keep", SqlType::Float8))],
        };
        let mut report = XformReport::default();
        let out = apply(plan, &mut report);
        assert!(report.columns_pruned > 0);
        assert!(!format!("{out:?}").contains("\"drop\""));
    }

    #[test]
    fn join_split_by_side() {
        let right = RelNode::Project {
            input: Box::new(wide(5)),
            items: vec![
                ("r0".into(), ScalarExpr::col("c0", SqlType::Float8)),
                ("r1".into(), ScalarExpr::col("c1", SqlType::Float8)),
            ],
        };
        let join = RelNode::Join {
            kind: xtra::JoinKind::Inner,
            left: Box::new(wide(5)),
            right: Box::new(right),
            on: ScalarExpr::binary(
                BinOp::Eq,
                ScalarExpr::col("c0", SqlType::Float8),
                ScalarExpr::col("r0", SqlType::Float8),
            ),
        };
        let plan = RelNode::Project {
            input: Box::new(join),
            items: vec![("r1".into(), ScalarExpr::col("r1", SqlType::Float8))],
        };
        let mut report = XformReport::default();
        let out = apply(plan, &mut report);
        let props_ok = out.props().has_column("r1");
        assert!(props_ok);
        assert!(report.columns_pruned > 0);
    }

    #[test]
    fn pruning_is_idempotent() {
        let plan = RelNode::Project {
            input: Box::new(wide(50)),
            items: vec![("c3".into(), ScalarExpr::col("c3", SqlType::Float8))],
        };
        let mut r1 = XformReport::default();
        let once = apply(plan, &mut r1);
        let mut r2 = XformReport::default();
        let twice = apply(once.clone(), &mut r2);
        assert_eq!(once, twice);
        assert_eq!(r2.columns_pruned, 0);
    }
}
