//! # xformer — XTRA tree transformations
//!
//! The Xformer (paper §3.3) rewrites bound XTRA trees before SQL
//! serialization, for three purposes:
//!
//! * **Correctness** — Q's two-valued null logic is imposed on the
//!   three-valued SQL backend by rewriting strict equalities into
//!   `IS NOT DISTINCT FROM` predicates ([`null_logic`]).
//! * **Performance** — each XTRA node is annotated with all columns it
//!   *can* produce, but the requested columns are often a small subset;
//!   column pruning keeps the serialized SQL from bloating, which matters
//!   enormously for the paper's 500-column tables ([`prune`]).
//! * **Transparency** — Q's ordered-list semantics require `ORDER BY`
//!   clauses on the implicit order column, but the order-preservation
//!   property lets the Xformer *elide* ordering where it is unobservable,
//!   e.g. under a scalar aggregation ([`ordering`]).
//!
//! Rules are independent and composable; [`Xformer::apply`] runs the
//! configured set and reports which rules fired (instrumentation feeding
//! the Figure 7 stage-split harness).

pub mod null_logic;
pub mod ordering;
pub mod prune;

use xtra::RelNode;

/// Which transformations to run. Defaults to all (production behaviour);
/// benches toggle individual rules for the ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XformConfig {
    /// Correctness: 2-valued null logic.
    pub null_logic: bool,
    /// Performance: column pruning.
    pub column_pruning: bool,
    /// Transparency: ordering elision.
    pub ordering: bool,
}

impl Default for XformConfig {
    fn default() -> Self {
        XformConfig { null_logic: true, column_pruning: true, ordering: true }
    }
}

/// Per-rule fire counts from one transformation pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct XformReport {
    /// Equality predicates rewritten to `IS NOT DISTINCT FROM`.
    pub null_rewrites: usize,
    /// Columns removed by pruning (summed over all Get/Project nodes).
    pub columns_pruned: usize,
    /// Sort operators elided.
    pub sorts_elided: usize,
}

impl XformReport {
    /// Total rule firings.
    pub fn total(&self) -> usize {
        self.null_rewrites + self.columns_pruned + self.sorts_elided
    }
}

/// The transformation driver.
#[derive(Debug, Clone, Copy, Default)]
pub struct Xformer {
    /// Active configuration.
    pub config: XformConfig,
}

impl Xformer {
    /// Create a transformer with the default (all-on) configuration.
    pub fn new() -> Self {
        Xformer::default()
    }

    /// Create a transformer with an explicit configuration.
    pub fn with_config(config: XformConfig) -> Self {
        Xformer { config }
    }

    /// Run the configured transformations over `plan`.
    pub fn apply(&self, plan: RelNode) -> (RelNode, XformReport) {
        let mut report = XformReport::default();
        // Order matters: correctness first (it only touches scalar
        // expressions), then ordering elision (drops whole operators),
        // then pruning (which sees the final operator set).
        let plan = if self.config.null_logic {
            null_logic::apply(plan, &mut report)
        } else {
            plan
        };
        let plan = if self.config.ordering {
            ordering::apply(plan, &mut report)
        } else {
            plan
        };
        let plan = if self.config.column_pruning {
            prune::apply(plan, &mut report)
        } else {
            plan
        };
        (plan, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtra::{BinOp, ColumnDef, ScalarExpr, SqlType, ORD_COL};

    fn sample() -> RelNode {
        RelNode::Filter {
            input: Box::new(RelNode::get(
                "t",
                vec![
                    ColumnDef::not_null(ORD_COL, SqlType::Int8),
                    ColumnDef::new("a", SqlType::Int8),
                    ColumnDef::new("b", SqlType::Int8),
                ],
            )),
            predicate: ScalarExpr::binary(
                BinOp::Eq,
                ScalarExpr::col("a", SqlType::Int8),
                ScalarExpr::i64(1),
            ),
        }
    }

    #[test]
    fn default_config_runs_all_rules() {
        let (_, report) = Xformer::new().apply(sample());
        assert!(report.null_rewrites > 0);
    }

    #[test]
    fn disabled_rules_do_not_fire() {
        let cfg = XformConfig { null_logic: false, column_pruning: false, ordering: false };
        let (plan, report) = Xformer::with_config(cfg).apply(sample());
        assert_eq!(report.total(), 0);
        assert_eq!(plan, sample());
    }
}
