//! Correctness: two-valued null logic.
//!
//! In Q, two nulls compare equal; in SQL, `NULL = NULL` is unknown and a
//! filter drops the row. The paper's fix (§3.3): "a transformation is used
//! to replace strict equalities in XTRA expressions with Is Not Distinct
//! From predicate, which provides the needed 2-valued logic for null
//! values when serializing the outgoing SQL query."
//!
//! The rewrite is *nullability-aware*: comparisons whose operands are both
//! provably non-null (NOT NULL columns, non-null constants) are left
//! alone, since `=` and `IS NOT DISTINCT FROM` agree there and plain
//! equality gives backends more optimizer latitude.

use crate::XformReport;
use xtra::{BinOp, ColumnDef, RelNode, ScalarExpr, UnOp};

/// Apply the null-logic rewrite over the whole tree.
pub fn apply(plan: RelNode, report: &mut XformReport) -> RelNode {
    rewrite_node(&plan, report)
}

fn rewrite_node(node: &RelNode, report: &mut XformReport) -> RelNode {
    match node {
        RelNode::Get { .. } | RelNode::Values { .. } => node.clone(),
        RelNode::Filter { input, predicate } => {
            let new_input = rewrite_node(input, report);
            let schema = new_input.props().output;
            RelNode::Filter {
                predicate: rewrite_scalar(predicate, &schema, report),
                input: Box::new(new_input),
            }
        }
        RelNode::Project { input, items } => {
            let new_input = rewrite_node(input, report);
            let schema = new_input.props().output;
            RelNode::Project {
                items: items
                    .iter()
                    .map(|(n, e)| (n.clone(), rewrite_scalar(e, &schema, report)))
                    .collect(),
                input: Box::new(new_input),
            }
        }
        RelNode::Join { kind, left, right, on } => {
            let l = rewrite_node(left, report);
            let r = rewrite_node(right, report);
            // The join condition sees both sides' columns.
            let mut schema = l.props().output;
            schema.extend(r.props().output);
            RelNode::Join {
                kind: *kind,
                on: rewrite_scalar(on, &schema, report),
                left: Box::new(l),
                right: Box::new(r),
            }
        }
        RelNode::Aggregate { input, group_by, aggs } => {
            let new_input = rewrite_node(input, report);
            let schema = new_input.props().output;
            RelNode::Aggregate {
                group_by: group_by
                    .iter()
                    .map(|(n, e)| (n.clone(), rewrite_scalar(e, &schema, report)))
                    .collect(),
                aggs: aggs
                    .iter()
                    .map(|(n, e)| (n.clone(), rewrite_scalar(e, &schema, report)))
                    .collect(),
                input: Box::new(new_input),
            }
        }
        RelNode::Window { input, items } => {
            let new_input = rewrite_node(input, report);
            let schema = new_input.props().output;
            RelNode::Window {
                items: items
                    .iter()
                    .map(|(n, e)| (n.clone(), rewrite_scalar(e, &schema, report)))
                    .collect(),
                input: Box::new(new_input),
            }
        }
        RelNode::Sort { input, keys } => RelNode::Sort {
            input: Box::new(rewrite_node(input, report)),
            keys: keys.clone(),
        },
        RelNode::Limit { input, limit, offset } => RelNode::Limit {
            input: Box::new(rewrite_node(input, report)),
            limit: *limit,
            offset: *offset,
        },
        RelNode::SetOp { kind, left, right } => RelNode::SetOp {
            kind: *kind,
            left: Box::new(rewrite_node(left, report)),
            right: Box::new(rewrite_node(right, report)),
        },
    }
}

/// Can this expression ever evaluate to NULL, given the schema?
fn nullable(e: &ScalarExpr, schema: &[ColumnDef]) -> bool {
    match e {
        ScalarExpr::Column { name, .. } => schema
            .iter()
            .find(|c| c.name == *name)
            .map(|c| c.nullable)
            // Unknown columns: assume nullable (be safe).
            .unwrap_or(true),
        ScalarExpr::Const(d) => d.is_null(),
        ScalarExpr::Binary { lhs, rhs, .. } => nullable(lhs, schema) || nullable(rhs, schema),
        ScalarExpr::Unary { arg, .. } => nullable(arg, schema),
        ScalarExpr::Cast { arg, .. } => nullable(arg, schema),
        ScalarExpr::IsNull { .. } => false,
        ScalarExpr::InList { needle, list, .. } => {
            nullable(needle, schema) || list.iter().any(|e| nullable(e, schema))
        }
        // Aggregates over empty input, window functions at partition
        // edges, CASE without ELSE, arbitrary functions: all nullable.
        _ => true,
    }
}

fn rewrite_scalar(e: &ScalarExpr, schema: &[ColumnDef], report: &mut XformReport) -> ScalarExpr {
    match e {
        ScalarExpr::Binary { op: BinOp::Eq, lhs, rhs } => {
            let l = rewrite_scalar(lhs, schema, report);
            let r = rewrite_scalar(rhs, schema, report);
            if nullable(&l, schema) || nullable(&r, schema) {
                report.null_rewrites += 1;
                ScalarExpr::Binary {
                    op: BinOp::IsNotDistinctFrom,
                    lhs: Box::new(l),
                    rhs: Box::new(r),
                }
            } else {
                ScalarExpr::Binary { op: BinOp::Eq, lhs: Box::new(l), rhs: Box::new(r) }
            }
        }
        ScalarExpr::Binary { op: BinOp::Neq, lhs, rhs } => {
            let l = rewrite_scalar(lhs, schema, report);
            let r = rewrite_scalar(rhs, schema, report);
            if nullable(&l, schema) || nullable(&r, schema) {
                report.null_rewrites += 1;
                ScalarExpr::Unary {
                    op: UnOp::Not,
                    arg: Box::new(ScalarExpr::Binary {
                        op: BinOp::IsNotDistinctFrom,
                        lhs: Box::new(l),
                        rhs: Box::new(r),
                    }),
                }
            } else {
                ScalarExpr::Binary { op: BinOp::Neq, lhs: Box::new(l), rhs: Box::new(r) }
            }
        }
        ScalarExpr::InSubquery { needle, plan, negated } => ScalarExpr::InSubquery {
            needle: Box::new(rewrite_scalar(needle, schema, report)),
            plan: Box::new(rewrite_node(plan, report)),
            negated: *negated,
        },
        // Recurse structurally everywhere else.
        other => other.rewrite(&mut |node| match &node {
            // Already handled above when reached through Binary Eq/Neq;
            // rewrite() visits bottom-up so nested equalities inside CASE
            // branches etc. still need the same treatment.
            ScalarExpr::Binary { op: BinOp::Eq, lhs, rhs } => {
                if nullable(lhs, schema) || nullable(rhs, schema) {
                    report.null_rewrites += 1;
                    ScalarExpr::Binary {
                        op: BinOp::IsNotDistinctFrom,
                        lhs: lhs.clone(),
                        rhs: rhs.clone(),
                    }
                } else {
                    node
                }
            }
            ScalarExpr::Binary { op: BinOp::Neq, lhs, rhs } => {
                if nullable(lhs, schema) || nullable(rhs, schema) {
                    report.null_rewrites += 1;
                    ScalarExpr::Unary {
                        op: UnOp::Not,
                        arg: Box::new(ScalarExpr::Binary {
                            op: BinOp::IsNotDistinctFrom,
                            lhs: lhs.clone(),
                            rhs: rhs.clone(),
                        }),
                    }
                } else {
                    node
                }
            }
            _ => node,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtra::{Datum, SqlType, ORD_COL};

    fn table() -> RelNode {
        RelNode::get(
            "t",
            vec![
                ColumnDef::not_null(ORD_COL, SqlType::Int8),
                ColumnDef::new("Symbol", SqlType::Varchar),
                ColumnDef::not_null("id", SqlType::Int8),
            ],
        )
    }

    fn eq(l: ScalarExpr, r: ScalarExpr) -> ScalarExpr {
        ScalarExpr::binary(BinOp::Eq, l, r)
    }

    #[test]
    fn nullable_equality_becomes_is_not_distinct_from() {
        let plan = RelNode::Filter {
            input: Box::new(table()),
            predicate: eq(ScalarExpr::col("Symbol", SqlType::Varchar), ScalarExpr::str("GOOG")),
        };
        let mut report = XformReport::default();
        let out = apply(plan, &mut report);
        assert_eq!(report.null_rewrites, 1);
        match out {
            RelNode::Filter { predicate, .. } => {
                assert!(matches!(
                    predicate,
                    ScalarExpr::Binary { op: BinOp::IsNotDistinctFrom, .. }
                ));
            }
            other => panic!("expected filter, got {}", other.explain()),
        }
    }

    #[test]
    fn non_nullable_equality_is_left_alone() {
        let plan = RelNode::Filter {
            input: Box::new(table()),
            predicate: eq(ScalarExpr::col("id", SqlType::Int8), ScalarExpr::i64(1)),
        };
        let mut report = XformReport::default();
        let out = apply(plan, &mut report);
        assert_eq!(report.null_rewrites, 0);
        match out {
            RelNode::Filter { predicate, .. } => {
                assert!(matches!(predicate, ScalarExpr::Binary { op: BinOp::Eq, .. }));
            }
            other => panic!("expected filter, got {}", other.explain()),
        }
    }

    #[test]
    fn inequality_becomes_negated_null_safe_equality() {
        let plan = RelNode::Filter {
            input: Box::new(table()),
            predicate: ScalarExpr::binary(
                BinOp::Neq,
                ScalarExpr::col("Symbol", SqlType::Varchar),
                ScalarExpr::str("GOOG"),
            ),
        };
        let mut report = XformReport::default();
        let out = apply(plan, &mut report);
        assert_eq!(report.null_rewrites, 1);
        match out {
            RelNode::Filter { predicate, .. } => {
                assert!(matches!(predicate, ScalarExpr::Unary { op: UnOp::Not, .. }));
            }
            other => panic!("expected filter, got {}", other.explain()),
        }
    }

    #[test]
    fn join_conditions_are_rewritten() {
        let plan = RelNode::Join {
            kind: xtra::JoinKind::Inner,
            left: Box::new(table()),
            right: Box::new(RelNode::get(
                "u",
                vec![ColumnDef::new("Symbol2", SqlType::Varchar)],
            )),
            on: eq(
                ScalarExpr::col("Symbol", SqlType::Varchar),
                ScalarExpr::col("Symbol2", SqlType::Varchar),
            ),
        };
        let mut report = XformReport::default();
        apply(plan, &mut report);
        assert_eq!(report.null_rewrites, 1);
    }

    #[test]
    fn null_constant_comparisons_are_rewritten() {
        let plan = RelNode::Filter {
            input: Box::new(table()),
            predicate: eq(
                ScalarExpr::col("id", SqlType::Int8),
                ScalarExpr::Const(Datum::Null(SqlType::Int8)),
            ),
        };
        let mut report = XformReport::default();
        apply(plan, &mut report);
        assert_eq!(report.null_rewrites, 1, "NULL literal forces null-safe compare");
    }

    #[test]
    fn nested_equalities_in_case_are_rewritten() {
        let case = ScalarExpr::Case {
            branches: vec![(
                eq(ScalarExpr::col("Symbol", SqlType::Varchar), ScalarExpr::str("X")),
                ScalarExpr::i64(1),
            )],
            else_result: Some(Box::new(ScalarExpr::i64(0))),
        };
        let plan = RelNode::Project {
            input: Box::new(table()),
            items: vec![("flag".into(), case)],
        };
        let mut report = XformReport::default();
        apply(plan, &mut report);
        assert_eq!(report.null_rewrites, 1);
    }

    #[test]
    fn comparisons_other_than_equality_untouched() {
        let plan = RelNode::Filter {
            input: Box::new(table()),
            predicate: ScalarExpr::binary(
                BinOp::Lt,
                ScalarExpr::col("Symbol", SqlType::Varchar),
                ScalarExpr::str("M"),
            ),
        };
        let mut report = XformReport::default();
        let out = apply(plan, &mut report);
        assert_eq!(report.null_rewrites, 0);
        match out {
            RelNode::Filter { predicate, .. } => {
                assert!(matches!(predicate, ScalarExpr::Binary { op: BinOp::Lt, .. }));
            }
            other => panic!("expected filter, got {}", other.explain()),
        }
    }
}
