//! Wide analytical tables.
//!
//! The paper's evaluation tables have "more than 500 columns" (§6) —
//! that width is what makes column pruning (§3.3) a first-order
//! performance concern for the serialized SQL. Each generated table has
//! a join key `k`, a grouping column `grp`, and `metrics` numeric
//! columns named `m0..m{n-1}`.

use qlang::value::{Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Wide-table generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct WideConfig {
    /// Number of rows.
    pub rows: usize,
    /// Number of metric columns (the paper's tables exceed 500).
    pub metrics: usize,
    /// Number of distinct join-key values.
    pub key_cardinality: usize,
    /// Number of distinct group values.
    pub groups: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WideConfig {
    fn default() -> Self {
        WideConfig { rows: 100, metrics: 500, key_cardinality: 50, groups: 5, seed: 7 }
    }
}

/// Generate one wide table.
pub fn wide_table(cfg: &WideConfig) -> Table {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut names: Vec<String> = vec!["k".into(), "grp".into()];
    let mut columns: Vec<Value> = Vec::with_capacity(cfg.metrics + 2);

    // When the requested cardinality covers all rows, emit a unique
    // (shuffled) key per row — join-friendly, star-schema-style. Smaller
    // cardinalities produce duplicate keys for group-join scenarios.
    let keys: Vec<i64> = if cfg.key_cardinality >= cfg.rows {
        let mut v: Vec<i64> = (0..cfg.rows as i64).collect();
        for i in (1..v.len()).rev() {
            let j = rng.gen_range(0..=i);
            v.swap(i, j);
        }
        v
    } else {
        (0..cfg.rows).map(|_| rng.gen_range(0..cfg.key_cardinality as i64)).collect()
    };
    let groups: Vec<String> =
        (0..cfg.rows).map(|_| format!("g{}", rng.gen_range(0..cfg.groups))).collect();
    columns.push(Value::Longs(keys));
    columns.push(Value::Symbols(groups));

    for m in 0..cfg.metrics {
        names.push(format!("m{m}"));
        let col: Vec<f64> = (0..cfg.rows).map(|_| rng.gen_range(0.0..1000.0)).collect();
        columns.push(Value::Floats(col));
    }
    Table::new(names, columns).expect("generated columns are equal length")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_matches_paper_scale() {
        let t = wide_table(&WideConfig { rows: 10, metrics: 500, ..WideConfig::default() });
        assert_eq!(t.width(), 502, "500 metrics + key + group");
        assert_eq!(t.rows(), 10);
    }

    #[test]
    fn deterministic() {
        let cfg = WideConfig { rows: 20, metrics: 10, ..WideConfig::default() };
        let a = wide_table(&cfg);
        let b = wide_table(&cfg);
        assert!(Value::Table(Box::new(a)).q_eq(&Value::Table(Box::new(b))));
    }

    #[test]
    fn key_cardinality_respected() {
        let t = wide_table(&WideConfig {
            rows: 200,
            metrics: 2,
            key_cardinality: 5,
            ..WideConfig::default()
        });
        let Some(Value::Longs(keys)) = t.column("k").cloned() else { panic!() };
        assert!(keys.iter().all(|&k| (0..5).contains(&k)));
    }
}
