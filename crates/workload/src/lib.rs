//! # hyperq-workload — workload and data generators
//!
//! The paper's evaluation (§6) runs on a customer-derived *Analytical
//! Workload*: "25 queries that involve three or more wide tables (e.g.,
//! tables with more than 500 columns), joins, and various kinds of
//! analytical aggregate functions." The customer data is proprietary, so
//! this crate generates the same *shape*:
//!
//! * [`taq`] — NYSE-TAQ-style market data (trades and quotes with
//!   symbols, random-walk prices and intraday times), the dataset class
//!   the paper's §2.1 points to;
//! * [`wide`] — wide analytical tables (500+ columns);
//! * [`analytical`] — the 25-query workload over those tables, with
//!   queries 10, 18, 19 and 20 joining more tables than the rest (the
//!   paper observes exactly those queries translating slowest).
//!
//! All generation is seeded and deterministic.

pub mod analytical;
pub mod taq;
pub mod wide;

pub use analytical::{analytical_workload, AnalyticalQuery, WorkloadSpec};
pub use taq::{generate_quotes, generate_trades, TaqConfig};
pub use wide::{wide_table, WideConfig};
