//! NYSE-TAQ-style market data generation.
//!
//! Trades and quotes in the shape of the paper's motivating queries
//! (Example 1): `Date`, `Symbol`, `Time`, plus `Price`/`Size` for trades
//! and `Bid`/`Ask`/sizes for quotes. Prices follow a per-symbol random
//! walk; times are sorted within each day, matching how a ticker plant
//! would land them and what `aj` expects.

use qlang::value::{Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Universe of ticker symbols used by the generators.
pub const SYMBOLS: &[&str] = &[
    "GOOG", "IBM", "MSFT", "AAPL", "ORCL", "INTC", "CSCO", "HPQ", "DELL", "EMC",
];

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct TaqConfig {
    /// Number of rows to generate.
    pub rows: usize,
    /// Number of distinct symbols (capped at [`SYMBOLS`] length).
    pub symbols: usize,
    /// Number of trading days, starting 2016.06.26.
    pub days: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TaqConfig {
    fn default() -> Self {
        TaqConfig { rows: 1000, symbols: 4, days: 2, seed: 42 }
    }
}

/// First trading day used by the generators: 2016.06.26 (SIGMOD'16),
/// as days since 2000-01-01.
pub const BASE_DATE: i32 = 6021;

/// Market open in milliseconds since midnight (09:30).
const OPEN_MS: i32 = 9 * 3_600_000 + 30 * 60_000;
/// Trading session length in milliseconds (6.5 hours).
const SESSION_MS: i32 = 6 * 3_600_000 + 30 * 60_000;

fn gen_frame(cfg: &TaqConfig, rng: &mut StdRng) -> (Vec<i32>, Vec<String>, Vec<i32>) {
    let nsym = cfg.symbols.clamp(1, SYMBOLS.len());
    let mut dates = Vec::with_capacity(cfg.rows);
    let mut syms = Vec::with_capacity(cfg.rows);
    let mut times = Vec::with_capacity(cfg.rows);
    let per_day = cfg.rows / cfg.days.max(1) + 1;
    let mut day_times: Vec<i32> = Vec::with_capacity(per_day);
    let mut day = 0usize;
    for i in 0..cfg.rows {
        if i % per_day == 0 {
            // New day: fresh sorted intraday times.
            day = i / per_day;
            day_times = (0..per_day)
                .map(|_| OPEN_MS + rng.gen_range(0..SESSION_MS))
                .collect();
            day_times.sort_unstable();
        }
        dates.push(BASE_DATE + day as i32);
        syms.push(SYMBOLS[rng.gen_range(0..nsym)].to_string());
        times.push(day_times[i % per_day]);
    }
    (dates, syms, times)
}

/// Generate a trades table: `Date, Symbol, Time, Price, Size`.
pub fn generate_trades(cfg: &TaqConfig) -> Table {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let (dates, syms, times) = gen_frame(cfg, &mut rng);
    // Per-symbol random walk around a per-symbol base price.
    let nsym = cfg.symbols.clamp(1, SYMBOLS.len());
    let mut level: Vec<f64> = (0..nsym).map(|i| 50.0 + 25.0 * i as f64).collect();
    let mut prices = Vec::with_capacity(cfg.rows);
    let mut sizes = Vec::with_capacity(cfg.rows);
    for s in &syms {
        let idx = SYMBOLS.iter().position(|x| x == s).unwrap_or(0).min(nsym - 1);
        level[idx] += rng.gen_range(-0.25..0.25);
        level[idx] = level[idx].max(1.0);
        prices.push((level[idx] * 100.0).round() / 100.0);
        sizes.push(rng.gen_range(1..=100i64) * 100);
    }
    Table::new(
        vec!["Date".into(), "Symbol".into(), "Time".into(), "Price".into(), "Size".into()],
        vec![
            Value::Dates(dates),
            Value::Symbols(syms),
            Value::Times(times),
            Value::Floats(prices),
            Value::Longs(sizes),
        ],
    )
    .expect("generated columns are equal length")
}

/// Generate a quotes table: `Date, Symbol, Time, Bid, Ask, BidSize,
/// AskSize`.
pub fn generate_quotes(cfg: &TaqConfig) -> Table {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(1));
    let (dates, syms, times) = gen_frame(cfg, &mut rng);
    let nsym = cfg.symbols.clamp(1, SYMBOLS.len());
    let mut level: Vec<f64> = (0..nsym).map(|i| 50.0 + 25.0 * i as f64).collect();
    let mut bids = Vec::with_capacity(cfg.rows);
    let mut asks = Vec::with_capacity(cfg.rows);
    let mut bsz = Vec::with_capacity(cfg.rows);
    let mut asz = Vec::with_capacity(cfg.rows);
    for s in &syms {
        let idx = SYMBOLS.iter().position(|x| x == s).unwrap_or(0).min(nsym - 1);
        level[idx] += rng.gen_range(-0.25..0.25);
        level[idx] = level[idx].max(1.0);
        let spread = rng.gen_range(0.01..0.10);
        bids.push(((level[idx] - spread / 2.0) * 100.0).round() / 100.0);
        asks.push(((level[idx] + spread / 2.0) * 100.0).round() / 100.0);
        bsz.push(rng.gen_range(1..=50i64) * 100);
        asz.push(rng.gen_range(1..=50i64) * 100);
    }
    Table::new(
        vec![
            "Date".into(),
            "Symbol".into(),
            "Time".into(),
            "Bid".into(),
            "Ask".into(),
            "BidSize".into(),
            "AskSize".into(),
        ],
        vec![
            Value::Dates(dates),
            Value::Symbols(syms),
            Value::Times(times),
            Value::Floats(bids),
            Value::Floats(asks),
            Value::Longs(bsz),
            Value::Longs(asz),
        ],
    )
    .expect("generated columns are equal length")
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlang::value::Atom;

    #[test]
    fn trades_have_requested_shape() {
        let t = generate_trades(&TaqConfig { rows: 100, symbols: 3, days: 2, seed: 7 });
        assert_eq!(t.rows(), 100);
        assert_eq!(t.names.len(), 5);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = TaqConfig::default();
        let a = generate_trades(&cfg);
        let b = generate_trades(&cfg);
        assert!(Value::Table(Box::new(a)).q_eq(&Value::Table(Box::new(b))));
    }

    #[test]
    fn times_sorted_within_each_day() {
        let t = generate_trades(&TaqConfig { rows: 200, symbols: 2, days: 2, seed: 1 });
        let dates = t.column("Date").unwrap();
        let times = t.column("Time").unwrap();
        for i in 1..t.rows() {
            if dates.index(i).unwrap().q_eq(&dates.index(i - 1).unwrap()) {
                let (Some(Value::Atom(Atom::Time(a))), Some(Value::Atom(Atom::Time(b)))) =
                    (times.index(i - 1), times.index(i))
                else {
                    panic!("bad time cells")
                };
                assert!(a <= b, "times must be non-decreasing within a day");
            }
        }
    }

    #[test]
    fn quotes_have_positive_spread() {
        let q = generate_quotes(&TaqConfig { rows: 300, symbols: 4, days: 1, seed: 9 });
        let (Some(Value::Floats(bids)), Some(Value::Floats(asks))) =
            (q.column("Bid").cloned(), q.column("Ask").cloned())
        else {
            panic!("bad columns")
        };
        for (b, a) in bids.iter().zip(&asks) {
            assert!(a > b, "ask {a} must exceed bid {b}");
        }
    }

    #[test]
    fn symbols_restricted_to_universe_prefix() {
        let t = generate_trades(&TaqConfig { rows: 50, symbols: 2, days: 1, seed: 3 });
        let Some(Value::Symbols(syms)) = t.column("Symbol").cloned() else { panic!() };
        for s in syms {
            assert!(s == "GOOG" || s == "IBM", "unexpected symbol {s}");
        }
    }
}
