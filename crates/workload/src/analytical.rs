//! The 25-query Analytical Workload (paper §6).
//!
//! "All experiments are conducted on an Analytical Workload driven from
//! customer use-cases ... 25 queries that involve three or more wide
//! tables (e.g., tables with more than 500 columns), joins, and various
//! kinds of analytical aggregate functions."
//!
//! Queries rotate through aggregate families (max/min/sum/avg/count,
//! dev/var/med, computed combinations), filters and groupings; queries
//! **10, 18, 19 and 20 join more tables than the others** — the paper
//! singles these out as the slowest to translate "since they involve
//! more tables to join", and the Figure 6 harness checks that the same
//! queries dominate here.

use crate::wide::WideConfig;
use qlang::value::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Number of wide tables (≥ 5; queries 10/18/19/20 join five).
    pub tables: usize,
    /// Metric columns per table (the paper's tables exceed 500).
    pub metrics: usize,
    /// Rows per table.
    pub rows: usize,
    /// Join-key cardinality.
    pub key_cardinality: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec { tables: 5, metrics: 500, rows: 50, key_cardinality: 50, seed: 2016 }
    }
}

/// A tiny spec for fast unit tests (narrow tables, few rows).
pub fn small_spec() -> WorkloadSpec {
    WorkloadSpec { tables: 5, metrics: 12, rows: 20, key_cardinality: 20, seed: 2016 }
}

/// One workload query.
#[derive(Debug, Clone)]
pub struct AnalyticalQuery {
    /// Query number, 1-based (matching the paper's Figure 6 x-axis).
    pub id: usize,
    /// Q query text.
    pub text: String,
    /// How many wide tables the query joins.
    pub tables_joined: usize,
}

/// Table name for index `i` (1-based): `w1`, `w2`, ...
pub fn table_name(i: usize) -> String {
    format!("w{i}")
}

/// Column prefix for table index `i` (1-based): `a`, `b`, `c`, ...
/// Distinct prefixes keep the joined schema unambiguous.
pub fn prefix(i: usize) -> char {
    (b'a' + (i - 1) as u8) as char
}

/// Generate the wide tables for a spec (shared join key `k`,
/// per-table-prefixed group and metric columns).
pub fn tables(spec: &WorkloadSpec) -> Vec<(String, Table)> {
    (1..=spec.tables)
        .map(|i| {
            let base = crate::wide::wide_table(&WideConfig {
                rows: spec.rows,
                metrics: spec.metrics,
                key_cardinality: spec.key_cardinality,
                groups: 5,
                seed: spec.seed.wrapping_add(i as u64),
            });
            // Re-prefix columns: k stays shared; grp/m* get the table
            // prefix so joins produce unambiguous schemas.
            let p = prefix(i);
            let names = base
                .names
                .iter()
                .map(|n| if n == "k" { n.clone() } else { format!("{p}{n}") })
                .collect();
            (table_name(i), Table { names, columns: base.columns })
        })
        .collect()
}

/// Nested equi-join text over tables `1..=n`: `ej[`k; ej[`k; w1; w2]; w3]`.
fn join_text(n: usize) -> String {
    let mut text = table_name(1);
    for i in 2..=n {
        text = format!("ej[`k; {text}; {}]", table_name(i));
    }
    text
}

/// Generate the 25 queries.
pub fn analytical_workload(spec: &WorkloadSpec) -> Vec<AnalyticalQuery> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let m = spec.metrics;
    let mut queries = Vec::with_capacity(25);
    for id in 1..=25usize {
        // The join-heavy quartet of Figure 6.
        let tables_joined = if matches!(id, 10 | 18 | 19 | 20) {
            spec.tables.min(5)
        } else {
            3
        };
        let join = join_text(tables_joined);
        let mcol = |t: usize, i: usize| format!("{}m{}", prefix(t), i % m);
        let c1 = mcol(1, id);
        let c2 = mcol(2, id + 3);
        let c3 = mcol(3, id + 5);
        let filter_col = mcol(2, id + 1);
        let threshold = rng.gen_range(100..900);

        let text = match id % 5 {
            // Scalar analytical aggregates.
            0 => format!(
                "select mx: max {c1}, mn: min {c2}, s: sum {c3}, n: count i from {join} \
                 where {filter_col} > {threshold}.0"
            ),
            // Grouped aggregates.
            1 => format!(
                "select mx: max {c1}, av: avg {c2} by agrp from {join} \
                 where {filter_col} < {threshold}.0"
            ),
            // Statistical aggregates.
            2 => format!(
                "select sd: dev {c1}, vr: var {c2}, md: med {c3} by agrp from {join} \
                 where agrp in `g0`g1`g2"
            ),
            // Computed aggregate expressions.
            3 => format!(
                "select spread: (max {c1}) - min {c1}, ratio: (sum {c2}) % sum {c3} by agrp \
                 from {join} where {filter_col} > {threshold}.0"
            ),
            // Multi-filter scalar rollup.
            _ => format!(
                "select av: avg {c1}, s: sum {c2}, n: count i from {join} \
                 where {filter_col} > 50.0, {c3} < 950.0, agrp in `g0`g1`g2`g3"
            ),
        };
        queries.push(AnalyticalQuery { id, text, tables_joined });
    }
    queries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_25_queries() {
        let qs = analytical_workload(&small_spec());
        assert_eq!(qs.len(), 25);
        assert_eq!(qs[0].id, 1);
        assert_eq!(qs[24].id, 25);
    }

    #[test]
    fn paper_quartet_joins_more_tables() {
        let qs = analytical_workload(&small_spec());
        for q in &qs {
            if matches!(q.id, 10 | 18 | 19 | 20) {
                assert_eq!(q.tables_joined, 5, "query {} should join 5 tables", q.id);
                assert_eq!(q.text.matches("ej[").count(), 4);
            } else {
                assert_eq!(q.tables_joined, 3, "query {} should join 3 tables", q.id);
                assert_eq!(q.text.matches("ej[").count(), 2);
            }
        }
    }

    #[test]
    fn all_queries_parse_as_q() {
        for q in analytical_workload(&small_spec()) {
            qlang::parse(&q.text).unwrap_or_else(|e| panic!("query {} unparseable: {e}\n{}", q.id, q.text));
        }
    }

    #[test]
    fn tables_share_key_but_not_metrics() {
        let ts = tables(&small_spec());
        assert_eq!(ts.len(), 5);
        assert_eq!(ts[0].0, "w1");
        let w1 = &ts[0].1;
        let w2 = &ts[1].1;
        assert!(w1.column("k").is_some());
        assert!(w2.column("k").is_some());
        assert!(w1.column("am0").is_some());
        assert!(w2.column("bm0").is_some());
        assert!(w1.column("bm0").is_none(), "prefixes keep schemas disjoint");
    }

    #[test]
    fn workload_is_deterministic() {
        let a = analytical_workload(&small_spec());
        let b = analytical_workload(&small_spec());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.text, y.text);
        }
    }

    #[test]
    fn default_spec_matches_paper_scale() {
        let spec = WorkloadSpec::default();
        assert!(spec.metrics >= 500, "paper: tables with more than 500 columns");
        assert!(spec.tables >= 3, "paper: three or more wide tables");
    }
}
