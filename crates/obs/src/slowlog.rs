//! A bounded ring buffer of slow queries.
//!
//! Sessions decide *what* is slow (their configured threshold) and the
//! log decides *how much* to keep (its capacity): the newest records
//! evict the oldest. Each record keeps enough to reproduce and explain
//! the query — the Q text as received, the generated SQL, and the
//! per-stage timing breakdown — without holding result data alive.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Duration;

use crate::span::QueryId;

/// One slow query, captured at completion.
#[derive(Debug, Clone)]
pub struct SlowQueryRecord {
    pub id: QueryId,
    /// The Q text as received.
    pub q_text: String,
    /// Generated SQL, one entry per emitted statement.
    pub sql: Vec<String>,
    /// Wall-clock total.
    pub total: Duration,
    /// Per-stage breakdown, in pipeline order.
    pub stages: Vec<(&'static str, Duration)>,
}

/// Fixed-capacity ring buffer of [`SlowQueryRecord`]s.
pub struct SlowQueryLog {
    inner: Mutex<Inner>,
    capacity: usize,
}

struct Inner {
    ring: VecDeque<SlowQueryRecord>,
    /// Total records ever accepted, including ones since evicted.
    recorded: u64,
}

impl SlowQueryLog {
    /// A log holding at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> Self {
        SlowQueryLog {
            inner: Mutex::new(Inner {
                ring: VecDeque::new(),
                recorded: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Append a record, evicting the oldest when full.
    pub fn record(&self, rec: SlowQueryRecord) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back(rec);
        inner.recorded += 1;
    }

    /// Snapshot of the retained records, oldest first.
    pub fn entries(&self) -> Vec<SlowQueryRecord> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .ring
            .iter()
            .cloned()
            .collect()
    }

    /// Total records ever accepted (monotonic; survives eviction).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).recorded
    }

    /// Drop all retained records (the `recorded` total is preserved).
    pub fn clear(&self) {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .ring
            .clear();
    }

    /// Human-readable render, oldest first.
    pub fn render(&self) -> String {
        let entries = self.entries();
        if entries.is_empty() {
            return "slow-query log: empty\n".to_string();
        }
        let mut out = String::new();
        for rec in &entries {
            out.push_str(&format!("{} total={:?} q={:?}\n", rec.id, rec.total, rec.q_text));
            for sql in &rec.sql {
                out.push_str(&format!("  sql: {sql}\n"));
            }
            for (stage, d) in &rec.stages {
                out.push_str(&format!("  {stage}: {d:?}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::next_query_id;

    fn rec(q: &str, ms: u64) -> SlowQueryRecord {
        SlowQueryRecord {
            id: next_query_id(),
            q_text: q.to_string(),
            sql: vec![format!("SELECT /* {q} */ 1")],
            total: Duration::from_millis(ms),
            stages: vec![("parse", Duration::from_micros(10))],
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let log = SlowQueryLog::new(2);
        log.record(rec("a", 1));
        log.record(rec("b", 2));
        log.record(rec("c", 3));
        let entries = log.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].q_text, "b");
        assert_eq!(entries[1].q_text, "c");
        assert_eq!(log.recorded(), 3);
    }

    #[test]
    fn clear_keeps_recorded_total() {
        let log = SlowQueryLog::new(4);
        log.record(rec("a", 1));
        log.clear();
        assert!(log.entries().is_empty());
        assert_eq!(log.recorded(), 1);
    }

    #[test]
    fn render_shows_text_sql_and_stages() {
        let log = SlowQueryLog::new(4);
        assert!(log.render().contains("empty"));
        log.record(rec("select from trades", 120));
        let r = log.render();
        assert!(r.contains("select from trades"), "{r}");
        assert!(r.contains("sql:"), "{r}");
        assert!(r.contains("parse:"), "{r}");
    }
}
