//! A lock-cheap metrics registry: counters, gauges and fixed-bucket
//! latency histograms, rendered in Prometheus text format.
//!
//! Design constraints, in order:
//!
//! 1. **Hot-path cost.** Call sites hold an `Arc` handle and the record
//!    operation is a single `fetch_add` (`Ordering::Relaxed` — metrics
//!    tolerate reordering, they never synchronize data). The registry
//!    lock is taken only to *resolve* a handle, which call sites do once
//!    (per session, or per process via `OnceLock`).
//! 2. **Aggregation across sessions.** Handles to the same name share
//!    one atomic, so N sessions incrementing `hyperq_queries_total`
//!    produce one process-wide series.
//! 3. **No allocation while recording.** Histograms use fixed bucket
//!    bounds chosen at registration; observing is bucket search plus
//!    two `fetch_add`s.
//!
//! Metric names may carry Prometheus labels inline:
//! `r#"hyperq_stage_seconds{stage="parse"}"#` is one series, distinct
//! from `{stage="execute"}`. The renderer splices histogram `le` labels
//! into existing label sets correctly.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add (possibly negative) `delta`.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Default latency bucket upper bounds, in seconds: 100µs → 10s.
pub const LATENCY_BUCKETS: &[f64] = &[
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0,
];

/// A fixed-bucket histogram (cumulative rendering, Prometheus style).
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One count per bound, plus a final +Inf bucket.
    counts: Vec<AtomicU64>,
    /// Sum of observations in nanoseconds.
    sum_nanos: AtomicU64,
    total: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_nanos: AtomicU64::new(0),
            total: AtomicU64::new(0),
        }
    }

    /// Record one observation in seconds.
    pub fn observe_secs(&self, secs: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| secs <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos
            .fetch_add((secs * 1e9) as u64, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one duration.
    pub fn observe(&self, d: Duration) {
        self.observe_secs(d.as_secs_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of observations in seconds.
    pub fn sum_secs(&self) -> f64 {
        self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// The registry: name (with optional inline labels) → metric.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn resolve<T>(
        &self,
        name: &str,
        pick: impl Fn(&Metric) -> Option<T>,
        create: impl FnOnce() -> Metric,
    ) -> T {
        if let Some(m) = self.metrics.read().unwrap_or_else(|e| e.into_inner()).get(name) {
            return pick(m).unwrap_or_else(|| {
                panic!("metric {name:?} already registered as a {}", m.type_name())
            });
        }
        let mut map = self.metrics.write().unwrap_or_else(|e| e.into_inner());
        let m = map.entry(name.to_string()).or_insert_with(create);
        pick(m).unwrap_or_else(|| {
            panic!("metric {name:?} already registered as a {}", m.type_name())
        })
    }

    /// Get or create a counter. Panics if `name` is registered as a
    /// different metric type (a programming error, not a runtime one).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.resolve(
            name,
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
            || Metric::Counter(Arc::new(Counter::default())),
        )
    }

    /// Get or create a gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.resolve(
            name,
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
            || Metric::Gauge(Arc::new(Gauge::default())),
        )
    }

    /// Get or create a histogram with the default latency buckets.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, LATENCY_BUCKETS)
    }

    /// Get or create a histogram with explicit bucket upper bounds
    /// (seconds). Bounds are fixed at first registration.
    pub fn histogram_with(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        self.resolve(
            name,
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
            || Metric::Histogram(Arc::new(Histogram::new(bounds))),
        )
    }

    /// Current value of a counter, zero if unregistered (test helper).
    pub fn counter_value(&self, name: &str) -> u64 {
        match self.metrics.read().unwrap_or_else(|e| e.into_inner()).get(name) {
            Some(Metric::Counter(c)) => c.get(),
            _ => 0,
        }
    }

    /// Render every metric in Prometheus text exposition format,
    /// sorted by name, with `# TYPE` headers.
    pub fn render_prometheus(&self) -> String {
        let snapshot: Vec<(String, Metric)> = self
            .metrics
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let mut out = String::new();
        let mut last_base = String::new();
        for (name, metric) in snapshot {
            let (base, labels) = split_labels(&name);
            if base != last_base {
                out.push_str(&format!("# TYPE {base} {}\n", metric.type_name()));
                last_base = base.to_string();
            }
            match metric {
                Metric::Counter(c) => out.push_str(&format!("{name} {}\n", c.get())),
                Metric::Gauge(g) => out.push_str(&format!("{name} {}\n", g.get())),
                Metric::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (i, bound) in h.bounds.iter().enumerate() {
                        cumulative += h.counts[i].load(Ordering::Relaxed);
                        out.push_str(&format!(
                            "{}_bucket{} {cumulative}\n",
                            base,
                            with_le(labels, &format!("{bound}")),
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        base,
                        with_le(labels, "+Inf"),
                        h.count()
                    ));
                    out.push_str(&format!("{base}_sum{labels} {:.9}\n", h.sum_secs()));
                    out.push_str(&format!("{base}_count{labels} {}\n", h.count()));
                }
            }
        }
        out
    }
}

/// Split `name{labels}` into `(name, "{labels}")`; labels may be empty.
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(i) => (&name[..i], &name[i..]),
        None => (name, ""),
    }
}

/// Splice an `le` label into an existing (possibly empty) label set.
fn with_le(labels: &str, le: &str) -> String {
    if labels.is_empty() {
        format!("{{le=\"{le}\"}}")
    } else {
        // `{a="b"}` → `{a="b",le="..."}`
        format!("{},le=\"{le}\"}}", &labels[..labels.len() - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_one_atomic_per_name() {
        let r = MetricsRegistry::new();
        let a = r.counter("x_total");
        let b = r.counter("x_total");
        a.inc();
        b.add(2);
        assert_eq!(r.counter_value("x_total"), 3);
    }

    #[test]
    fn gauges_go_up_and_down() {
        let r = MetricsRegistry::new();
        let g = r.gauge("active");
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let r = MetricsRegistry::new();
        let h = r.histogram_with("lat_seconds", &[0.001, 0.01, 0.1]);
        h.observe_secs(0.0005); // bucket 0
        h.observe_secs(0.005); // bucket 1
        h.observe_secs(5.0); // +Inf
        assert_eq!(h.count(), 3);
        let dump = r.render_prometheus();
        assert!(dump.contains("lat_seconds_bucket{le=\"0.001\"} 1"), "{dump}");
        assert!(dump.contains("lat_seconds_bucket{le=\"0.01\"} 2"), "{dump}");
        assert!(dump.contains("lat_seconds_bucket{le=\"0.1\"} 2"), "{dump}");
        assert!(dump.contains("lat_seconds_bucket{le=\"+Inf\"} 3"), "{dump}");
        assert!(dump.contains("lat_seconds_count 3"), "{dump}");
    }

    #[test]
    fn labeled_series_are_distinct_and_render_with_spliced_le() {
        let r = MetricsRegistry::new();
        r.histogram_with(r#"stage_seconds{stage="parse"}"#, &[0.01])
            .observe_secs(0.001);
        r.histogram_with(r#"stage_seconds{stage="execute"}"#, &[0.01])
            .observe_secs(1.0);
        let dump = r.render_prometheus();
        assert!(
            dump.contains(r#"stage_seconds_bucket{stage="parse",le="0.01"} 1"#),
            "{dump}"
        );
        assert!(
            dump.contains(r#"stage_seconds_bucket{stage="execute",le="+Inf"} 1"#),
            "{dump}"
        );
        // One TYPE header for the shared base name.
        assert_eq!(dump.matches("# TYPE stage_seconds histogram").count(), 1, "{dump}");
    }

    #[test]
    fn render_is_sorted_and_typed() {
        let r = MetricsRegistry::new();
        r.counter("b_total").inc();
        r.counter("a_total").inc();
        let dump = r.render_prometheus();
        let a = dump.find("a_total").unwrap();
        let b = dump.find("b_total").unwrap();
        assert!(a < b, "{dump}");
        assert!(dump.contains("# TYPE a_total counter"), "{dump}");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_confusion_panics() {
        let r = MetricsRegistry::new();
        r.counter("x");
        r.gauge("x");
    }
}
