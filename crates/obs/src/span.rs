//! Per-query structured tracing: a [`QueryId`], a span per pipeline
//! [`Stage`], and a [`QueryTrace`] tying them together.
//!
//! The span model is deliberately flat-plus-children rather than a
//! general tree: a query passes through six well-known stages, and the
//! only nesting that occurs in practice is per-statement execution
//! under the `execute` span (one translated Q expression can expand to
//! several SQL statements). Events ([`SpanEvent`]) capture the
//! discrete facts — cache hit/miss, wire recovery, XC state
//! transitions — that a duration alone cannot.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Process-unique query identifier, monotonically assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u64);

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{:06}", self.0)
    }
}

/// Allocate the next [`QueryId`].
pub fn next_query_id() -> QueryId {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    QueryId(NEXT.fetch_add(1, Ordering::Relaxed))
}

/// The six pipeline stages every traced query passes through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Q text → AST.
    Parse,
    /// AST → bound/algebrized form (XTRA).
    Algebrize,
    /// Rule-based transformation passes.
    Optimize,
    /// Algebra → PG SQL text.
    Serialize,
    /// SQL shipped to the backend, rows returned.
    Execute,
    /// Backend rows pivoted back into Q column values.
    Pivot,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 6] = [
        Stage::Parse,
        Stage::Algebrize,
        Stage::Optimize,
        Stage::Serialize,
        Stage::Execute,
        Stage::Pivot,
    ];

    /// Position within [`Stage::ALL`] (pipeline order), for indexing
    /// per-stage handle arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The stable lower-case label used in metric names and renders.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Algebrize => "algebrize",
            Stage::Optimize => "optimize",
            Stage::Serialize => "serialize",
            Stage::Execute => "execute",
            Stage::Pivot => "pivot",
        }
    }
}

/// A discrete fact attached to a span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpanEvent {
    /// Translation served from the keyed cache.
    CacheHit,
    /// Translation had to run the full pipeline.
    CacheMiss,
    /// The wire layer reconnected mid-query; `reconnects` is how many
    /// times it did so while this span was open.
    Recovering { reconnects: u64 },
    /// An XC state machine moved to `state`.
    StateTransition { state: &'static str },
    /// Free-form annotation.
    Note(String),
}

impl fmt::Display for SpanEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpanEvent::CacheHit => write!(f, "cache-hit"),
            SpanEvent::CacheMiss => write!(f, "cache-miss"),
            SpanEvent::Recovering { reconnects } => {
                write!(f, "recovering(reconnects={reconnects})")
            }
            SpanEvent::StateTransition { state } => write!(f, "state={state}"),
            SpanEvent::Note(s) => write!(f, "note({s})"),
        }
    }
}

/// One timed stage of a query, with optional per-statement children.
#[derive(Debug, Clone, Default)]
pub struct Span {
    /// Stage label (`Stage::name()` for pipeline spans, free-form for
    /// children such as `"statement"`).
    pub stage: &'static str,
    pub duration: Duration,
    /// Rows produced (result rows for execute/pivot spans).
    pub rows: u64,
    /// Bytes processed (SQL text bytes for execute spans).
    pub bytes: u64,
    pub events: Vec<SpanEvent>,
    pub children: Vec<Span>,
}

impl Span {
    /// A span for a pipeline stage.
    pub fn stage(stage: Stage, duration: Duration) -> Self {
        Span {
            stage: stage.name(),
            duration,
            ..Span::default()
        }
    }

    /// True if this span or any descendant carries an event matching
    /// `pred`.
    pub fn has_event(&self, pred: &dyn Fn(&SpanEvent) -> bool) -> bool {
        self.events.iter().any(pred)
            || self.children.iter().any(|c| c.has_event(pred))
    }
}

/// The full trace of one query through the pipeline.
#[derive(Debug, Clone)]
pub struct QueryTrace {
    pub id: QueryId,
    /// The Q text as received.
    pub q_text: String,
    /// Generated SQL, one entry per emitted statement.
    pub sql: Vec<String>,
    /// Top-level spans, in pipeline order.
    pub spans: Vec<Span>,
    /// Wall-clock total for the query.
    pub total: Duration,
    /// Whether translation was served from the cache.
    pub cache_hit: bool,
}

impl QueryTrace {
    /// An empty trace for `q_text` with a fresh id.
    pub fn begin(q_text: &str) -> Self {
        QueryTrace {
            id: next_query_id(),
            q_text: q_text.to_string(),
            sql: Vec::new(),
            spans: Vec::new(),
            total: Duration::ZERO,
            cache_hit: false,
        }
    }

    /// The span for `stage`, if recorded.
    pub fn span(&self, stage: Stage) -> Option<&Span> {
        self.spans.iter().find(|s| s.stage == stage.name())
    }

    /// Top-level stage labels in recorded order.
    pub fn stage_names(&self) -> Vec<&'static str> {
        self.spans.iter().map(|s| s.stage).collect()
    }

    /// True if every one of the six pipeline stages has a span.
    pub fn covers_all_stages(&self) -> bool {
        Stage::ALL.iter().all(|s| self.span(*s).is_some())
    }

    /// True if any span in the trace carries an event matching `pred`.
    pub fn has_event(&self, pred: impl Fn(&SpanEvent) -> bool) -> bool {
        self.spans.iter().any(|s| s.has_event(&pred))
    }

    /// Human-readable multi-line render of the span tree.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} {:?} total={:?} cache_hit={}\n",
            self.id, self.q_text, self.total, self.cache_hit
        );
        for span in &self.spans {
            render_span(&mut out, span, 1);
        }
        out
    }
}

fn render_span(out: &mut String, span: &Span, depth: usize) {
    out.push_str(&"  ".repeat(depth));
    out.push_str(&format!("{} {:?}", span.stage, span.duration));
    if span.rows > 0 {
        out.push_str(&format!(" rows={}", span.rows));
    }
    if span.bytes > 0 {
        out.push_str(&format!(" bytes={}", span.bytes));
    }
    for e in &span.events {
        out.push_str(&format!(" [{e}]"));
    }
    out.push('\n');
    for child in &span.children {
        render_span(out, child, depth + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_ids_are_unique_and_ordered() {
        let a = next_query_id();
        let b = next_query_id();
        assert!(b > a);
        assert_eq!(format!("{}", QueryId(7)), "q000007");
    }

    #[test]
    fn covers_all_stages_requires_all_six() {
        let mut t = QueryTrace::begin("1+1");
        for stage in Stage::ALL.iter().take(5) {
            t.spans.push(Span::stage(*stage, Duration::from_micros(3)));
        }
        assert!(!t.covers_all_stages());
        t.spans.push(Span::stage(Stage::Pivot, Duration::from_micros(1)));
        assert!(t.covers_all_stages());
        assert_eq!(
            t.stage_names(),
            vec!["parse", "algebrize", "optimize", "serialize", "execute", "pivot"]
        );
    }

    #[test]
    fn events_are_found_in_children() {
        let mut t = QueryTrace::begin("select from t");
        let mut exec = Span::stage(Stage::Execute, Duration::from_millis(2));
        exec.children.push(Span {
            stage: "statement",
            events: vec![SpanEvent::Recovering { reconnects: 1 }],
            ..Span::default()
        });
        t.spans.push(exec);
        assert!(t.has_event(|e| matches!(e, SpanEvent::Recovering { .. })));
        assert!(!t.has_event(|e| matches!(e, SpanEvent::CacheHit)));
    }

    #[test]
    fn render_includes_stages_and_events() {
        let mut t = QueryTrace::begin("select from trades");
        let mut s = Span::stage(Stage::Parse, Duration::from_micros(42));
        s.events.push(SpanEvent::CacheMiss);
        t.spans.push(s);
        let r = t.render();
        assert!(r.contains("parse"), "{r}");
        assert!(r.contains("cache-miss"), "{r}");
    }
}
