//! # obs — end-to-end observability for the Hyper-Q pipeline
//!
//! Hyper-Q is opaque middleware: a Q application talks QIPC on one side,
//! a PG backend talks PG v3 on the other, and everything in between —
//! parse, algebrize, optimize, serialize, execute, pivot — is invisible
//! to both. Middleware-rewriting systems (QueryBooster, and the paper's
//! own §6 evaluation) live or die by per-stage visibility: operators
//! must be able to answer "where did this query's time go?", "is the
//! translation cache earning its keep?", and "did the wire layer
//! silently reconnect?" without attaching a debugger.
//!
//! Three cooperating pieces, all dependency-free so every crate in the
//! workspace (including the wire codecs) can use them:
//!
//! * [`span`] — per-query structured tracing: each query gets a
//!   [`QueryId`] and a span tree covering the six pipeline stages
//!   ([`Stage`]), with durations, row/byte counts and events (cache
//!   hit/miss, wire recovery, XC state transitions).
//! * [`metrics`] — a lock-cheap [`MetricsRegistry`] of counters, gauges
//!   and fixed-bucket histograms. Handles are `Arc`s over atomics:
//!   registration takes a lock once, the hot path is a single
//!   `fetch_add`. Rendered in Prometheus text format.
//! * [`slowlog`] — a bounded ring buffer of [`SlowQueryRecord`]s:
//!   queries slower than a configurable threshold are captured with
//!   their Q text, generated SQL and per-stage timings.
//!
//! A process-wide registry ([`global_registry`]) and slow-query log
//! ([`global_slowlog`]) aggregate across sessions; they back the pgdb
//! server's metrics admin query and the QIPC endpoint's `\metrics` and
//! `\slowlog` system commands.

pub mod metrics;
pub mod slowlog;
pub mod span;

pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use slowlog::{SlowQueryLog, SlowQueryRecord};
pub use span::{next_query_id, QueryId, QueryTrace, Span, SpanEvent, Stage};

use std::sync::{Arc, OnceLock};

/// The process-wide metrics registry: sessions, wire codecs and servers
/// all record here, so one dump shows the whole process.
pub fn global_registry() -> Arc<MetricsRegistry> {
    static GLOBAL: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();
    Arc::clone(GLOBAL.get_or_init(|| Arc::new(MetricsRegistry::new())))
}

/// The process-wide slow-query log (capacity 128). Sessions apply their
/// own thresholds before recording, so tests with different thresholds
/// do not race each other.
pub fn global_slowlog() -> Arc<SlowQueryLog> {
    static GLOBAL: OnceLock<Arc<SlowQueryLog>> = OnceLock::new();
    Arc::clone(GLOBAL.get_or_init(|| Arc::new(SlowQueryLog::new(128))))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_shared() {
        global_registry().counter("obs_selftest_total").inc();
        let dump = global_registry().render_prometheus();
        assert!(dump.contains("obs_selftest_total"), "{dump}");
    }

    #[test]
    fn global_slowlog_is_shared() {
        let before = global_slowlog().recorded();
        global_slowlog().record(SlowQueryRecord {
            id: next_query_id(),
            q_text: "select from trades".into(),
            sql: vec!["SELECT 1".into()],
            total: std::time::Duration::from_millis(500),
            stages: vec![("parse", std::time::Duration::from_millis(1))],
        });
        assert_eq!(global_slowlog().recorded(), before + 1);
    }
}
