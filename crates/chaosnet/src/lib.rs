//! # chaosnet — a fault-injection TCP proxy
//!
//! Sits between a client and an upstream server and misbehaves *on
//! command*: delay, truncate, corrupt or sever either direction of any
//! connection. The point is **deterministic** chaos — each accepted
//! connection consumes one scripted [`FaultPlan`] from a FIFO queue (or
//! the default plan), so a test can state exactly which connection
//! fails, where in the byte stream, and in which direction.
//!
//! Used by the Hyper-Q integration suite (`tests/chaos.rs`) to prove
//! the wire path's retry/degradation behaviour: kill the backend
//! mid-query and watch the Gateway reconnect, replay its session DDL
//! journal and re-run the statement — all invisible to the Q client.
//!
//! Faults are expressed per *leg*:
//!
//! * `to_upstream` — bytes flowing client → upstream (queries);
//! * `to_client` — bytes flowing upstream → client (results).
//!
//! Each leg supports a fixed per-chunk forwarding `delay`, a
//! `truncate_after` byte budget (forward exactly N bytes, then sever
//! the whole connection — the mid-frame cut), and `corrupt_at`, which
//! flips the bits of one byte at an absolute stream offset (the corrupt
//! length prefix).

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Faults applied to one direction of a proxied connection.
#[derive(Debug, Clone, Copy, Default)]
pub struct LegFaults {
    /// Sleep this long before forwarding each chunk.
    pub delay: Option<Duration>,
    /// Apply `delay` only once this many bytes have been forwarded on
    /// the leg (0 = from the first byte). Lets a test keep a handshake
    /// fast and stall only the frames after it.
    pub delay_after: u64,
    /// Forward exactly this many bytes on this leg, then sever the
    /// connection (both directions, both sockets).
    pub truncate_after: Option<u64>,
    /// Flip the bits of the byte at this absolute offset of the leg's
    /// stream.
    pub corrupt_at: Option<u64>,
}

impl LegFaults {
    /// Pass bytes through untouched.
    pub fn clean() -> LegFaults {
        LegFaults::default()
    }

    /// Sever the leg before a single byte is forwarded.
    pub fn sever_immediately() -> LegFaults {
        LegFaults { truncate_after: Some(0), ..LegFaults::default() }
    }
}

/// The scripted faults for one proxied connection.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultPlan {
    /// Client → upstream leg (queries).
    pub to_upstream: LegFaults,
    /// Upstream → client leg (results).
    pub to_client: LegFaults,
}

impl FaultPlan {
    /// Forward everything faithfully.
    pub fn clean() -> FaultPlan {
        FaultPlan::default()
    }
}

struct Shared {
    /// One scripted plan per upcoming connection, FIFO.
    queue: Mutex<VecDeque<FaultPlan>>,
    /// Plan used when the queue is empty.
    default_plan: Mutex<FaultPlan>,
    /// Total connections accepted.
    accepted: AtomicUsize,
    /// Live sockets (client, upstream) for `sever_active`.
    live: Mutex<Vec<(TcpStream, TcpStream)>>,
}

/// A running fault-injection proxy.
pub struct ChaosProxy {
    addr: std::net::SocketAddr,
    shared: Arc<Shared>,
}

impl ChaosProxy {
    /// Start proxying `127.0.0.1:0` → `upstream`.
    pub fn start(upstream: &str) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let upstream = upstream.to_string();
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            default_plan: Mutex::new(FaultPlan::clean()),
            accepted: AtomicUsize::new(0),
            live: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(client) = stream else { continue };
                let shared = Arc::clone(&accept_shared);
                let upstream = upstream.clone();
                shared.accepted.fetch_add(1, Ordering::SeqCst);
                std::thread::spawn(move || {
                    let _ = proxy_connection(client, &upstream, shared);
                });
            }
        });
        Ok(ChaosProxy { addr, shared })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Script the next connection's faults (FIFO per connection).
    pub fn push_plan(&self, plan: FaultPlan) {
        self.shared.queue.lock().unwrap().push_back(plan);
    }

    /// Plan applied when the queue is empty (initially clean).
    pub fn set_default_plan(&self, plan: FaultPlan) {
        *self.shared.default_plan.lock().unwrap() = plan;
    }

    /// Sever every currently proxied connection (both sockets, both
    /// directions) — the "backend crashed" event.
    pub fn sever_active(&self) {
        let mut live = self.shared.live.lock().unwrap();
        for (client, upstream) in live.drain(..) {
            let _ = client.shutdown(Shutdown::Both);
            let _ = upstream.shutdown(Shutdown::Both);
        }
    }

    /// Total connections accepted so far.
    pub fn connections(&self) -> usize {
        self.shared.accepted.load(Ordering::SeqCst)
    }
}

fn proxy_connection(
    client: TcpStream,
    upstream_addr: &str,
    shared: Arc<Shared>,
) -> std::io::Result<()> {
    let plan = shared
        .queue
        .lock()
        .unwrap()
        .pop_front()
        .unwrap_or_else(|| *shared.default_plan.lock().unwrap());
    let upstream = TcpStream::connect(upstream_addr)?;
    shared
        .live
        .lock()
        .unwrap()
        .push((client.try_clone()?, upstream.try_clone()?));

    let c2u = relay_thread(client.try_clone()?, upstream.try_clone()?, plan.to_upstream);
    let u2c = relay_thread(upstream, client, plan.to_client);
    let _ = c2u.join();
    let _ = u2c.join();
    Ok(())
}

fn relay_thread(
    mut from: TcpStream,
    mut to: TcpStream,
    faults: LegFaults,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let mut forwarded: u64 = 0;
        let mut chunk = [0u8; 8192];
        loop {
            let n = match from.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => n,
            };
            if let Some(d) = faults.delay {
                if forwarded >= faults.delay_after {
                    std::thread::sleep(d);
                }
            }
            let mut slice = chunk[..n].to_vec();
            if let Some(at) = faults.corrupt_at {
                if at >= forwarded && at < forwarded + n as u64 {
                    slice[(at - forwarded) as usize] ^= 0xFF;
                }
            }
            // Enforce the byte budget: forward the allowed prefix, then
            // sever the whole connection mid-frame.
            if let Some(budget) = faults.truncate_after {
                let left = budget.saturating_sub(forwarded);
                if (slice.len() as u64) >= left {
                    slice.truncate(left as usize);
                    let _ = to.write_all(&slice);
                    let _ = to.shutdown(Shutdown::Both);
                    let _ = from.shutdown(Shutdown::Both);
                    break;
                }
            }
            forwarded += slice.len() as u64;
            if to.write_all(&slice).is_err() {
                break;
            }
        }
        // This direction is done; pass the EOF along.
        let _ = to.shutdown(Shutdown::Write);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An upstream that echoes whatever it receives.
    fn echo_server() -> std::net::SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut s) = stream else { continue };
                std::thread::spawn(move || {
                    let mut chunk = [0u8; 4096];
                    while let Ok(n) = s.read(&mut chunk) {
                        if n == 0 || s.write_all(&chunk[..n]).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        addr
    }

    fn roundtrip(addr: std::net::SocketAddr, payload: &[u8]) -> std::io::Result<Vec<u8>> {
        let mut s = TcpStream::connect(addr)?;
        s.set_read_timeout(Some(Duration::from_secs(2)))?;
        s.write_all(payload)?;
        let mut got = vec![0u8; payload.len()];
        s.read_exact(&mut got)?;
        Ok(got)
    }

    #[test]
    fn clean_plans_pass_bytes_through() {
        let upstream = echo_server();
        let proxy = ChaosProxy::start(&upstream.to_string()).unwrap();
        let got = roundtrip(proxy.addr(), b"hello chaos").unwrap();
        assert_eq!(&got, b"hello chaos");
        assert_eq!(proxy.connections(), 1);
    }

    #[test]
    fn truncation_severs_mid_stream() {
        let upstream = echo_server();
        let proxy = ChaosProxy::start(&upstream.to_string()).unwrap();
        proxy.push_plan(FaultPlan {
            to_upstream: LegFaults { truncate_after: Some(4), ..LegFaults::clean() },
            ..FaultPlan::clean()
        });
        // Only 4 bytes ever reach the upstream; the echo comes back
        // short and then the connection dies.
        let err = roundtrip(proxy.addr(), b"hello chaos");
        assert!(err.is_err(), "expected a severed connection, got {err:?}");
    }

    #[test]
    fn corruption_flips_the_scripted_byte() {
        let upstream = echo_server();
        let proxy = ChaosProxy::start(&upstream.to_string()).unwrap();
        proxy.push_plan(FaultPlan {
            to_upstream: LegFaults { corrupt_at: Some(1), ..LegFaults::clean() },
            ..FaultPlan::clean()
        });
        let got = roundtrip(proxy.addr(), b"abcd").unwrap();
        assert_eq!(got[0], b'a');
        assert_eq!(got[1], b'b' ^ 0xFF);
        assert_eq!(&got[2..], b"cd");
    }

    #[test]
    fn sever_active_kills_live_connections() {
        let upstream = echo_server();
        let proxy = ChaosProxy::start(&upstream.to_string()).unwrap();
        let mut s = TcpStream::connect(proxy.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        s.write_all(b"ping").unwrap();
        let mut got = [0u8; 4];
        s.read_exact(&mut got).unwrap();
        proxy.sever_active();
        s.write_all(b"ping").ok();
        let mut buf = [0u8; 4];
        // Reads now hit EOF or a reset.
        assert!(matches!(s.read(&mut buf), Ok(0) | Err(_)));
    }

    #[test]
    fn plans_apply_per_connection_in_fifo_order() {
        let upstream = echo_server();
        let proxy = ChaosProxy::start(&upstream.to_string()).unwrap();
        proxy.push_plan(FaultPlan {
            to_upstream: LegFaults::sever_immediately(),
            ..FaultPlan::clean()
        });
        // First connection is scripted to die; second is clean.
        assert!(roundtrip(proxy.addr(), b"dead").is_err());
        let got = roundtrip(proxy.addr(), b"alive").unwrap();
        assert_eq!(&got, b"alive");
        assert_eq!(proxy.connections(), 2);
    }

    #[test]
    fn delays_are_applied() {
        let upstream = echo_server();
        let proxy = ChaosProxy::start(&upstream.to_string()).unwrap();
        proxy.push_plan(FaultPlan {
            to_client: LegFaults { delay: Some(Duration::from_millis(80)), ..LegFaults::clean() },
            ..FaultPlan::clean()
        });
        let t0 = std::time::Instant::now();
        roundtrip(proxy.addr(), b"slow").unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(80));
    }
}
