//! Typed PG v3 protocol messages.
//!
//! Only the simple-query subprotocol plus start-up/auth — the surface
//! Hyper-Q exercises (paper §4.2: start-up, query, function call, copy
//! data and shutdown requests; we implement the subset the Gateway uses).

/// PostgreSQL type OIDs for the types Hyper-Q emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeOid {
    /// `boolean` (16)
    Bool,
    /// `bytea` (17)
    Bytea,
    /// `int8` (20)
    Int8,
    /// `int2` (21)
    Int2,
    /// `int4` (23)
    Int4,
    /// `text` (25)
    Text,
    /// `float4` (700)
    Float4,
    /// `float8` (701)
    Float8,
    /// `varchar` (1043)
    Varchar,
    /// `date` (1082)
    Date,
    /// `time` (1083)
    Time,
    /// `timestamp` (1114)
    Timestamp,
}

impl TypeOid {
    /// Numeric OID as transmitted on the wire.
    pub fn as_u32(self) -> u32 {
        match self {
            TypeOid::Bool => 16,
            TypeOid::Bytea => 17,
            TypeOid::Int8 => 20,
            TypeOid::Int2 => 21,
            TypeOid::Int4 => 23,
            TypeOid::Text => 25,
            TypeOid::Float4 => 700,
            TypeOid::Float8 => 701,
            TypeOid::Varchar => 1043,
            TypeOid::Date => 1082,
            TypeOid::Time => 1083,
            TypeOid::Timestamp => 1114,
        }
    }

    /// Parse a wire OID.
    pub fn from_u32(v: u32) -> Option<TypeOid> {
        Some(match v {
            16 => TypeOid::Bool,
            17 => TypeOid::Bytea,
            20 => TypeOid::Int8,
            21 => TypeOid::Int2,
            23 => TypeOid::Int4,
            25 => TypeOid::Text,
            700 => TypeOid::Float4,
            701 => TypeOid::Float8,
            1043 => TypeOid::Varchar,
            1082 => TypeOid::Date,
            1083 => TypeOid::Time,
            1114 => TypeOid::Timestamp,
            _ => return None,
        })
    }
}

/// One column in a `RowDescription`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDesc {
    /// Column name.
    pub name: String,
    /// Type OID.
    pub type_oid: TypeOid,
}

/// Authentication request codes carried by the `R` message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthRequest {
    /// Authentication successful.
    Ok,
    /// Server wants the password in clear text.
    CleartextPassword,
    /// Server wants an MD5-hashed password with this salt.
    Md5Password {
        /// Per-connection salt.
        salt: [u8; 4],
    },
}

/// Backend transaction status in `ReadyForQuery`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransactionStatus {
    /// Idle (not in a transaction block).
    Idle,
    /// In a transaction block.
    InTransaction,
    /// In a failed transaction block.
    Failed,
}

impl TransactionStatus {
    /// Wire byte.
    pub fn as_byte(self) -> u8 {
        match self {
            TransactionStatus::Idle => b'I',
            TransactionStatus::InTransaction => b'T',
            TransactionStatus::Failed => b'E',
        }
    }
}

/// Messages sent by the client (Hyper-Q's Gateway acts as the client).
#[derive(Debug, Clone, PartialEq)]
pub enum FrontendMessage {
    /// Untyped start-up packet: protocol version + parameters.
    Startup {
        /// `(name, value)` parameters (`user`, `database`, ...).
        params: Vec<(String, String)>,
    },
    /// `p` — password response (clear text or `md5...`).
    Password(String),
    /// `Q` — simple query.
    Query(String),
    /// `X` — terminate.
    Terminate,
}

/// Messages sent by the server.
#[derive(Debug, Clone, PartialEq)]
pub enum BackendMessage {
    /// `R` — authentication request/outcome.
    Authentication(AuthRequest),
    /// `S` — run-time parameter report.
    ParameterStatus {
        /// Parameter name.
        name: String,
        /// Parameter value.
        value: String,
    },
    /// `K` — cancellation key data.
    BackendKeyData {
        /// Server process id.
        pid: i32,
        /// Cancellation secret.
        secret: i32,
    },
    /// `Z` — ready for a new query.
    ReadyForQuery(TransactionStatus),
    /// `T` — result-set schema.
    RowDescription(Vec<FieldDesc>),
    /// `D` — one row; `None` cells are NULL. Text format.
    DataRow(Vec<Option<String>>),
    /// `C` — statement finished, with its command tag.
    CommandComplete(String),
    /// `I` — empty query.
    EmptyQueryResponse,
    /// `E` — error report.
    ErrorResponse {
        /// Severity (`ERROR`, `FATAL`).
        severity: String,
        /// SQLSTATE code.
        code: String,
        /// Human-readable message.
        message: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oid_round_trip() {
        for oid in [
            TypeOid::Bool,
            TypeOid::Int8,
            TypeOid::Int2,
            TypeOid::Int4,
            TypeOid::Text,
            TypeOid::Float4,
            TypeOid::Float8,
            TypeOid::Varchar,
            TypeOid::Date,
            TypeOid::Time,
            TypeOid::Timestamp,
        ] {
            assert_eq!(TypeOid::from_u32(oid.as_u32()), Some(oid));
        }
        assert_eq!(TypeOid::from_u32(9999), None);
    }

    #[test]
    fn transaction_status_bytes() {
        assert_eq!(TransactionStatus::Idle.as_byte(), b'I');
        assert_eq!(TransactionStatus::InTransaction.as_byte(), b'T');
        assert_eq!(TransactionStatus::Failed.as_byte(), b'E');
    }
}
