//! Encoding and decoding of PG v3 messages over byte buffers.
//!
//! Framing (paper §4.2): one type byte (absent on the start-up packet),
//! then a big-endian i32 length that *includes itself*, then the body.

use crate::messages::{
    AuthRequest, BackendMessage, FieldDesc, FrontendMessage, TransactionStatus, TypeOid,
};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Encode a frontend message into `out`.
pub fn encode_frontend(msg: &FrontendMessage, out: &mut BytesMut) {
    match msg {
        FrontendMessage::Startup { params } => {
            let mut body = BytesMut::new();
            body.put_i32(crate::PROTOCOL_VERSION);
            for (k, v) in params {
                put_cstr(&mut body, k);
                put_cstr(&mut body, v);
            }
            body.put_u8(0);
            out.put_i32(body.len() as i32 + 4);
            out.extend_from_slice(&body);
        }
        FrontendMessage::Password(p) => {
            let mut body = BytesMut::new();
            put_cstr(&mut body, p);
            frame(out, b'p', &body);
        }
        FrontendMessage::Query(sql) => {
            let mut body = BytesMut::new();
            put_cstr(&mut body, sql);
            frame(out, b'Q', &body);
        }
        FrontendMessage::Terminate => frame(out, b'X', &BytesMut::new()),
    }
}

/// Encode a backend message into `out`.
pub fn encode_backend(msg: &BackendMessage, out: &mut BytesMut) {
    match msg {
        BackendMessage::Authentication(req) => {
            let mut body = BytesMut::new();
            match req {
                AuthRequest::Ok => body.put_i32(0),
                AuthRequest::CleartextPassword => body.put_i32(3),
                AuthRequest::Md5Password { salt } => {
                    body.put_i32(5);
                    body.extend_from_slice(salt);
                }
            }
            frame(out, b'R', &body);
        }
        BackendMessage::ParameterStatus { name, value } => {
            let mut body = BytesMut::new();
            put_cstr(&mut body, name);
            put_cstr(&mut body, value);
            frame(out, b'S', &body);
        }
        BackendMessage::BackendKeyData { pid, secret } => {
            let mut body = BytesMut::new();
            body.put_i32(*pid);
            body.put_i32(*secret);
            frame(out, b'K', &body);
        }
        BackendMessage::ReadyForQuery(status) => {
            let mut body = BytesMut::new();
            body.put_u8(status.as_byte());
            frame(out, b'Z', &body);
        }
        BackendMessage::RowDescription(fields) => {
            let mut body = BytesMut::new();
            body.put_i16(fields.len() as i16);
            for f in fields {
                put_cstr(&mut body, &f.name);
                body.put_i32(0); // table oid
                body.put_i16(0); // attnum
                body.put_u32(f.type_oid.as_u32());
                body.put_i16(-1); // typlen
                body.put_i32(-1); // typmod
                body.put_i16(0); // text format
            }
            frame(out, b'T', &body);
        }
        BackendMessage::DataRow(cells) => {
            let mut body = BytesMut::new();
            body.put_i16(cells.len() as i16);
            for c in cells {
                match c {
                    None => body.put_i32(-1),
                    Some(text) => {
                        body.put_i32(text.len() as i32);
                        body.extend_from_slice(text.as_bytes());
                    }
                }
            }
            frame(out, b'D', &body);
        }
        BackendMessage::CommandComplete(tag) => {
            let mut body = BytesMut::new();
            put_cstr(&mut body, tag);
            frame(out, b'C', &body);
        }
        BackendMessage::EmptyQueryResponse => frame(out, b'I', &BytesMut::new()),
        BackendMessage::ErrorResponse { severity, code, message } => {
            let mut body = BytesMut::new();
            body.put_u8(b'S');
            put_cstr(&mut body, severity);
            body.put_u8(b'C');
            put_cstr(&mut body, code);
            body.put_u8(b'M');
            put_cstr(&mut body, message);
            body.put_u8(0);
            frame(out, b'E', &body);
        }
    }
}

fn frame(out: &mut BytesMut, ty: u8, body: &BytesMut) {
    out.put_u8(ty);
    out.put_i32(body.len() as i32 + 4);
    out.extend_from_slice(body);
}

fn put_cstr(out: &mut BytesMut, s: &str) {
    out.extend_from_slice(s.as_bytes());
    out.put_u8(0);
}

fn get_cstr(buf: &mut Bytes) -> Option<String> {
    let pos = buf.iter().position(|&b| b == 0)?;
    let s = String::from_utf8_lossy(&buf[..pos]).into_owned();
    buf.advance(pos + 1);
    Some(s)
}

/// Try to read one *typed* message from `buf`. Returns `(type, body)` and
/// consumes the bytes, or `None` if the buffer does not yet hold a
/// complete message.
pub fn read_message(buf: &mut BytesMut) -> Option<(u8, Bytes)> {
    if buf.len() < 5 {
        return None;
    }
    let len = i32::from_be_bytes([buf[1], buf[2], buf[3], buf[4]]) as usize;
    if buf.len() < 1 + len {
        return None;
    }
    let ty = buf[0];
    buf.advance(5);
    let body = buf.split_to(len - 4).freeze();
    Some((ty, body))
}

/// Try to read the untyped start-up packet.
pub fn read_startup(buf: &mut BytesMut) -> Option<FrontendMessage> {
    if buf.len() < 4 {
        return None;
    }
    let len = i32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if buf.len() < len {
        return None;
    }
    buf.advance(4);
    let mut body = buf.split_to(len - 4).freeze();
    let _version = body.get_i32();
    let mut params = Vec::new();
    while body.remaining() > 1 {
        let k = get_cstr(&mut body)?;
        if k.is_empty() {
            break;
        }
        let v = get_cstr(&mut body)?;
        params.push((k, v));
    }
    Some(FrontendMessage::Startup { params })
}

/// Decode a typed frontend message body.
pub fn decode_frontend(ty: u8, mut body: Bytes) -> Option<FrontendMessage> {
    match ty {
        b'p' => Some(FrontendMessage::Password(get_cstr(&mut body)?)),
        b'Q' => Some(FrontendMessage::Query(get_cstr(&mut body)?)),
        b'X' => Some(FrontendMessage::Terminate),
        _ => None,
    }
}

/// Decode a typed backend message body.
pub fn decode_backend(ty: u8, mut body: Bytes) -> Option<BackendMessage> {
    match ty {
        b'R' => {
            let code = body.get_i32();
            Some(BackendMessage::Authentication(match code {
                0 => AuthRequest::Ok,
                3 => AuthRequest::CleartextPassword,
                5 => {
                    let mut salt = [0u8; 4];
                    body.copy_to_slice(&mut salt);
                    AuthRequest::Md5Password { salt }
                }
                _ => return None,
            }))
        }
        b'S' => Some(BackendMessage::ParameterStatus {
            name: get_cstr(&mut body)?,
            value: get_cstr(&mut body)?,
        }),
        b'K' => Some(BackendMessage::BackendKeyData {
            pid: body.get_i32(),
            secret: body.get_i32(),
        }),
        b'Z' => {
            let status = match body.get_u8() {
                b'I' => TransactionStatus::Idle,
                b'T' => TransactionStatus::InTransaction,
                _ => TransactionStatus::Failed,
            };
            Some(BackendMessage::ReadyForQuery(status))
        }
        b'T' => {
            let n = body.get_i16();
            let mut fields = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let name = get_cstr(&mut body)?;
                let _table_oid = body.get_i32();
                let _attnum = body.get_i16();
                let oid = body.get_u32();
                let _typlen = body.get_i16();
                let _typmod = body.get_i32();
                let _format = body.get_i16();
                fields.push(FieldDesc { name, type_oid: TypeOid::from_u32(oid)? });
            }
            Some(BackendMessage::RowDescription(fields))
        }
        b'D' => {
            let n = body.get_i16();
            let mut cells = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let len = body.get_i32();
                if len < 0 {
                    cells.push(None);
                } else {
                    let bytes = body.split_to(len as usize);
                    cells.push(Some(String::from_utf8_lossy(&bytes).into_owned()));
                }
            }
            Some(BackendMessage::DataRow(cells))
        }
        b'C' => Some(BackendMessage::CommandComplete(get_cstr(&mut body)?)),
        b'I' => Some(BackendMessage::EmptyQueryResponse),
        b'E' => {
            let mut severity = String::new();
            let mut code = String::new();
            let mut message = String::new();
            while body.remaining() > 0 {
                let tag = body.get_u8();
                if tag == 0 {
                    break;
                }
                let val = get_cstr(&mut body)?;
                match tag {
                    b'S' => severity = val,
                    b'C' => code = val,
                    b'M' => message = val,
                    _ => {}
                }
            }
            Some(BackendMessage::ErrorResponse { severity, code, message })
        }
        _ => None,
    }
}

/// Incremental reader that feeds raw bytes in and yields decoded
/// messages — the shape both TCP loops use.
#[derive(Debug, Default)]
pub struct MessageReader {
    buf: BytesMut,
    /// Whether the next message is the untyped start-up packet
    /// (server side only).
    pub expect_startup: bool,
}

impl MessageReader {
    /// Create a reader; set `expect_startup` for server-side use.
    pub fn new(expect_startup: bool) -> Self {
        MessageReader { buf: BytesMut::new(), expect_startup }
    }

    /// Append raw bytes from the socket.
    pub fn feed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Pop the next complete frontend message, if any.
    pub fn next_frontend(&mut self) -> Option<FrontendMessage> {
        if self.expect_startup {
            let msg = read_startup(&mut self.buf)?;
            self.expect_startup = false;
            return Some(msg);
        }
        let (ty, body) = read_message(&mut self.buf)?;
        decode_frontend(ty, body)
    }

    /// Pop the next complete backend message, if any.
    pub fn next_backend(&mut self) -> Option<BackendMessage> {
        let (ty, body) = read_message(&mut self.buf)?;
        decode_backend(ty, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_frontend(msg: FrontendMessage) -> FrontendMessage {
        let mut buf = BytesMut::new();
        encode_frontend(&msg, &mut buf);
        let startup = matches!(msg, FrontendMessage::Startup { .. });
        let mut reader = MessageReader::new(startup);
        reader.feed(&buf);
        reader.next_frontend().expect("decode")
    }

    fn round_trip_backend(msg: BackendMessage) -> BackendMessage {
        let mut buf = BytesMut::new();
        encode_backend(&msg, &mut buf);
        let mut reader = MessageReader::new(false);
        reader.feed(&buf);
        reader.next_backend().expect("decode")
    }

    #[test]
    fn startup_round_trip() {
        let msg = FrontendMessage::Startup {
            params: vec![
                ("user".into(), "trader".into()),
                ("database".into(), "hist".into()),
            ],
        };
        assert_eq!(round_trip_frontend(msg.clone()), msg);
    }

    #[test]
    fn query_round_trip() {
        let msg = FrontendMessage::Query("SELECT 1".into());
        assert_eq!(round_trip_frontend(msg.clone()), msg);
    }

    #[test]
    fn password_and_terminate() {
        assert_eq!(
            round_trip_frontend(FrontendMessage::Password("md5abc".into())),
            FrontendMessage::Password("md5abc".into())
        );
        assert_eq!(round_trip_frontend(FrontendMessage::Terminate), FrontendMessage::Terminate);
    }

    #[test]
    fn auth_variants_round_trip() {
        for req in [
            AuthRequest::Ok,
            AuthRequest::CleartextPassword,
            AuthRequest::Md5Password { salt: [9, 8, 7, 6] },
        ] {
            assert_eq!(
                round_trip_backend(BackendMessage::Authentication(req)),
                BackendMessage::Authentication(req)
            );
        }
    }

    #[test]
    fn row_description_round_trip() {
        let msg = BackendMessage::RowDescription(vec![
            FieldDesc { name: "ordcol".into(), type_oid: TypeOid::Int8 },
            FieldDesc { name: "Price".into(), type_oid: TypeOid::Float8 },
        ]);
        assert_eq!(round_trip_backend(msg.clone()), msg);
    }

    #[test]
    fn data_row_with_nulls_round_trip() {
        let msg = BackendMessage::DataRow(vec![Some("1".into()), None, Some("GOOG".into())]);
        assert_eq!(round_trip_backend(msg.clone()), msg);
    }

    #[test]
    fn error_response_round_trip() {
        let msg = BackendMessage::ErrorResponse {
            severity: "ERROR".into(),
            code: "42P01".into(),
            message: "relation \"nope\" does not exist".into(),
        };
        assert_eq!(round_trip_backend(msg.clone()), msg);
    }

    #[test]
    fn command_complete_and_ready() {
        assert_eq!(
            round_trip_backend(BackendMessage::CommandComplete("SELECT 3".into())),
            BackendMessage::CommandComplete("SELECT 3".into())
        );
        assert_eq!(
            round_trip_backend(BackendMessage::ReadyForQuery(TransactionStatus::Idle)),
            BackendMessage::ReadyForQuery(TransactionStatus::Idle)
        );
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let mut buf = BytesMut::new();
        encode_backend(&BackendMessage::CommandComplete("SELECT 1".into()), &mut buf);
        let mut reader = MessageReader::new(false);
        // Feed one byte at a time; the message appears only when whole.
        let mut produced = None;
        for b in buf.iter() {
            reader.feed(&[*b]);
            if let Some(m) = reader.next_backend() {
                produced = Some(m);
            }
        }
        assert_eq!(produced, Some(BackendMessage::CommandComplete("SELECT 1".into())));
    }

    #[test]
    fn multiple_messages_in_one_feed() {
        let mut buf = BytesMut::new();
        encode_backend(&BackendMessage::DataRow(vec![Some("1".into())]), &mut buf);
        encode_backend(&BackendMessage::DataRow(vec![Some("2".into())]), &mut buf);
        encode_backend(&BackendMessage::CommandComplete("SELECT 2".into()), &mut buf);
        let mut reader = MessageReader::new(false);
        reader.feed(&buf);
        assert!(matches!(reader.next_backend(), Some(BackendMessage::DataRow(_))));
        assert!(matches!(reader.next_backend(), Some(BackendMessage::DataRow(_))));
        assert!(matches!(reader.next_backend(), Some(BackendMessage::CommandComplete(_))));
        assert!(reader.next_backend().is_none());
    }

    #[test]
    fn streamed_result_set_shape() {
        // Figure 5's row-oriented stream: T, D, D, C.
        let mut buf = BytesMut::new();
        encode_backend(
            &BackendMessage::RowDescription(vec![
                FieldDesc { name: "c1".into(), type_oid: TypeOid::Int4 },
                FieldDesc { name: "c2".into(), type_oid: TypeOid::Int4 },
            ]),
            &mut buf,
        );
        encode_backend(&BackendMessage::DataRow(vec![Some("1".into()), Some("1".into())]), &mut buf);
        encode_backend(&BackendMessage::DataRow(vec![Some("2".into()), Some("2".into())]), &mut buf);
        encode_backend(&BackendMessage::CommandComplete("SELECT 2".into()), &mut buf);
        // First byte of each frame is the type tag.
        assert_eq!(buf[0], b'T');
        let mut reader = MessageReader::new(false);
        reader.feed(&buf);
        let mut kinds = Vec::new();
        while let Some(m) = reader.next_backend() {
            kinds.push(match m {
                BackendMessage::RowDescription(_) => 'T',
                BackendMessage::DataRow(_) => 'D',
                BackendMessage::CommandComplete(_) => 'C',
                _ => '?',
            });
        }
        assert_eq!(kinds, vec!['T', 'D', 'D', 'C']);
    }
}
