//! Encoding and decoding of PG v3 messages over byte buffers.
//!
//! Framing (paper §4.2): one type byte (absent on the start-up packet),
//! then a big-endian i32 length that *includes itself*, then the body.
//!
//! The length prefix is attacker-controlled input: a corrupt or hostile
//! peer can declare any frame size it likes. Decoding therefore rejects
//! frames whose declared length is negative, smaller than the length
//! field itself, or larger than a configurable ceiling
//! ([`DEFAULT_MAX_FRAME`]) — a [`FrameError`] instead of an unbounded
//! allocation.

use crate::messages::{
    AuthRequest, BackendMessage, FieldDesc, FrontendMessage, TransactionStatus, TypeOid,
};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Default ceiling on a declared frame length: 64 MiB.
pub const DEFAULT_MAX_FRAME: usize = 64 * 1024 * 1024;

/// Frame counters on the PG v3 leg, registered once in the global
/// metrics registry. Encoded counts frames produced by this process
/// (either direction); decoded counts complete frames read off the wire.
struct PgwireMetrics {
    frames_encoded: Arc<obs::Counter>,
    frames_decoded: Arc<obs::Counter>,
}

fn metrics() -> &'static PgwireMetrics {
    static METRICS: OnceLock<PgwireMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = obs::global_registry();
        PgwireMetrics {
            frames_encoded: reg.counter("pgwire_frames_encoded_total"),
            frames_decoded: reg.counter("pgwire_frames_decoded_total"),
        }
    })
}

/// A framing-level protocol violation (corrupt or hostile length
/// prefix, undecodable message body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameError {
    /// What was wrong with the frame.
    pub message: String,
}

impl FrameError {
    fn new(message: impl Into<String>) -> Self {
        FrameError { message: message.into() }
    }
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pgwire protocol error: {}", self.message)
    }
}

impl std::error::Error for FrameError {}

/// Validate a declared frame length (the 4 length bytes themselves are
/// included in `len`).
fn check_len(len: i32, max: usize) -> Result<usize, FrameError> {
    if len < 4 {
        return Err(FrameError::new(format!("declared frame length {len} is below the minimum of 4")));
    }
    let len = len as usize;
    if len > max {
        return Err(FrameError::new(format!(
            "declared frame length {len} exceeds the {max}-byte limit"
        )));
    }
    Ok(len)
}

/// Encode a frontend message into `out`.
pub fn encode_frontend(msg: &FrontendMessage, out: &mut BytesMut) {
    metrics().frames_encoded.inc();
    match msg {
        FrontendMessage::Startup { params } => {
            let mut body = BytesMut::new();
            body.put_i32(crate::PROTOCOL_VERSION);
            for (k, v) in params {
                put_cstr(&mut body, k);
                put_cstr(&mut body, v);
            }
            body.put_u8(0);
            out.put_i32(body.len() as i32 + 4);
            out.extend_from_slice(&body);
        }
        FrontendMessage::Password(p) => {
            let mut body = BytesMut::new();
            put_cstr(&mut body, p);
            frame(out, b'p', &body);
        }
        FrontendMessage::Query(sql) => {
            let mut body = BytesMut::new();
            put_cstr(&mut body, sql);
            frame(out, b'Q', &body);
        }
        FrontendMessage::Terminate => frame(out, b'X', &BytesMut::new()),
    }
}

/// Encode a backend message into `out`.
pub fn encode_backend(msg: &BackendMessage, out: &mut BytesMut) {
    metrics().frames_encoded.inc();
    match msg {
        BackendMessage::Authentication(req) => {
            let mut body = BytesMut::new();
            match req {
                AuthRequest::Ok => body.put_i32(0),
                AuthRequest::CleartextPassword => body.put_i32(3),
                AuthRequest::Md5Password { salt } => {
                    body.put_i32(5);
                    body.extend_from_slice(salt);
                }
            }
            frame(out, b'R', &body);
        }
        BackendMessage::ParameterStatus { name, value } => {
            let mut body = BytesMut::new();
            put_cstr(&mut body, name);
            put_cstr(&mut body, value);
            frame(out, b'S', &body);
        }
        BackendMessage::BackendKeyData { pid, secret } => {
            let mut body = BytesMut::new();
            body.put_i32(*pid);
            body.put_i32(*secret);
            frame(out, b'K', &body);
        }
        BackendMessage::ReadyForQuery(status) => {
            let mut body = BytesMut::new();
            body.put_u8(status.as_byte());
            frame(out, b'Z', &body);
        }
        BackendMessage::RowDescription(fields) => {
            let mut body = BytesMut::new();
            body.put_i16(fields.len() as i16);
            for f in fields {
                put_cstr(&mut body, &f.name);
                body.put_i32(0); // table oid
                body.put_i16(0); // attnum
                body.put_u32(f.type_oid.as_u32());
                body.put_i16(-1); // typlen
                body.put_i32(-1); // typmod
                body.put_i16(0); // text format
            }
            frame(out, b'T', &body);
        }
        BackendMessage::DataRow(cells) => {
            let mut body = BytesMut::new();
            body.put_i16(cells.len() as i16);
            for c in cells {
                match c {
                    None => body.put_i32(-1),
                    Some(text) => {
                        body.put_i32(text.len() as i32);
                        body.extend_from_slice(text.as_bytes());
                    }
                }
            }
            frame(out, b'D', &body);
        }
        BackendMessage::CommandComplete(tag) => {
            let mut body = BytesMut::new();
            put_cstr(&mut body, tag);
            frame(out, b'C', &body);
        }
        BackendMessage::EmptyQueryResponse => frame(out, b'I', &BytesMut::new()),
        BackendMessage::ErrorResponse { severity, code, message } => {
            let mut body = BytesMut::new();
            body.put_u8(b'S');
            put_cstr(&mut body, severity);
            body.put_u8(b'C');
            put_cstr(&mut body, code);
            body.put_u8(b'M');
            put_cstr(&mut body, message);
            body.put_u8(0);
            frame(out, b'E', &body);
        }
    }
}

fn frame(out: &mut BytesMut, ty: u8, body: &BytesMut) {
    out.put_u8(ty);
    out.put_i32(body.len() as i32 + 4);
    out.extend_from_slice(body);
}

fn put_cstr(out: &mut BytesMut, s: &str) {
    out.extend_from_slice(s.as_bytes());
    out.put_u8(0);
}

fn get_cstr(buf: &mut Bytes) -> Option<String> {
    let pos = buf.iter().position(|&b| b == 0)?;
    let s = String::from_utf8_lossy(&buf[..pos]).into_owned();
    buf.advance(pos + 1);
    Some(s)
}

/// Try to read one *typed* message from `buf`. Returns `(type, body)` and
/// consumes the bytes, `None` if the buffer does not yet hold a complete
/// message, or a [`FrameError`] when the declared length is corrupt or
/// exceeds `max`.
pub fn read_message(buf: &mut BytesMut, max: usize) -> Result<Option<(u8, Bytes)>, FrameError> {
    if buf.len() < 5 {
        return Ok(None);
    }
    let len = check_len(i32::from_be_bytes([buf[1], buf[2], buf[3], buf[4]]), max)?;
    if buf.len() < 1 + len {
        return Ok(None);
    }
    let ty = buf[0];
    buf.advance(5);
    let body = buf.split_to(len - 4).freeze();
    Ok(Some((ty, body)))
}

/// Try to read the untyped start-up packet.
pub fn read_startup(
    buf: &mut BytesMut,
    max: usize,
) -> Result<Option<FrontendMessage>, FrameError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = check_len(i32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]), max)?;
    if buf.len() < len {
        return Ok(None);
    }
    buf.advance(4);
    let mut body = buf.split_to(len - 4).freeze();
    if body.remaining() < 4 {
        return Err(FrameError::new("start-up packet too short for a protocol version"));
    }
    let _version = body.get_i32();
    let mut params = Vec::new();
    while body.remaining() > 1 {
        let Some(k) = get_cstr(&mut body) else {
            return Err(FrameError::new("unterminated start-up parameter name"));
        };
        if k.is_empty() {
            break;
        }
        let Some(v) = get_cstr(&mut body) else {
            return Err(FrameError::new("unterminated start-up parameter value"));
        };
        params.push((k, v));
    }
    Ok(Some(FrontendMessage::Startup { params }))
}

fn try_u8(b: &mut Bytes) -> Option<u8> {
    (b.remaining() >= 1).then(|| b.get_u8())
}

fn try_i16(b: &mut Bytes) -> Option<i16> {
    (b.remaining() >= 2).then(|| b.get_i16())
}

fn try_i32(b: &mut Bytes) -> Option<i32> {
    (b.remaining() >= 4).then(|| b.get_i32())
}

fn try_u32(b: &mut Bytes) -> Option<u32> {
    (b.remaining() >= 4).then(|| b.get_u32())
}

/// Decode a typed frontend message body. `None` means the body is
/// malformed for its type.
pub fn decode_frontend(ty: u8, mut body: Bytes) -> Option<FrontendMessage> {
    match ty {
        b'p' => Some(FrontendMessage::Password(get_cstr(&mut body)?)),
        b'Q' => Some(FrontendMessage::Query(get_cstr(&mut body)?)),
        b'X' => Some(FrontendMessage::Terminate),
        _ => None,
    }
}

/// Decode a typed backend message body. `None` means the body is
/// malformed for its type. Every multi-byte read is bounds-checked so a
/// lying body yields `None`, never a panic.
pub fn decode_backend(ty: u8, mut body: Bytes) -> Option<BackendMessage> {
    match ty {
        b'R' => {
            let code = try_i32(&mut body)?;
            Some(BackendMessage::Authentication(match code {
                0 => AuthRequest::Ok,
                3 => AuthRequest::CleartextPassword,
                5 => {
                    if body.remaining() < 4 {
                        return None;
                    }
                    let mut salt = [0u8; 4];
                    body.copy_to_slice(&mut salt);
                    AuthRequest::Md5Password { salt }
                }
                _ => return None,
            }))
        }
        b'S' => Some(BackendMessage::ParameterStatus {
            name: get_cstr(&mut body)?,
            value: get_cstr(&mut body)?,
        }),
        b'K' => Some(BackendMessage::BackendKeyData {
            pid: try_i32(&mut body)?,
            secret: try_i32(&mut body)?,
        }),
        b'Z' => {
            let status = match try_u8(&mut body)? {
                b'I' => TransactionStatus::Idle,
                b'T' => TransactionStatus::InTransaction,
                _ => TransactionStatus::Failed,
            };
            Some(BackendMessage::ReadyForQuery(status))
        }
        b'T' => {
            let n = try_i16(&mut body)?;
            if n < 0 {
                return None;
            }
            let mut fields = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let name = get_cstr(&mut body)?;
                let _table_oid = try_i32(&mut body)?;
                let _attnum = try_i16(&mut body)?;
                let oid = try_u32(&mut body)?;
                let _typlen = try_i16(&mut body)?;
                let _typmod = try_i32(&mut body)?;
                let _format = try_i16(&mut body)?;
                fields.push(FieldDesc { name, type_oid: TypeOid::from_u32(oid)? });
            }
            Some(BackendMessage::RowDescription(fields))
        }
        b'D' => {
            let n = try_i16(&mut body)?;
            if n < 0 {
                return None;
            }
            let mut cells = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let len = try_i32(&mut body)?;
                if len < 0 {
                    cells.push(None);
                } else {
                    if body.remaining() < len as usize {
                        return None;
                    }
                    let bytes = body.split_to(len as usize);
                    cells.push(Some(String::from_utf8_lossy(&bytes).into_owned()));
                }
            }
            Some(BackendMessage::DataRow(cells))
        }
        b'C' => Some(BackendMessage::CommandComplete(get_cstr(&mut body)?)),
        b'I' => Some(BackendMessage::EmptyQueryResponse),
        b'E' => {
            let mut severity = String::new();
            let mut code = String::new();
            let mut message = String::new();
            while body.remaining() > 0 {
                let tag = body.get_u8();
                if tag == 0 {
                    break;
                }
                let val = get_cstr(&mut body)?;
                match tag {
                    b'S' => severity = val,
                    b'C' => code = val,
                    b'M' => message = val,
                    _ => {}
                }
            }
            Some(BackendMessage::ErrorResponse { severity, code, message })
        }
        _ => None,
    }
}

/// Message types this implementation understands; anything else in the
/// stream is a well-framed message we simply skip (PG peers may send
/// e.g. `NoticeResponse` frames).
fn known_frontend(ty: u8) -> bool {
    matches!(ty, b'p' | b'Q' | b'X')
}

fn known_backend(ty: u8) -> bool {
    matches!(ty, b'R' | b'S' | b'K' | b'Z' | b'T' | b'D' | b'C' | b'I' | b'E')
}

/// Incremental reader that feeds raw bytes in and yields decoded
/// messages — the shape both TCP loops use.
///
/// The reader enforces a per-frame size ceiling
/// ([`DEFAULT_MAX_FRAME`] unless overridden with [`MessageReader::with_max_frame`]):
/// a frame whose declared length exceeds it is a [`FrameError`], not an
/// allocation.
#[derive(Debug)]
pub struct MessageReader {
    buf: BytesMut,
    max_frame: usize,
    /// Whether the next message is the untyped start-up packet
    /// (server side only).
    pub expect_startup: bool,
}

impl Default for MessageReader {
    fn default() -> Self {
        Self::new(false)
    }
}

impl MessageReader {
    /// Create a reader; set `expect_startup` for server-side use.
    pub fn new(expect_startup: bool) -> Self {
        Self::with_max_frame(expect_startup, DEFAULT_MAX_FRAME)
    }

    /// Create a reader with an explicit per-frame size ceiling.
    pub fn with_max_frame(expect_startup: bool, max_frame: usize) -> Self {
        MessageReader { buf: BytesMut::new(), max_frame, expect_startup }
    }

    /// Append raw bytes from the socket.
    pub fn feed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Whether a partial frame is buffered — bytes have arrived but do
    /// not yet form a complete message. Drives partial-frame-aware read
    /// deadlines: an idle peer is fine, a peer that stalls mid-frame is
    /// not.
    pub fn has_partial(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Pop the next complete frontend message, if any.
    pub fn next_frontend(&mut self) -> Result<Option<FrontendMessage>, FrameError> {
        if self.expect_startup {
            return match read_startup(&mut self.buf, self.max_frame)? {
                Some(msg) => {
                    self.expect_startup = false;
                    metrics().frames_decoded.inc();
                    Ok(Some(msg))
                }
                None => Ok(None),
            };
        }
        loop {
            let Some((ty, body)) = read_message(&mut self.buf, self.max_frame)? else {
                return Ok(None);
            };
            if !known_frontend(ty) {
                continue;
            }
            return match decode_frontend(ty, body) {
                Some(m) => {
                    metrics().frames_decoded.inc();
                    Ok(Some(m))
                }
                None => Err(FrameError::new(format!(
                    "malformed '{}' frontend message body",
                    ty as char
                ))),
            };
        }
    }

    /// Pop the next complete backend message, if any.
    pub fn next_backend(&mut self) -> Result<Option<BackendMessage>, FrameError> {
        loop {
            let Some((ty, body)) = read_message(&mut self.buf, self.max_frame)? else {
                return Ok(None);
            };
            if !known_backend(ty) {
                continue;
            }
            return match decode_backend(ty, body) {
                Some(m) => {
                    metrics().frames_decoded.inc();
                    Ok(Some(m))
                }
                None => Err(FrameError::new(format!(
                    "malformed '{}' backend message body",
                    ty as char
                ))),
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_frontend(msg: FrontendMessage) -> FrontendMessage {
        let mut buf = BytesMut::new();
        encode_frontend(&msg, &mut buf);
        let startup = matches!(msg, FrontendMessage::Startup { .. });
        let mut reader = MessageReader::new(startup);
        reader.feed(&buf);
        reader.next_frontend().expect("framing").expect("decode")
    }

    fn round_trip_backend(msg: BackendMessage) -> BackendMessage {
        let mut buf = BytesMut::new();
        encode_backend(&msg, &mut buf);
        let mut reader = MessageReader::new(false);
        reader.feed(&buf);
        reader.next_backend().expect("framing").expect("decode")
    }

    #[test]
    fn startup_round_trip() {
        let msg = FrontendMessage::Startup {
            params: vec![
                ("user".into(), "trader".into()),
                ("database".into(), "hist".into()),
            ],
        };
        assert_eq!(round_trip_frontend(msg.clone()), msg);
    }

    #[test]
    fn query_round_trip() {
        let msg = FrontendMessage::Query("SELECT 1".into());
        assert_eq!(round_trip_frontend(msg.clone()), msg);
    }

    #[test]
    fn password_and_terminate() {
        assert_eq!(
            round_trip_frontend(FrontendMessage::Password("md5abc".into())),
            FrontendMessage::Password("md5abc".into())
        );
        assert_eq!(round_trip_frontend(FrontendMessage::Terminate), FrontendMessage::Terminate);
    }

    #[test]
    fn auth_variants_round_trip() {
        for req in [
            AuthRequest::Ok,
            AuthRequest::CleartextPassword,
            AuthRequest::Md5Password { salt: [9, 8, 7, 6] },
        ] {
            assert_eq!(
                round_trip_backend(BackendMessage::Authentication(req)),
                BackendMessage::Authentication(req)
            );
        }
    }

    #[test]
    fn row_description_round_trip() {
        let msg = BackendMessage::RowDescription(vec![
            FieldDesc { name: "ordcol".into(), type_oid: TypeOid::Int8 },
            FieldDesc { name: "Price".into(), type_oid: TypeOid::Float8 },
        ]);
        assert_eq!(round_trip_backend(msg.clone()), msg);
    }

    #[test]
    fn data_row_with_nulls_round_trip() {
        let msg = BackendMessage::DataRow(vec![Some("1".into()), None, Some("GOOG".into())]);
        assert_eq!(round_trip_backend(msg.clone()), msg);
    }

    #[test]
    fn error_response_round_trip() {
        let msg = BackendMessage::ErrorResponse {
            severity: "ERROR".into(),
            code: "42P01".into(),
            message: "relation \"nope\" does not exist".into(),
        };
        assert_eq!(round_trip_backend(msg.clone()), msg);
    }

    #[test]
    fn command_complete_and_ready() {
        assert_eq!(
            round_trip_backend(BackendMessage::CommandComplete("SELECT 3".into())),
            BackendMessage::CommandComplete("SELECT 3".into())
        );
        assert_eq!(
            round_trip_backend(BackendMessage::ReadyForQuery(TransactionStatus::Idle)),
            BackendMessage::ReadyForQuery(TransactionStatus::Idle)
        );
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let mut buf = BytesMut::new();
        encode_backend(&BackendMessage::CommandComplete("SELECT 1".into()), &mut buf);
        let mut reader = MessageReader::new(false);
        // Feed one byte at a time; the message appears only when whole.
        let mut produced = None;
        for b in buf.iter() {
            reader.feed(&[*b]);
            if let Some(m) = reader.next_backend().unwrap() {
                produced = Some(m);
            }
        }
        assert_eq!(produced, Some(BackendMessage::CommandComplete("SELECT 1".into())));
    }

    #[test]
    fn multiple_messages_in_one_feed() {
        let mut buf = BytesMut::new();
        encode_backend(&BackendMessage::DataRow(vec![Some("1".into())]), &mut buf);
        encode_backend(&BackendMessage::DataRow(vec![Some("2".into())]), &mut buf);
        encode_backend(&BackendMessage::CommandComplete("SELECT 2".into()), &mut buf);
        let mut reader = MessageReader::new(false);
        reader.feed(&buf);
        assert!(matches!(reader.next_backend().unwrap(), Some(BackendMessage::DataRow(_))));
        assert!(matches!(reader.next_backend().unwrap(), Some(BackendMessage::DataRow(_))));
        assert!(matches!(
            reader.next_backend().unwrap(),
            Some(BackendMessage::CommandComplete(_))
        ));
        assert!(reader.next_backend().unwrap().is_none());
    }

    #[test]
    fn oversized_declared_length_is_a_frame_error_not_an_allocation() {
        // A frame claiming 100 MiB: rejected as soon as the header is
        // visible, far before 100 MiB ever arrives.
        let mut reader = MessageReader::new(false);
        let mut bytes = vec![b'D'];
        bytes.extend_from_slice(&(100 * 1024 * 1024i32).to_be_bytes());
        reader.feed(&bytes);
        let err = reader.next_backend().unwrap_err();
        assert!(err.message.contains("exceeds"), "{err}");
    }

    #[test]
    fn negative_and_undersized_lengths_are_frame_errors() {
        for len in [-1i32, 0, 3] {
            let mut reader = MessageReader::new(false);
            let mut bytes = vec![b'C'];
            bytes.extend_from_slice(&len.to_be_bytes());
            reader.feed(&bytes);
            assert!(reader.next_backend().is_err(), "length {len} accepted");
        }
    }

    #[test]
    fn custom_frame_ceiling_is_enforced() {
        let mut reader = MessageReader::with_max_frame(false, 16);
        let mut buf = BytesMut::new();
        encode_backend(
            &BackendMessage::CommandComplete("SELECT 123456789012345".into()),
            &mut buf,
        );
        reader.feed(&buf);
        assert!(reader.next_backend().is_err());
    }

    #[test]
    fn oversized_startup_packet_rejected() {
        let mut reader = MessageReader::new(true);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(1_000_000_000i32).to_be_bytes());
        reader.feed(&bytes);
        assert!(reader.next_frontend().is_err());
    }

    #[test]
    fn unknown_message_types_are_skipped_not_fatal() {
        // An 'N' (NoticeResponse) frame followed by a CommandComplete:
        // the reader skips what it does not understand.
        let mut bytes = vec![b'N'];
        bytes.extend_from_slice(&9i32.to_be_bytes());
        bytes.extend_from_slice(b"hello");
        let mut buf = BytesMut::new();
        encode_backend(&BackendMessage::CommandComplete("SELECT 1".into()), &mut buf);
        bytes.extend_from_slice(&buf);
        let mut reader = MessageReader::new(false);
        reader.feed(&bytes);
        assert_eq!(
            reader.next_backend().unwrap(),
            Some(BackendMessage::CommandComplete("SELECT 1".into()))
        );
    }

    #[test]
    fn malformed_body_of_known_type_is_a_frame_error_not_a_panic() {
        // A DataRow claiming one cell of 1000 bytes with a 2-byte body.
        let mut bytes = vec![b'D'];
        bytes.extend_from_slice(&12i32.to_be_bytes());
        bytes.extend_from_slice(&1i16.to_be_bytes());
        bytes.extend_from_slice(&1000i32.to_be_bytes());
        bytes.extend_from_slice(b"xx");
        let mut reader = MessageReader::new(false);
        reader.feed(&bytes);
        assert!(reader.next_backend().is_err());
    }

    #[test]
    fn partial_frame_detection() {
        let mut reader = MessageReader::new(false);
        assert!(!reader.has_partial());
        reader.feed(&[b'C', 0, 0]);
        assert!(reader.next_backend().unwrap().is_none());
        assert!(reader.has_partial());
    }

    #[test]
    fn streamed_result_set_shape() {
        // Figure 5's row-oriented stream: T, D, D, C.
        let mut buf = BytesMut::new();
        encode_backend(
            &BackendMessage::RowDescription(vec![
                FieldDesc { name: "c1".into(), type_oid: TypeOid::Int4 },
                FieldDesc { name: "c2".into(), type_oid: TypeOid::Int4 },
            ]),
            &mut buf,
        );
        encode_backend(&BackendMessage::DataRow(vec![Some("1".into()), Some("1".into())]), &mut buf);
        encode_backend(&BackendMessage::DataRow(vec![Some("2".into()), Some("2".into())]), &mut buf);
        encode_backend(&BackendMessage::CommandComplete("SELECT 2".into()), &mut buf);
        // First byte of each frame is the type tag.
        assert_eq!(buf[0], b'T');
        let mut reader = MessageReader::new(false);
        reader.feed(&buf);
        let mut kinds = Vec::new();
        while let Some(m) = reader.next_backend().unwrap() {
            kinds.push(match m {
                BackendMessage::RowDescription(_) => 'T',
                BackendMessage::DataRow(_) => 'D',
                BackendMessage::CommandComplete(_) => 'C',
                _ => '?',
            });
        }
        assert_eq!(kinds, vec!['T', 'D', 'D', 'C']);
    }
}
