//! # pgwire — the PostgreSQL v3 wire protocol
//!
//! Hyper-Q's Gateway speaks the PG v3 message-based protocol to the
//! backend database (paper §3.1, §4.2): "A PG v3 message starts with a
//! single byte denoting message type, followed by four bytes for message
//! length. The remainder of the message body is reserved for storing
//! contents."
//!
//! This crate is sans-io: [`messages`] defines typed frontend/backend
//! messages, [`codec`] encodes/decodes them over byte buffers, and
//! [`md5`] implements the MD5 digest needed for `AuthenticationMD5`
//! (paper §4.2 lists clear text, MD5 and Kerberos as the supported
//! start-up mechanisms). TCP loops live in the database server (`pgdb`)
//! and in Hyper-Q's Gateway plugin.
//!
//! Result sets stream row-by-row: `RowDescription`, then one `DataRow`
//! per row, then `CommandComplete` — the row-oriented format Figure 5
//! contrasts with QIPC's single column-oriented message.

pub mod codec;
pub mod md5;
pub mod messages;

pub use codec::{read_message, read_startup, FrameError, MessageReader, DEFAULT_MAX_FRAME};
pub use messages::{
    AuthRequest, BackendMessage, FieldDesc, FrontendMessage, TransactionStatus, TypeOid,
};

/// Protocol version number for the v3 startup packet (196608 = 3 << 16).
pub const PROTOCOL_VERSION: i32 = 196_608;

/// Compute the `md5...` password response PostgreSQL expects:
/// `"md5" + hex(md5(hex(md5(password + user)) + salt))`.
pub fn md5_password(user: &str, password: &str, salt: [u8; 4]) -> String {
    let inner = md5::hex_digest(format!("{password}{user}").as_bytes());
    let mut salted = inner.into_bytes();
    salted.extend_from_slice(&salt);
    format!("md5{}", md5::hex_digest(&salted))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn md5_password_matches_postgres_convention() {
        // Reference value computed with PostgreSQL's algorithm.
        let resp = md5_password("alice", "secret", [1, 2, 3, 4]);
        assert!(resp.starts_with("md5"));
        assert_eq!(resp.len(), 3 + 32);
        // Deterministic.
        assert_eq!(resp, md5_password("alice", "secret", [1, 2, 3, 4]));
        assert_ne!(resp, md5_password("alice", "secret", [4, 3, 2, 1]));
    }
}
