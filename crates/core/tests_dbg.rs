#[test]
fn dbg_sum_sql() {
    use hyperq::{loader, HyperQSession};
    use qlang::value::{Table, Value};
    let db = pgdb::Db::new();
    let mut s = HyperQSession::with_direct(&db);
    let t = Table::new(vec!["Price".into()], vec![Value::Floats(vec![1.0])]).unwrap();
    loader::load_table(&mut s, "trades", &t).unwrap();
    let (v, trs) = s.execute_traced("select r: sum Price from trades where Price < 0.0").unwrap();
    println!("SQL: {}", trs[0].statements[0].sql);
    println!("V: {v:?}");
    panic!("show output");
}
