//! Backend abstraction.
//!
//! Hyper-Q virtualizes *which* database executes the SQL: the paper's
//! deployments used Greenplum over the PG v3 protocol; tests and
//! benchmarks here use the in-process `pgdb` engine. Both sit behind one
//! trait so the translation pipeline cannot tell the difference — that
//! indifference is the point of ADV.

use crate::wire::WireError;
use pgdb::{BatchQueryResult, QueryResult, Session, StreamQueryResult};
use std::sync::{Arc, Mutex};

/// Something that executes SQL statements and returns rows.
///
/// Failures come back as the typed [`WireError`] taxonomy: a plain SQL
/// error is `WireErrorKind::Db`, while wire-level failures (lost
/// connections, deadlines, protocol violations, exhausted retries)
/// carry their own kinds so callers can degrade gracefully instead of
/// tearing the session down.
pub trait Backend: Send {
    /// Execute one SQL statement.
    fn execute_sql(&mut self, sql: &str) -> Result<QueryResult, WireError>;

    /// Execute one SQL statement and hand the result back *columnar*,
    /// if this backend can. `Ok(None)` means "rows only" — external
    /// backends reached over the PG v3 wire stream rows, so they return
    /// `None` without executing anything and the caller falls back to
    /// [`Backend::execute_sql`] plus the row pivot. The in-process
    /// backend overrides this: its executor is already columnar, so the
    /// pivot becomes a near-no-op column hand-off (DESIGN §10).
    fn execute_sql_batch(
        &mut self,
        _sql: &str,
    ) -> Result<Option<BatchQueryResult>, WireError> {
        Ok(None)
    }

    /// Execute one SQL statement and stream the result back as bounded
    /// columnar chunks, if this backend can. `Ok(None)` means "no
    /// streaming" — the caller falls back to
    /// [`Backend::execute_sql_batch`] / [`Backend::execute_sql`]. The
    /// in-process backend overrides this so results flow executor →
    /// pivot one morsel-sized chunk at a time (DESIGN §12).
    fn execute_sql_stream(
        &mut self,
        _sql: &str,
    ) -> Result<Option<StreamQueryResult>, WireError> {
        Ok(None)
    }

    /// Pin the executor worker-pool width for this backend's session
    /// (`None` = environment default). No-op for backends that execute
    /// remotely — their parallelism is the remote server's business.
    fn set_exec_threads(&mut self, _threads: Option<usize>) {}

    /// Human-readable description (for diagnostics).
    fn describe(&self) -> String {
        "backend".to_string()
    }

    /// How many times this backend has transparently reconnected over
    /// its lifetime (0 for backends that cannot reconnect). Sessions
    /// diff this around statement execution to surface `Recovering`
    /// span events in query traces.
    fn reconnects(&self) -> u64 {
        0
    }

    /// Whether committed mutations on this backend survive a crash
    /// (WAL + recovery). The gateway consults this when a connection
    /// dies mid-mutation: against a durable backend the refusal to
    /// blind-replay becomes "reconnect and report, effects preserved",
    /// because a committed statement cannot have been lost.
    fn durable(&self) -> bool {
        false
    }

    /// Observed statistics for a stored table, if this backend tracks
    /// them. `None` means "unknown" — remote backends reached over the
    /// wire degrade to stat-less planning (the shard planner then falls
    /// back to its pure row-count threshold). The in-process backend
    /// overrides this with the engine's live stats.
    fn table_stats(&mut self, _name: &str) -> Option<pgdb::TableStats> {
        None
    }
}

/// In-process backend: a `pgdb` session (temp tables and all).
pub struct DirectBackend {
    session: Session,
}

impl DirectBackend {
    /// Open a backend session against a shared `pgdb` database.
    pub fn new(db: &pgdb::Db) -> Self {
        DirectBackend { session: db.session() }
    }
}

impl Backend for DirectBackend {
    fn execute_sql(&mut self, sql: &str) -> Result<QueryResult, WireError> {
        self.session.execute(sql).map_err(WireError::from)
    }

    fn execute_sql_batch(
        &mut self,
        sql: &str,
    ) -> Result<Option<BatchQueryResult>, WireError> {
        self.session.execute_batch(sql).map(Some).map_err(WireError::from)
    }

    fn execute_sql_stream(
        &mut self,
        sql: &str,
    ) -> Result<Option<StreamQueryResult>, WireError> {
        self.session.execute_stream(sql).map(Some).map_err(WireError::from)
    }

    fn set_exec_threads(&mut self, threads: Option<usize>) {
        self.session.set_exec_threads(threads);
    }

    fn describe(&self) -> String {
        "pgdb (in-process)".to_string()
    }

    fn durable(&self) -> bool {
        self.session.db().is_durable()
    }

    fn table_stats(&mut self, name: &str) -> Option<pgdb::TableStats> {
        self.session.db().table_stats(name)
    }
}

/// A shareable backend handle: the session and the metadata interface
/// both need access, so the backend lives behind `Arc<Mutex<_>>`.
pub type SharedBackend = Arc<Mutex<dyn Backend>>;

/// Wrap a backend for sharing.
pub fn share(backend: impl Backend + 'static) -> SharedBackend {
    Arc::new(Mutex::new(backend))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgdb::Cell;

    #[test]
    fn direct_backend_round_trip() {
        let db = pgdb::Db::new();
        let mut b = DirectBackend::new(&db);
        b.execute_sql("CREATE TABLE t (x bigint)").unwrap();
        b.execute_sql("INSERT INTO t VALUES (7)").unwrap();
        match b.execute_sql("SELECT x FROM t").unwrap() {
            QueryResult::Rows(r) => assert_eq!(r.data[0][0], Cell::Int(7)),
            other => panic!("expected rows, got {other:?}"),
        }
    }

    #[test]
    fn shared_backend_is_usable_from_clones() {
        let db = pgdb::Db::new();
        let shared = share(DirectBackend::new(&db));
        let clone = Arc::clone(&shared);
        clone.lock().unwrap().execute_sql("CREATE TABLE t (x bigint)").unwrap();
        shared.lock().unwrap().execute_sql("INSERT INTO t VALUES (1)").unwrap();
        let r = clone.lock().unwrap().execute_sql("SELECT count(*) FROM t").unwrap();
        match r {
            QueryResult::Rows(rows) => assert_eq!(rows.data[0][0], Cell::Int(1)),
            other => panic!("expected rows, got {other:?}"),
        }
    }
}
