//! Sharded scatter-gather backend: MPP emulation over N pgdb instances.
//!
//! The paper's Hyper-Q fronted a Greenplum cluster; this module closes
//! that gap by hash-partitioning stored tables across N shards (plus a
//! coordinator holding a full copy of everything) and fanning translated
//! SQL per shard through the same [`Backend`] seam the single-node paths
//! use. Partials merge client-side:
//!
//! - distributive re-aggregation for `count` / `sum` / `min` / `max`,
//!   plus sum/count decomposition for `avg`;
//! - a k-way ordered merge for ORDER BY results (a hidden global
//!   insertion ordinal `__hq_ord` breaks ties so shard interleaving is
//!   bit-identical to single-node frame order);
//! - broadcast of small/dimension tables so equi-joins stay shard-local;
//! - pass-through scatter for plain scans and filters.
//!
//! Anything the router cannot *prove* shard-safe (windows, subquery
//! predicates, DISTINCT aggregates, cross-shard join shapes, set ops,
//! OFFSET scans, float aggregates under reordering) falls back to the
//! coordinator, which holds a full copy of every table — so a fallback
//! is exactly single-node execution, errors included. Fallbacks are
//! counted in `shard_fallback_total`, never silent.
//!
//! Float `sum`/`avg`/`min`/`max` deserve a note: two-level f64 addition
//! is not associative, and the engine's min/max fold is first-seen-wins
//! on incomparable values (NaN), so re-aggregating float partials can
//! diverge from single-node results in the last bit (or pick a
//! different NaN). They therefore fall back unless `HQ_SHARD_FLOAT_AGG=1`
//! opts into the (documented, slightly inexact) distributed form.
//! Integer sums stay exact: i64-valued doubles below 2^53 add exactly in
//! any order.

use crate::backend::{Backend, DirectBackend};
use crate::gateway::{Credentials, PgWireBackend};
use crate::wire::{RetryPolicy, ShardFailure, WireError, WireErrorKind, WireTimeouts};
use pgdb::exec::expr::{derive_type, eval, BoundCol};
use pgdb::sql::ast::{is_aggregate_name, FromItem, SelectItem, SelectStmt, SqlBinOp, SqlExpr, Stmt};
use pgdb::sql::render;
use pgdb::{Batch, BatchQueryResult, Cell, Column, PgType, QueryResult, Rows, StreamQueryResult};
use std::cmp::Ordering as CmpOrdering;
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Hidden per-row global insertion ordinal column on shard tables.
const ORD: &str = "__hq_ord";
/// Reserved identifier prefix; user SQL mentioning it is refused a
/// scatter plan (it would collide with router-internal columns).
const RESERVED: &str = "__hq_";
/// Scratch table name for the re-aggregation merge.
const PARTIALS: &str = "__hq_partials";

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

/// How a table is laid out across the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Created but empty: no placement decision yet. Safe to treat as
    /// broadcast for reads (every shard agrees it has zero rows).
    Undecided,
    /// Full copy on every shard (small/dimension tables): joins against
    /// it stay shard-local.
    Broadcast,
    /// Hash-partitioned by the partition key; the coordinator still
    /// holds a full copy for fallback execution.
    Partitioned,
}

/// Per-table shard metadata.
#[derive(Debug, Clone)]
pub struct TableMeta {
    /// Logical column definitions (without the hidden ordinal).
    pub cols: Vec<(String, PgType)>,
    /// Partition key as an index into `cols`; `None` = round-robin.
    pub key: Option<usize>,
    /// Current placement.
    pub mode: Mode,
    /// Rows inserted through the router so far.
    pub rows: u64,
    /// Round-robin cursor for keyless/unhashable rows.
    rr: u64,
}

/// Placement / planning knobs (env-derived by default).
#[derive(Debug, Clone)]
pub struct ShardOpts {
    /// Tables whose total row count stays at or below this after an
    /// insert are broadcast instead of partitioned (`HQ_SHARD_BROADCAST`,
    /// default 64). The decision is sticky: once broadcast, always
    /// broadcast.
    pub broadcast_threshold: u64,
    /// Allow distributed float aggregates (`HQ_SHARD_FLOAT_AGG=1`).
    /// Off by default because two-level float folds are not exactly
    /// associative; see the module docs.
    pub float_agg: bool,
    /// Partition-key overrides, table name → column name
    /// (`HQ_SHARD_KEY="trades:sym,quotes:sym"`). Default is the first
    /// column.
    pub keys: HashMap<String, String>,
}

impl ShardOpts {
    /// Read the knobs from the environment.
    pub fn from_env() -> ShardOpts {
        let broadcast_threshold = std::env::var("HQ_SHARD_BROADCAST")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        let float_agg = std::env::var("HQ_SHARD_FLOAT_AGG").map(|v| v == "1").unwrap_or(false);
        let mut keys = HashMap::new();
        if let Ok(spec) = std::env::var("HQ_SHARD_KEY") {
            for part in spec.split(',') {
                if let Some((t, c)) = part.split_once(':') {
                    keys.insert(t.trim().to_string(), c.trim().to_string());
                }
            }
        }
        ShardOpts { broadcast_threshold, float_agg, keys }
    }
}

impl Default for ShardOpts {
    fn default() -> Self {
        ShardOpts::from_env()
    }
}

/// Shard count from `HQ_SHARDS`, clamped to at least 1.
pub fn env_shards(default: usize) -> usize {
    std::env::var("HQ_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
        .max(1)
}

// ---------------------------------------------------------------------------
// Cluster
// ---------------------------------------------------------------------------

enum Topology {
    /// N in-process pgdb instances plus a coordinator instance.
    InProcess { coord: pgdb::Db, shards: Vec<pgdb::Db> },
    /// Over-the-wire shards reached through the PG v3 gateway.
    Remote {
        coord: String,
        shards: Vec<String>,
        creds: Credentials,
        timeouts: WireTimeouts,
        retry: RetryPolicy,
    },
}

/// A shard cluster: topology plus the shared placement catalog. Open
/// per-connection routers with [`ShardCluster::router`]; all routers on
/// one cluster share the catalog and the global insertion ordinal.
pub struct ShardCluster {
    topo: Topology,
    catalog: RwLock<HashMap<String, TableMeta>>,
    /// Global insertion ordinal: every row routed through any router on
    /// this cluster gets a unique, monotonically assigned `__hq_ord`.
    ordinal: AtomicI64,
    /// Serializes DDL/DML so coordinator apply order matches ordinal
    /// order (reads never take this).
    mutation: Mutex<()>,
    opts: ShardOpts,
}

impl ShardCluster {
    /// In-process cluster: `n` shard instances plus a coordinator,
    /// knobs from the environment.
    pub fn in_process(n: usize) -> Arc<ShardCluster> {
        ShardCluster::in_process_with(n, ShardOpts::from_env())
    }

    /// In-process cluster with explicit knobs.
    pub fn in_process_with(n: usize, opts: ShardOpts) -> Arc<ShardCluster> {
        let n = n.max(1);
        Arc::new(ShardCluster {
            topo: Topology::InProcess {
                coord: pgdb::Db::new(),
                shards: (0..n).map(|_| pgdb::Db::new()).collect(),
            },
            catalog: RwLock::new(HashMap::new()),
            ordinal: AtomicI64::new(0),
            mutation: Mutex::new(()),
            opts,
        })
    }

    /// Remote cluster over the PG v3 gateway: one address per shard plus
    /// the coordinator's address, knobs from the environment.
    pub fn remote(
        shard_addrs: Vec<String>,
        coord_addr: String,
        creds: Credentials,
        timeouts: WireTimeouts,
        retry: RetryPolicy,
    ) -> Arc<ShardCluster> {
        assert!(!shard_addrs.is_empty(), "remote cluster needs at least one shard");
        Arc::new(ShardCluster {
            topo: Topology::Remote { coord: coord_addr, shards: shard_addrs, creds, timeouts, retry },
            catalog: RwLock::new(HashMap::new()),
            ordinal: AtomicI64::new(0),
            mutation: Mutex::new(()),
            opts: ShardOpts::from_env(),
        })
    }

    /// Number of shards (excluding the coordinator).
    pub fn shard_count(&self) -> usize {
        match &self.topo {
            Topology::InProcess { shards, .. } => shards.len(),
            Topology::Remote { shards, .. } => shards.len(),
        }
    }

    /// Open a router: one backend connection per shard plus one to the
    /// coordinator.
    pub fn router(self: &Arc<ShardCluster>) -> Result<ShardRouter, WireError> {
        let (coord, shards): (Box<dyn Backend>, Vec<Box<dyn Backend>>) = match &self.topo {
            Topology::InProcess { coord, shards } => (
                Box::new(DirectBackend::new(coord)),
                shards.iter().map(|db| Box::new(DirectBackend::new(db)) as Box<dyn Backend>).collect(),
            ),
            Topology::Remote { coord, shards, creds, timeouts, retry } => {
                let mut conns: Vec<Box<dyn Backend>> = Vec::with_capacity(shards.len());
                for addr in shards {
                    conns.push(Box::new(PgWireBackend::connect_with(
                        addr,
                        creds,
                        *timeouts,
                        *retry,
                    )?));
                }
                let c = PgWireBackend::connect_with(coord, creds, *timeouts, *retry)?;
                (Box::new(c), conns)
            }
        };
        Ok(ShardRouter { cluster: Arc::clone(self), coord, shards })
    }

    /// Placement metadata for a table (tests/diagnostics).
    pub fn table_meta(&self, name: &str) -> Option<TableMeta> {
        self.catalog.read().unwrap().get(name).cloned()
    }

    /// The in-process instances (coordinator, shards); `None` for
    /// remote topologies. Test introspection.
    pub fn in_process_dbs(&self) -> Option<(&pgdb::Db, &[pgdb::Db])> {
        match &self.topo {
            Topology::InProcess { coord, shards } => Some((coord, shards)),
            Topology::Remote { .. } => None,
        }
    }

    /// Bulk-load a columnar batch into an in-process cluster, bypassing
    /// per-row INSERT rendering — the fixture fast path for benchmarks
    /// and large tests. Lands in exactly the state a routed
    /// `CREATE TABLE` + `INSERT` reaches: the coordinator holds the
    /// full copy, every shard table carries the hidden `__hq_ord`
    /// ordinal, batches at or below the broadcast threshold replicate
    /// to every shard while larger ones hash-partition on the
    /// registered key, and the catalog records the placement.
    ///
    /// Panics on a remote topology (there is no columnar wire path) or
    /// when the table is already registered.
    pub fn put_table_batch(&self, name: &str, batch: Batch) {
        let (coord, shards) = match &self.topo {
            Topology::InProcess { coord, shards } => (coord, shards),
            Topology::Remote { .. } => panic!("put_table_batch requires an in-process cluster"),
        };
        let _m = self.mutation.lock().unwrap();
        assert!(!self.has_table(name), "put_table_batch: table {name:?} already registered");

        let cols: Vec<(String, PgType)> =
            batch.schema.iter().map(|c| (c.name.clone(), c.ty)).collect();
        let mut shard_schema = batch.schema.clone();
        shard_schema.push(Column::new(ORD, PgType::Int8));
        let n = batch.rows();
        let data = batch.to_rows().data;
        coord.put_table_batch(name, batch);

        self.register(name, cols);
        let nshards = shards.len();
        let base = self.ordinal.fetch_add(n as i64, Ordering::Relaxed);
        let (mode, key_pos) = {
            let mut cat = self.catalog.write().unwrap();
            let meta = cat.get_mut(name).expect("just registered");
            meta.mode = if n as u64 <= self.opts.broadcast_threshold {
                Mode::Broadcast
            } else {
                Mode::Partitioned
            };
            meta.rows = n as u64;
            (meta.mode, meta.key)
        };

        let mut per_shard: Vec<Vec<Vec<Cell>>> = vec![Vec::new(); nshards];
        for (ri, mut row) in data.into_iter().enumerate() {
            row.push(Cell::Int(base + ri as i64));
            if mode == Mode::Broadcast {
                for dst in &mut per_shard {
                    dst.push(row.clone());
                }
            } else {
                let s = match key_pos.and_then(|p| row.get(p)) {
                    Some(Cell::Null) | None => 0,
                    Some(c) => (hash_cell(c) % nshards as u64) as usize,
                };
                per_shard[s].push(row);
            }
        }
        for (db, rows) in shards.iter().zip(per_shard) {
            db.put_table_batch(
                name,
                Batch::from_rows(Rows { columns: shard_schema.clone(), data: rows }),
            );
        }
    }

    fn catalog_snapshot(&self) -> HashMap<String, TableMeta> {
        self.catalog.read().unwrap().clone()
    }

    fn register(&self, name: &str, cols: Vec<(String, PgType)>) {
        let key = match self.opts.keys.get(name) {
            Some(k) => cols.iter().position(|(n, _)| n == k),
            None if cols.is_empty() => None,
            None => Some(0),
        };
        self.catalog.write().unwrap().insert(
            name.to_string(),
            TableMeta { cols, key, mode: Mode::Undecided, rows: 0, rr: 0 },
        );
    }

    fn deregister(&self, name: &str) {
        self.catalog.write().unwrap().remove(name);
    }

    fn has_table(&self, name: &str) -> bool {
        self.catalog.read().unwrap().contains_key(name)
    }
}

// ---------------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------------

/// FNV-1a over a canonical byte encoding of the cell.
fn hash_cell(c: &Cell) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for b in bytes {
            h ^= u64::from(*b);
            h = h.wrapping_mul(PRIME);
        }
    };
    match c {
        Cell::Null => eat(&[0]),
        Cell::Bool(b) => eat(&[1, u8::from(*b)]),
        Cell::Int(i) => {
            eat(&[2]);
            eat(&i.to_le_bytes());
        }
        Cell::Float(f) => {
            eat(&[3]);
            eat(&f.to_bits().to_le_bytes());
        }
        Cell::Text(s) => {
            eat(&[4]);
            eat(s.as_bytes());
        }
        Cell::Date(d) => {
            eat(&[5]);
            eat(&d.to_le_bytes());
        }
        Cell::Time(t) => {
            eat(&[6]);
            eat(&t.to_le_bytes());
        }
        Cell::Timestamp(t) => {
            eat(&[7]);
            eat(&t.to_le_bytes());
        }
    }
    h
}

// ---------------------------------------------------------------------------
// Statement analysis
// ---------------------------------------------------------------------------

/// What a select tree contains, gathered in one walk.
#[derive(Default)]
struct SelectScan {
    tables: Vec<String>,
    set_op: bool,
    windows: bool,
    subqueries: bool,
    distinct_agg: bool,
    wildcard: bool,
}

fn scan_select(s: &SelectStmt, out: &mut SelectScan) {
    for item in &s.items {
        match item {
            SelectItem::Wildcard => out.wildcard = true,
            SelectItem::Expr { expr, .. } => scan_expr(expr, out),
        }
    }
    if let Some(f) = &s.from {
        scan_from(f, out);
    }
    for e in s
        .where_clause
        .iter()
        .chain(s.group_by.iter())
        .chain(s.having.iter())
        .chain(s.order_by.iter().map(|(e, _)| e))
    {
        scan_expr(e, out);
    }
    if let Some((_, rest)) = &s.set_op {
        out.set_op = true;
        scan_select(rest, out);
    }
}

fn scan_from(f: &FromItem, out: &mut SelectScan) {
    match f {
        FromItem::Table { name, .. } => out.tables.push(name.clone()),
        FromItem::Subquery { query, .. } => scan_select(query, out),
        FromItem::Values { rows, .. } => {
            for row in rows {
                for e in row {
                    scan_expr(e, out);
                }
            }
        }
        FromItem::Join { left, right, on, .. } => {
            scan_from(left, out);
            scan_from(right, out);
            if let Some(e) = on {
                scan_expr(e, out);
            }
        }
    }
}

fn scan_expr(e: &SqlExpr, out: &mut SelectScan) {
    match e {
        SqlExpr::Column { .. } | SqlExpr::Literal(_) | SqlExpr::Star => {}
        SqlExpr::Binary { lhs, rhs, .. } => {
            scan_expr(lhs, out);
            scan_expr(rhs, out);
        }
        SqlExpr::Not(x) | SqlExpr::Neg(x) => scan_expr(x, out),
        SqlExpr::Func { name, args, distinct } => {
            if *distinct && is_aggregate_name(name) {
                out.distinct_agg = true;
            }
            for a in args {
                scan_expr(a, out);
            }
        }
        SqlExpr::WindowFunc { args, partition_by, order_by, .. } => {
            out.windows = true;
            for a in args.iter().chain(partition_by.iter()) {
                scan_expr(a, out);
            }
            for (a, _) in order_by {
                scan_expr(a, out);
            }
        }
        SqlExpr::Case { branches, else_result } => {
            for (c, r) in branches {
                scan_expr(c, out);
                scan_expr(r, out);
            }
            if let Some(x) = else_result {
                scan_expr(x, out);
            }
        }
        SqlExpr::Cast { expr, .. } => scan_expr(expr, out),
        SqlExpr::InList { expr, list, .. } => {
            scan_expr(expr, out);
            for x in list {
                scan_expr(x, out);
            }
        }
        SqlExpr::IsNull { expr, .. } => scan_expr(expr, out),
        SqlExpr::InSubquery { expr, query, .. } => {
            out.subqueries = true;
            scan_expr(expr, out);
            scan_select(query, out);
        }
    }
}

/// Output column name the engine would assign (mirrors the executor's
/// `default_output_name`).
fn out_name(item: &SelectItem, i: usize) -> String {
    match item {
        SelectItem::Wildcard => "*".to_string(),
        SelectItem::Expr { expr, alias } => alias.clone().unwrap_or_else(|| match expr {
            SqlExpr::Column { name, .. } => name.clone(),
            SqlExpr::Func { name, .. } | SqlExpr::WindowFunc { name, .. } => name.clone(),
            _ => format!("column{}", i + 1),
        }),
    }
}

fn col(name: &str) -> SqlExpr {
    SqlExpr::Column { qualifier: None, name: name.to_string() }
}

fn qcol(qualifier: &str, name: &str) -> SqlExpr {
    SqlExpr::Column { qualifier: Some(qualifier.to_string()), name: name.to_string() }
}

fn agg(name: &str, arg: SqlExpr) -> SqlExpr {
    SqlExpr::Func { name: name.to_string(), args: vec![arg], distinct: false }
}

fn item(expr: SqlExpr, alias: &str) -> SelectItem {
    SelectItem::Expr { expr, alias: Some(alias.to_string()) }
}

/// Is this select in aggregate context (grouped or scalar aggregation)?
fn is_agg_context(s: &SelectStmt) -> bool {
    !s.group_by.is_empty()
        || s.having.is_some()
        || s.items.iter().any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
        || s.order_by.iter().any(|(e, _)| e.contains_aggregate())
}

/// Is `f` (a FROM subtree that is *not* the partitioned leaf) identical
/// on every shard? True when every base table under it is broadcast (or
/// still empty/undecided).
fn broadcast_safe(f: &FromItem, cat: &HashMap<String, TableMeta>) -> bool {
    let mut scan = SelectScan::default();
    scan_from(f, &mut scan);
    scan.tables.iter().all(|t| {
        matches!(cat.get(t.as_str()), Some(m) if m.mode != Mode::Partitioned)
    })
}

/// Is `q` a plain per-row scan of partitioned table `p` (safe to use as
/// a partitioned FROM leaf, with the ordinal threaded through)?
fn plain_scan_of(q: &SelectStmt, p: &str) -> bool {
    matches!(&q.from, Some(FromItem::Table { name, .. }) if name == p)
        && q.group_by.is_empty()
        && q.having.is_none()
        && q.order_by.is_empty()
        && q.limit.is_none()
        && q.offset.is_none()
        && q.set_op.is_none()
        && q.items.iter().all(|i| {
            matches!(i, SelectItem::Expr { expr, .. } if !expr.contains_aggregate())
        })
}

/// Walk down the left spine: the partitioned leaf must be leftmost, and
/// every right subtree must be broadcast-safe (identical per shard, so
/// probe order — and with it result order — matches single-node).
fn leftmost_ok(f: &FromItem, p: &str, cat: &HashMap<String, TableMeta>) -> bool {
    match f {
        FromItem::Table { name, .. } => name == p,
        FromItem::Subquery { query, .. } => plain_scan_of(query, p),
        FromItem::Join { left, right, .. } => {
            leftmost_ok(left, p, cat) && broadcast_safe(right, cat)
        }
        FromItem::Values { .. } => false,
    }
}

/// Append the hidden ordinal to the partitioned leaf's projection (for
/// subquery leaves) and return the qualifier under which `__hq_ord` is
/// reachable from the outer select.
fn attach_ord(f: &mut FromItem, p: &str) -> Option<String> {
    match f {
        FromItem::Table { name, alias } if name == p => {
            Some(alias.clone().unwrap_or_else(|| name.clone()))
        }
        FromItem::Subquery { query, alias } => {
            let inner_q = match &query.from {
                Some(FromItem::Table { name, alias }) => {
                    alias.clone().unwrap_or_else(|| name.clone())
                }
                _ => return None,
            };
            query.items.push(item(qcol(&inner_q, ORD), ORD));
            Some(alias.clone())
        }
        FromItem::Join { left, .. } => attach_ord(left, p),
        _ => None,
    }
}

/// Bound columns of the partitioned FROM leaf, for aggregate-argument
/// type derivation.
fn leaf_bound_cols(
    f: &FromItem,
    p: &str,
    meta: &TableMeta,
) -> Option<Vec<BoundCol>> {
    match f {
        FromItem::Table { name, alias } if name == p => {
            let q = alias.clone().unwrap_or_else(|| name.clone());
            Some(
                meta.cols
                    .iter()
                    .map(|(n, t)| BoundCol { qualifier: Some(q.clone()), name: n.clone(), ty: *t })
                    .collect(),
            )
        }
        FromItem::Subquery { query, alias } => {
            let inner: Vec<BoundCol> = meta
                .cols
                .iter()
                .map(|(n, t)| BoundCol { qualifier: None, name: n.clone(), ty: *t })
                .collect();
            let mut out = Vec::with_capacity(query.items.len());
            for (i, it) in query.items.iter().enumerate() {
                let SelectItem::Expr { expr, .. } = it else { return None };
                out.push(BoundCol {
                    qualifier: Some(alias.clone()),
                    name: out_name(it, i),
                    ty: derive_type(expr, &inner),
                });
            }
            Some(out)
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Plans
// ---------------------------------------------------------------------------

/// Pass-through scatter: same SQL per shard (with hidden sort keys and
/// the ordinal appended), k-way ordered merge client-side.
struct ScanPlan {
    shard_sql: String,
    /// Output columns visible to the caller (hidden ones are stripped).
    visible: usize,
    /// Merge comparison keys: (column index in shard output, desc).
    keys: Vec<(usize, bool)>,
    /// Index of the ordinal tie-break column (always last).
    ord_idx: usize,
    limit: Option<u64>,
}

/// Distributive re-aggregation: per-shard partials, merged by running a
/// rewritten aggregate over a scratch single-node instance (so merge
/// semantics match the engine by construction).
struct AggPlan {
    shard_sql: String,
    merge_sql: String,
    /// Caller-visible output columns (the trailing `__hq_ho` group
    /// order key is stripped).
    visible: usize,
}

enum Plan {
    /// No partitioned table involved: run on the coordinator (temps,
    /// catalog queries, broadcast-only joins). Not a fallback.
    Local,
    /// Provably shard-safe scatter.
    Scan(ScanPlan),
    Agg(Box<AggPlan>),
    /// Partitioned table involved but not provably shard-safe: run on
    /// the coordinator's full copy and count it.
    Fallback,
}

fn plan_select(sel: &SelectStmt, cat: &HashMap<String, TableMeta>, float_agg: bool) -> Plan {
    let mut info = SelectScan::default();
    scan_select(sel, &mut info);

    let mut parts: Vec<&str> = info
        .tables
        .iter()
        .filter(|t| matches!(cat.get(t.as_str()), Some(m) if m.mode == Mode::Partitioned))
        .map(|t| t.as_str())
        .collect();
    parts.sort_unstable();
    parts.dedup();
    if parts.is_empty() {
        return Plan::Local;
    }
    if parts.len() > 1 || info.set_op || info.windows || info.subqueries || info.distinct_agg {
        return Plan::Fallback;
    }
    let p = parts[0];

    // The partitioned table must appear exactly once, in the outer FROM.
    let mut outer = SelectScan::default();
    if let Some(f) = &sel.from {
        scan_from(f, &mut outer);
    }
    if outer.tables.iter().filter(|t| *t == p).count() != 1 {
        return Plan::Fallback;
    }
    let meta = &cat[p];

    if is_agg_context(sel) {
        plan_agg(sel, cat, p, meta, float_agg)
    } else {
        plan_scan(sel, cat, p)
    }
}

fn plan_scan(sel: &SelectStmt, cat: &HashMap<String, TableMeta>, p: &str) -> Plan {
    let Some(from) = &sel.from else { return Plan::Fallback };
    if !leftmost_ok(from, p, cat) || sel.offset.is_some() {
        return Plan::Fallback;
    }

    // Expand `SELECT *` from the catalog: the shard-side physical `*`
    // would leak the hidden ordinal. Only the single-table shape is
    // expandable; wildcards over joins/subqueries fall back.
    let mut items: Vec<SelectItem> = Vec::with_capacity(sel.items.len());
    for it in &sel.items {
        match it {
            SelectItem::Wildcard => {
                if !matches!(from, FromItem::Table { name, .. } if name == p) || sel.items.len() != 1 {
                    return Plan::Fallback;
                }
                for (n, _) in &cat[p].cols {
                    items.push(SelectItem::Expr { expr: col(n), alias: None });
                }
            }
            other => items.push(other.clone()),
        }
    }
    let visible = items.len();
    let names: Vec<String> = items.iter().enumerate().map(|(i, it)| out_name(it, i)).collect();

    // Classify ORDER BY keys: a bare column naming an output sorts on
    // that visible column; anything else is computed per shard as a
    // hidden item — valid only if it cannot capture an output alias
    // (items evaluate against the input frame, ORDER BY against outputs
    // first).
    let mut keys: Vec<(usize, bool)> = Vec::with_capacity(sel.order_by.len());
    let mut hidden: Vec<SelectItem> = Vec::new();
    for (e, desc) in &sel.order_by {
        if let SqlExpr::Column { qualifier: None, name } = e {
            if let Some(i) = names.iter().position(|n| n == name) {
                keys.push((i, *desc));
                continue;
            }
        }
        let mut refs = SelectScan::default();
        scan_expr(e, &mut refs);
        let mut captures_output = false;
        walk_columns(e, &mut |q, n| {
            if q.is_none() && names.iter().any(|o| o == n) {
                captures_output = true;
            }
        });
        if captures_output {
            return Plan::Fallback;
        }
        let alias = format!("__hq_k{}", hidden.len());
        keys.push((visible + hidden.len(), *desc));
        hidden.push(item(e.clone(), &alias));
    }

    let mut from2 = from.clone();
    let Some(ord_q) = attach_ord(&mut from2, p) else { return Plan::Fallback };

    let mut shard_items = items;
    shard_items.extend(hidden);
    shard_items.push(item(qcol(&ord_q, ORD), ORD));
    let ord_idx = shard_items.len() - 1;

    let mut order_by = sel.order_by.clone();
    order_by.push((col(ORD), false));

    let shard_sel = SelectStmt {
        items: shard_items,
        from: Some(from2),
        where_clause: sel.where_clause.clone(),
        group_by: Vec::new(),
        having: None,
        order_by,
        limit: sel.limit,
        offset: None,
        set_op: None,
    };
    Plan::Scan(ScanPlan {
        shard_sql: render::render_select(&shard_sel),
        visible,
        keys,
        ord_idx,
        limit: sel.limit,
    })
}

/// Visit every column reference in an expression (not descending into
/// subqueries — callers exclude those shapes first).
fn walk_columns(e: &SqlExpr, f: &mut impl FnMut(Option<&str>, &str)) {
    match e {
        SqlExpr::Column { qualifier, name } => f(qualifier.as_deref(), name),
        SqlExpr::Literal(_) | SqlExpr::Star => {}
        SqlExpr::Binary { lhs, rhs, .. } => {
            walk_columns(lhs, f);
            walk_columns(rhs, f);
        }
        SqlExpr::Not(x) | SqlExpr::Neg(x) => walk_columns(x, f),
        SqlExpr::Func { args, .. } => {
            for a in args {
                walk_columns(a, f);
            }
        }
        SqlExpr::WindowFunc { args, partition_by, order_by, .. } => {
            for a in args.iter().chain(partition_by.iter()) {
                walk_columns(a, f);
            }
            for (a, _) in order_by {
                walk_columns(a, f);
            }
        }
        SqlExpr::Case { branches, else_result } => {
            for (c, r) in branches {
                walk_columns(c, f);
                walk_columns(r, f);
            }
            if let Some(x) = else_result {
                walk_columns(x, f);
            }
        }
        SqlExpr::Cast { expr, .. } => walk_columns(expr, f),
        SqlExpr::InList { expr, list, .. } => {
            walk_columns(expr, f);
            for x in list {
                walk_columns(x, f);
            }
        }
        SqlExpr::IsNull { expr, .. } => walk_columns(expr, f),
        SqlExpr::InSubquery { expr, .. } => walk_columns(expr, f),
    }
}

/// Rewrites aggregate expressions into (partial item, merged expression)
/// pairs. Partial items are deduplicated structurally.
struct AggRewriter<'a> {
    cols: &'a [BoundCol],
    float_agg: bool,
    /// Per-shard partial select items: (expr, alias).
    partials: Vec<(SqlExpr, String)>,
}

impl<'a> AggRewriter<'a> {
    fn slot(&mut self, partial: SqlExpr) -> String {
        if let Some((_, a)) = self.partials.iter().find(|(e, _)| *e == partial) {
            return a.clone();
        }
        let alias = format!("__hq_p{}", self.partials.len());
        self.partials.push((partial, alias.clone()));
        alias
    }

    fn int_typed(&self, e: &SqlExpr) -> bool {
        matches!(derive_type(e, self.cols), PgType::Int2 | PgType::Int4 | PgType::Int8)
    }

    fn float_typed(&self, e: &SqlExpr) -> bool {
        matches!(derive_type(e, self.cols), PgType::Float4 | PgType::Float8)
    }

    /// Rewrite `e` into its merge-side form, allocating partial slots.
    /// `None` = not provably shard-safe.
    fn rewrite(&mut self, e: &SqlExpr) -> Option<SqlExpr> {
        if !e.contains_aggregate() {
            // Group-constant or first-row-of-group semantics either
            // way; `hq_first` over min-ordinal-sorted partials
            // reproduces the global first row exactly.
            if let SqlExpr::Literal(_) = e {
                return Some(e.clone());
            }
            let slot = self.slot(e.clone());
            return Some(agg("hq_first", col(&slot)));
        }
        if let SqlExpr::Func { name, args, distinct } = e {
            if is_aggregate_name(name) {
                if *distinct || args.len() != 1 || args[0].contains_aggregate() {
                    return None;
                }
                let arg = &args[0];
                return match name.as_str() {
                    "count" => {
                        let slot = self.slot(e.clone());
                        Some(agg("sum", col(&slot)))
                    }
                    "sum" => {
                        if self.int_typed(arg) || (self.float_agg && self.float_typed(arg)) {
                            let slot = self.slot(e.clone());
                            Some(agg("sum", col(&slot)))
                        } else {
                            None
                        }
                    }
                    "avg" => {
                        if !(self.int_typed(arg) || (self.float_agg && self.float_typed(arg))) {
                            return None;
                        }
                        let s = self.slot(agg("sum", arg.clone()));
                        let c = self.slot(agg("count", arg.clone()));
                        let total = |slot: &str| {
                            SqlExpr::Cast {
                                expr: Box::new(agg("sum", col(slot))),
                                ty: PgType::Float8,
                            }
                        };
                        Some(SqlExpr::Case {
                            branches: vec![(
                                SqlExpr::Binary {
                                    op: SqlBinOp::Gt,
                                    lhs: Box::new(agg("sum", col(&c))),
                                    rhs: Box::new(SqlExpr::Literal(Cell::Int(0))),
                                },
                                SqlExpr::Binary {
                                    op: SqlBinOp::Div,
                                    lhs: Box::new(total(&s)),
                                    rhs: Box::new(total(&c)),
                                },
                            )],
                            else_result: None,
                        })
                    }
                    "min" | "max" => {
                        if self.float_typed(arg) && !self.float_agg {
                            return None;
                        }
                        let slot = self.slot(e.clone());
                        Some(agg(name, col(&slot)))
                    }
                    _ => None,
                };
            }
        }
        // Composite expression with aggregates inside: rebuild around
        // rewritten children.
        Some(match e {
            SqlExpr::Binary { op, lhs, rhs } => SqlExpr::Binary {
                op: *op,
                lhs: Box::new(self.rewrite(lhs)?),
                rhs: Box::new(self.rewrite(rhs)?),
            },
            SqlExpr::Not(x) => SqlExpr::Not(Box::new(self.rewrite(x)?)),
            SqlExpr::Neg(x) => SqlExpr::Neg(Box::new(self.rewrite(x)?)),
            SqlExpr::Func { name, args, distinct } => SqlExpr::Func {
                name: name.clone(),
                args: args.iter().map(|a| self.rewrite(a)).collect::<Option<Vec<_>>>()?,
                distinct: *distinct,
            },
            SqlExpr::Case { branches, else_result } => SqlExpr::Case {
                branches: branches
                    .iter()
                    .map(|(c, r)| Some((self.rewrite(c)?, self.rewrite(r)?)))
                    .collect::<Option<Vec<_>>>()?,
                else_result: match else_result {
                    Some(x) => Some(Box::new(self.rewrite(x)?)),
                    None => None,
                },
            },
            SqlExpr::Cast { expr, ty } => {
                SqlExpr::Cast { expr: Box::new(self.rewrite(expr)?), ty: *ty }
            }
            SqlExpr::InList { expr, list, negated } => SqlExpr::InList {
                expr: Box::new(self.rewrite(expr)?),
                list: list.iter().map(|x| self.rewrite(x)).collect::<Option<Vec<_>>>()?,
                negated: *negated,
            },
            SqlExpr::IsNull { expr, negated } => SqlExpr::IsNull {
                expr: Box::new(self.rewrite(expr)?),
                negated: *negated,
            },
            _ => return None,
        })
    }
}

fn plan_agg(
    sel: &SelectStmt,
    _cat: &HashMap<String, TableMeta>,
    p: &str,
    meta: &TableMeta,
    float_agg: bool,
) -> Plan {
    // Aggregation scatters only over a single partitioned leaf (bare
    // table or plain-scan subquery); aggregate-over-join falls back.
    let Some(from) = &sel.from else { return Plan::Fallback };
    let leaf_ok = match from {
        FromItem::Table { name, .. } => name == p,
        FromItem::Subquery { query, .. } => plain_scan_of(query, p),
        _ => false,
    };
    if !leaf_ok || sel.items.iter().any(|i| matches!(i, SelectItem::Wildcard)) {
        return Plan::Fallback;
    }
    let Some(bound) = leaf_bound_cols(from, p, meta) else { return Plan::Fallback };

    let mut rw = AggRewriter { cols: &bound, float_agg, partials: Vec::new() };

    // Group keys ride along as partial columns; the merge groups on
    // them. They are emitted first so slot aliases stay readable.
    for (j, g) in sel.group_by.iter().enumerate() {
        if g.contains_aggregate() {
            return Plan::Fallback;
        }
        rw.partials.push((g.clone(), format!("__hq_g{j}")));
    }

    let mut merge_items: Vec<SelectItem> = Vec::with_capacity(sel.items.len() + 1);
    for (i, it) in sel.items.iter().enumerate() {
        let SelectItem::Expr { expr, .. } = it else { return Plan::Fallback };
        let Some(m) = rw.rewrite(expr) else { return Plan::Fallback };
        merge_items.push(item(m, &out_name(it, i)));
    }
    let merge_having = match &sel.having {
        Some(h) => match rw.rewrite(h) {
            Some(m) => Some(m),
            None => return Plan::Fallback,
        },
        None => None,
    };

    let mut from2 = from.clone();
    let Some(ord_q) = attach_ord(&mut from2, p) else { return Plan::Fallback };

    // Per-shard partial select: keys, partial aggregates, and the
    // group's minimum ordinal (for first-seen group order and
    // first-row-of-group reconstruction).
    let mut shard_items: Vec<SelectItem> =
        rw.partials.iter().map(|(e, a)| item(e.clone(), a)).collect();
    shard_items.push(item(agg("min", qcol(&ord_q, ORD)), "__hq_ho"));
    let shard_sel = SelectStmt {
        items: shard_items,
        from: Some(from2),
        where_clause: sel.where_clause.clone(),
        group_by: sel.group_by.clone(),
        having: None,
        order_by: Vec::new(),
        limit: None,
        offset: None,
        set_op: None,
    };

    // Merge select over the scratch partials table. ORDER BY keeps the
    // user's keys (they resolve against outputs, whose names match the
    // single-node output names) and appends the group-order key so ties
    // land in global first-seen order, exactly like the engine's stable
    // sort.
    merge_items.push(item(agg("min", col("__hq_ho")), "__hq_ho"));
    let mut merge_order = sel.order_by.clone();
    merge_order.push((col("__hq_ho"), false));
    let merge_sel = SelectStmt {
        items: merge_items,
        from: Some(FromItem::Table { name: PARTIALS.to_string(), alias: None }),
        where_clause: None,
        group_by: (0..sel.group_by.len()).map(|j| col(&format!("__hq_g{j}"))).collect(),
        having: merge_having,
        order_by: merge_order,
        limit: sel.limit,
        offset: sel.offset,
        set_op: None,
    };

    Plan::Agg(Box::new(AggPlan {
        shard_sql: render::render_select(&shard_sel),
        merge_sql: render::render_select(&merge_sel),
        visible: sel.items.len(),
    }))
}

// ---------------------------------------------------------------------------
// Execution helpers
// ---------------------------------------------------------------------------

fn exec_any(b: &mut dyn Backend, sql: &str) -> Result<BatchQueryResult, WireError> {
    match b.execute_sql_batch(sql)? {
        Some(r) => Ok(r),
        None => Ok(match b.execute_sql(sql)? {
            QueryResult::Rows(r) => BatchQueryResult::Batch(Batch::from_rows(r)),
            QueryResult::Command(t) => BatchQueryResult::Command(t),
        }),
    }
}

/// Execute on one shard with per-shard metrics and latency observation.
fn shard_exec(i: usize, b: &mut dyn Backend, sql: &str) -> Result<BatchQueryResult, WireError> {
    let reg = obs::global_registry();
    let t0 = Instant::now();
    let r = exec_any(b, sql);
    reg.histogram(&format!("shard_exec_seconds{{shard=\"{i}\"}}")).observe(t0.elapsed());
    reg.counter(&format!("shard_statements_total{{shard=\"{i}\"}}")).inc();
    if let Ok(BatchQueryResult::Batch(batch)) = &r {
        reg.counter("shard_partial_rows").add(batch.rows() as u64);
    }
    r
}

fn expect_batch(r: BatchQueryResult) -> Result<Batch, WireError> {
    match r {
        BatchQueryResult::Batch(b) => Ok(b),
        BatchQueryResult::Command(t) => {
            Err(WireError::protocol(format!("shard returned a command tag ({t}) for a scatter query")))
        }
    }
}

/// Collapse per-shard outcomes. All-success passes through; pure SQL
/// errors surface as the lowest shard's error (the same statement fails
/// identically on the coordinator, so the surface matches single-node);
/// anything wire-shaped becomes a typed partial-failure error naming
/// the lost shards and the partials that did arrive.
fn gather<T>(results: Vec<Result<T, WireError>>) -> Result<Vec<T>, WireError> {
    if results.iter().all(|r| r.is_ok()) {
        return Ok(results.into_iter().map(|r| r.unwrap()).collect());
    }
    let mut failed = Vec::new();
    let mut arrived = Vec::new();
    let mut first_db: Option<WireError> = None;
    let mut all_db = true;
    for (i, r) in results.iter().enumerate() {
        match r {
            Ok(_) => arrived.push(i),
            Err(e) => {
                failed.push((i, e.to_string()));
                if e.kind == WireErrorKind::Db {
                    if first_db.is_none() {
                        first_db = Some(e.clone());
                    }
                } else {
                    all_db = false;
                }
            }
        }
    }
    if all_db {
        return Err(first_db.expect("at least one failure"));
    }
    obs::global_registry().counter("shard_degraded_total").inc();
    Err(WireError::shard_partial(ShardFailure { failed, arrived }))
}

/// K-way ordered merge of per-shard scan results.
fn merge_scan(batches: Vec<Batch>, plan: &ScanPlan) -> Result<Batch, WireError> {
    let schema: Vec<Column> = batches[0].schema[..plan.visible].to_vec();
    let mut cursors: Vec<(Vec<Vec<Cell>>, usize)> =
        batches.iter().map(|b| (b.to_rows().data, 0)).collect();
    let row_cmp = |a: &[Cell], b: &[Cell]| -> CmpOrdering {
        for (idx, desc) in &plan.keys {
            let o = a[*idx].sort_cmp(&b[*idx]);
            let o = if *desc { o.reverse() } else { o };
            if o != CmpOrdering::Equal {
                return o;
            }
        }
        // The ordinal is globally unique, so ties never span shards.
        a[plan.ord_idx].sort_cmp(&b[plan.ord_idx])
    };
    let cap = plan.limit.map(|l| l as usize).unwrap_or(usize::MAX);
    let mut data: Vec<Vec<Cell>> = Vec::new();
    while data.len() < cap {
        let mut best: Option<usize> = None;
        for ci in 0..cursors.len() {
            if cursors[ci].1 >= cursors[ci].0.len() {
                continue;
            }
            best = Some(match best {
                None => ci,
                Some(bi) => {
                    let a = &cursors[ci].0[cursors[ci].1];
                    let b = &cursors[bi].0[cursors[bi].1];
                    if row_cmp(a, b) == CmpOrdering::Less {
                        ci
                    } else {
                        bi
                    }
                }
            });
        }
        let Some(bi) = best else { break };
        let pos = cursors[bi].1;
        cursors[bi].1 += 1;
        let mut row = cursors[bi].0[pos].clone();
        row.truncate(plan.visible);
        data.push(row);
    }
    Ok(Batch::from_rows(Rows { columns: schema, data }))
}

/// Re-aggregate per-shard partials on a scratch single-node instance:
/// inject the concatenated partial rows (sorted by the group-order key
/// so `hq_first` sees the globally first row first) and run the merge
/// select — the merge inherits the engine's aggregation semantics by
/// construction.
fn merge_agg(batches: Vec<Batch>, plan: &AggPlan) -> Result<Batch, WireError> {
    let schema = batches[0].schema.clone();
    let ho = schema.len() - 1;
    let mut rows: Vec<Vec<Cell>> = Vec::new();
    for b in &batches {
        rows.extend(b.to_rows().data);
    }
    // Null group-order keys (empty shards in scalar aggregation) sort
    // last so they can never claim a group's first row.
    rows.sort_by(|a, b| match (&a[ho], &b[ho]) {
        (Cell::Null, Cell::Null) => CmpOrdering::Equal,
        (Cell::Null, _) => CmpOrdering::Greater,
        (_, Cell::Null) => CmpOrdering::Less,
        (x, y) => x.sort_cmp(y),
    });
    let db = pgdb::Db::new();
    db.put_table(PARTIALS, schema.clone(), rows);
    let mut sess = db.session();
    sess.set_exec_threads(Some(1));
    match sess.execute_batch(&plan.merge_sql) {
        Ok(BatchQueryResult::Batch(b)) => {
            let n = plan.visible;
            Ok(Batch::new(b.schema[..n].to_vec(), b.columns[..n].to_vec(), b.rows()))
        }
        Ok(BatchQueryResult::Command(t)) => {
            Err(WireError::protocol(format!("merge select returned a command tag ({t})")))
        }
        Err(e) => Err(WireError::from(e)),
    }
}

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

/// One routed connection to a [`ShardCluster`]: a backend per shard plus
/// a coordinator backend. Implements [`Backend`], so it drops in
/// anywhere a single pgdb connection does — `HyperQSession`, the batch
/// driver, the bench harness.
pub struct ShardRouter {
    cluster: Arc<ShardCluster>,
    coord: Box<dyn Backend>,
    shards: Vec<Box<dyn Backend>>,
}

impl ShardRouter {
    /// Number of shards this router fans out to.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn coordinator(&mut self, sql: &str) -> Result<BatchQueryResult, WireError> {
        let reg = obs::global_registry();
        reg.counter("shard_statements_total{shard=\"coord\"}").inc();
        exec_any(self.coord.as_mut(), sql)
    }

    fn fallback(&mut self, sql: &str) -> Result<BatchQueryResult, WireError> {
        obs::global_registry().counter("shard_fallback_total").inc();
        self.coordinator(sql)
    }

    /// Fan one SELECT to every shard in parallel.
    fn scatter(&mut self, sql: &str) -> Result<Vec<Batch>, WireError> {
        obs::global_registry().counter("shard_fanout_total").inc();
        let results: Vec<Result<Batch, WireError>> = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .enumerate()
                .map(|(i, b)| s.spawn(move || shard_exec(i, b.as_mut(), sql).and_then(expect_batch)))
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| Err(WireError::protocol("shard worker panicked")))
                })
                .collect()
        });
        gather(results)
    }

    /// Run per-shard mutation statements (sequentially — mutation order
    /// must match the coordinator's) and collapse the outcomes.
    fn fan_mutation(&mut self, stmts: &[(usize, String)]) -> Result<(), WireError> {
        if stmts.len() > 1 {
            obs::global_registry().counter("shard_fanout_total").inc();
        }
        let mut results: Vec<Result<(), WireError>> = Vec::with_capacity(stmts.len());
        for (i, sql) in stmts {
            results.push(shard_exec(*i, self.shards[*i].as_mut(), sql).map(|_| ()));
        }
        gather(results).map(|_| ())
    }

    fn route(&mut self, sql: &str) -> Result<BatchQueryResult, WireError> {
        if sql.contains(RESERVED) {
            // Router-internal namespace: refuse to plan around it.
            return self.fallback(sql);
        }
        let stmt = match pgdb::sql::parse_statement(sql) {
            Ok(s) => s,
            // Unparseable here — let the coordinator produce the exact
            // single-node error surface.
            Err(_) => return self.coordinator(sql),
        };
        match stmt {
            Stmt::Select(sel) => self.route_select(sql, &sel),
            Stmt::CreateTable { name, columns, temp } => {
                self.route_create(sql, &name, &columns, temp)
            }
            Stmt::Insert { table, columns, rows } => {
                self.route_insert(sql, &table, &columns, &rows)
            }
            Stmt::DropTable { name, .. } => self.route_drop(sql, &name),
            // CTAS products and session commands live on the
            // coordinator only.
            Stmt::CreateTableAs { .. } | Stmt::NoOp(_) => self.coordinator(sql),
        }
    }

    fn route_select(&mut self, sql: &str, sel: &SelectStmt) -> Result<BatchQueryResult, WireError> {
        let cat = self.cluster.catalog_snapshot();
        match plan_select(sel, &cat, self.cluster.opts.float_agg) {
            Plan::Local => self.coordinator(sql),
            Plan::Fallback => self.fallback(sql),
            Plan::Scan(p) => {
                let batches = self.scatter(&p.shard_sql)?;
                merge_scan(batches, &p).map(BatchQueryResult::Batch)
            }
            Plan::Agg(p) => {
                let batches = self.scatter(&p.shard_sql)?;
                merge_agg(batches, &p).map(BatchQueryResult::Batch)
            }
        }
    }

    fn route_create(
        &mut self,
        sql: &str,
        name: &str,
        columns: &[(String, PgType)],
        temp: bool,
    ) -> Result<BatchQueryResult, WireError> {
        if temp || columns.iter().any(|(n, _)| n.starts_with(RESERVED)) {
            return self.coordinator(sql);
        }
        let cluster = Arc::clone(&self.cluster);
        let _m = cluster.mutation.lock().unwrap();
        // Coordinator first, verbatim: if it refuses (duplicate table,
        // bad DDL) nothing was fanned out and the error is single-node.
        let out = self.coordinator(sql)?;
        let mut shard_cols = columns.to_vec();
        shard_cols.push((ORD.to_string(), PgType::Int8));
        let ddl = render::render_stmt(&Stmt::CreateTable {
            name: name.to_string(),
            columns: shard_cols,
            temp: false,
        });
        let stmts: Vec<(usize, String)> =
            (0..self.shards.len()).map(|i| (i, ddl.clone())).collect();
        self.fan_mutation(&stmts)?;
        self.cluster.register(name, columns.to_vec());
        Ok(out)
    }

    fn route_insert(
        &mut self,
        sql: &str,
        table: &str,
        columns: &Option<Vec<String>>,
        rows: &[Vec<SqlExpr>],
    ) -> Result<BatchQueryResult, WireError> {
        if !self.cluster.has_table(table) {
            // Temp tables, CTAS products, unknown names: single-node.
            return self.coordinator(sql);
        }
        let cluster = Arc::clone(&self.cluster);
        let _m = cluster.mutation.lock().unwrap();
        // Coordinator first: INSERT is atomic there (every row is
        // validated before any is applied), so a failure leaves the
        // cluster untouched and surfaces the single-node error.
        let out = self.coordinator(sql)?;

        let n = rows.len();
        let base = self.cluster.ordinal.fetch_add(n as i64, Ordering::Relaxed);
        let nshards = self.shards.len();

        // Assign rows to shards under the catalog lock (mode decision
        // and the round-robin cursor both live there).
        let (col_list, assignments): (Vec<String>, Vec<Option<usize>>) = {
            let mut cat = self.cluster.catalog.write().unwrap();
            let meta = cat.get_mut(table).expect("insert raced a drop despite the mutation lock");
            if meta.mode == Mode::Undecided {
                meta.mode = if meta.rows + n as u64 <= self.cluster.opts.broadcast_threshold {
                    Mode::Broadcast
                } else {
                    Mode::Partitioned
                };
            }
            meta.rows += n as u64;
            let col_list: Vec<String> = match columns {
                Some(c) => c.clone(),
                None => meta.cols.iter().map(|(n, _)| n.clone()).collect(),
            };
            let key_pos = meta
                .key
                .and_then(|k| meta.cols.get(k))
                .and_then(|(kn, _)| col_list.iter().position(|c| c == kn));
            let assignments: Vec<Option<usize>> = rows
                .iter()
                .map(|row| {
                    if meta.mode == Mode::Broadcast {
                        return None; // every shard
                    }
                    let cell = key_pos
                        .and_then(|p| row.get(p))
                        .and_then(|e| eval(e, &[], &[]).ok());
                    Some(match cell {
                        Some(Cell::Null) => 0,
                        Some(c) => (hash_cell(&c) % nshards as u64) as usize,
                        None => {
                            let s = (meta.rr % nshards as u64) as usize;
                            meta.rr += 1;
                            s
                        }
                    })
                })
                .collect();
            (col_list, assignments)
        };

        let mut shard_cols = col_list;
        shard_cols.push(ORD.to_string());
        let mut per_shard: Vec<Vec<Vec<SqlExpr>>> = vec![Vec::new(); nshards];
        for (ri, (row, target)) in rows.iter().zip(&assignments).enumerate() {
            let mut r2 = row.clone();
            r2.push(SqlExpr::Literal(Cell::Int(base + ri as i64)));
            match target {
                Some(s) => per_shard[*s].push(r2),
                None => {
                    for dst in &mut per_shard {
                        dst.push(r2.clone());
                    }
                }
            }
        }
        let stmts: Vec<(usize, String)> = per_shard
            .into_iter()
            .enumerate()
            .filter(|(_, rws)| !rws.is_empty())
            .map(|(i, rws)| {
                let stmt = Stmt::Insert {
                    table: table.to_string(),
                    columns: Some(shard_cols.clone()),
                    rows: rws,
                };
                (i, render::render_stmt(&stmt))
            })
            .collect();
        self.fan_mutation(&stmts)?;
        Ok(out)
    }

    fn route_drop(&mut self, sql: &str, name: &str) -> Result<BatchQueryResult, WireError> {
        if !self.cluster.has_table(name) {
            return self.coordinator(sql);
        }
        let cluster = Arc::clone(&self.cluster);
        let _m = cluster.mutation.lock().unwrap();
        let out = self.coordinator(sql)?;
        self.cluster.deregister(name);
        let ddl = render::render_stmt(&Stmt::DropTable { name: name.to_string(), if_exists: true });
        let stmts: Vec<(usize, String)> =
            (0..self.shards.len()).map(|i| (i, ddl.clone())).collect();
        self.fan_mutation(&stmts)?;
        Ok(out)
    }
}

impl Backend for ShardRouter {
    fn execute_sql(&mut self, sql: &str) -> Result<QueryResult, WireError> {
        Ok(match self.route(sql)? {
            BatchQueryResult::Batch(b) => QueryResult::Rows(b.into_rows()),
            BatchQueryResult::Command(t) => QueryResult::Command(t),
        })
    }

    fn execute_sql_batch(&mut self, sql: &str) -> Result<Option<BatchQueryResult>, WireError> {
        self.route(sql).map(Some)
    }

    fn execute_sql_stream(&mut self, _sql: &str) -> Result<Option<StreamQueryResult>, WireError> {
        // Scatter-gather has to materialize partials before merging;
        // callers fall back to the batch path.
        Ok(None)
    }

    fn set_exec_threads(&mut self, threads: Option<usize>) {
        self.coord.set_exec_threads(threads);
        for s in &mut self.shards {
            s.set_exec_threads(threads);
        }
    }

    fn describe(&self) -> String {
        format!("shard router ({} shards + coordinator)", self.shards.len())
    }

    fn reconnects(&self) -> u64 {
        self.coord.reconnects() + self.shards.iter().map(|s| s.reconnects()).sum::<u64>()
    }

    fn durable(&self) -> bool {
        self.coord.durable() && self.shards.iter().all(|s| s.durable())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(threshold: u64) -> ShardOpts {
        ShardOpts { broadcast_threshold: threshold, float_agg: false, keys: HashMap::new() }
    }

    fn rows_of(r: BatchQueryResult) -> Rows {
        match r {
            BatchQueryResult::Batch(b) => b.into_rows(),
            other => panic!("expected rows, got {other:?}"),
        }
    }

    fn seed(router: &mut ShardRouter) {
        router
            .execute_sql_batch("CREATE TABLE t (k bigint, v bigint)")
            .unwrap();
        let values: Vec<String> = (0..20).map(|i| format!("({i}, {})", i * 10)).collect();
        router
            .execute_sql_batch(&format!("INSERT INTO t VALUES {}", values.join(", ")))
            .unwrap();
    }

    #[test]
    fn partitioned_scan_matches_insertion_order() {
        let cluster = ShardCluster::in_process_with(3, opts(4));
        let mut router = cluster.router().unwrap();
        seed(&mut router);
        assert_eq!(cluster.table_meta("t").unwrap().mode, Mode::Partitioned);
        let rows = rows_of(router.execute_sql_batch("SELECT k, v FROM t").unwrap().unwrap());
        assert_eq!(rows.data.len(), 20);
        for (i, row) in rows.data.iter().enumerate() {
            assert_eq!(row[0], Cell::Int(i as i64));
        }
        // Data is genuinely spread: no shard holds everything.
        let (_, shards) = cluster.in_process_dbs().unwrap();
        for db in shards {
            let t = db.get_table_snapshot("t").unwrap();
            assert!(t.rows().len() < 20, "shard holds all rows — not partitioned");
            // Shard copies carry the hidden ordinal.
            assert!(t.columns().iter().any(|c| c.name == ORD));
        }
    }

    #[test]
    fn small_tables_broadcast() {
        let cluster = ShardCluster::in_process_with(3, opts(64));
        let mut router = cluster.router().unwrap();
        router.execute_sql_batch("CREATE TABLE dim (id bigint, label text)").unwrap();
        router
            .execute_sql_batch("INSERT INTO dim VALUES (1, 'a'), (2, 'b')")
            .unwrap();
        assert_eq!(cluster.table_meta("dim").unwrap().mode, Mode::Broadcast);
        let (_, shards) = cluster.in_process_dbs().unwrap();
        for db in shards {
            assert_eq!(db.get_table_snapshot("dim").unwrap().rows().len(), 2);
        }
    }

    #[test]
    fn distributive_aggregation_merges() {
        let cluster = ShardCluster::in_process_with(4, opts(0));
        let mut router = cluster.router().unwrap();
        seed(&mut router);
        let rows = rows_of(
            router
                .execute_sql_batch("SELECT count(*), sum(v), min(k), max(v), avg(v) FROM t")
                .unwrap()
                .unwrap(),
        );
        assert_eq!(
            rows.data[0],
            vec![
                Cell::Int(20),
                Cell::Int((0..20).map(|i| i * 10).sum()),
                Cell::Int(0),
                Cell::Int(190),
                Cell::Float(95.0),
            ]
        );
    }

    #[test]
    fn columnar_bulk_load_matches_routed_inserts() {
        // The same 20 rows loaded two ways — rendered INSERT through a
        // router vs. the columnar fast path — must leave the cluster in
        // an equivalent state: same placement mode, same scan output,
        // same merged aggregates.
        let routed = ShardCluster::in_process_with(3, opts(4));
        let mut via_sql = routed.router().unwrap();
        seed(&mut via_sql);

        let bulk = ShardCluster::in_process_with(3, opts(4));
        let batch = Batch::from_rows(Rows {
            columns: vec![Column::new("k", PgType::Int8), Column::new("v", PgType::Int8)],
            data: (0..20).map(|i| vec![Cell::Int(i), Cell::Int(i * 10)]).collect(),
        });
        bulk.put_table_batch("t", batch);
        assert_eq!(bulk.table_meta("t").unwrap().mode, Mode::Partitioned);
        assert_eq!(bulk.table_meta("t").unwrap().rows, 20);

        let mut via_bulk = bulk.router().unwrap();
        for sql in
            ["SELECT k, v FROM t", "SELECT count(*), sum(v), min(k), max(v), avg(v) FROM t"]
        {
            let want = rows_of(via_sql.execute_sql_batch(sql).unwrap().unwrap());
            let got = rows_of(via_bulk.execute_sql_batch(sql).unwrap().unwrap());
            assert_eq!(want.data, got.data, "bulk load diverged for {sql}");
        }
        // Small batches broadcast, exactly like routed inserts.
        let dim = Batch::from_rows(Rows {
            columns: vec![Column::new("id", PgType::Int8)],
            data: (0..3).map(|i| vec![Cell::Int(i)]).collect(),
        });
        bulk.put_table_batch("dim", dim);
        assert_eq!(bulk.table_meta("dim").unwrap().mode, Mode::Broadcast);
    }

    #[test]
    fn unprovable_statements_fall_back_and_are_counted() {
        let cluster = ShardCluster::in_process_with(2, opts(0));
        let mut router = cluster.router().unwrap();
        seed(&mut router);
        let reg = obs::global_registry();
        let before = reg.counter_value("shard_fallback_total");
        let rows = rows_of(
            router
                .execute_sql_batch(
                    "SELECT k, row_number() OVER (ORDER BY k) FROM t ORDER BY k LIMIT 3",
                )
                .unwrap()
                .unwrap(),
        );
        assert_eq!(rows.data.len(), 3);
        assert_eq!(reg.counter_value("shard_fallback_total"), before + 1);
    }

    #[test]
    fn drop_deregisters_everywhere() {
        let cluster = ShardCluster::in_process_with(2, opts(0));
        let mut router = cluster.router().unwrap();
        seed(&mut router);
        router.execute_sql_batch("DROP TABLE t").unwrap();
        assert!(cluster.table_meta("t").is_none());
        let (_, shards) = cluster.in_process_dbs().unwrap();
        for db in shards {
            assert!(db.get_table_snapshot("t").is_none());
        }
        let err = router.execute_sql_batch("SELECT * FROM t").unwrap_err();
        assert_eq!(err.kind, WireErrorKind::Db);
    }
}
