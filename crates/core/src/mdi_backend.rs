//! The PG MetaData Interface: resolve table metadata by querying the
//! backend catalog (paper §3.2.3) — "this corresponds to executing a
//! query against PG catalog to retrieve various properties of the
//! searched object."

use crate::backend::SharedBackend;
use algebrizer::{Mdi, TableMeta};
use pgdb::{Cell, QueryResult};
use std::sync::atomic::{AtomicU64, Ordering};
use xtra::{ColumnDef, SqlType};

/// Convert a catalog `data_type` string to the XTRA type system.
pub fn sql_type_from_name(name: &str) -> SqlType {
    match name {
        "boolean" => SqlType::Bool,
        "smallint" => SqlType::Int2,
        "integer" => SqlType::Int4,
        "bigint" => SqlType::Int8,
        "real" => SqlType::Float4,
        "double precision" => SqlType::Float8,
        "varchar" => SqlType::Varchar,
        "text" => SqlType::Text,
        "date" => SqlType::Date,
        "time" => SqlType::Time,
        "timestamp" => SqlType::Timestamp,
        _ => SqlType::Text,
    }
}

/// MDI that issues real catalog queries against the backend.
pub struct BackendMdi {
    backend: SharedBackend,
    lookups: AtomicU64,
}

impl BackendMdi {
    /// Wrap a shared backend.
    pub fn new(backend: SharedBackend) -> Self {
        BackendMdi { backend, lookups: AtomicU64::new(0) }
    }
}

impl Mdi for BackendMdi {
    fn table_meta(&self, name: &str) -> Option<TableMeta> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let sql = format!(
            "SELECT column_name, data_type FROM information_schema.columns \
             WHERE table_name = '{}' ORDER BY ordinal_position ASC",
            name.replace('\'', "''")
        );
        let result = self.backend.lock().ok()?.execute_sql(&sql).ok()?;
        let rows = match result {
            QueryResult::Rows(r) => r,
            _ => return None,
        };
        if rows.is_empty() {
            return None;
        }
        let mut columns = Vec::with_capacity(rows.len());
        for row in &rows.data {
            let (Cell::Text(col), Cell::Text(ty)) = (&row[0], &row[1]) else {
                return None;
            };
            let mut def = ColumnDef::new(col.clone(), sql_type_from_name(ty));
            if col == xtra::ORD_COL {
                def.nullable = false;
            }
            columns.push(def);
        }
        Some(TableMeta::new(name, columns))
    }

    fn lookup_count(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{share, DirectBackend};

    #[test]
    fn resolves_metadata_through_catalog_queries() {
        let db = pgdb::Db::new();
        let shared = share(DirectBackend::new(&db));
        shared
            .lock()
            .unwrap()
            .execute_sql("CREATE TABLE trades (ordcol bigint, \"Price\" double precision, \"Symbol\" varchar)")
            .unwrap();
        let mdi = BackendMdi::new(shared);
        let meta = mdi.table_meta("trades").expect("table resolves");
        assert_eq!(meta.columns.len(), 3);
        assert_eq!(meta.columns[0].name, "ordcol");
        assert!(!meta.columns[0].nullable);
        assert_eq!(meta.columns[1].ty, SqlType::Float8);
        assert_eq!(meta.columns[2].ty, SqlType::Varchar);
        assert!(meta.has_ord_col());
        assert_eq!(mdi.lookup_count(), 1);
    }

    #[test]
    fn missing_table_resolves_to_none() {
        let db = pgdb::Db::new();
        let mdi = BackendMdi::new(share(DirectBackend::new(&db)));
        assert!(mdi.table_meta("ghost").is_none());
    }

    #[test]
    fn type_name_mapping() {
        assert_eq!(sql_type_from_name("bigint"), SqlType::Int8);
        assert_eq!(sql_type_from_name("double precision"), SqlType::Float8);
        assert_eq!(sql_type_from_name("mystery"), SqlType::Text);
    }
}
