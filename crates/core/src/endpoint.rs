//! The Endpoint plugin: a QIPC TCP server (paper §3.1).
//!
//! "Hyper-Q takes over kdb+ server by listening to incoming messages on
//! the port used by the original kdb+ server. Q applications run
//! unchanged while, under the hood, their network packets are routed to
//! Hyper-Q instead of kdb+."
//!
//! Each accepted connection gets a [`ProtocolTranslator`] FSM and its own
//! Hyper-Q session (scopes, temp tables, metadata cache) over a backend
//! session — mirroring one kdb+ client connection. The per-connection
//! protocol logic lives in the sans-io [`QipcConnMachine`]; two drivers
//! run it, selected by [`EndpointConfig::io_model`]: the legacy
//! thread-per-connection loop, and the `netpool` readiness scheduler
//! (the default), which parks idle sessions without a thread and
//! dispatches them to a bounded worker pool when they speak. Both
//! drivers feed the same machine, so they are byte-identical on the
//! wire — pinned by the session-park differential suite.
//!
//! Robustness (see `DESIGN.md`, "Fault tolerance"): the accept loop
//! survives transient `accept()` errors with a capped backoff; a
//! connection cap turns overload into a clean kdb+-style error frame
//! instead of a reset; the client leg runs under the session's
//! [`crate::wire::WireTimeouts`] read deadline, but only a peer stalled
//! *mid-frame* is dropped — an idle Q application owes us nothing and is
//! left alone; and when the backend cannot be reached the Endpoint
//! degrades gracefully: the Q connection stays up and every query is
//! answered with an error frame naming the backend failure.

use crate::backend::{share, DirectBackend, SharedBackend};
use crate::session::{HyperQSession, SessionConfig};
use crate::wire::WireError;
use crate::xc::{ProtocolTranslator, PtAction};
use netpool::{AcceptBackoff, HandlerControl, IoModel, NetPool, SessionHandler};
use qipc::{Message, MsgType};
use qlang::{QResult, Value};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

/// Bytes written back to Q applications across all endpoint connections.
fn response_bytes_counter() -> &'static Arc<obs::Counter> {
    static COUNTER: OnceLock<Arc<obs::Counter>> = OnceLock::new();
    COUNTER.get_or_init(|| obs::global_registry().counter("qipc_response_bytes_total"))
}

/// Q system commands answered by the endpoint itself (never forwarded to
/// the session): `\metrics` dumps the process-wide registry in
/// Prometheus text format, `\slowlog` renders the slow-query ring.
fn admin_command(text: &str) -> Option<String> {
    match text.trim() {
        "\\metrics" => Some(obs::global_registry().render_prometheus()),
        "\\slowlog" => Some(obs::global_slowlog().render()),
        _ => None,
    }
}

/// Credential check for the QIPC handshake.
pub type Authenticator = Arc<dyn Fn(&str, &str) -> bool + Send + Sync>;

/// Produces a backend connection for each accepted Q client. Failures
/// put the connection in degraded mode rather than dropping it.
pub type BackendFactory = Arc<dyn Fn() -> Result<SharedBackend, WireError> + Send + Sync>;

/// Endpoint configuration.
#[derive(Clone)]
pub struct EndpointConfig {
    /// Credential check for the QIPC handshake. Defaults to accepting
    /// everyone (kdb+'s historical posture, per §2.2: "kdb+ had no need
    /// for access control").
    pub authenticator: Authenticator,
    /// Session configuration applied to every connection (including the
    /// wire deadlines for the client leg).
    pub session: SessionConfig,
    /// Concurrent-connection ceiling; attempts beyond it complete the
    /// handshake and then receive a kdb+ error frame (QIPC has no
    /// pre-handshake error channel).
    pub max_connections: usize,
    /// Inbound QIPC frame-length ceiling.
    pub max_frame: usize,
    /// Connection layer: thread-per-conn or readiness-multiplexed.
    /// Defaults from `HQ_IO_MODEL` (multiplexed when unset).
    pub io_model: IoModel,
    /// Dispatch threads for the multiplexed model; `0` defers to
    /// `HQ_NET_WORKERS` (then a small built-in default).
    pub net_workers: usize,
}

impl Default for EndpointConfig {
    fn default() -> Self {
        EndpointConfig {
            authenticator: Arc::new(|_, _| true),
            session: SessionConfig::default(),
            max_connections: 64,
            max_frame: qipc::DEFAULT_MAX_MESSAGE,
            io_model: IoModel::from_env(),
            net_workers: 0,
        }
    }
}

/// A running QIPC endpoint bridging Q applications to a backend.
pub struct QipcEndpoint {
    /// Bound address.
    pub addr: std::net::SocketAddr,
    handle: Option<JoinHandle<()>>,
}

impl QipcEndpoint {
    /// Start the endpoint over an in-process `pgdb` database.
    pub fn start(
        db: pgdb::Db,
        bind_addr: &str,
        config: EndpointConfig,
    ) -> std::io::Result<QipcEndpoint> {
        let factory: BackendFactory =
            Arc::new(move || Ok(share(DirectBackend::new(&db))));
        Self::start_with(bind_addr, config, factory)
    }

    /// Start the endpoint with an explicit backend factory — e.g. one
    /// that checks connections out of a [`crate::pool::BackendPool`]
    /// per statement, or opens a [`crate::gateway::PgWireBackend`] per
    /// connection.
    pub fn start_with(
        bind_addr: &str,
        config: EndpointConfig,
        factory: BackendFactory,
    ) -> std::io::Result<QipcEndpoint> {
        let listener = TcpListener::bind(bind_addr)?;
        let addr = listener.local_addr()?;
        let pool = match config.io_model {
            IoModel::Multiplexed => Some(NetPool::start(config.net_workers)?),
            IoModel::ThreadPerConn => None,
        };
        let active = Arc::new(AtomicUsize::new(0));
        let handle = std::thread::spawn(move || {
            let mut backoff = AcceptBackoff::new();
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        backoff.reset();
                        let slot = active.fetch_add(1, Ordering::SeqCst);
                        let reject = slot >= config.max_connections;
                        let machine = QipcConnMachine::new(
                            &factory,
                            &config,
                            reject,
                            ConnGuard(Arc::clone(&active)),
                        );
                        match &pool {
                            Some(pool) => {
                                // Registration failure drops the machine,
                                // whose guard releases the slot.
                                let _ = pool.register(
                                    stream,
                                    Box::new(machine),
                                    config.session.wire.read,
                                );
                            }
                            None => {
                                let wire = config.session.wire;
                                std::thread::spawn(move || {
                                    let _ = serve_connection(stream, machine, &wire);
                                });
                            }
                        }
                    }
                    // One failed accept() (peer reset in the backlog, fd
                    // pressure, a signal) must not kill the listener —
                    // and must not spin the core while the fault lasts.
                    Err(e) if netpool::transient_accept_error(&e) => backoff.sleep(),
                    Err(_) => break,
                }
            }
        });
        Ok(QipcEndpoint { addr, handle: Some(handle) })
    }

    /// Detach the accept thread.
    pub fn detach(mut self) {
        self.handle.take();
    }
}

/// Releases the connection-cap slot when the connection ends, whichever
/// driver ran it.
struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The QIPC conversation as a sans-io state machine: raw bytes in,
/// response bytes out. Wraps the [`ProtocolTranslator`] framing FSM and
/// the per-connection Hyper-Q session (or its degraded-mode error).
/// Both the blocking and the multiplexed drivers run this, which is what
/// keeps the two io models byte-identical on the wire.
pub struct QipcConnMachine {
    pt: ProtocolTranslator,
    /// Graceful degradation: a backend we cannot reach does not cost
    /// the Q application its connection — queries are answered with
    /// error frames naming the failure instead.
    session: Result<HyperQSession, String>,
    auth: Authenticator,
    /// Over the cap: complete the handshake (QIPC has no earlier error
    /// channel), answer the first synchronous request with a kdb+ error
    /// frame, then close.
    reject: bool,
    _guard: Option<ConnGuard>,
}

impl QipcConnMachine {
    fn new(
        factory: &BackendFactory,
        config: &EndpointConfig,
        reject: bool,
        guard: ConnGuard,
    ) -> QipcConnMachine {
        let session = if reject {
            Err("'limit: too many connections".to_string())
        } else {
            match factory() {
                Ok(backend) => Ok(HyperQSession::new(backend, config.session.clone())),
                Err(e) => Err(format!("'backend: unavailable ({e})")),
            }
        };
        QipcConnMachine {
            pt: ProtocolTranslator::with_max_frame(config.max_frame),
            session,
            auth: Arc::clone(&config.authenticator),
            reject,
            _guard: Some(guard),
        }
    }
}

impl SessionHandler for QipcConnMachine {
    fn on_bytes(&mut self, bytes: &[u8], out: &mut Vec<u8>) -> HandlerControl {
        let actions = match self.pt.on_bytes(bytes, &*self.auth) {
            Ok(a) => a,
            Err(e) => {
                // Malformed framing: tell the peer why before dropping
                // (unless it is a doomed over-cap connection).
                if !self.reject {
                    if let PtAction::Send(bytes) = self.pt.on_error(&format!("'ipc: {e}")) {
                        out.extend_from_slice(&bytes);
                    }
                }
                return HandlerControl::Close;
            }
        };
        for action in actions {
            match action {
                PtAction::Send(bytes) => {
                    response_bytes_counter().add(bytes.len() as u64);
                    out.extend_from_slice(&bytes);
                }
                PtAction::Close => return HandlerControl::Close,
                PtAction::ForwardQuery { text, respond } => {
                    if self.reject {
                        if respond {
                            if let PtAction::Send(bytes) =
                                self.pt.on_error("'limit: too many connections")
                            {
                                out.extend_from_slice(&bytes);
                            }
                            return HandlerControl::Close;
                        }
                        continue;
                    }
                    let result = match admin_command(&text) {
                        Some(body) => Ok(Value::Chars(body)),
                        None => match &mut self.session {
                            Ok(s) => s.execute(&text),
                            Err(reason) => Err(qlang::QError::new(
                                qlang::error::QErrorKind::Other,
                                reason.clone(),
                            )),
                        },
                    };
                    if respond {
                        let reply = match result {
                            Ok(value) => self
                                .pt
                                .on_results(value)
                                .unwrap_or_else(|e| self.pt.on_error(&e.to_string())),
                            Err(e) => self.pt.on_error(&e.to_string()),
                        };
                        if let PtAction::Send(bytes) = reply {
                            response_bytes_counter().add(bytes.len() as u64);
                            out.extend_from_slice(&bytes);
                        }
                    }
                }
            }
        }
        HandlerControl::Continue
    }

    fn mid_frame(&self) -> bool {
        self.pt.has_partial()
    }
}

/// The thread-per-connection driver: a blocking read → machine → write
/// loop over the same state machine the multiplexed scheduler runs. The
/// read deadline only fires on a peer stalled *mid-frame*; an idle Q
/// application parks for as long as it likes.
fn serve_connection(
    mut stream: TcpStream,
    mut machine: QipcConnMachine,
    wire: &crate::wire::WireTimeouts,
) -> std::io::Result<()> {
    let _ = stream.set_read_timeout(wire.read);
    let _ = stream.set_write_timeout(wire.write);
    let mut chunk = [0u8; 16384];
    let mut out = Vec::new();
    loop {
        let n = match stream.read(&mut chunk) {
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                ) =>
            {
                if machine.mid_frame() {
                    // Mid-frame stall: the peer is gone.
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        let control = if n == 0 {
            HandlerControl::Close
        } else {
            machine.on_bytes(&chunk[..n], &mut out)
        };
        if !out.is_empty() {
            stream.write_all(&out)?;
            out.clear();
        }
        if control == HandlerControl::Close {
            return Ok(());
        }
    }
}

/// A minimal QIPC client — what a Q application's IPC layer does. Used
/// by examples, tests and the side-by-side framework's wire mode.
pub struct QipcClient {
    stream: TcpStream,
    buffer: Vec<u8>,
}

impl QipcClient {
    /// Connect and perform the credential handshake.
    pub fn connect(addr: &str, user: &str, password: &str) -> QResult<QipcClient> {
        let mut stream = TcpStream::connect(addr).map_err(io_err)?;
        stream
            .write_all(&qipc::client_handshake(user, password, 3))
            .map_err(io_err)?;
        let mut capability = [0u8; 1];
        stream.read_exact(&mut capability).map_err(|_| {
            qlang::QError::new(
                qlang::error::QErrorKind::Other,
                "server closed connection during handshake (bad credentials?)",
            )
        })?;
        Ok(QipcClient { stream, buffer: Vec::new() })
    }

    /// Send a synchronous query and wait for the response value.
    pub fn query(&mut self, q: &str) -> QResult<Value> {
        let bytes = qipc::write_message(&Message::query(q))?;
        self.stream.write_all(&bytes).map_err(io_err)?;
        self.read_response()
    }

    /// Send an asynchronous message (no response expected).
    pub fn send_async(&mut self, q: &str) -> QResult<()> {
        let msg = Message { msg_type: MsgType::Async, value: Value::Chars(q.to_string()) };
        let bytes = qipc::write_message(&msg)?;
        self.stream.write_all(&bytes).map_err(io_err)
    }

    /// Write raw bytes onto the connection (chaos tests use this to
    /// inject malformed frames).
    pub fn send_raw(&mut self, bytes: &[u8]) -> QResult<()> {
        self.stream.write_all(bytes).map_err(io_err)
    }

    /// Wait for the next response frame (also used after `send_raw`).
    pub fn read_response(&mut self) -> QResult<Value> {
        let mut chunk = [0u8; 16384];
        loop {
            // kdb+-style error frame? (type byte -128 after the header)
            if self.buffer.len() >= 9 && self.buffer[8] == 0x80 {
                let total = u32::from_le_bytes([
                    self.buffer[4],
                    self.buffer[5],
                    self.buffer[6],
                    self.buffer[7],
                ]) as usize;
                if self.buffer.len() >= total {
                    let text =
                        String::from_utf8_lossy(&self.buffer[9..total - 1]).into_owned();
                    self.buffer.drain(..total);
                    return Err(qlang::QError::new(qlang::error::QErrorKind::Other, text));
                }
            } else if let Some((msg, used)) = qipc::read_message(&self.buffer)? {
                self.buffer.drain(..used);
                return Ok(msg.value);
            }
            let n = self.stream.read(&mut chunk).map_err(io_err)?;
            if n == 0 {
                return Err(qlang::QError::new(
                    qlang::error::QErrorKind::Other,
                    "connection closed while awaiting response",
                ));
            }
            self.buffer.extend_from_slice(&chunk[..n]);
        }
    }
}

fn io_err(e: std::io::Error) -> qlang::QError {
    qlang::QError::new(qlang::error::QErrorKind::Other, format!("io error: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader;
    use qlang::value::Table;

    fn start_with_trades() -> (QipcEndpoint, pgdb::Db) {
        start_with_trades_io(IoModel::from_env())
    }

    fn start_with_trades_io(io_model: IoModel) -> (QipcEndpoint, pgdb::Db) {
        let db = pgdb::Db::new();
        // Load through a throwaway session.
        let mut s = HyperQSession::with_direct(&db);
        let trades = Table::new(
            vec!["Symbol".into(), "Price".into()],
            vec![
                Value::Symbols(vec!["GOOG".into(), "IBM".into()]),
                Value::Floats(vec![100.0, 50.0]),
            ],
        )
        .unwrap();
        loader::load_table(&mut s, "trades", &trades).unwrap();
        let config = EndpointConfig { io_model, ..EndpointConfig::default() };
        let ep = QipcEndpoint::start(db.clone(), "127.0.0.1:0", config).unwrap();
        (ep, db)
    }

    #[test]
    fn q_application_runs_unchanged_over_the_wire() {
        for io_model in [IoModel::ThreadPerConn, IoModel::Multiplexed] {
            let (ep, _db) = start_with_trades_io(io_model);
            let mut client = QipcClient::connect(&ep.addr.to_string(), "trader", "").unwrap();
            let v = client.query("select Price from trades where Symbol=`GOOG").unwrap();
            match v {
                Value::Table(t) => {
                    assert!(t.column("Price").unwrap().q_eq(&Value::Floats(vec![100.0])));
                }
                other => panic!("expected table, got {other:?}"),
            }
            ep.detach();
        }
    }

    #[test]
    fn session_state_persists_across_queries() {
        let (ep, _db) = start_with_trades();
        let mut client = QipcClient::connect(&ep.addr.to_string(), "trader", "").unwrap();
        client.query("SYMS: `GOOG`MSFT").unwrap();
        let v = client.query("select Price from trades where Symbol in SYMS").unwrap();
        match v {
            Value::Table(t) => assert_eq!(t.rows(), 1),
            other => panic!("expected table, got {other:?}"),
        }
        ep.detach();
    }

    #[test]
    fn errors_come_back_as_kdb_error_frames() {
        let (ep, _db) = start_with_trades();
        let mut client = QipcClient::connect(&ep.addr.to_string(), "trader", "").unwrap();
        let err = client.query("select from nosuch").unwrap_err();
        assert!(err.to_string().contains("nosuch"), "{err}");
        // Connection survives the error.
        assert!(client.query("1+1").is_ok());
        ep.detach();
    }

    #[test]
    fn authentication_rejects_bad_credentials() {
        let db = pgdb::Db::new();
        let config = EndpointConfig {
            authenticator: Arc::new(|user, pass| user == "trader" && pass == "pw"),
            ..EndpointConfig::default()
        };
        let ep = QipcEndpoint::start(db, "127.0.0.1:0", config).unwrap();
        assert!(QipcClient::connect(&ep.addr.to_string(), "trader", "pw").is_ok());
        assert!(QipcClient::connect(&ep.addr.to_string(), "intruder", "x").is_err());
        ep.detach();
    }

    #[test]
    fn multiple_clients_have_isolated_sessions() {
        let (ep, _db) = start_with_trades();
        let mut a = QipcClient::connect(&ep.addr.to_string(), "a", "").unwrap();
        let mut b = QipcClient::connect(&ep.addr.to_string(), "b", "").unwrap();
        a.query("x: 1").unwrap();
        // b does not see a's session variable.
        assert!(b.query("select Price from trades where Price > x").is_err());
        assert!(a.query("select Price from trades where Price > x").is_ok());
        ep.detach();
    }

    #[test]
    fn scalar_results_round_trip() {
        let (ep, _db) = start_with_trades();
        let mut client = QipcClient::connect(&ep.addr.to_string(), "t", "").unwrap();
        let v = client.query("2*3+4").unwrap();
        assert!(v.q_eq(&Value::long(14)));
        ep.detach();
    }

    #[test]
    fn metrics_and_slowlog_system_commands_answer_inline() {
        let (ep, _db) = start_with_trades();
        let mut client = QipcClient::connect(&ep.addr.to_string(), "ops", "").unwrap();
        client.query("select Price from trades").unwrap();
        match client.query("\\metrics").unwrap() {
            Value::Chars(dump) => {
                assert!(dump.contains("hyperq_queries_total"), "{dump}");
                assert!(dump.contains("# TYPE"), "{dump}");
            }
            other => panic!("expected chars, got {other:?}"),
        }
        match client.query("\\slowlog").unwrap() {
            Value::Chars(text) => assert!(!text.is_empty()),
            other => panic!("expected chars, got {other:?}"),
        }
        ep.detach();
    }

    #[test]
    fn connection_cap_rejects_with_error_frame_after_handshake() {
        let db = pgdb::Db::new();
        let config = EndpointConfig { max_connections: 1, ..EndpointConfig::default() };
        let ep = QipcEndpoint::start(db, "127.0.0.1:0", config).unwrap();
        let mut first = QipcClient::connect(&ep.addr.to_string(), "a", "").unwrap();
        // The second connection handshakes fine, then its first query
        // is answered with the rejection frame.
        let mut second = QipcClient::connect(&ep.addr.to_string(), "b", "").unwrap();
        let err = second.query("1+1").unwrap_err();
        assert!(err.to_string().contains("too many connections"), "{err}");
        // The first connection keeps working.
        assert!(first.query("1+1").is_ok());
        ep.detach();
    }

    #[test]
    fn unreachable_backend_degrades_instead_of_dropping_the_client() {
        let factory: BackendFactory = Arc::new(|| {
            Err(WireError::connect("cannot connect to 10.255.255.1:5432: unreachable"))
        });
        let ep =
            QipcEndpoint::start_with("127.0.0.1:0", EndpointConfig::default(), factory).unwrap();
        let mut client = QipcClient::connect(&ep.addr.to_string(), "t", "").unwrap();
        let err = client.query("select from trades").unwrap_err();
        assert!(err.to_string().contains("backend: unavailable"), "{err}");
        // The connection survives; subsequent queries answer too.
        let err = client.query("1+1").unwrap_err();
        assert!(err.to_string().contains("backend: unavailable"), "{err}");
        ep.detach();
    }

    #[test]
    fn oversized_frame_gets_an_error_frame_not_an_allocation() {
        let db = pgdb::Db::new();
        let config = EndpointConfig { max_frame: 1024, ..EndpointConfig::default() };
        let ep = QipcEndpoint::start(db, "127.0.0.1:0", config).unwrap();
        let mut client = QipcClient::connect(&ep.addr.to_string(), "t", "").unwrap();
        // A header declaring 1 GiB.
        let mut evil = vec![1, MsgType::Sync.as_byte(), 0, 0];
        evil.extend_from_slice(&(1024u32 * 1024 * 1024).to_le_bytes());
        client.send_raw(&evil).unwrap();
        let err = client.read_response().unwrap_err();
        assert!(err.to_string().contains("exceeding"), "{err}");
    }
}
