//! The Endpoint plugin: a QIPC TCP server (paper §3.1).
//!
//! "Hyper-Q takes over kdb+ server by listening to incoming messages on
//! the port used by the original kdb+ server. Q applications run
//! unchanged while, under the hood, their network packets are routed to
//! Hyper-Q instead of kdb+."
//!
//! Each accepted connection gets a [`ProtocolTranslator`] FSM and its own
//! Hyper-Q session (scopes, temp tables, metadata cache) over a backend
//! session — mirroring one kdb+ client connection.

use crate::backend::{share, DirectBackend};
use crate::session::{HyperQSession, SessionConfig};
use crate::xc::{ProtocolTranslator, PtAction};
use qipc::{Message, MsgType};
use qlang::{QResult, Value};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Credential check for the QIPC handshake.
pub type Authenticator = Arc<dyn Fn(&str, &str) -> bool + Send + Sync>;

/// Endpoint configuration.
#[derive(Clone)]
pub struct EndpointConfig {
    /// Credential check for the QIPC handshake. Defaults to accepting
    /// everyone (kdb+'s historical posture, per §2.2: "kdb+ had no need
    /// for access control").
    pub authenticator: Authenticator,
    /// Session configuration applied to every connection.
    pub session: SessionConfig,
}

impl Default for EndpointConfig {
    fn default() -> Self {
        EndpointConfig { authenticator: Arc::new(|_, _| true), session: SessionConfig::default() }
    }
}

/// A running QIPC endpoint bridging Q applications to a backend.
pub struct QipcEndpoint {
    /// Bound address.
    pub addr: std::net::SocketAddr,
    handle: Option<JoinHandle<()>>,
}

impl QipcEndpoint {
    /// Start the endpoint over an in-process `pgdb` database.
    pub fn start(
        db: pgdb::Db,
        bind_addr: &str,
        config: EndpointConfig,
    ) -> std::io::Result<QipcEndpoint> {
        let listener = TcpListener::bind(bind_addr)?;
        let addr = listener.local_addr()?;
        let handle = std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                let db = db.clone();
                let config = config.clone();
                std::thread::spawn(move || {
                    let _ = serve_connection(stream, db, config);
                });
            }
        });
        Ok(QipcEndpoint { addr, handle: Some(handle) })
    }

    /// Detach the accept thread.
    pub fn detach(mut self) {
        self.handle.take();
    }
}

fn serve_connection(
    mut stream: TcpStream,
    db: pgdb::Db,
    config: EndpointConfig,
) -> std::io::Result<()> {
    let mut pt = ProtocolTranslator::new();
    let mut session =
        HyperQSession::new(share(DirectBackend::new(&db)), config.session);
    let auth = config.authenticator;
    let mut chunk = [0u8; 16384];

    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(());
        }
        let actions = match pt.on_bytes(&chunk[..n], &*auth) {
            Ok(a) => a,
            Err(_) => return Ok(()), // malformed framing: drop connection
        };
        for action in actions {
            match action {
                PtAction::Send(bytes) => stream.write_all(&bytes)?,
                PtAction::Close => return Ok(()),
                PtAction::ForwardQuery { text, respond } => {
                    let result = session.execute(&text);
                    if respond {
                        let reply = match result {
                            Ok(value) => pt.on_results(value).unwrap_or_else(|e| {
                                pt.on_error(&e.to_string())
                            }),
                            Err(e) => pt.on_error(&e.to_string()),
                        };
                        if let PtAction::Send(bytes) = reply {
                            stream.write_all(&bytes)?;
                        }
                    }
                }
            }
        }
    }
}

/// A minimal QIPC client — what a Q application's IPC layer does. Used
/// by examples, tests and the side-by-side framework's wire mode.
pub struct QipcClient {
    stream: TcpStream,
    buffer: Vec<u8>,
}

impl QipcClient {
    /// Connect and perform the credential handshake.
    pub fn connect(addr: &str, user: &str, password: &str) -> QResult<QipcClient> {
        let mut stream = TcpStream::connect(addr).map_err(io_err)?;
        stream
            .write_all(&qipc::client_handshake(user, password, 3))
            .map_err(io_err)?;
        let mut capability = [0u8; 1];
        stream.read_exact(&mut capability).map_err(|_| {
            qlang::QError::new(
                qlang::error::QErrorKind::Other,
                "server closed connection during handshake (bad credentials?)",
            )
        })?;
        Ok(QipcClient { stream, buffer: Vec::new() })
    }

    /// Send a synchronous query and wait for the response value.
    pub fn query(&mut self, q: &str) -> QResult<Value> {
        let bytes = qipc::write_message(&Message::query(q))?;
        self.stream.write_all(&bytes).map_err(io_err)?;
        self.read_response()
    }

    /// Send an asynchronous message (no response expected).
    pub fn send_async(&mut self, q: &str) -> QResult<()> {
        let msg = Message { msg_type: MsgType::Async, value: Value::Chars(q.to_string()) };
        let bytes = qipc::write_message(&msg)?;
        self.stream.write_all(&bytes).map_err(io_err)
    }

    fn read_response(&mut self) -> QResult<Value> {
        let mut chunk = [0u8; 16384];
        loop {
            // kdb+-style error frame? (type byte -128 after the header)
            if self.buffer.len() >= 9 && self.buffer[8] == 0x80 {
                let total = u32::from_le_bytes([
                    self.buffer[4],
                    self.buffer[5],
                    self.buffer[6],
                    self.buffer[7],
                ]) as usize;
                if self.buffer.len() >= total {
                    let text =
                        String::from_utf8_lossy(&self.buffer[9..total - 1]).into_owned();
                    self.buffer.drain(..total);
                    return Err(qlang::QError::new(qlang::error::QErrorKind::Other, text));
                }
            } else if let Some((msg, used)) = qipc::read_message(&self.buffer)? {
                self.buffer.drain(..used);
                return Ok(msg.value);
            }
            let n = self.stream.read(&mut chunk).map_err(io_err)?;
            if n == 0 {
                return Err(qlang::QError::new(
                    qlang::error::QErrorKind::Other,
                    "connection closed while awaiting response",
                ));
            }
            self.buffer.extend_from_slice(&chunk[..n]);
        }
    }
}

fn io_err(e: std::io::Error) -> qlang::QError {
    qlang::QError::new(qlang::error::QErrorKind::Other, format!("io error: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader;
    use qlang::value::Table;

    fn start_with_trades() -> (QipcEndpoint, pgdb::Db) {
        let db = pgdb::Db::new();
        // Load through a throwaway session.
        let mut s = HyperQSession::with_direct(&db);
        let trades = Table::new(
            vec!["Symbol".into(), "Price".into()],
            vec![
                Value::Symbols(vec!["GOOG".into(), "IBM".into()]),
                Value::Floats(vec![100.0, 50.0]),
            ],
        )
        .unwrap();
        loader::load_table(&mut s, "trades", &trades).unwrap();
        let ep = QipcEndpoint::start(db.clone(), "127.0.0.1:0", EndpointConfig::default()).unwrap();
        (ep, db)
    }

    #[test]
    fn q_application_runs_unchanged_over_the_wire() {
        let (ep, _db) = start_with_trades();
        let mut client = QipcClient::connect(&ep.addr.to_string(), "trader", "").unwrap();
        let v = client.query("select Price from trades where Symbol=`GOOG").unwrap();
        match v {
            Value::Table(t) => {
                assert!(t.column("Price").unwrap().q_eq(&Value::Floats(vec![100.0])));
            }
            other => panic!("expected table, got {other:?}"),
        }
        ep.detach();
    }

    #[test]
    fn session_state_persists_across_queries() {
        let (ep, _db) = start_with_trades();
        let mut client = QipcClient::connect(&ep.addr.to_string(), "trader", "").unwrap();
        client.query("SYMS: `GOOG`MSFT").unwrap();
        let v = client.query("select Price from trades where Symbol in SYMS").unwrap();
        match v {
            Value::Table(t) => assert_eq!(t.rows(), 1),
            other => panic!("expected table, got {other:?}"),
        }
        ep.detach();
    }

    #[test]
    fn errors_come_back_as_kdb_error_frames() {
        let (ep, _db) = start_with_trades();
        let mut client = QipcClient::connect(&ep.addr.to_string(), "trader", "").unwrap();
        let err = client.query("select from nosuch").unwrap_err();
        assert!(err.to_string().contains("nosuch"), "{err}");
        // Connection survives the error.
        assert!(client.query("1+1").is_ok());
        ep.detach();
    }

    #[test]
    fn authentication_rejects_bad_credentials() {
        let db = pgdb::Db::new();
        let config = EndpointConfig {
            authenticator: Arc::new(|user, pass| user == "trader" && pass == "pw"),
            ..EndpointConfig::default()
        };
        let ep = QipcEndpoint::start(db, "127.0.0.1:0", config).unwrap();
        assert!(QipcClient::connect(&ep.addr.to_string(), "trader", "pw").is_ok());
        assert!(QipcClient::connect(&ep.addr.to_string(), "intruder", "x").is_err());
        ep.detach();
    }

    #[test]
    fn multiple_clients_have_isolated_sessions() {
        let (ep, _db) = start_with_trades();
        let mut a = QipcClient::connect(&ep.addr.to_string(), "a", "").unwrap();
        let mut b = QipcClient::connect(&ep.addr.to_string(), "b", "").unwrap();
        a.query("x: 1").unwrap();
        // b does not see a's session variable.
        assert!(b.query("select Price from trades where Price > x").is_err());
        assert!(a.query("select Price from trades where Price > x").is_ok());
        ep.detach();
    }

    #[test]
    fn scalar_results_round_trip() {
        let (ep, _db) = start_with_trades();
        let mut client = QipcClient::connect(&ep.addr.to_string(), "t", "").unwrap();
        let v = client.query("2*3+4").unwrap();
        assert!(v.q_eq(&Value::long(14)));
        ep.detach();
    }
}
