//! Sharded scatter-gather backend: MPP emulation over N pgdb instances.
//!
//! The paper's Hyper-Q fronted a Greenplum cluster; this module closes
//! that gap by hash-partitioning stored tables across N shards (plus a
//! coordinator holding a full copy of everything) and fanning translated
//! SQL per shard through the same [`Backend`] seam the single-node paths
//! use. The work splits across three layers:
//!
//! - **stats** — the storage engine maintains per-table statistics
//!   (row counts, distinct-key sketches, null fractions) surfaced
//!   through [`Backend::table_stats`]; placement consults them.
//! - **plan** ([`planner`]) — a pure function from (statement, catalog
//!   snapshot, knobs) to a typed [`planner::ShardPlan`] carrying a
//!   machine-readable reason. `EXPLAIN SHARD <stmt>` renders the
//!   decision; `shard_plan_total{kind,reason}` counts them.
//! - **execute** (this module + [`merge`]) — [`ShardRouter`] interprets
//!   the plan: coordinator-local, scatter + k-way ordered merge (a
//!   hidden global insertion ordinal `__hq_ord` breaks ties so shard
//!   interleaving is bit-identical to single-node frame order), or
//!   two-phase aggregation re-folded on a scratch engine instance.
//!
//! Placement is statistics-driven: small tables broadcast (equi-joins
//! against them stay shard-local), tables whose partition key shows
//! fewer distinct values than there are shards stay broadcast a while
//! longer, and everything else hash-partitions. Placement is *not*
//! sticky: a broadcast table that outgrows the boundary is re-planned —
//! logged, counted in `shard_reshard_total`, and re-partitioned in
//! place, never silently left stale. Joins between partitioned tables
//! whose partition keys are equated in the join condition are proven
//! co-located and stay sharded instead of falling back.
//!
//! Anything the planner cannot *prove* shard-safe (windows, subquery
//! predicates, DISTINCT aggregates, unproven join shapes, set ops,
//! OFFSET scans, float aggregates under reordering) falls back to the
//! coordinator, which holds a full copy of every table — so a fallback
//! is exactly single-node execution, errors included. Fallbacks are
//! counted in `shard_fallback_total`, never silent, and the reason is
//! recorded per plan.
//!
//! Float `sum`/`avg`/`min`/`max` deserve a note: two-level f64 addition
//! is not associative, and the engine's min/max fold is first-seen-wins
//! on incomparable values (NaN), so re-aggregating float partials can
//! diverge from single-node results in the last bit (or pick a
//! different NaN). They therefore fall back unless `HQ_SHARD_FLOAT_AGG=1`
//! opts into the (documented, slightly inexact) distributed form.
//! Integer sums stay exact: i64-valued doubles below 2^53 add exactly in
//! any order. For the same representation-vs-value reason, float-typed
//! partition keys never prove join co-location.

pub mod merge;
pub mod planner;

use crate::backend::{Backend, DirectBackend};
use crate::gateway::{Credentials, PgWireBackend};
use crate::wire::{RetryPolicy, WireError, WireTimeouts};
use pgdb::exec::expr::{cast, eval};
use pgdb::sql::ast::{FromItem, SelectItem, SelectStmt, SqlExpr, Stmt};
use pgdb::sql::render;
use pgdb::{
    Batch, BatchQueryResult, Cell, Column, PgType, QueryResult, Rows, StreamQueryResult,
    TableStats,
};
use planner::{col, item, ShardPlan};
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Hidden per-row global insertion ordinal column on shard tables.
pub(crate) const ORD: &str = "__hq_ord";
/// Reserved identifier prefix; user SQL mentioning it is refused a
/// scatter plan (it would collide with router-internal columns).
pub(crate) const RESERVED: &str = "__hq_";
/// Scratch table name for the re-aggregation merge.
pub(crate) const PARTIALS: &str = "__hq_partials";

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

/// How a table is laid out across the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Created but empty: no placement decision yet. Safe to treat as
    /// broadcast for reads (every shard agrees it has zero rows).
    Undecided,
    /// Full copy on every shard (small/dimension tables): joins against
    /// it stay shard-local.
    Broadcast,
    /// Hash-partitioned by the partition key; the coordinator still
    /// holds a full copy for fallback execution.
    Partitioned,
}

/// Per-table shard metadata.
#[derive(Debug, Clone)]
pub struct TableMeta {
    /// Logical column definitions (without the hidden ordinal).
    pub cols: Vec<(String, PgType)>,
    /// Partition key as an index into `cols`; `None` = round-robin.
    pub key: Option<usize>,
    /// Current placement.
    pub mode: Mode,
    /// Rows inserted through the router so far.
    pub rows: u64,
    /// Latest observed engine statistics (refreshed from the
    /// coordinator on every routed insert; `None` until then or when
    /// the backend does not track stats).
    pub stats: Option<TableStats>,
    /// Round-robin cursor for keyless/unhashable rows.
    rr: u64,
}

impl TableMeta {
    /// Construct metadata (catalog registration and planner tests).
    pub fn new(cols: Vec<(String, PgType)>, key: Option<usize>, mode: Mode, rows: u64) -> TableMeta {
        TableMeta { cols, key, mode, rows, stats: None, rr: 0 }
    }
}

/// Placement / planning knobs (env-derived by default).
#[derive(Debug, Clone)]
pub struct ShardOpts {
    /// Tables whose total row count stays at or below this after an
    /// insert are broadcast instead of partitioned (`HQ_SHARD_BROADCAST`,
    /// default 64). Growth past the boundary triggers a re-partition —
    /// see [`planner::decide_placement`].
    pub broadcast_threshold: u64,
    /// Allow distributed float aggregates (`HQ_SHARD_FLOAT_AGG=1`).
    /// Off by default because two-level float folds are not exactly
    /// associative; see the module docs.
    pub float_agg: bool,
    /// Use observed statistics for placement (`HQ_SHARD_STATS`, default
    /// on; `0` disables). Off restores the legacy behavior: a pure
    /// row-count threshold with sticky broadcast placement.
    pub stats: bool,
    /// Partition-key overrides, table name → column name
    /// (`HQ_SHARD_KEY="trades:sym,quotes:sym"`). Default is the first
    /// column.
    pub keys: HashMap<String, String>,
}

impl ShardOpts {
    /// Read the knobs from the environment.
    pub fn from_env() -> ShardOpts {
        let broadcast_threshold = std::env::var("HQ_SHARD_BROADCAST")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        let float_agg = std::env::var("HQ_SHARD_FLOAT_AGG").map(|v| v == "1").unwrap_or(false);
        let stats = std::env::var("HQ_SHARD_STATS").map(|v| v != "0").unwrap_or(true);
        let mut keys = HashMap::new();
        if let Ok(spec) = std::env::var("HQ_SHARD_KEY") {
            for part in spec.split(',') {
                if let Some((t, c)) = part.split_once(':') {
                    keys.insert(t.trim().to_string(), c.trim().to_string());
                }
            }
        }
        ShardOpts { broadcast_threshold, float_agg, stats, keys }
    }
}

impl Default for ShardOpts {
    fn default() -> Self {
        ShardOpts::from_env()
    }
}

/// Shard count from `HQ_SHARDS`, clamped to at least 1.
pub fn env_shards(default: usize) -> usize {
    std::env::var("HQ_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
        .max(1)
}

// ---------------------------------------------------------------------------
// Cluster
// ---------------------------------------------------------------------------

enum Topology {
    /// N in-process pgdb instances plus a coordinator instance.
    InProcess { coord: pgdb::Db, shards: Vec<pgdb::Db> },
    /// Over-the-wire shards reached through the PG v3 gateway.
    Remote {
        coord: String,
        shards: Vec<String>,
        creds: Credentials,
        timeouts: WireTimeouts,
        retry: RetryPolicy,
    },
}

/// A shard cluster: topology plus the shared placement catalog. Open
/// per-connection routers with [`ShardCluster::router`]; all routers on
/// one cluster share the catalog and the global insertion ordinal.
pub struct ShardCluster {
    topo: Topology,
    catalog: RwLock<HashMap<String, TableMeta>>,
    /// Global insertion ordinal: every row routed through any router on
    /// this cluster gets a unique, monotonically assigned `__hq_ord`.
    ordinal: AtomicI64,
    /// Serializes DDL/DML so coordinator apply order matches ordinal
    /// order (reads never take this).
    mutation: Mutex<()>,
    opts: ShardOpts,
}

impl ShardCluster {
    /// In-process cluster: `n` shard instances plus a coordinator,
    /// knobs from the environment.
    pub fn in_process(n: usize) -> Arc<ShardCluster> {
        ShardCluster::in_process_with(n, ShardOpts::from_env())
    }

    /// In-process cluster with explicit knobs.
    pub fn in_process_with(n: usize, opts: ShardOpts) -> Arc<ShardCluster> {
        let n = n.max(1);
        Arc::new(ShardCluster {
            topo: Topology::InProcess {
                coord: pgdb::Db::new(),
                shards: (0..n).map(|_| pgdb::Db::new()).collect(),
            },
            catalog: RwLock::new(HashMap::new()),
            ordinal: AtomicI64::new(0),
            mutation: Mutex::new(()),
            opts,
        })
    }

    /// Remote cluster over the PG v3 gateway: one address per shard plus
    /// the coordinator's address, knobs from the environment.
    pub fn remote(
        shard_addrs: Vec<String>,
        coord_addr: String,
        creds: Credentials,
        timeouts: WireTimeouts,
        retry: RetryPolicy,
    ) -> Arc<ShardCluster> {
        assert!(!shard_addrs.is_empty(), "remote cluster needs at least one shard");
        Arc::new(ShardCluster {
            topo: Topology::Remote { coord: coord_addr, shards: shard_addrs, creds, timeouts, retry },
            catalog: RwLock::new(HashMap::new()),
            ordinal: AtomicI64::new(0),
            mutation: Mutex::new(()),
            opts: ShardOpts::from_env(),
        })
    }

    /// Number of shards (excluding the coordinator).
    pub fn shard_count(&self) -> usize {
        match &self.topo {
            Topology::InProcess { shards, .. } => shards.len(),
            Topology::Remote { shards, .. } => shards.len(),
        }
    }

    /// Open a router: one backend connection per shard plus one to the
    /// coordinator.
    pub fn router(self: &Arc<ShardCluster>) -> Result<ShardRouter, WireError> {
        let (coord, shards): (Box<dyn Backend>, Vec<Box<dyn Backend>>) = match &self.topo {
            Topology::InProcess { coord, shards } => (
                Box::new(DirectBackend::new(coord)),
                shards.iter().map(|db| Box::new(DirectBackend::new(db)) as Box<dyn Backend>).collect(),
            ),
            Topology::Remote { coord, shards, creds, timeouts, retry } => {
                let mut conns: Vec<Box<dyn Backend>> = Vec::with_capacity(shards.len());
                for addr in shards {
                    conns.push(Box::new(PgWireBackend::connect_with(
                        addr,
                        creds,
                        *timeouts,
                        *retry,
                    )?));
                }
                let c = PgWireBackend::connect_with(coord, creds, *timeouts, *retry)?;
                (Box::new(c), conns)
            }
        };
        Ok(ShardRouter { cluster: Arc::clone(self), coord, shards })
    }

    /// Placement metadata for a table (tests/diagnostics).
    pub fn table_meta(&self, name: &str) -> Option<TableMeta> {
        self.catalog.read().unwrap().get(name).cloned()
    }

    /// The in-process instances (coordinator, shards); `None` for
    /// remote topologies. Test introspection.
    pub fn in_process_dbs(&self) -> Option<(&pgdb::Db, &[pgdb::Db])> {
        match &self.topo {
            Topology::InProcess { coord, shards } => Some((coord, shards)),
            Topology::Remote { .. } => None,
        }
    }

    /// Bulk-load a columnar batch into an in-process cluster, bypassing
    /// per-row INSERT rendering — the fixture fast path for benchmarks
    /// and large tests. Lands in exactly the state a routed
    /// `CREATE TABLE` + `INSERT` reaches: the coordinator holds the
    /// full copy, every shard table carries the hidden `__hq_ord`
    /// ordinal, placement follows [`planner::decide_placement`] over the
    /// engine's observed statistics, and the catalog records it.
    ///
    /// Panics on a remote topology (there is no columnar wire path) or
    /// when the table is already registered.
    pub fn put_table_batch(&self, name: &str, batch: Batch) {
        let (coord, shards) = match &self.topo {
            Topology::InProcess { coord, shards } => (coord, shards),
            Topology::Remote { .. } => panic!("put_table_batch requires an in-process cluster"),
        };
        let _m = self.mutation.lock().unwrap();
        assert!(!self.has_table(name), "put_table_batch: table {name:?} already registered");

        let cols: Vec<(String, PgType)> =
            batch.schema.iter().map(|c| (c.name.clone(), c.ty)).collect();
        let mut shard_schema = batch.schema.clone();
        shard_schema.push(Column::new(ORD, PgType::Int8));
        let n = batch.rows();
        let data = batch.to_rows().data;
        coord.put_table_batch(name, batch);
        let stats = coord.table_stats(name);

        self.register(name, cols);
        let nshards = shards.len();
        let base = self.ordinal.fetch_add(n as i64, Ordering::Relaxed);
        let (mode, key_pos) = {
            let mut cat = self.catalog.write().unwrap();
            let meta = cat.get_mut(name).expect("just registered");
            let kd = key_distinct(meta, stats.as_ref());
            meta.mode = planner::decide_placement(n as u64, kd, nshards, &self.opts).mode;
            meta.rows = n as u64;
            meta.stats = stats;
            (meta.mode, meta.key)
        };

        let mut per_shard: Vec<Vec<Vec<Cell>>> = vec![Vec::new(); nshards];
        for (ri, mut row) in data.into_iter().enumerate() {
            row.push(Cell::Int(base + ri as i64));
            if mode == Mode::Broadcast {
                for dst in &mut per_shard {
                    dst.push(row.clone());
                }
            } else {
                let s = match key_pos.and_then(|p| row.get(p)) {
                    Some(Cell::Null) | None => 0,
                    Some(c) => (hash_cell(c) % nshards as u64) as usize,
                };
                per_shard[s].push(row);
            }
        }
        for (db, rows) in shards.iter().zip(per_shard) {
            db.put_table_batch(
                name,
                Batch::from_rows(Rows { columns: shard_schema.clone(), data: rows }),
            );
        }
    }

    fn catalog_snapshot(&self) -> HashMap<String, TableMeta> {
        self.catalog.read().unwrap().clone()
    }

    fn register(&self, name: &str, cols: Vec<(String, PgType)>) {
        let key = match self.opts.keys.get(name) {
            Some(k) => cols.iter().position(|(n, _)| n == k),
            None if cols.is_empty() => None,
            None => Some(0),
        };
        self.catalog
            .write()
            .unwrap()
            .insert(name.to_string(), TableMeta::new(cols, key, Mode::Undecided, 0));
    }

    fn deregister(&self, name: &str) {
        self.catalog.write().unwrap().remove(name);
    }

    fn has_table(&self, name: &str) -> bool {
        self.catalog.read().unwrap().contains_key(name)
    }
}

/// Observed distinct count of a table's partition key, if stats exist.
fn key_distinct(meta: &TableMeta, stats: Option<&TableStats>) -> Option<u64> {
    meta.key
        .and_then(|k| meta.cols.get(k))
        .and_then(|(kn, _)| stats.and_then(|s| s.distinct(kn)))
}

// ---------------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------------

/// FNV-1a over a canonical byte encoding of the cell.
pub(crate) fn hash_cell(c: &Cell) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for b in bytes {
            h ^= u64::from(*b);
            h = h.wrapping_mul(PRIME);
        }
    };
    match c {
        Cell::Null => eat(&[0]),
        Cell::Bool(b) => eat(&[1, u8::from(*b)]),
        Cell::Int(i) => {
            eat(&[2]);
            eat(&i.to_le_bytes());
        }
        Cell::Float(f) => {
            eat(&[3]);
            eat(&f.to_bits().to_le_bytes());
        }
        Cell::Text(s) => {
            eat(&[4]);
            eat(s.as_bytes());
        }
        Cell::Date(d) => {
            eat(&[5]);
            eat(&d.to_le_bytes());
        }
        Cell::Time(t) => {
            eat(&[6]);
            eat(&t.to_le_bytes());
        }
        Cell::Timestamp(t) => {
            eat(&[7]);
            eat(&t.to_le_bytes());
        }
    }
    h
}

// ---------------------------------------------------------------------------
// Execution helpers
// ---------------------------------------------------------------------------

fn exec_any(b: &mut dyn Backend, sql: &str) -> Result<BatchQueryResult, WireError> {
    match b.execute_sql_batch(sql)? {
        Some(r) => Ok(r),
        None => Ok(match b.execute_sql(sql)? {
            QueryResult::Rows(r) => BatchQueryResult::Batch(Batch::from_rows(r)),
            QueryResult::Command(t) => BatchQueryResult::Command(t),
        }),
    }
}

/// Execute on one shard with per-shard metrics and latency observation.
fn shard_exec(i: usize, b: &mut dyn Backend, sql: &str) -> Result<BatchQueryResult, WireError> {
    let reg = obs::global_registry();
    let t0 = Instant::now();
    let r = exec_any(b, sql);
    reg.histogram(&format!("shard_exec_seconds{{shard=\"{i}\"}}")).observe(t0.elapsed());
    reg.counter(&format!("shard_statements_total{{shard=\"{i}\"}}")).inc();
    if let Ok(BatchQueryResult::Batch(batch)) = &r {
        reg.counter("shard_partial_rows").add(batch.rows() as u64);
    }
    r
}

/// Strip one leading keyword (case-insensitive, whole-word).
fn strip_keyword<'a>(s: &'a str, kw: &str) -> Option<&'a str> {
    let t = s.trim_start();
    if t.len() >= kw.len() && t[..kw.len()].eq_ignore_ascii_case(kw) {
        let rest = &t[kw.len()..];
        if rest.is_empty() || rest.starts_with(char::is_whitespace) {
            return Some(rest);
        }
    }
    None
}

/// `EXPLAIN SHARD <stmt>` → the inner statement, if this is one.
fn strip_explain_shard(sql: &str) -> Option<&str> {
    strip_keyword(sql, "EXPLAIN")
        .and_then(|rest| strip_keyword(rest, "SHARD"))
        .map(str::trim)
}

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

/// One routed connection to a [`ShardCluster`]: a backend per shard plus
/// a coordinator backend. Implements [`Backend`], so it drops in
/// anywhere a single pgdb connection does — `HyperQSession`, the batch
/// driver, the bench harness. Routing itself is a thin interpreter over
/// [`planner::ShardPlan`].
pub struct ShardRouter {
    cluster: Arc<ShardCluster>,
    coord: Box<dyn Backend>,
    shards: Vec<Box<dyn Backend>>,
}

impl ShardRouter {
    /// Number of shards this router fans out to.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn coordinator(&mut self, sql: &str) -> Result<BatchQueryResult, WireError> {
        let reg = obs::global_registry();
        reg.counter("shard_statements_total{shard=\"coord\"}").inc();
        exec_any(self.coord.as_mut(), sql)
    }

    fn fallback(&mut self, sql: &str) -> Result<BatchQueryResult, WireError> {
        obs::global_registry().counter("shard_fallback_total").inc();
        self.coordinator(sql)
    }

    /// Fan one SELECT to every shard in parallel.
    fn scatter(&mut self, sql: &str) -> Result<Vec<Batch>, WireError> {
        obs::global_registry().counter("shard_fanout_total").inc();
        let results: Vec<Result<Batch, WireError>> = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .enumerate()
                .map(|(i, b)| {
                    s.spawn(move || shard_exec(i, b.as_mut(), sql).and_then(merge::expect_batch))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| Err(WireError::protocol("shard worker panicked")))
                })
                .collect()
        });
        merge::gather(results)
    }

    /// Run per-shard mutation statements (sequentially — mutation order
    /// must match the coordinator's) and collapse the outcomes.
    fn fan_mutation(&mut self, stmts: &[(usize, String)]) -> Result<(), WireError> {
        if stmts.len() > 1 {
            obs::global_registry().counter("shard_fanout_total").inc();
        }
        let mut results: Vec<Result<(), WireError>> = Vec::with_capacity(stmts.len());
        for (i, sql) in stmts {
            results.push(shard_exec(*i, self.shards[*i].as_mut(), sql).map(|_| ()));
        }
        merge::gather(results).map(|_| ())
    }

    fn route(&mut self, sql: &str) -> Result<BatchQueryResult, WireError> {
        if let Some(inner) = strip_explain_shard(sql) {
            return Ok(BatchQueryResult::Batch(self.explain_shard(inner)));
        }
        if sql.contains(RESERVED) {
            // Router-internal namespace: refuse to plan around it.
            planner::record_plan("fallback", planner::FB_RESERVED);
            return self.fallback(sql);
        }
        let stmt = match pgdb::sql::parse_statement(sql) {
            Ok(s) => s,
            // Unparseable here — let the coordinator produce the exact
            // single-node error surface.
            Err(_) => return self.coordinator(sql),
        };
        match stmt {
            Stmt::Select(sel) => self.route_select(sql, &sel),
            Stmt::CreateTable { name, columns, temp } => {
                self.route_create(sql, &name, &columns, temp)
            }
            Stmt::Insert { table, columns, rows } => {
                self.route_insert(sql, &table, &columns, &rows)
            }
            Stmt::DropTable { name, .. } => self.route_drop(sql, &name),
            // CTAS products and session commands live on the
            // coordinator only.
            Stmt::CreateTableAs { .. } | Stmt::NoOp(_) => self.coordinator(sql),
        }
    }

    /// `EXPLAIN SHARD <stmt>`: render the routing decision as rows
    /// (kind, reason, detail) — never an error; even unparseable input
    /// gets a fallback row naming the parse failure.
    fn explain_shard(&mut self, sql: &str) -> Batch {
        let rows: Vec<(String, String, String)> = if sql.is_empty() {
            vec![("fallback".to_string(), "empty_statement".to_string(), String::new())]
        } else if sql.contains(RESERVED) {
            vec![("fallback".to_string(), planner::FB_RESERVED.to_string(), String::new())]
        } else {
            match pgdb::sql::parse_statement(sql) {
                Ok(stmt) => {
                    let cat = self.cluster.catalog_snapshot();
                    planner::explain_statement(&stmt, &cat, &self.cluster.opts)
                }
                Err(e) => vec![("fallback".to_string(), "unparseable".to_string(), e.to_string())],
            }
        };
        Batch::from_rows(Rows {
            columns: vec![
                Column::new("kind", PgType::Text),
                Column::new("reason", PgType::Text),
                Column::new("detail", PgType::Text),
            ],
            data: rows
                .into_iter()
                .map(|(k, r, d)| vec![Cell::Text(k), Cell::Text(r), Cell::Text(d)])
                .collect(),
        })
    }

    fn route_select(&mut self, sql: &str, sel: &SelectStmt) -> Result<BatchQueryResult, WireError> {
        let cat = self.cluster.catalog_snapshot();
        let plan = planner::plan_select(sel, &cat, &self.cluster.opts);
        planner::record_plan(plan.kind(), plan.reason());
        match plan {
            ShardPlan::Local { .. } | ShardPlan::Broadcast { .. } => self.coordinator(sql),
            ShardPlan::Fallback { .. } => self.fallback(sql),
            ShardPlan::Gather { tables, .. } => self.gather_exec(sql, &tables),
            ShardPlan::Scatter { spec, .. } | ShardPlan::ShardLocal { spec, .. } => {
                let batches = self.scatter(&spec.shard_sql)?;
                merge::merge_scan(batches, &spec).map(BatchQueryResult::Batch)
            }
            ShardPlan::TwoPhaseAgg { spec, .. } => {
                let batches = self.scatter(&spec.shard_sql)?;
                merge::merge_agg(batches, &spec).map(BatchQueryResult::Batch)
            }
        }
    }

    /// Execute a gather-motion plan: rebuild each input table exactly —
    /// scatter plus ordinal merge for partitioned tables, a single
    /// replica read for broadcast ones — then evaluate the whole
    /// statement over the gathered inputs on a scratch engine instance.
    /// The ordinal merge reconstructs global insertion order, which is
    /// the engine's scan order, so the scratch tables are cell- and
    /// order-identical to the coordinator's copies (minus the hidden
    /// ordinal, which is stripped — gathered statements can even
    /// `SELECT *` safely) and any statement evaluates exactly as it
    /// would single-node, errors included.
    fn gather_exec(
        &mut self,
        sql: &str,
        tables: &[planner::GatherTable],
    ) -> Result<BatchQueryResult, WireError> {
        obs::global_registry().counter("shard_gather_total").inc();
        let db = pgdb::Db::new();
        for t in tables {
            let mut items: Vec<SelectItem> = t
                .cols
                .iter()
                .map(|(n, _)| SelectItem::Expr { expr: col(n), alias: None })
                .collect();
            items.push(item(col(ORD), ORD));
            let sel = SelectStmt {
                items,
                from: Some(FromItem::Table { name: t.name.clone(), alias: None }),
                order_by: vec![(col(ORD), false)],
                ..SelectStmt::default()
            };
            let leaf_sql = render::render_select(&sel);
            let visible = t.cols.len();
            let batch = if t.partitioned {
                let spec = merge::ScanSpec {
                    shard_sql: leaf_sql,
                    visible,
                    keys: Vec::new(),
                    ord_idx: visible,
                    limit: None,
                };
                let batches = self.scatter(&spec.shard_sql)?;
                merge::merge_scan(batches, &spec)?
            } else {
                // Replicated copies are identical; read shard 0's.
                let b = shard_exec(0, self.shards[0].as_mut(), &leaf_sql)
                    .and_then(merge::expect_batch)?;
                let rows = b.to_rows();
                Batch::from_rows(Rows {
                    columns: rows.columns[..visible].to_vec(),
                    data: rows
                        .data
                        .into_iter()
                        .map(|mut r| {
                            r.truncate(visible);
                            r
                        })
                        .collect(),
                })
            };
            let rows = batch.to_rows();
            db.put_table(&t.name, rows.columns, rows.data);
        }
        let mut sess = db.session();
        sess.set_exec_threads(Some(1));
        sess.execute_batch(sql).map_err(WireError::from)
    }

    fn route_create(
        &mut self,
        sql: &str,
        name: &str,
        columns: &[(String, PgType)],
        temp: bool,
    ) -> Result<BatchQueryResult, WireError> {
        if temp || columns.iter().any(|(n, _)| n.starts_with(RESERVED)) {
            return self.coordinator(sql);
        }
        let cluster = Arc::clone(&self.cluster);
        let _m = cluster.mutation.lock().unwrap();
        // Coordinator first, verbatim: if it refuses (duplicate table,
        // bad DDL) nothing was fanned out and the error is single-node.
        let out = self.coordinator(sql)?;
        let mut shard_cols = columns.to_vec();
        shard_cols.push((ORD.to_string(), PgType::Int8));
        let ddl = render::render_stmt(&Stmt::CreateTable {
            name: name.to_string(),
            columns: shard_cols,
            temp: false,
        });
        let stmts: Vec<(usize, String)> =
            (0..self.shards.len()).map(|i| (i, ddl.clone())).collect();
        self.fan_mutation(&stmts)?;
        self.cluster.register(name, columns.to_vec());
        Ok(out)
    }

    fn route_insert(
        &mut self,
        sql: &str,
        table: &str,
        columns: &Option<Vec<String>>,
        rows: &[Vec<SqlExpr>],
    ) -> Result<BatchQueryResult, WireError> {
        if !self.cluster.has_table(table) {
            // Temp tables, CTAS products, unknown names: single-node.
            return self.coordinator(sql);
        }
        let cluster = Arc::clone(&self.cluster);
        let _m = cluster.mutation.lock().unwrap();
        // Coordinator first: INSERT is atomic there (every row is
        // validated before any is applied), so a failure leaves the
        // cluster untouched and surfaces the single-node error.
        let out = self.coordinator(sql)?;
        // Refresh observed statistics now that the coordinator holds
        // the post-insert state (None on stat-less backends).
        let stats = self.coord.table_stats(table);

        let n = rows.len();
        let base = self.cluster.ordinal.fetch_add(n as i64, Ordering::Relaxed);
        let nshards = self.shards.len();
        let mut needs_reshard = false;

        // Assign rows to shards under the catalog lock (the placement
        // decision and the round-robin cursor both live there).
        let (col_list, assignments): (Vec<String>, Vec<Option<usize>>) = {
            let mut cat = self.cluster.catalog.write().unwrap();
            let meta = cat.get_mut(table).expect("insert raced a drop despite the mutation lock");
            meta.rows += n as u64;
            meta.stats = stats;
            let kd = key_distinct(meta, meta.stats.as_ref());
            match meta.mode {
                Mode::Undecided => {
                    meta.mode =
                        planner::decide_placement(meta.rows, kd, nshards, &self.cluster.opts).mode;
                }
                // Re-plan placement as the table grows: a broadcast
                // table crossing the boundary is re-partitioned after
                // this insert lands (no silent staleness). Gated on the
                // stats knob so `HQ_SHARD_STATS=0` keeps the legacy
                // sticky placement.
                Mode::Broadcast if self.cluster.opts.stats => {
                    let p = planner::decide_placement(meta.rows, kd, nshards, &self.cluster.opts);
                    if p.mode == Mode::Partitioned {
                        needs_reshard = true;
                    }
                }
                _ => {}
            }
            let col_list: Vec<String> = match columns {
                Some(c) => c.clone(),
                None => meta.cols.iter().map(|(n, _)| n.clone()).collect(),
            };
            let key = meta.key.and_then(|k| meta.cols.get(k)).cloned();
            let key_pos =
                key.as_ref().and_then(|(kn, _)| col_list.iter().position(|c| c == kn));
            let key_ty = key.map(|(_, t)| t);
            let assignments: Vec<Option<usize>> = rows
                .iter()
                .map(|row| {
                    if meta.mode == Mode::Broadcast {
                        return None; // every shard
                    }
                    // Evaluate the key literal, then cast it to the
                    // key's column type — the stored cell is what the
                    // engine keeps, so hashing anything else (say, an
                    // integer literal bound for a float column) would
                    // break co-location with bulk-loaded rows.
                    let cell = key_pos
                        .and_then(|p| row.get(p))
                        .and_then(|e| eval(e, &[], &[]).ok())
                        .and_then(|v| key_ty.and_then(|t| cast(&v, t).ok()));
                    Some(match cell {
                        Some(Cell::Null) => 0,
                        Some(c) => (hash_cell(&c) % nshards as u64) as usize,
                        None => {
                            let s = (meta.rr % nshards as u64) as usize;
                            meta.rr += 1;
                            s
                        }
                    })
                })
                .collect();
            (col_list, assignments)
        };

        let mut shard_cols = col_list;
        shard_cols.push(ORD.to_string());
        let mut per_shard: Vec<Vec<Vec<SqlExpr>>> = vec![Vec::new(); nshards];
        for (ri, (row, target)) in rows.iter().zip(&assignments).enumerate() {
            let mut r2 = row.clone();
            r2.push(SqlExpr::Literal(Cell::Int(base + ri as i64)));
            match target {
                Some(s) => per_shard[*s].push(r2),
                None => {
                    for dst in &mut per_shard {
                        dst.push(r2.clone());
                    }
                }
            }
        }
        let stmts: Vec<(usize, String)> = per_shard
            .into_iter()
            .enumerate()
            .filter(|(_, rws)| !rws.is_empty())
            .map(|(i, rws)| {
                let stmt = Stmt::Insert {
                    table: table.to_string(),
                    columns: Some(shard_cols.clone()),
                    rows: rws,
                };
                (i, render::render_stmt(&stmt))
            })
            .collect();
        self.fan_mutation(&stmts)?;
        if needs_reshard {
            self.reshard_to_partitioned(table)?;
            obs::global_registry().counter("shard_reshard_total").inc();
            eprintln!(
                "[shard] table {table:?} outgrew broadcast placement; \
                 re-partitioned across {nshards} shards"
            );
        }
        Ok(out)
    }

    /// Move a table that outgrew broadcast placement to hash-partitioned
    /// layout: pull the full copy (ordinals included) from shard 0,
    /// rehash every *stored* row — so rows land exactly where a fresh
    /// partitioned load would put them — and rebuild each shard's slice.
    /// Runs under the caller's mutation lock; the catalog flips to
    /// `Partitioned` only after the data has moved, so concurrent reads
    /// keep planning against the coordinator's full copy meanwhile
    /// (the same read-vs-DDL window `DROP TABLE` already has).
    fn reshard_to_partitioned(&mut self, table: &str) -> Result<(), WireError> {
        let (cols, key_pos) = {
            let cat = self.cluster.catalog.read().unwrap();
            let m = &cat[table];
            (m.cols.clone(), m.key)
        };
        let nshards = self.shards.len();

        // Broadcast copies are identical; read shard 0's, ordinal last.
        let mut items: Vec<SelectItem> = cols
            .iter()
            .map(|(n, _)| SelectItem::Expr { expr: col(n), alias: None })
            .collect();
        items.push(item(col(ORD), ORD));
        let sel = SelectStmt {
            items,
            from: Some(FromItem::Table { name: table.to_string(), alias: None }),
            order_by: vec![(col(ORD), false)],
            ..SelectStmt::default()
        };
        let batch = shard_exec(0, self.shards[0].as_mut(), &render::render_select(&sel))
            .and_then(merge::expect_batch)?;
        let schema = batch.schema.clone();

        let mut per_shard: Vec<Vec<Vec<Cell>>> = vec![Vec::new(); nshards];
        for (ri, row) in batch.to_rows().data.into_iter().enumerate() {
            let s = match key_pos.and_then(|p| row.get(p)) {
                Some(Cell::Null) => 0,
                Some(c) => (hash_cell(c) % nshards as u64) as usize,
                None => ri % nshards,
            };
            per_shard[s].push(row);
        }

        if self.cluster.in_process_dbs().is_some() {
            let cluster = Arc::clone(&self.cluster);
            let (_, shard_dbs) = cluster.in_process_dbs().expect("in-process topology");
            for (db, rows) in shard_dbs.iter().zip(per_shard) {
                db.put_table_batch(
                    table,
                    Batch::from_rows(Rows { columns: schema.clone(), data: rows }),
                );
            }
        } else {
            // Remote topology: rebuild through rendered SQL.
            let mut shard_cols = cols.clone();
            shard_cols.push((ORD.to_string(), PgType::Int8));
            let col_names: Vec<String> = shard_cols.iter().map(|(n, _)| n.clone()).collect();
            let drop =
                render::render_stmt(&Stmt::DropTable { name: table.to_string(), if_exists: true });
            let create = render::render_stmt(&Stmt::CreateTable {
                name: table.to_string(),
                columns: shard_cols,
                temp: false,
            });
            let mut stmts: Vec<(usize, String)> = Vec::new();
            for (i, rows) in per_shard.iter().enumerate() {
                stmts.push((i, drop.clone()));
                stmts.push((i, create.clone()));
                for chunk in rows.chunks(500) {
                    let stmt = Stmt::Insert {
                        table: table.to_string(),
                        columns: Some(col_names.clone()),
                        rows: chunk
                            .iter()
                            .map(|r| r.iter().map(|c| SqlExpr::Literal(c.clone())).collect())
                            .collect(),
                    };
                    stmts.push((i, render::render_stmt(&stmt)));
                }
            }
            self.fan_mutation(&stmts)?;
        }

        let mut cat = self.cluster.catalog.write().unwrap();
        if let Some(meta) = cat.get_mut(table) {
            meta.mode = Mode::Partitioned;
        }
        Ok(())
    }

    fn route_drop(&mut self, sql: &str, name: &str) -> Result<BatchQueryResult, WireError> {
        if !self.cluster.has_table(name) {
            return self.coordinator(sql);
        }
        let cluster = Arc::clone(&self.cluster);
        let _m = cluster.mutation.lock().unwrap();
        let out = self.coordinator(sql)?;
        self.cluster.deregister(name);
        let ddl = render::render_stmt(&Stmt::DropTable { name: name.to_string(), if_exists: true });
        let stmts: Vec<(usize, String)> =
            (0..self.shards.len()).map(|i| (i, ddl.clone())).collect();
        self.fan_mutation(&stmts)?;
        Ok(out)
    }
}

impl Backend for ShardRouter {
    fn execute_sql(&mut self, sql: &str) -> Result<QueryResult, WireError> {
        Ok(match self.route(sql)? {
            BatchQueryResult::Batch(b) => QueryResult::Rows(b.into_rows()),
            BatchQueryResult::Command(t) => QueryResult::Command(t),
        })
    }

    fn execute_sql_batch(&mut self, sql: &str) -> Result<Option<BatchQueryResult>, WireError> {
        self.route(sql).map(Some)
    }

    fn execute_sql_stream(&mut self, _sql: &str) -> Result<Option<StreamQueryResult>, WireError> {
        // Scatter-gather has to materialize partials before merging;
        // callers fall back to the batch path.
        Ok(None)
    }

    fn set_exec_threads(&mut self, threads: Option<usize>) {
        self.coord.set_exec_threads(threads);
        for s in &mut self.shards {
            s.set_exec_threads(threads);
        }
    }

    fn describe(&self) -> String {
        format!("shard router ({} shards + coordinator)", self.shards.len())
    }

    fn reconnects(&self) -> u64 {
        self.coord.reconnects() + self.shards.iter().map(|s| s.reconnects()).sum::<u64>()
    }

    fn durable(&self) -> bool {
        self.coord.durable() && self.shards.iter().all(|s| s.durable())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::WireErrorKind;

    fn opts(threshold: u64) -> ShardOpts {
        ShardOpts {
            broadcast_threshold: threshold,
            float_agg: false,
            stats: true,
            keys: HashMap::new(),
        }
    }

    fn rows_of(r: BatchQueryResult) -> Rows {
        match r {
            BatchQueryResult::Batch(b) => b.into_rows(),
            other => panic!("expected rows, got {other:?}"),
        }
    }

    fn seed(router: &mut ShardRouter) {
        router
            .execute_sql_batch("CREATE TABLE t (k bigint, v bigint)")
            .unwrap();
        let values: Vec<String> = (0..20).map(|i| format!("({i}, {})", i * 10)).collect();
        router
            .execute_sql_batch(&format!("INSERT INTO t VALUES {}", values.join(", ")))
            .unwrap();
    }

    #[test]
    fn partitioned_scan_matches_insertion_order() {
        let cluster = ShardCluster::in_process_with(3, opts(4));
        let mut router = cluster.router().unwrap();
        seed(&mut router);
        assert_eq!(cluster.table_meta("t").unwrap().mode, Mode::Partitioned);
        let rows = rows_of(router.execute_sql_batch("SELECT k, v FROM t").unwrap().unwrap());
        assert_eq!(rows.data.len(), 20);
        for (i, row) in rows.data.iter().enumerate() {
            assert_eq!(row[0], Cell::Int(i as i64));
        }
        // Data is genuinely spread: no shard holds everything.
        let (_, shards) = cluster.in_process_dbs().unwrap();
        for db in shards {
            let t = db.get_table_snapshot("t").unwrap();
            assert!(t.rows().len() < 20, "shard holds all rows — not partitioned");
            // Shard copies carry the hidden ordinal.
            assert!(t.columns().iter().any(|c| c.name == ORD));
        }
    }

    #[test]
    fn small_tables_broadcast() {
        let cluster = ShardCluster::in_process_with(3, opts(64));
        let mut router = cluster.router().unwrap();
        router.execute_sql_batch("CREATE TABLE dim (id bigint, label text)").unwrap();
        router
            .execute_sql_batch("INSERT INTO dim VALUES (1, 'a'), (2, 'b')")
            .unwrap();
        assert_eq!(cluster.table_meta("dim").unwrap().mode, Mode::Broadcast);
        let (_, shards) = cluster.in_process_dbs().unwrap();
        for db in shards {
            assert_eq!(db.get_table_snapshot("dim").unwrap().rows().len(), 2);
        }
    }

    #[test]
    fn distributive_aggregation_merges() {
        let cluster = ShardCluster::in_process_with(4, opts(0));
        let mut router = cluster.router().unwrap();
        seed(&mut router);
        let rows = rows_of(
            router
                .execute_sql_batch("SELECT count(*), sum(v), min(k), max(v), avg(v) FROM t")
                .unwrap()
                .unwrap(),
        );
        assert_eq!(
            rows.data[0],
            vec![
                Cell::Int(20),
                Cell::Int((0..20).map(|i| i * 10).sum()),
                Cell::Int(0),
                Cell::Int(190),
                Cell::Float(95.0),
            ]
        );
    }

    #[test]
    fn columnar_bulk_load_matches_routed_inserts() {
        // The same 20 rows loaded two ways — rendered INSERT through a
        // router vs. the columnar fast path — must leave the cluster in
        // an equivalent state: same placement mode, same scan output,
        // same merged aggregates.
        let routed = ShardCluster::in_process_with(3, opts(4));
        let mut via_sql = routed.router().unwrap();
        seed(&mut via_sql);

        let bulk = ShardCluster::in_process_with(3, opts(4));
        let batch = Batch::from_rows(Rows {
            columns: vec![Column::new("k", PgType::Int8), Column::new("v", PgType::Int8)],
            data: (0..20).map(|i| vec![Cell::Int(i), Cell::Int(i * 10)]).collect(),
        });
        bulk.put_table_batch("t", batch);
        assert_eq!(bulk.table_meta("t").unwrap().mode, Mode::Partitioned);
        assert_eq!(bulk.table_meta("t").unwrap().rows, 20);

        let mut via_bulk = bulk.router().unwrap();
        for sql in
            ["SELECT k, v FROM t", "SELECT count(*), sum(v), min(k), max(v), avg(v) FROM t"]
        {
            let want = rows_of(via_sql.execute_sql_batch(sql).unwrap().unwrap());
            let got = rows_of(via_bulk.execute_sql_batch(sql).unwrap().unwrap());
            assert_eq!(want.data, got.data, "bulk load diverged for {sql}");
        }
        // Small batches broadcast, exactly like routed inserts.
        let dim = Batch::from_rows(Rows {
            columns: vec![Column::new("id", PgType::Int8)],
            data: (0..3).map(|i| vec![Cell::Int(i)]).collect(),
        });
        bulk.put_table_batch("dim", dim);
        assert_eq!(bulk.table_meta("dim").unwrap().mode, Mode::Broadcast);
    }

    #[test]
    fn unprovable_statements_fall_back_and_are_counted() {
        let cluster = ShardCluster::in_process_with(2, opts(0));
        let mut router = cluster.router().unwrap();
        seed(&mut router);
        let reg = obs::global_registry();
        let before = reg.counter_value("shard_fallback_total");
        // OFFSET skips rows globally — shards cannot skip locally, and
        // there is no exact decomposition, so the statement runs on the
        // coordinator's full copy and the fallback is counted.
        let rows = rows_of(
            router
                .execute_sql_batch("SELECT k FROM t ORDER BY k LIMIT 3 OFFSET 2")
                .unwrap()
                .unwrap(),
        );
        assert_eq!(rows.data.len(), 3);
        assert_eq!(rows.data[0][0], Cell::Int(2));
        assert_eq!(reg.counter_value("shard_fallback_total"), before + 1);
    }

    #[test]
    fn window_functions_gather_instead_of_falling_back() {
        let cluster = ShardCluster::in_process_with(3, opts(0));
        let mut router = cluster.router().unwrap();
        seed(&mut router);
        let reg = obs::global_registry();
        let gathers = reg.counter_value("shard_gather_total");
        // Window frames span shards, so the inputs are gathered (exact
        // ordinal-merge reconstruction) and the statement evaluates
        // whole — a distributed plan, not a coordinator fallback.
        let rows = rows_of(
            router
                .execute_sql_batch(
                    "SELECT k, row_number() OVER (ORDER BY k) FROM t ORDER BY k LIMIT 3",
                )
                .unwrap()
                .unwrap(),
        );
        assert_eq!(rows.data.len(), 3);
        assert_eq!(rows.data[1], vec![Cell::Int(1), Cell::Int(2)]);
        assert_eq!(reg.counter_value("shard_gather_total"), gathers + 1);
    }

    #[test]
    fn drop_deregisters_everywhere() {
        let cluster = ShardCluster::in_process_with(2, opts(0));
        let mut router = cluster.router().unwrap();
        seed(&mut router);
        router.execute_sql_batch("DROP TABLE t").unwrap();
        assert!(cluster.table_meta("t").is_none());
        let (_, shards) = cluster.in_process_dbs().unwrap();
        for db in shards {
            assert!(db.get_table_snapshot("t").is_none());
        }
        let err = router.execute_sql_batch("SELECT * FROM t").unwrap_err();
        assert_eq!(err.kind, WireErrorKind::Db);
    }

    #[test]
    fn co_partitioned_self_join_stays_sharded() {
        let cluster = ShardCluster::in_process_with(3, opts(0));
        let mut router = cluster.router().unwrap();
        seed(&mut router);
        let reg = obs::global_registry();
        let key = format!(
            "shard_plan_total{{kind=\"shard_local\",reason=\"{}\"}}",
            planner::OK_CO_PART
        );
        let before = reg.counter_value(&key);
        let rows = rows_of(
            router
                .execute_sql_batch(
                    "SELECT a.k, b.v FROM t AS a INNER JOIN t AS b ON a.k = b.k ORDER BY a.k",
                )
                .unwrap()
                .unwrap(),
        );
        assert_eq!(rows.data.len(), 20);
        for (i, row) in rows.data.iter().enumerate() {
            assert_eq!(row[0], Cell::Int(i as i64));
            assert_eq!(row[1], Cell::Int(i as i64 * 10));
        }
        assert_eq!(reg.counter_value(&key), before + 1, "join did not plan shard-local");
    }

    #[test]
    fn broadcast_growth_reshards_to_partitioned() {
        let cluster = ShardCluster::in_process_with(3, opts(4));
        let mut router = cluster.router().unwrap();
        router.execute_sql_batch("CREATE TABLE g (k bigint, v bigint)").unwrap();
        router.execute_sql_batch("INSERT INTO g VALUES (0, 0), (1, 10)").unwrap();
        assert_eq!(cluster.table_meta("g").unwrap().mode, Mode::Broadcast);
        let reg = obs::global_registry();
        let before = reg.counter_value("shard_reshard_total");
        let values: Vec<String> = (2..20).map(|i| format!("({i}, {})", i * 10)).collect();
        router
            .execute_sql_batch(&format!("INSERT INTO g VALUES {}", values.join(", ")))
            .unwrap();
        // The table crossed the boundary: placement re-planned, data
        // re-partitioned, counter bumped.
        assert_eq!(cluster.table_meta("g").unwrap().mode, Mode::Partitioned);
        assert_eq!(reg.counter_value("shard_reshard_total"), before + 1);
        let (_, shards) = cluster.in_process_dbs().unwrap();
        let total: usize =
            shards.iter().map(|db| db.get_table_snapshot("g").unwrap().rows().len()).sum();
        assert_eq!(total, 20, "reshard must keep exactly one copy of each row");
        for db in shards {
            assert!(db.get_table_snapshot("g").unwrap().rows().len() < 20);
        }
        // Scan order survives the move (ordinals travelled with rows).
        let rows = rows_of(router.execute_sql_batch("SELECT k, v FROM g").unwrap().unwrap());
        assert_eq!(rows.data.len(), 20);
        for (i, row) in rows.data.iter().enumerate() {
            assert_eq!(row[0], Cell::Int(i as i64));
        }
    }

    #[test]
    fn low_cardinality_key_stays_broadcast_until_it_grows() {
        let cluster = ShardCluster::in_process_with(3, opts(4));
        let mut router = cluster.router().unwrap();
        router.execute_sql_batch("CREATE TABLE lc (g bigint, v bigint)").unwrap();
        // 10 rows over 2 distinct partition-key values: past the row
        // threshold, but hashing 2 keys across 3 shards would leave
        // shards empty — observed stats keep it broadcast.
        let values: Vec<String> = (0..10).map(|i| format!("({}, {i})", i % 2)).collect();
        router
            .execute_sql_batch(&format!("INSERT INTO lc VALUES {}", values.join(", ")))
            .unwrap();
        assert_eq!(cluster.table_meta("lc").unwrap().mode, Mode::Broadcast);
        // Past 4x the threshold the table partitions regardless.
        let more: Vec<String> = (10..20).map(|i| format!("({}, {i})", i % 2)).collect();
        router
            .execute_sql_batch(&format!("INSERT INTO lc VALUES {}", more.join(", ")))
            .unwrap();
        assert_eq!(cluster.table_meta("lc").unwrap().mode, Mode::Partitioned);
        let rows = rows_of(router.execute_sql_batch("SELECT v FROM lc ORDER BY v").unwrap().unwrap());
        assert_eq!(rows.data.len(), 20);
    }

    #[test]
    fn explain_shard_reports_kind_reason_and_stats() {
        let cluster = ShardCluster::in_process_with(2, opts(4));
        let mut router = cluster.router().unwrap();
        seed(&mut router);
        let rows = rows_of(
            router
                .execute_sql_batch("EXPLAIN SHARD SELECT k FROM t ORDER BY k")
                .unwrap()
                .unwrap(),
        );
        assert_eq!(rows.data[0][0], Cell::Text("scatter".to_string()));
        assert_eq!(rows.data[0][1], Cell::Text(planner::OK_SCAN.to_string()));
        // Table rows carry placement and observed statistics.
        assert_eq!(rows.data[1][0], Cell::Text("table:t".to_string()));
        assert_eq!(rows.data[1][1], Cell::Text("partitioned".to_string()));
        match &rows.data[1][2] {
            Cell::Text(d) => assert!(d.starts_with("rows=20 key=k ndv~"), "detail was {d:?}"),
            other => panic!("expected text detail, got {other:?}"),
        }
        // Keyword matching is case-insensitive; window statements name
        // the gather strategy and the family that forced it.
        let rows = rows_of(
            router
                .execute_sql_batch("explain shard SELECT k, row_number() OVER (ORDER BY k) FROM t")
                .unwrap()
                .unwrap(),
        );
        assert_eq!(rows.data[0][0], Cell::Text("gather".to_string()));
        assert_eq!(rows.data[0][1], Cell::Text(planner::FB_WINDOW.to_string()));
        assert_eq!(rows.data[0][2], Cell::Text("gather: t(merge)".to_string()));
        // Even unparseable input explains instead of erroring.
        let rows = rows_of(
            router.execute_sql_batch("EXPLAIN SHARD not really sql").unwrap().unwrap(),
        );
        assert_eq!(rows.data[0][1], Cell::Text("unparseable".to_string()));
    }
}
