//! Client-side merge of per-shard partials.
//!
//! The planner ([`super::planner`]) proves a statement shard-safe and
//! emits a merge *spec*; this module executes it: a k-way ordered merge
//! for scatter scans ([`merge_scan`]) and an engine-semantics
//! re-aggregation over a scratch instance for two-phase aggregates
//! ([`merge_agg`]). It also owns the per-shard outcome collapse
//! ([`gather`]): all-success passes through, pure SQL errors surface as
//! the single-node error, lost shards become a typed partial failure.

use super::PARTIALS;
use crate::wire::{ShardFailure, WireError, WireErrorKind};
use pgdb::{Batch, BatchQueryResult, Cell, Column, Rows};
use std::cmp::Ordering as CmpOrdering;

/// Pass-through scatter: same SQL per shard (with hidden sort keys and
/// the ordinal appended), k-way ordered merge client-side.
#[derive(Debug, Clone)]
pub struct ScanSpec {
    /// SQL executed verbatim on every shard.
    pub shard_sql: String,
    /// Output columns visible to the caller (hidden ones are stripped).
    pub visible: usize,
    /// Merge comparison keys: (column index in shard output, desc).
    pub keys: Vec<(usize, bool)>,
    /// Index of the ordinal tie-break column (always last).
    pub ord_idx: usize,
    /// Row cap applied during the merge (the per-shard LIMIT bounds each
    /// input; this bounds the merged output).
    pub limit: Option<u64>,
}

/// Distributive re-aggregation: per-shard partials, merged by running a
/// rewritten aggregate over a scratch single-node instance (so merge
/// semantics match the engine by construction).
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// Per-shard partial-aggregate SQL.
    pub shard_sql: String,
    /// Merge SQL, run over the concatenated partials in `__hq_partials`.
    pub merge_sql: String,
    /// Caller-visible output columns (the trailing `__hq_ho` group
    /// order key is stripped).
    pub visible: usize,
}

pub(crate) fn expect_batch(r: BatchQueryResult) -> Result<Batch, WireError> {
    match r {
        BatchQueryResult::Batch(b) => Ok(b),
        BatchQueryResult::Command(t) => {
            Err(WireError::protocol(format!("shard returned a command tag ({t}) for a scatter query")))
        }
    }
}

/// Collapse per-shard outcomes. All-success passes through; pure SQL
/// errors surface as the lowest shard's error (the same statement fails
/// identically on the coordinator, so the surface matches single-node);
/// anything wire-shaped becomes a typed partial-failure error naming
/// the lost shards and the partials that did arrive.
pub(crate) fn gather<T>(results: Vec<Result<T, WireError>>) -> Result<Vec<T>, WireError> {
    if results.iter().all(|r| r.is_ok()) {
        return Ok(results.into_iter().map(|r| r.unwrap()).collect());
    }
    let mut failed = Vec::new();
    let mut arrived = Vec::new();
    let mut first_db: Option<WireError> = None;
    let mut all_db = true;
    for (i, r) in results.iter().enumerate() {
        match r {
            Ok(_) => arrived.push(i),
            Err(e) => {
                failed.push((i, e.to_string()));
                if e.kind == WireErrorKind::Db {
                    if first_db.is_none() {
                        first_db = Some(e.clone());
                    }
                } else {
                    all_db = false;
                }
            }
        }
    }
    if all_db {
        return Err(first_db.expect("at least one failure"));
    }
    obs::global_registry().counter("shard_degraded_total").inc();
    Err(WireError::shard_partial(ShardFailure { failed, arrived }))
}

/// K-way ordered merge of per-shard scan results.
pub fn merge_scan(batches: Vec<Batch>, spec: &ScanSpec) -> Result<Batch, WireError> {
    let schema: Vec<Column> = batches[0].schema[..spec.visible].to_vec();
    let mut cursors: Vec<(Vec<Vec<Cell>>, usize)> =
        batches.iter().map(|b| (b.to_rows().data, 0)).collect();
    let row_cmp = |a: &[Cell], b: &[Cell]| -> CmpOrdering {
        for (idx, desc) in &spec.keys {
            let o = a[*idx].sort_cmp(&b[*idx]);
            let o = if *desc { o.reverse() } else { o };
            if o != CmpOrdering::Equal {
                return o;
            }
        }
        // The ordinal is globally unique, so ties never span shards.
        a[spec.ord_idx].sort_cmp(&b[spec.ord_idx])
    };
    let cap = spec.limit.map(|l| l as usize).unwrap_or(usize::MAX);
    let mut data: Vec<Vec<Cell>> = Vec::new();
    while data.len() < cap {
        let mut best: Option<usize> = None;
        for ci in 0..cursors.len() {
            if cursors[ci].1 >= cursors[ci].0.len() {
                continue;
            }
            best = Some(match best {
                None => ci,
                Some(bi) => {
                    let a = &cursors[ci].0[cursors[ci].1];
                    let b = &cursors[bi].0[cursors[bi].1];
                    if row_cmp(a, b) == CmpOrdering::Less {
                        ci
                    } else {
                        bi
                    }
                }
            });
        }
        let Some(bi) = best else { break };
        let pos = cursors[bi].1;
        cursors[bi].1 += 1;
        let mut row = cursors[bi].0[pos].clone();
        row.truncate(spec.visible);
        data.push(row);
    }
    Ok(Batch::from_rows(Rows { columns: schema, data }))
}

/// Re-aggregate per-shard partials on a scratch single-node instance:
/// inject the concatenated partial rows (sorted by the group-order key
/// so `hq_first` sees the globally first row first) and run the merge
/// select — the merge inherits the engine's aggregation semantics by
/// construction.
pub fn merge_agg(batches: Vec<Batch>, spec: &AggSpec) -> Result<Batch, WireError> {
    let schema = batches[0].schema.clone();
    let ho = schema.len() - 1;
    let mut rows: Vec<Vec<Cell>> = Vec::new();
    for b in &batches {
        rows.extend(b.to_rows().data);
    }
    // Null group-order keys (empty shards in scalar aggregation) sort
    // last so they can never claim a group's first row.
    rows.sort_by(|a, b| match (&a[ho], &b[ho]) {
        (Cell::Null, Cell::Null) => CmpOrdering::Equal,
        (Cell::Null, _) => CmpOrdering::Greater,
        (_, Cell::Null) => CmpOrdering::Less,
        (x, y) => x.sort_cmp(y),
    });
    let db = pgdb::Db::new();
    db.put_table(PARTIALS, schema.clone(), rows);
    let mut sess = db.session();
    sess.set_exec_threads(Some(1));
    match sess.execute_batch(&spec.merge_sql) {
        Ok(BatchQueryResult::Batch(b)) => {
            let n = spec.visible;
            Ok(Batch::new(b.schema[..n].to_vec(), b.columns[..n].to_vec(), b.rows()))
        }
        Ok(BatchQueryResult::Command(t)) => {
            Err(WireError::protocol(format!("merge select returned a command tag ({t})")))
        }
        Err(e) => Err(WireError::from(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgdb::PgType;

    fn batch(rows: Vec<Vec<Cell>>) -> Batch {
        Batch::from_rows(Rows {
            columns: vec![
                Column::new("v", PgType::Int8),
                Column::new("k", PgType::Int8),
                Column::new("__hq_ord", PgType::Int8),
            ],
            data: rows,
        })
    }

    fn row(v: i64, k: i64, ord: i64) -> Vec<Cell> {
        vec![Cell::Int(v), Cell::Int(k), Cell::Int(ord)]
    }

    #[test]
    fn merge_scan_interleaves_by_key_then_ordinal() {
        // Two shards, sorted per shard by (k, ord); ties on k resolve by
        // the globally unique ordinal, reproducing insertion order.
        let a = batch(vec![row(10, 1, 0), row(30, 1, 4), row(50, 2, 6)]);
        let b = batch(vec![row(20, 1, 1), row(40, 2, 3)]);
        let spec = ScanSpec {
            shard_sql: String::new(),
            visible: 2,
            keys: vec![(1, false)],
            ord_idx: 2,
            limit: None,
        };
        let merged = merge_scan(vec![a, b], &spec).unwrap();
        let got: Vec<i64> = merged
            .to_rows()
            .data
            .iter()
            .map(|r| match r[0] {
                Cell::Int(v) => v,
                _ => panic!("int expected"),
            })
            .collect();
        assert_eq!(got, vec![10, 20, 30, 40, 50]);
        // Hidden ordinal is stripped from the output.
        assert_eq!(merged.schema.len(), 2);
    }

    #[test]
    fn merge_scan_descending_keys_and_limit_cap() {
        let a = batch(vec![row(3, 3, 2), row(1, 1, 0)]);
        let b = batch(vec![row(4, 4, 3), row(2, 2, 1)]);
        let spec = ScanSpec {
            shard_sql: String::new(),
            visible: 1,
            keys: vec![(1, true)],
            ord_idx: 2,
            limit: Some(3),
        };
        let merged = merge_scan(vec![a, b], &spec).unwrap();
        let got: Vec<Vec<Cell>> = merged.to_rows().data;
        assert_eq!(got, vec![vec![Cell::Int(4)], vec![Cell::Int(3)], vec![Cell::Int(2)]]);
    }

    #[test]
    fn merge_agg_refolds_partials_with_engine_semantics() {
        // Partials: (group key g, count partial c, min-ordinal __hq_ho).
        let part = |g: i64, c: i64, ho: Cell| vec![Cell::Int(g), Cell::Int(c), ho];
        let schema = vec![
            Column::new("__hq_g0", PgType::Int8),
            Column::new("__hq_p0", PgType::Int8),
            Column::new("__hq_ho", PgType::Int8),
        ];
        let a = Batch::from_rows(Rows {
            columns: schema.clone(),
            data: vec![part(1, 2, Cell::Int(5)), part(2, 1, Cell::Int(0))],
        });
        // An empty shard's scalar partial would carry a NULL order key;
        // here shard b contributes to group 1 only.
        let b = Batch::from_rows(Rows {
            columns: schema,
            data: vec![part(1, 3, Cell::Int(2))],
        });
        let spec = AggSpec {
            shard_sql: String::new(),
            merge_sql: "SELECT __hq_g0 AS g, sum(__hq_p0) AS n, min(__hq_ho) AS __hq_ho \
                        FROM __hq_partials GROUP BY __hq_g0 ORDER BY __hq_ho"
                .to_string(),
            visible: 2,
        };
        let merged = merge_agg(vec![a, b], &spec).unwrap();
        // Group 2 was seen globally first (ordinal 0), so it leads.
        assert_eq!(
            merged.to_rows().data,
            vec![vec![Cell::Int(2), Cell::Int(1)], vec![Cell::Int(1), Cell::Int(5)]]
        );
    }

    #[test]
    fn gather_surfaces_db_errors_and_types_wire_losses() {
        // All-Db failures collapse to the first shard's error (identical
        // to the coordinator's single-node surface).
        let db_err = || WireError::new(WireErrorKind::Db, "boom");
        let r: Result<Vec<i32>, _> = gather(vec![Ok(1), Err(db_err()), Err(db_err())]);
        assert_eq!(r.unwrap_err().kind, WireErrorKind::Db);
        // A wire-shaped loss becomes a typed partial failure.
        let r: Result<Vec<i32>, _> =
            gather(vec![Ok(1), Err(WireError::lost("shard 1 vanished"))]);
        assert_eq!(r.unwrap_err().kind, WireErrorKind::ShardPartial);
        // All-success passes through untouched.
        assert_eq!(gather(vec![Ok(1), Ok(2)]).unwrap(), vec![1, 2]);
    }
}
