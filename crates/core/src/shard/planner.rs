//! The shard planner: a pure function from (parsed statement, placement
//! catalog, knobs) to a typed [`ShardPlan`].
//!
//! Everything the router decides is decided *here*, with no access to
//! the cluster: the planner consumes a catalog snapshot and emits a plan
//! carrying a machine-readable `reason` string. Plans are inspectable
//! three ways — `EXPLAIN SHARD <stmt>` renders them as rows
//! ([`explain_statement`]), every routed select increments
//! `shard_plan_total{kind,reason}` ([`record_plan`]), and the pure
//! surface is unit-tested statement family by statement family
//! (`tests/shard_planner.rs`).
//!
//! Join planning proves *co-location* along the outer FROM's left
//! spine: the leftmost leaf must be a partitioned base table (or a
//! plain scan of one), every broadcast right leg is identical per shard,
//! and a partitioned right leg is admitted only when a top-level ON
//! conjunct equates its partition key with an already-established
//! partition key of the same type family (`=` or `IS NOT DISTINCT
//! FROM`; NULL keys co-locate on shard 0 by construction). Float keys
//! never establish co-location: NaN payloads and ±0.0 hash by
//! representation but compare by value. Proven keys chain, so
//! `a JOIN b ON a.k = b.k JOIN c ON b.k = c.k` plans shard-local.
//!
//! Placement is statistics-driven ([`decide_placement`]): a table stays
//! broadcast while it is small, or while its partition key's observed
//! distinct count is below the shard count (hash-partitioning such a
//! table would leave shards empty while still paying the fan-out); it
//! hash-partitions otherwise. `HQ_SHARD_STATS=0` reverts to the pure
//! row-count threshold with PR 8's sticky placement.

use super::{Mode, ShardOpts, TableMeta, ORD, PARTIALS, RESERVED};
use super::merge::{AggSpec, ScanSpec};
use pgdb::exec::expr::{derive_type, BoundCol};
use pgdb::sql::ast::{
    is_aggregate_name, FromItem, JoinType, SelectItem, SelectStmt, SqlBinOp, SqlExpr, Stmt,
};
use pgdb::sql::render;
use pgdb::{Cell, PgType};
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// Plan taxonomy
// ---------------------------------------------------------------------------

/// A typed routing decision. Every variant carries a stable,
/// machine-readable reason string (surfaced via `EXPLAIN SHARD` and the
/// `shard_plan_total{kind,reason}` metric).
#[derive(Debug, Clone)]
pub enum ShardPlan {
    /// No stored shard table involved (temps, catalog queries, unknown
    /// names): run on the coordinator. Not a fallback.
    Local {
        /// Why the statement is coordinator-local.
        reason: &'static str,
    },
    /// Only broadcast/undecided tables involved: every node holds the
    /// full inputs, so the coordinator's answer is the cluster's answer.
    Broadcast {
        /// Why broadcast execution is exact.
        reason: &'static str,
    },
    /// Provably shard-safe scatter over one partitioned table (plus
    /// broadcast legs): same SQL per shard, k-way ordered merge.
    Scatter {
        /// The merge specification.
        spec: ScanSpec,
        /// Why the scatter is exact.
        reason: &'static str,
    },
    /// A join between partitioned tables proven co-located on the
    /// partition key: executes exactly like a scatter, but the proof is
    /// the interesting part.
    ShardLocal {
        /// The merge specification.
        spec: ScanSpec,
        /// Which proof admitted the join.
        reason: &'static str,
    },
    /// Distributive aggregation: per-shard partials re-folded on a
    /// scratch engine instance.
    TwoPhaseAgg {
        /// The partial/merge specification.
        spec: Box<AggSpec>,
        /// Why the re-fold is exact.
        reason: &'static str,
    },
    /// A statement family that cannot be decomposed (windows, set ops,
    /// subquery predicates, DISTINCT aggregates) but whose inputs are
    /// all shard-managed: scatter each partitioned leaf, reconstruct the
    /// exact single-node table (ordinal merge), and evaluate the whole
    /// statement over the gathered inputs on a scratch engine — the MPP
    /// "gather motion". Exact for any statement, at full-input cost.
    Gather {
        /// Every table to gather, with its reconstruction recipe.
        tables: Vec<GatherTable>,
        /// Which non-decomposable family forced the gather.
        reason: &'static str,
    },
    /// Partitioned data involved but not provably shard-safe: run on
    /// the coordinator's full copy and count it.
    Fallback {
        /// The first proof obligation that failed.
        reason: &'static str,
    },
}

/// One input table of a [`ShardPlan::Gather`]: enough catalog knowledge
/// to rebuild the exact single-node table from shard fragments.
#[derive(Debug, Clone)]
pub struct GatherTable {
    /// Table name.
    pub name: String,
    /// Logical columns (the hidden ordinal is not part of this).
    pub cols: Vec<(String, PgType)>,
    /// Partitioned tables are scattered and ordinal-merged; replicated
    /// ones are read off a single shard.
    pub partitioned: bool,
}

impl ShardPlan {
    /// Stable plan-kind label (`shard_plan_total{kind=...}`).
    pub fn kind(&self) -> &'static str {
        match self {
            ShardPlan::Local { .. } => "local",
            ShardPlan::Broadcast { .. } => "broadcast",
            ShardPlan::Scatter { .. } => "scatter",
            ShardPlan::ShardLocal { .. } => "shard_local",
            ShardPlan::TwoPhaseAgg { .. } => "two_phase_agg",
            ShardPlan::Gather { .. } => "gather",
            ShardPlan::Fallback { .. } => "fallback",
        }
    }

    /// The plan's reason string.
    pub fn reason(&self) -> &'static str {
        match self {
            ShardPlan::Local { reason }
            | ShardPlan::Broadcast { reason }
            | ShardPlan::Scatter { reason, .. }
            | ShardPlan::ShardLocal { reason, .. }
            | ShardPlan::TwoPhaseAgg { reason, .. }
            | ShardPlan::Gather { reason, .. }
            | ShardPlan::Fallback { reason } => reason,
        }
    }
}

fn fallback(reason: &'static str) -> ShardPlan {
    ShardPlan::Fallback { reason }
}

// Fallback reasons. Stable strings: tests and dashboards key on them.
// The first four families are not decomposable per shard but *gather*
// when every input is shard-managed; they fall back only when a
// referenced table lives outside the shard catalog.
/// User SQL mentions the router-internal `__hq_` namespace.
pub const FB_RESERVED: &str = "reserved_identifier";
/// UNION/INTERSECT/EXCEPT chains are not decomposed.
pub const FB_SET_OP: &str = "set_operation";
/// Window functions see cross-shard frames.
pub const FB_WINDOW: &str = "window_function";
/// IN (SELECT ...) predicates would need a cross-shard build side.
pub const FB_SUBQUERY: &str = "subquery_predicate";
/// DISTINCT aggregates do not decompose into partials.
pub const FB_DISTINCT_AGG: &str = "distinct_aggregate";
/// OFFSET counts rows globally; shards cannot skip locally.
pub const FB_OFFSET: &str = "offset_scan";
/// `SELECT *` over a shape the planner cannot expand from the catalog.
pub const FB_WILDCARD: &str = "wildcard_shape";
/// An ORDER BY expression could capture an output alias.
pub const FB_ORDER_ALIAS: &str = "order_by_alias_capture";
/// A partitioned right join leg without a provable co-location conjunct
/// (missing/mismatched keys, float keys, cross join, keyless table).
pub const FB_JOIN_KEYS: &str = "join_keys_mismatch";
/// A right join leg that is neither a base table nor broadcast-safe.
pub const FB_JOIN_SHAPE: &str = "join_shape";
/// A joined table unknown to the shard catalog (temp/CTAS product).
pub const FB_UNREPLICATED: &str = "unreplicated_table";
/// A partitioned table in a position the spine cannot prove (nested
/// subquery, VALUES leaf, not on the outer FROM's left spine).
pub const FB_LEAF_SHAPE: &str = "partitioned_leaf_shape";
/// An aggregate expression shape that does not decompose.
pub const FB_AGG_SHAPE: &str = "aggregate_shape";
/// Aggregation over a FROM shape whose leg columns cannot be enumerated.
pub const FB_AGG_JOIN: &str = "aggregate_join_shape";
/// An aggregate inside GROUP BY.
pub const FB_AGG_GROUP_KEY: &str = "aggregate_group_key";
/// Float sum/avg/min/max without `HQ_SHARD_FLOAT_AGG=1`.
pub const FB_FLOAT_AGG: &str = "float_aggregate";
/// An unqualified column resolvable against more than one join leg.
pub const FB_AMBIGUOUS: &str = "ambiguous_column";
/// An aggregate with no distributive decomposition (median, hq_first...).
pub const FB_NONDISTRIBUTIVE: &str = "nondistributive_aggregate";

// Positive-plan reasons.
/// No table in the statement is shard-managed.
pub const OK_LOCAL: &str = "no_shard_tables";
/// Every referenced table is replicated (broadcast/undecided).
pub const OK_REPLICATED: &str = "replicated_tables";
/// Single-table scatter over the partitioned table.
pub const OK_SCAN: &str = "partitioned_scan";
/// Partitioned probe side joined only against broadcast legs.
pub const OK_BROADCAST_JOIN: &str = "broadcast_join";
/// Partitioned legs proven co-located on their partition keys.
pub const OK_CO_PART: &str = "co_partitioned_join";
/// Distributive aggregate over a single partitioned leaf.
pub const OK_AGG: &str = "distributive_aggregate";
/// Distributive aggregate over a proven shard-local join.
pub const OK_AGG_JOIN: &str = "distributive_aggregate_join";

/// Record a planning decision in `shard_plan_total{kind,reason}`.
pub fn record_plan(kind: &str, reason: &str) {
    obs::global_registry()
        .counter(&format!("shard_plan_total{{kind=\"{kind}\",reason=\"{reason}\"}}"))
        .inc();
}

// ---------------------------------------------------------------------------
// Placement policy
// ---------------------------------------------------------------------------

/// A broadcast-vs-partitioned placement decision with its reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// The chosen layout.
    pub mode: Mode,
    /// Why (`small_table`, `low_key_cardinality`, `over_threshold`).
    pub reason: &'static str,
}

/// Decide placement from observed statistics. Small tables broadcast
/// (joins against them stay shard-local for free). Past the row
/// threshold, a table whose partition key has fewer observed distinct
/// values than there are shards *stays* broadcast while it remains
/// moderately sized (hash-partitioning it would leave most shards empty
/// yet still pay the fan-out) — that is the statistics-driven override
/// of the old pure `HQ_SHARD_BROADCAST` constant. Everything else
/// hash-partitions. With `opts.stats` off (`HQ_SHARD_STATS=0`) only the
/// row-count threshold applies.
pub fn decide_placement(
    rows: u64,
    key_distinct: Option<u64>,
    nshards: usize,
    opts: &ShardOpts,
) -> Placement {
    if rows <= opts.broadcast_threshold {
        return Placement { mode: Mode::Broadcast, reason: "small_table" };
    }
    if opts.stats {
        if let Some(d) = key_distinct {
            if d < nshards as u64 && rows <= opts.broadcast_threshold.saturating_mul(4) {
                return Placement { mode: Mode::Broadcast, reason: "low_key_cardinality" };
            }
        }
    }
    Placement { mode: Mode::Partitioned, reason: "over_threshold" }
}

// ---------------------------------------------------------------------------
// Statement analysis
// ---------------------------------------------------------------------------

/// What a select tree contains, gathered in one walk.
#[derive(Default)]
struct SelectScan {
    tables: Vec<String>,
    set_op: bool,
    windows: bool,
    subqueries: bool,
    distinct_agg: bool,
    wildcard: bool,
}

fn scan_select(s: &SelectStmt, out: &mut SelectScan) {
    for item in &s.items {
        match item {
            SelectItem::Wildcard => out.wildcard = true,
            SelectItem::Expr { expr, .. } => scan_expr(expr, out),
        }
    }
    if let Some(f) = &s.from {
        scan_from(f, out);
    }
    for e in s
        .where_clause
        .iter()
        .chain(s.group_by.iter())
        .chain(s.having.iter())
        .chain(s.order_by.iter().map(|(e, _)| e))
    {
        scan_expr(e, out);
    }
    if let Some((_, rest)) = &s.set_op {
        out.set_op = true;
        scan_select(rest, out);
    }
}

fn scan_from(f: &FromItem, out: &mut SelectScan) {
    match f {
        FromItem::Table { name, .. } => out.tables.push(name.clone()),
        FromItem::Subquery { query, .. } => scan_select(query, out),
        FromItem::Values { rows, .. } => {
            for row in rows {
                for e in row {
                    scan_expr(e, out);
                }
            }
        }
        FromItem::Join { left, right, on, .. } => {
            scan_from(left, out);
            scan_from(right, out);
            if let Some(e) = on {
                scan_expr(e, out);
            }
        }
    }
}

fn scan_expr(e: &SqlExpr, out: &mut SelectScan) {
    match e {
        SqlExpr::Column { .. } | SqlExpr::Literal(_) | SqlExpr::Star => {}
        SqlExpr::Binary { lhs, rhs, .. } => {
            scan_expr(lhs, out);
            scan_expr(rhs, out);
        }
        SqlExpr::Not(x) | SqlExpr::Neg(x) => scan_expr(x, out),
        SqlExpr::Func { name, args, distinct } => {
            if *distinct && is_aggregate_name(name) {
                out.distinct_agg = true;
            }
            for a in args {
                scan_expr(a, out);
            }
        }
        SqlExpr::WindowFunc { args, partition_by, order_by, .. } => {
            out.windows = true;
            for a in args.iter().chain(partition_by.iter()) {
                scan_expr(a, out);
            }
            for (a, _) in order_by {
                scan_expr(a, out);
            }
        }
        SqlExpr::Case { branches, else_result } => {
            for (c, r) in branches {
                scan_expr(c, out);
                scan_expr(r, out);
            }
            if let Some(x) = else_result {
                scan_expr(x, out);
            }
        }
        SqlExpr::Cast { expr, .. } => scan_expr(expr, out),
        SqlExpr::InList { expr, list, .. } => {
            scan_expr(expr, out);
            for x in list {
                scan_expr(x, out);
            }
        }
        SqlExpr::IsNull { expr, .. } => scan_expr(expr, out),
        SqlExpr::InSubquery { expr, query, .. } => {
            out.subqueries = true;
            scan_expr(expr, out);
            scan_select(query, out);
        }
    }
}

/// Output column name the engine would assign (mirrors the executor's
/// `default_output_name`).
fn out_name(item: &SelectItem, i: usize) -> String {
    match item {
        SelectItem::Wildcard => "*".to_string(),
        SelectItem::Expr { expr, alias } => alias.clone().unwrap_or_else(|| match expr {
            SqlExpr::Column { name, .. } => name.clone(),
            SqlExpr::Func { name, .. } | SqlExpr::WindowFunc { name, .. } => name.clone(),
            _ => format!("column{}", i + 1),
        }),
    }
}

pub(crate) fn col(name: &str) -> SqlExpr {
    SqlExpr::Column { qualifier: None, name: name.to_string() }
}

fn qcol(qualifier: &str, name: &str) -> SqlExpr {
    SqlExpr::Column { qualifier: Some(qualifier.to_string()), name: name.to_string() }
}

fn agg(name: &str, arg: SqlExpr) -> SqlExpr {
    SqlExpr::Func { name: name.to_string(), args: vec![arg], distinct: false }
}

pub(crate) fn item(expr: SqlExpr, alias: &str) -> SelectItem {
    SelectItem::Expr { expr, alias: Some(alias.to_string()) }
}

/// Is this select in aggregate context (grouped or scalar aggregation)?
fn is_agg_context(s: &SelectStmt) -> bool {
    !s.group_by.is_empty()
        || s.having.is_some()
        || s.items.iter().any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
        || s.order_by.iter().any(|(e, _)| e.contains_aggregate())
}

/// Is `f` (a FROM subtree that is *not* the partitioned spine) identical
/// on every shard? True when every base table under it is broadcast (or
/// still empty/undecided).
fn broadcast_safe(f: &FromItem, cat: &HashMap<String, TableMeta>) -> bool {
    let mut scan = SelectScan::default();
    scan_from(f, &mut scan);
    scan.tables.iter().all(|t| {
        matches!(cat.get(t.as_str()), Some(m) if m.mode != Mode::Partitioned)
    })
}

/// Is `q` a plain per-row scan of partitioned table `p` (safe to use as
/// a partitioned FROM leaf, with the ordinal threaded through)?
fn plain_scan_of(q: &SelectStmt, p: &str) -> bool {
    matches!(&q.from, Some(FromItem::Table { name, .. }) if name == p)
        && q.group_by.is_empty()
        && q.having.is_none()
        && q.order_by.is_empty()
        && q.limit.is_none()
        && q.offset.is_none()
        && q.set_op.is_none()
        && q.items.iter().all(|i| {
            matches!(i, SelectItem::Expr { expr, .. } if !expr.contains_aggregate())
        })
}

// ---------------------------------------------------------------------------
// Join-spine resolution
// ---------------------------------------------------------------------------

/// Hashable type family of a partition key. Co-location proofs require
/// both keys in the same family: `hash_cell` is representation-based,
/// so cross-family equality (`1 = 1.0`) does not imply equal hashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Family {
    Bool,
    Int,
    Float,
    Text,
    Date,
    Time,
    Timestamp,
}

fn family(t: PgType) -> Family {
    match t {
        PgType::Bool => Family::Bool,
        PgType::Int2 | PgType::Int4 | PgType::Int8 => Family::Int,
        PgType::Float4 | PgType::Float8 => Family::Float,
        PgType::Date => Family::Date,
        PgType::Time => Family::Time,
        PgType::Timestamp => Family::Timestamp,
        _ => Family::Text,
    }
}

/// Outcome of walking the outer FROM's left spine.
struct Spine {
    /// Leftmost-leaf partitioned table: the ordinal anchor.
    anchor: Option<String>,
    /// Established co-located partition keys: (leg alias, column, family).
    established: Vec<(String, String, Family)>,
    /// Bare catalog-registered legs in scope: (alias, table).
    legs: Vec<(String, String)>,
    /// Some leg's columns cannot be enumerated (subquery/VALUES/unknown
    /// table): unqualified references stop being provably resolvable.
    opaque: bool,
    /// Partitioned-table occurrences the spine accounts for.
    resolved: usize,
    /// Right legs proven co-partitioned with the anchor.
    co_partitioned: usize,
    /// Whether any join appears at all.
    joined: bool,
    /// Every FROM leg is a bare catalog-registered base table.
    all_base: bool,
}

fn resolve_spine(
    f: &FromItem,
    cat: &HashMap<String, TableMeta>,
) -> Result<Spine, &'static str> {
    let mut sp = Spine {
        anchor: None,
        established: Vec::new(),
        legs: Vec::new(),
        opaque: false,
        resolved: 0,
        co_partitioned: 0,
        joined: false,
        all_base: true,
    };
    walk_spine(f, cat, &mut sp)?;
    Ok(sp)
}

fn walk_spine(
    f: &FromItem,
    cat: &HashMap<String, TableMeta>,
    sp: &mut Spine,
) -> Result<(), &'static str> {
    if let FromItem::Join { kind, left, right, on } = f {
        sp.joined = true;
        walk_spine(left, cat, sp)?;
        return right_leg(right, *kind, on.as_ref(), cat, sp);
    }
    leftmost_leaf(f, cat, sp)
}

fn leftmost_leaf(
    f: &FromItem,
    cat: &HashMap<String, TableMeta>,
    sp: &mut Spine,
) -> Result<(), &'static str> {
    match f {
        FromItem::Table { name, alias } => {
            let a = alias.clone().unwrap_or_else(|| name.clone());
            match cat.get(name.as_str()) {
                Some(m) => {
                    if m.mode == Mode::Partitioned {
                        sp.anchor = Some(name.clone());
                        sp.resolved += 1;
                        if let Some((kn, kt)) = m.key.and_then(|k| m.cols.get(k)) {
                            let fam = family(*kt);
                            if fam != Family::Float {
                                sp.established.push((a.clone(), kn.clone(), fam));
                            }
                        }
                    }
                    sp.legs.push((a, name.clone()));
                }
                None => {
                    // Temp/CTAS/unknown leaf: columns unknown to the
                    // shard catalog.
                    sp.opaque = true;
                    sp.all_base = false;
                }
            }
            Ok(())
        }
        FromItem::Subquery { query, .. } => {
            sp.opaque = true;
            sp.all_base = false;
            if let Some(FromItem::Table { name, .. }) = &query.from {
                if matches!(cat.get(name.as_str()), Some(m) if m.mode == Mode::Partitioned)
                    && plain_scan_of(query, name)
                {
                    sp.anchor = Some(name.clone());
                    sp.resolved += 1;
                }
            }
            Ok(())
        }
        FromItem::Values { .. } => {
            sp.opaque = true;
            sp.all_base = false;
            Ok(())
        }
        FromItem::Join { .. } => unreachable!("joins are handled by walk_spine"),
    }
}

fn right_leg(
    f: &FromItem,
    kind: JoinType,
    on: Option<&SqlExpr>,
    cat: &HashMap<String, TableMeta>,
    sp: &mut Spine,
) -> Result<(), &'static str> {
    if let FromItem::Table { name, alias } = f {
        match cat.get(name.as_str()) {
            Some(m) if m.mode == Mode::Partitioned => {
                return co_partitioned_leg(name, alias.as_deref(), m, kind, on, cat, sp);
            }
            Some(_) => {
                sp.legs.push((alias.clone().unwrap_or_else(|| name.clone()), name.clone()));
                return Ok(());
            }
            None => return Err(FB_UNREPLICATED),
        }
    }
    if broadcast_safe(f, cat) {
        // Identical per shard, but its output columns are not
        // enumerable from the catalog.
        sp.opaque = true;
        sp.all_base = false;
        return Ok(());
    }
    Err(FB_JOIN_SHAPE)
}

/// Admit a partitioned right leg by proving co-location: some top-level
/// ON conjunct must equate this leg's partition key with an established
/// partition key of the same family. Inner/Left only — the probe side
/// stays the spine, so per-shard result order is a subsequence of the
/// single-node order.
fn co_partitioned_leg(
    name: &str,
    alias: Option<&str>,
    m: &TableMeta,
    kind: JoinType,
    on: Option<&SqlExpr>,
    cat: &HashMap<String, TableMeta>,
    sp: &mut Spine,
) -> Result<(), &'static str> {
    if !matches!(kind, JoinType::Inner | JoinType::Left) {
        return Err(FB_JOIN_KEYS);
    }
    let a = alias.map(str::to_string).unwrap_or_else(|| name.to_string());
    let Some((kn, kt)) = m.key.and_then(|k| m.cols.get(k)).map(|(n, t)| (n.clone(), *t))
    else {
        // Keyless (round-robin) partitioned table: never co-located.
        return Err(FB_JOIN_KEYS);
    };
    let fam = family(kt);
    if fam == Family::Float {
        return Err(FB_JOIN_KEYS);
    }
    let Some(on) = on else { return Err(FB_JOIN_KEYS) };
    // Candidate legs for resolving conjunct sides: everything to the
    // left, plus this leg itself.
    let mut legs = sp.legs.clone();
    legs.push((a.clone(), name.to_string()));
    let mut proven = false;
    for c in conjuncts(on) {
        let SqlExpr::Binary { op, lhs, rhs } = c else { continue };
        if !matches!(op, SqlBinOp::Eq | SqlBinOp::IsNotDistinctFrom) {
            continue;
        }
        let (Some(l), Some(r)) = (
            resolve_side(lhs, &legs, sp.opaque, cat),
            resolve_side(rhs, &legs, sp.opaque, cat),
        ) else {
            continue;
        };
        for (x, y) in [(&l, &r), (&r, &l)] {
            if x.0 == a
                && x.1 == kn
                && sp
                    .established
                    .iter()
                    .any(|(ea, ek, ef)| *ea == y.0 && *ek == y.1 && *ef == fam)
            {
                proven = true;
            }
        }
    }
    if !proven {
        return Err(FB_JOIN_KEYS);
    }
    sp.established.push((a.clone(), kn, fam));
    sp.legs.push((a, name.to_string()));
    sp.resolved += 1;
    sp.co_partitioned += 1;
    Ok(())
}

/// Flatten a top-level AND chain into its conjuncts.
fn conjuncts(e: &SqlExpr) -> Vec<&SqlExpr> {
    fn go<'e>(e: &'e SqlExpr, out: &mut Vec<&'e SqlExpr>) {
        if let SqlExpr::Binary { op: SqlBinOp::And, lhs, rhs } = e {
            go(lhs, out);
            go(rhs, out);
        } else {
            out.push(e);
        }
    }
    let mut out = Vec::new();
    go(e, &mut out);
    out
}

/// Resolve a bare column reference to (leg alias, column name), or
/// `None` when it is not a bare column, unresolvable, or ambiguous.
/// With an opaque leg in scope, unqualified names never resolve — the
/// unenumerable leg could shadow them.
fn resolve_side(
    e: &SqlExpr,
    legs: &[(String, String)],
    opaque: bool,
    cat: &HashMap<String, TableMeta>,
) -> Option<(String, String)> {
    let SqlExpr::Column { qualifier, name } = e else { return None };
    let has = |table: &str| {
        cat.get(table).is_some_and(|m| m.cols.iter().any(|(n, _)| n == name))
    };
    match qualifier {
        Some(q) => {
            let (a, t) = legs.iter().find(|(a, _)| a == q)?;
            has(t).then(|| (a.clone(), name.clone()))
        }
        None => {
            if opaque {
                return None;
            }
            let mut hit: Option<(String, String)> = None;
            for (a, t) in legs {
                if has(t) {
                    if hit.is_some() {
                        return None; // ambiguous
                    }
                    hit = Some((a.clone(), name.clone()));
                }
            }
            hit
        }
    }
}

/// Append the hidden ordinal to the anchor leaf's projection (for
/// subquery leaves) and return the qualifier under which `__hq_ord` is
/// reachable from the outer select.
fn attach_ord(f: &mut FromItem, p: &str) -> Option<String> {
    match f {
        FromItem::Table { name, alias } if name == p => {
            Some(alias.clone().unwrap_or_else(|| name.clone()))
        }
        FromItem::Subquery { query, alias } => {
            let inner_q = match &query.from {
                Some(FromItem::Table { name, alias }) => {
                    alias.clone().unwrap_or_else(|| name.clone())
                }
                _ => return None,
            };
            query.items.push(item(qcol(&inner_q, ORD), ORD));
            Some(alias.clone())
        }
        FromItem::Join { left, .. } => attach_ord(left, p),
        _ => None,
    }
}

/// Bound columns of a single partitioned FROM leaf, for
/// aggregate-argument type derivation.
fn leaf_bound_cols(f: &FromItem, p: &str, meta: &TableMeta) -> Option<Vec<BoundCol>> {
    match f {
        FromItem::Table { name, alias } if name == p => {
            let q = alias.clone().unwrap_or_else(|| name.clone());
            Some(
                meta.cols
                    .iter()
                    .map(|(n, t)| BoundCol { qualifier: Some(q.clone()), name: n.clone(), ty: *t })
                    .collect(),
            )
        }
        FromItem::Subquery { query, alias } => {
            let inner: Vec<BoundCol> = meta
                .cols
                .iter()
                .map(|(n, t)| BoundCol { qualifier: None, name: n.clone(), ty: *t })
                .collect();
            let mut out = Vec::with_capacity(query.items.len());
            for (i, it) in query.items.iter().enumerate() {
                let SelectItem::Expr { expr, .. } = it else { return None };
                out.push(BoundCol {
                    qualifier: Some(alias.clone()),
                    name: out_name(it, i),
                    ty: derive_type(expr, &inner),
                });
            }
            Some(out)
        }
        _ => None,
    }
}

/// Visit every column reference in an expression (not descending into
/// subqueries — callers exclude those shapes first).
fn walk_columns(e: &SqlExpr, f: &mut impl FnMut(Option<&str>, &str)) {
    match e {
        SqlExpr::Column { qualifier, name } => f(qualifier.as_deref(), name),
        SqlExpr::Literal(_) | SqlExpr::Star => {}
        SqlExpr::Binary { lhs, rhs, .. } => {
            walk_columns(lhs, f);
            walk_columns(rhs, f);
        }
        SqlExpr::Not(x) | SqlExpr::Neg(x) => walk_columns(x, f),
        SqlExpr::Func { args, .. } => {
            for a in args {
                walk_columns(a, f);
            }
        }
        SqlExpr::WindowFunc { args, partition_by, order_by, .. } => {
            for a in args.iter().chain(partition_by.iter()) {
                walk_columns(a, f);
            }
            for (a, _) in order_by {
                walk_columns(a, f);
            }
        }
        SqlExpr::Case { branches, else_result } => {
            for (c, r) in branches {
                walk_columns(c, f);
                walk_columns(r, f);
            }
            if let Some(x) = else_result {
                walk_columns(x, f);
            }
        }
        SqlExpr::Cast { expr, .. } => walk_columns(expr, f),
        SqlExpr::InList { expr, list, .. } => {
            walk_columns(expr, f);
            for x in list {
                walk_columns(x, f);
            }
        }
        SqlExpr::IsNull { expr, .. } => walk_columns(expr, f),
        SqlExpr::InSubquery { expr, .. } => walk_columns(expr, f),
    }
}

// ---------------------------------------------------------------------------
// plan_select
// ---------------------------------------------------------------------------

/// Plan one SELECT against a catalog snapshot. Pure: no cluster access,
/// no side effects.
/// Plan a gather motion for a non-decomposable statement family, if
/// every referenced table is shard-managed — a table outside the
/// catalog (temp, CTAS product) only exists on the coordinator, so the
/// gathered inputs would be incomplete and the statement falls back.
fn gather_or_fallback(
    info: &SelectScan,
    cat: &HashMap<String, TableMeta>,
    reason: &'static str,
) -> ShardPlan {
    if !info.tables.iter().all(|t| cat.contains_key(t.as_str())) {
        return fallback(reason);
    }
    let mut names: Vec<&String> = info.tables.iter().collect();
    names.sort();
    names.dedup();
    let tables = names
        .into_iter()
        .map(|n| {
            let m = &cat[n.as_str()];
            GatherTable {
                name: n.clone(),
                cols: m.cols.clone(),
                partitioned: m.mode == Mode::Partitioned,
            }
        })
        .collect();
    ShardPlan::Gather { tables, reason }
}

pub fn plan_select(
    sel: &SelectStmt,
    cat: &HashMap<String, TableMeta>,
    opts: &ShardOpts,
) -> ShardPlan {
    let mut info = SelectScan::default();
    scan_select(sel, &mut info);

    let part_occurrences = info
        .tables
        .iter()
        .filter(|t| matches!(cat.get(t.as_str()), Some(m) if m.mode == Mode::Partitioned))
        .count();
    if part_occurrences == 0 {
        if !info.tables.is_empty() && info.tables.iter().all(|t| cat.contains_key(t.as_str())) {
            return ShardPlan::Broadcast { reason: OK_REPLICATED };
        }
        return ShardPlan::Local { reason: OK_LOCAL };
    }
    // Non-decomposable statement families: a per-shard rewrite cannot be
    // exact (cross-shard window frames, global set semantics, cross-shard
    // build sides, non-mergeable DISTINCT partials). When every input is
    // shard-managed the statement still executes distributed — gather the
    // exact inputs and evaluate whole; otherwise fall back.
    if info.set_op {
        return gather_or_fallback(&info, cat, FB_SET_OP);
    }
    if info.windows {
        return gather_or_fallback(&info, cat, FB_WINDOW);
    }
    if info.subqueries {
        return gather_or_fallback(&info, cat, FB_SUBQUERY);
    }
    if info.distinct_agg {
        return gather_or_fallback(&info, cat, FB_DISTINCT_AGG);
    }

    let Some(from) = &sel.from else { return fallback(FB_LEAF_SHAPE) };
    let sp = match resolve_spine(from, cat) {
        Ok(sp) => sp,
        Err(r) => return fallback(r),
    };
    // Every partitioned occurrence in the statement must be a spine
    // position the walk proved (anchor leaf or co-partitioned leg);
    // anything else (nested subquery, repeated reference) is unprovable.
    if sp.resolved != part_occurrences {
        return fallback(FB_LEAF_SHAPE);
    }
    let Some(anchor) = sp.anchor.clone() else { return fallback(FB_LEAF_SHAPE) };
    let meta = &cat[anchor.as_str()];

    if is_agg_context(sel) {
        plan_agg(sel, cat, &sp, &anchor, meta, opts)
    } else {
        plan_scan(sel, cat, &sp, &anchor)
    }
}

fn plan_scan(
    sel: &SelectStmt,
    cat: &HashMap<String, TableMeta>,
    sp: &Spine,
    p: &str,
) -> ShardPlan {
    let Some(from) = &sel.from else { return fallback(FB_LEAF_SHAPE) };
    if sel.offset.is_some() {
        return fallback(FB_OFFSET);
    }

    // Expand `SELECT *` from the catalog: the shard-side physical `*`
    // would leak the hidden ordinal. Only the single-table shape is
    // expandable; wildcards over joins/subqueries fall back.
    let mut items: Vec<SelectItem> = Vec::with_capacity(sel.items.len());
    for it in &sel.items {
        match it {
            SelectItem::Wildcard => {
                if !matches!(from, FromItem::Table { name, .. } if name == p)
                    || sel.items.len() != 1
                {
                    return fallback(FB_WILDCARD);
                }
                for (n, _) in &cat[p].cols {
                    items.push(SelectItem::Expr { expr: col(n), alias: None });
                }
            }
            other => items.push(other.clone()),
        }
    }
    let visible = items.len();
    let names: Vec<String> = items.iter().enumerate().map(|(i, it)| out_name(it, i)).collect();

    // Classify ORDER BY keys: a bare column naming an output sorts on
    // that visible column; anything else is computed per shard as a
    // hidden item — valid only if it cannot capture an output alias
    // (items evaluate against the input frame, ORDER BY against outputs
    // first).
    let mut keys: Vec<(usize, bool)> = Vec::with_capacity(sel.order_by.len());
    let mut hidden: Vec<SelectItem> = Vec::new();
    for (e, desc) in &sel.order_by {
        if let SqlExpr::Column { qualifier: None, name } = e {
            if let Some(i) = names.iter().position(|n| n == name) {
                keys.push((i, *desc));
                continue;
            }
        }
        let mut captures_output = false;
        walk_columns(e, &mut |q, n| {
            if q.is_none() && names.iter().any(|o| o == n) {
                captures_output = true;
            }
        });
        if captures_output {
            return fallback(FB_ORDER_ALIAS);
        }
        let alias = format!("__hq_k{}", hidden.len());
        keys.push((visible + hidden.len(), *desc));
        hidden.push(item(e.clone(), &alias));
    }

    let mut from2 = from.clone();
    let Some(ord_q) = attach_ord(&mut from2, p) else { return fallback(FB_LEAF_SHAPE) };

    let mut shard_items = items;
    shard_items.extend(hidden);
    shard_items.push(item(qcol(&ord_q, ORD), ORD));
    let ord_idx = shard_items.len() - 1;

    let mut order_by = sel.order_by.clone();
    order_by.push((col(ORD), false));

    let shard_sel = SelectStmt {
        items: shard_items,
        from: Some(from2),
        where_clause: sel.where_clause.clone(),
        group_by: Vec::new(),
        having: None,
        order_by,
        limit: sel.limit,
        offset: None,
        set_op: None,
    };
    let spec = ScanSpec {
        shard_sql: render::render_select(&shard_sel),
        visible,
        keys,
        ord_idx,
        limit: sel.limit,
    };
    if sp.co_partitioned > 0 {
        ShardPlan::ShardLocal { spec, reason: OK_CO_PART }
    } else if sp.joined {
        ShardPlan::Scatter { spec, reason: OK_BROADCAST_JOIN }
    } else {
        ShardPlan::Scatter { spec, reason: OK_SCAN }
    }
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

/// Rewrites aggregate expressions into (partial item, merged expression)
/// pairs. Partial items are deduplicated structurally.
struct AggRewriter<'a> {
    cols: &'a [BoundCol],
    float_agg: bool,
    /// Per-shard partial select items: (expr, alias).
    partials: Vec<(SqlExpr, String)>,
}

impl<'a> AggRewriter<'a> {
    fn slot(&mut self, partial: SqlExpr) -> String {
        if let Some((_, a)) = self.partials.iter().find(|(e, _)| *e == partial) {
            return a.clone();
        }
        let alias = format!("__hq_p{}", self.partials.len());
        self.partials.push((partial, alias.clone()));
        alias
    }

    fn int_typed(&self, e: &SqlExpr) -> bool {
        matches!(derive_type(e, self.cols), PgType::Int2 | PgType::Int4 | PgType::Int8)
    }

    fn float_typed(&self, e: &SqlExpr) -> bool {
        matches!(derive_type(e, self.cols), PgType::Float4 | PgType::Float8)
    }

    /// Rewrite `e` into its merge-side form, allocating partial slots.
    /// `Err(reason)` = not provably shard-safe.
    fn rewrite(&mut self, e: &SqlExpr) -> Result<SqlExpr, &'static str> {
        if !e.contains_aggregate() {
            // Group-constant or first-row-of-group semantics either
            // way; `hq_first` over min-ordinal-sorted partials
            // reproduces the global first row exactly.
            if let SqlExpr::Literal(_) = e {
                return Ok(e.clone());
            }
            let slot = self.slot(e.clone());
            return Ok(agg("hq_first", col(&slot)));
        }
        if let SqlExpr::Func { name, args, distinct } = e {
            if is_aggregate_name(name) {
                if *distinct {
                    return Err(FB_DISTINCT_AGG);
                }
                if args.len() != 1 || args[0].contains_aggregate() {
                    return Err(FB_AGG_SHAPE);
                }
                let arg = &args[0];
                return match name.as_str() {
                    "count" => {
                        let slot = self.slot(e.clone());
                        Ok(agg("sum", col(&slot)))
                    }
                    "sum" => {
                        if self.int_typed(arg) || (self.float_agg && self.float_typed(arg)) {
                            let slot = self.slot(e.clone());
                            Ok(agg("sum", col(&slot)))
                        } else if self.float_typed(arg) {
                            Err(FB_FLOAT_AGG)
                        } else {
                            Err(FB_AGG_SHAPE)
                        }
                    }
                    "avg" => {
                        if !(self.int_typed(arg) || (self.float_agg && self.float_typed(arg))) {
                            return if self.float_typed(arg) {
                                Err(FB_FLOAT_AGG)
                            } else {
                                Err(FB_AGG_SHAPE)
                            };
                        }
                        let s = self.slot(agg("sum", arg.clone()));
                        let c = self.slot(agg("count", arg.clone()));
                        let total = |slot: &str| SqlExpr::Cast {
                            expr: Box::new(agg("sum", col(slot))),
                            ty: PgType::Float8,
                        };
                        Ok(SqlExpr::Case {
                            branches: vec![(
                                SqlExpr::Binary {
                                    op: SqlBinOp::Gt,
                                    lhs: Box::new(agg("sum", col(&c))),
                                    rhs: Box::new(SqlExpr::Literal(Cell::Int(0))),
                                },
                                SqlExpr::Binary {
                                    op: SqlBinOp::Div,
                                    lhs: Box::new(total(&s)),
                                    rhs: Box::new(total(&c)),
                                },
                            )],
                            else_result: None,
                        })
                    }
                    "min" | "max" => {
                        if self.float_typed(arg) && !self.float_agg {
                            return Err(FB_FLOAT_AGG);
                        }
                        let slot = self.slot(e.clone());
                        Ok(agg(name, col(&slot)))
                    }
                    _ => Err(FB_NONDISTRIBUTIVE),
                };
            }
        }
        // Composite expression with aggregates inside: rebuild around
        // rewritten children.
        Ok(match e {
            SqlExpr::Binary { op, lhs, rhs } => SqlExpr::Binary {
                op: *op,
                lhs: Box::new(self.rewrite(lhs)?),
                rhs: Box::new(self.rewrite(rhs)?),
            },
            SqlExpr::Not(x) => SqlExpr::Not(Box::new(self.rewrite(x)?)),
            SqlExpr::Neg(x) => SqlExpr::Neg(Box::new(self.rewrite(x)?)),
            SqlExpr::Func { name, args, distinct } => SqlExpr::Func {
                name: name.clone(),
                args: args
                    .iter()
                    .map(|a| self.rewrite(a))
                    .collect::<Result<Vec<_>, _>>()?,
                distinct: *distinct,
            },
            SqlExpr::Case { branches, else_result } => SqlExpr::Case {
                branches: branches
                    .iter()
                    .map(|(c, r)| Ok((self.rewrite(c)?, self.rewrite(r)?)))
                    .collect::<Result<Vec<_>, &'static str>>()?,
                else_result: match else_result {
                    Some(x) => Some(Box::new(self.rewrite(x)?)),
                    None => None,
                },
            },
            SqlExpr::Cast { expr, ty } => {
                SqlExpr::Cast { expr: Box::new(self.rewrite(expr)?), ty: *ty }
            }
            SqlExpr::InList { expr, list, negated } => SqlExpr::InList {
                expr: Box::new(self.rewrite(expr)?),
                list: list
                    .iter()
                    .map(|x| self.rewrite(x))
                    .collect::<Result<Vec<_>, _>>()?,
                negated: *negated,
            },
            SqlExpr::IsNull { expr, negated } => {
                SqlExpr::IsNull { expr: Box::new(self.rewrite(expr)?), negated: *negated }
            }
            _ => return Err(FB_AGG_SHAPE),
        })
    }
}

fn plan_agg(
    sel: &SelectStmt,
    cat: &HashMap<String, TableMeta>,
    sp: &Spine,
    p: &str,
    meta: &TableMeta,
    opts: &ShardOpts,
) -> ShardPlan {
    let Some(from) = &sel.from else { return fallback(FB_LEAF_SHAPE) };
    if sel.items.iter().any(|i| matches!(i, SelectItem::Wildcard)) {
        return fallback(FB_WILDCARD);
    }

    // Bound columns for partial-aggregate type derivation: the single
    // leaf's columns, or — for a proven join spine of bare base tables —
    // the union of every leg's qualified columns.
    let bound: Vec<BoundCol> = if !sp.joined {
        match leaf_bound_cols(from, p, meta) {
            Some(b) => b,
            None => return fallback(FB_AGG_JOIN),
        }
    } else {
        if !sp.all_base {
            return fallback(FB_AGG_JOIN);
        }
        // An unqualified name present in more than one leg cannot be
        // type-derived reliably; fall back rather than guess.
        let mut ambiguous = false;
        {
            let mut check = |q: Option<&str>, n: &str| {
                if q.is_none() {
                    let hits = sp
                        .legs
                        .iter()
                        .filter(|(_, t)| {
                            cat.get(t.as_str())
                                .is_some_and(|m| m.cols.iter().any(|(cn, _)| cn == n))
                        })
                        .count();
                    if hits > 1 {
                        ambiguous = true;
                    }
                }
            };
            for it in &sel.items {
                if let SelectItem::Expr { expr, .. } = it {
                    walk_columns(expr, &mut check);
                }
            }
            for g in &sel.group_by {
                walk_columns(g, &mut check);
            }
            if let Some(h) = &sel.having {
                walk_columns(h, &mut check);
            }
            if let Some(w) = &sel.where_clause {
                walk_columns(w, &mut check);
            }
            for (e, _) in &sel.order_by {
                walk_columns(e, &mut check);
            }
        }
        if ambiguous {
            return fallback(FB_AMBIGUOUS);
        }
        sp.legs
            .iter()
            .flat_map(|(a, t)| {
                cat[t.as_str()].cols.iter().map(move |(n, ty)| BoundCol {
                    qualifier: Some(a.clone()),
                    name: n.clone(),
                    ty: *ty,
                })
            })
            .collect()
    };

    let mut rw = AggRewriter { cols: &bound, float_agg: opts.float_agg, partials: Vec::new() };

    // Group keys ride along as partial columns; the merge groups on
    // them. They are emitted first so slot aliases stay readable.
    for (j, g) in sel.group_by.iter().enumerate() {
        if g.contains_aggregate() {
            return fallback(FB_AGG_GROUP_KEY);
        }
        rw.partials.push((g.clone(), format!("__hq_g{j}")));
    }

    let mut merge_items: Vec<SelectItem> = Vec::with_capacity(sel.items.len() + 1);
    for (i, it) in sel.items.iter().enumerate() {
        let SelectItem::Expr { expr, .. } = it else { return fallback(FB_WILDCARD) };
        match rw.rewrite(expr) {
            Ok(m) => merge_items.push(item(m, &out_name(it, i))),
            Err(r) => return fallback(r),
        }
    }
    let merge_having = match &sel.having {
        Some(h) => match rw.rewrite(h) {
            Ok(m) => Some(m),
            Err(r) => return fallback(r),
        },
        None => None,
    };

    // Joined spines only: the merge select runs over the flat partials
    // table, where qualified refs (`a.k`) and non-output columns do not
    // exist — the coordinator would resolve them, the merge would error.
    // Require every ORDER BY column to be an unqualified output name.
    if sp.joined {
        let out_names: Vec<String> =
            sel.items.iter().enumerate().map(|(i, it)| out_name(it, i)).collect();
        let mut unresolvable = false;
        for (e, _) in &sel.order_by {
            walk_columns(e, &mut |q: Option<&str>, n: &str| {
                if q.is_some() || !out_names.iter().any(|o| o == n) {
                    unresolvable = true;
                }
            });
        }
        if unresolvable {
            return fallback(FB_AGG_JOIN);
        }
    }

    let mut from2 = from.clone();
    let Some(ord_q) = attach_ord(&mut from2, p) else { return fallback(FB_LEAF_SHAPE) };

    // Per-shard partial select: keys, partial aggregates, and the
    // group's minimum ordinal (for first-seen group order and
    // first-row-of-group reconstruction).
    let mut shard_items: Vec<SelectItem> =
        rw.partials.iter().map(|(e, a)| item(e.clone(), a)).collect();
    shard_items.push(item(agg("min", qcol(&ord_q, ORD)), "__hq_ho"));
    let shard_sel = SelectStmt {
        items: shard_items,
        from: Some(from2),
        where_clause: sel.where_clause.clone(),
        group_by: sel.group_by.clone(),
        having: None,
        order_by: Vec::new(),
        limit: None,
        offset: None,
        set_op: None,
    };

    // Merge select over the scratch partials table. ORDER BY keeps the
    // user's keys (they resolve against outputs, whose names match the
    // single-node output names) and appends the group-order key so ties
    // land in global first-seen order, exactly like the engine's stable
    // sort.
    merge_items.push(item(agg("min", col("__hq_ho")), "__hq_ho"));
    let mut merge_order = sel.order_by.clone();
    merge_order.push((col("__hq_ho"), false));
    let merge_sel = SelectStmt {
        items: merge_items,
        from: Some(FromItem::Table { name: PARTIALS.to_string(), alias: None }),
        where_clause: None,
        group_by: (0..sel.group_by.len()).map(|j| col(&format!("__hq_g{j}"))).collect(),
        having: merge_having,
        order_by: merge_order,
        limit: sel.limit,
        offset: sel.offset,
        set_op: None,
    };

    let spec = Box::new(AggSpec {
        shard_sql: render::render_select(&shard_sel),
        merge_sql: render::render_select(&merge_sel),
        visible: sel.items.len(),
    });
    let reason = if sp.joined { OK_AGG_JOIN } else { OK_AGG };
    ShardPlan::TwoPhaseAgg { spec, reason }
}

// ---------------------------------------------------------------------------
// EXPLAIN SHARD
// ---------------------------------------------------------------------------

/// Rows for `EXPLAIN SHARD <stmt>`: one `(kind, reason, detail)` row
/// for the plan, then one `(table:<name>, <mode>, rows/key/ndv)` row
/// per referenced shard-managed table.
pub fn explain_statement(
    stmt: &Stmt,
    cat: &HashMap<String, TableMeta>,
    opts: &ShardOpts,
) -> Vec<(String, String, String)> {
    let mut rows: Vec<(String, String, String)> = Vec::new();
    let mut tables: Vec<String> = Vec::new();
    match stmt {
        Stmt::Select(sel) => {
            let plan = plan_select(sel, cat, opts);
            let detail = match &plan {
                ShardPlan::Scatter { spec, .. } | ShardPlan::ShardLocal { spec, .. } => {
                    format!("shard: {}", spec.shard_sql)
                }
                ShardPlan::TwoPhaseAgg { spec, .. } => {
                    format!("shard: {} | merge: {}", spec.shard_sql, spec.merge_sql)
                }
                ShardPlan::Gather { tables, .. } => {
                    let parts: Vec<String> = tables
                        .iter()
                        .map(|t| {
                            let how = if t.partitioned { "merge" } else { "replica" };
                            format!("{}({how})", t.name)
                        })
                        .collect();
                    format!("gather: {}", parts.join(", "))
                }
                _ => String::new(),
            };
            rows.push((plan.kind().to_string(), plan.reason().to_string(), detail));
            let mut info = SelectScan::default();
            scan_select(sel, &mut info);
            tables = info.tables;
            tables.sort_unstable();
            tables.dedup();
        }
        Stmt::Insert { table, .. } => {
            let (kind, reason) = match cat.get(table.as_str()).map(|m| m.mode) {
                Some(Mode::Broadcast) => ("mutation", "broadcast_insert"),
                Some(Mode::Partitioned) => ("mutation", "hash_partitioned_insert"),
                Some(Mode::Undecided) => ("mutation", "placement_pending"),
                None => ("local", "unsharded_table"),
            };
            rows.push((kind.to_string(), reason.to_string(), String::new()));
            tables.push(table.clone());
        }
        Stmt::CreateTable { name, columns, temp } => {
            let reserved = columns.iter().any(|(n, _)| n.starts_with(RESERVED));
            let (kind, reason) = if *temp || reserved {
                ("local", "session_scoped")
            } else {
                ("mutation", "fanout_ddl")
            };
            rows.push((kind.to_string(), reason.to_string(), String::new()));
            tables.push(name.clone());
        }
        Stmt::DropTable { name, .. } => {
            let (kind, reason) = if cat.contains_key(name.as_str()) {
                ("mutation", "fanout_ddl")
            } else {
                ("local", "unsharded_table")
            };
            rows.push((kind.to_string(), reason.to_string(), String::new()));
            tables.push(name.clone());
        }
        Stmt::CreateTableAs { .. } => {
            rows.push(("local".to_string(), "ctas_coordinator_only".to_string(), String::new()));
        }
        Stmt::NoOp(_) => {
            rows.push(("local".to_string(), "no_op".to_string(), String::new()));
        }
    }
    for t in &tables {
        if let Some(m) = cat.get(t.as_str()) {
            let mode = match m.mode {
                Mode::Undecided => "undecided",
                Mode::Broadcast => "broadcast",
                Mode::Partitioned => "partitioned",
            };
            let key_col = m.key.and_then(|k| m.cols.get(k));
            let key = key_col.map(|(n, _)| n.as_str()).unwrap_or("-");
            let ndv = key_col
                .and_then(|(n, _)| m.stats.as_ref().and_then(|s| s.distinct(n)))
                .map(|d| d.to_string())
                .unwrap_or_else(|| "?".to_string());
            rows.push((
                format!("table:{t}"),
                mode.to_string(),
                format!("rows={} key={key} ndv~{ndv}", m.rows),
            ));
        }
    }
    rows
}
