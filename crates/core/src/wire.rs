//! Wire-path resilience: error taxonomy, deadlines and retry policy.
//!
//! Hyper-Q is always-on middleware sitting between latency-sensitive Q
//! applications and the backend (paper §3.1 argues for native wire
//! handling precisely because the proxy is in the hot path). That
//! position makes connection-lifecycle failures — a crashed backend, a
//! stalled network, a corrupt frame — ordinary events the wire path has
//! to absorb rather than exceptional ones that tear a session down.
//!
//! Three pieces cooperate:
//!
//! * [`WireError`] — a typed retryable-vs-fatal taxonomy. Everything the
//!   TCP legs can do wrong collapses into one of its kinds, so callers
//!   (the Gateway retry loop, the Endpoint's degradation path) can
//!   decide *mechanically* whether to reconnect, give up, or surface a
//!   protocol error.
//! * [`WireTimeouts`] — connect/read/write deadlines applied to both TCP
//!   legs via `set_read_timeout`/`set_write_timeout`.
//! * [`RetryPolicy`] — bounded attempts with an exponential, *jitter-free*
//!   backoff schedule. Determinism is deliberate: the chaos tests script
//!   exact failure sequences and must predict every reconnect.

use pgdb::DbError;
use std::fmt;
use std::time::Duration;

/// Classification of a wire-path failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireErrorKind {
    /// Could not establish the TCP connection (or authentication during
    /// session establishment failed transiently). Retryable.
    ConnectFailed,
    /// The peer closed or reset the connection mid-stream. Retryable —
    /// the statement may be replayed if it is idempotent.
    ConnectionLost,
    /// A read or write deadline expired. Fatal: the backend may still be
    /// executing the statement, so silently re-running it could double
    /// its effects.
    Timeout,
    /// The byte stream violated the protocol (corrupt length prefix,
    /// undecodable frame, cell text that does not parse as its declared
    /// type). Fatal.
    Protocol,
    /// The retry policy ran out of attempts. Fatal; wraps the kind of
    /// the last underlying failure in its message.
    RetriesExhausted,
    /// The connection died while a non-idempotent statement was in
    /// flight. Fatal: replaying could apply the mutation twice.
    NonIdempotent,
    /// The server refused the connection at the protocol level (e.g. a
    /// connection-limit rejection). Fatal.
    Rejected,
    /// The backend executed the statement and returned a SQL error.
    /// Fatal at the wire level — the connection itself is healthy.
    Db,
    /// A scatter-gather fan-out lost one or more shards mid-query while
    /// others answered. Fatal as a whole-statement outcome — but the
    /// attached [`ShardFailure`] says exactly which shards failed and
    /// which partials arrived, so callers can degrade deliberately
    /// instead of treating the cluster as down.
    ShardPartial,
}

impl WireErrorKind {
    /// Stable lower-case label used in rendered messages (and asserted
    /// on by tests).
    pub fn label(self) -> &'static str {
        match self {
            WireErrorKind::ConnectFailed => "connect-failed",
            WireErrorKind::ConnectionLost => "connection-lost",
            WireErrorKind::Timeout => "timeout",
            WireErrorKind::Protocol => "protocol",
            WireErrorKind::RetriesExhausted => "retries-exhausted",
            WireErrorKind::NonIdempotent => "non-idempotent",
            WireErrorKind::Rejected => "rejected",
            WireErrorKind::Db => "backend",
            WireErrorKind::ShardPartial => "shard-partial",
        }
    }
}

/// Structured detail for a [`WireErrorKind::ShardPartial`] failure:
/// which shards of a scatter-gather fan-out failed (with the underlying
/// cause) and which shards' partial results did arrive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFailure {
    /// Failed shards: `(shard index, cause)`, ascending by index.
    pub failed: Vec<(usize, String)>,
    /// Shards whose partial results arrived, ascending by index.
    pub arrived: Vec<usize>,
}

impl fmt::Display for ShardFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let lost: Vec<String> =
            self.failed.iter().map(|(i, cause)| format!("shard {i}: {cause}")).collect();
        write!(
            f,
            "{} of {} shards failed [{}]; partials arrived from shards {:?}",
            self.failed.len(),
            self.failed.len() + self.arrived.len(),
            lost.join("; "),
            self.arrived,
        )
    }
}

/// A typed wire-path error: what failed, and whether retrying can help.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Failure classification.
    pub kind: WireErrorKind,
    /// Human-readable detail.
    pub message: String,
    /// The backend SQL error, when `kind` is [`WireErrorKind::Db`].
    pub db: Option<DbError>,
    /// Per-shard failure detail, when `kind` is
    /// [`WireErrorKind::ShardPartial`].
    pub shard: Option<Box<ShardFailure>>,
}

impl WireError {
    /// Build an error of the given kind.
    pub fn new(kind: WireErrorKind, message: impl Into<String>) -> Self {
        WireError { kind, message: message.into(), db: None, shard: None }
    }

    /// Typed partial failure of a scatter-gather fan-out.
    pub fn shard_partial(detail: ShardFailure) -> Self {
        WireError {
            kind: WireErrorKind::ShardPartial,
            message: detail.to_string(),
            db: None,
            shard: Some(Box::new(detail)),
        }
    }

    /// Connection-establishment failure.
    pub fn connect(message: impl Into<String>) -> Self {
        Self::new(WireErrorKind::ConnectFailed, message)
    }

    /// Mid-stream connection loss.
    pub fn lost(message: impl Into<String>) -> Self {
        Self::new(WireErrorKind::ConnectionLost, message)
    }

    /// Deadline expiry.
    pub fn timeout(message: impl Into<String>) -> Self {
        Self::new(WireErrorKind::Timeout, message)
    }

    /// Protocol violation.
    pub fn protocol(message: impl Into<String>) -> Self {
        Self::new(WireErrorKind::Protocol, message)
    }

    /// Server-side rejection.
    pub fn rejected(message: impl Into<String>) -> Self {
        Self::new(WireErrorKind::Rejected, message)
    }

    /// Whether a fresh connection attempt could plausibly succeed where
    /// this failure did not. Drives the Gateway retry loop.
    pub fn retryable(&self) -> bool {
        matches!(self.kind, WireErrorKind::ConnectFailed | WireErrorKind::ConnectionLost)
    }

    /// Classify an I/O error from a socket read/write: deadline expiry
    /// maps to [`WireErrorKind::Timeout`], everything else to
    /// [`WireErrorKind::ConnectionLost`].
    pub fn from_io(context: &str, e: &std::io::Error) -> Self {
        use std::io::ErrorKind::{TimedOut, WouldBlock};
        if matches!(e.kind(), TimedOut | WouldBlock) {
            Self::timeout(format!("{context}: deadline exceeded"))
        } else {
            Self::lost(format!("{context}: {e}"))
        }
    }
}

impl From<DbError> for WireError {
    fn from(e: DbError) -> Self {
        WireError {
            kind: WireErrorKind::Db,
            message: e.message.clone(),
            db: Some(e),
            shard: None,
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.db {
            Some(db) => write!(f, "{db}"),
            None => write!(f, "wire error ({}): {}", self.kind.label(), self.message),
        }
    }
}

impl std::error::Error for WireError {}

/// Connect/read/write deadlines for a TCP leg.
///
/// `None` disables the respective deadline (the pre-resilience
/// block-forever behaviour). Defaults are deliberately generous — they
/// exist to bound catastrophic stalls, not to race healthy queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireTimeouts {
    /// TCP connection establishment deadline.
    pub connect: Option<Duration>,
    /// Per-read deadline while awaiting response bytes.
    pub read: Option<Duration>,
    /// Per-write deadline.
    pub write: Option<Duration>,
}

impl Default for WireTimeouts {
    fn default() -> Self {
        WireTimeouts {
            connect: Some(Duration::from_secs(10)),
            read: Some(Duration::from_secs(30)),
            write: Some(Duration::from_secs(30)),
        }
    }
}

impl WireTimeouts {
    /// No deadlines anywhere — the legacy blocking behaviour.
    pub fn none() -> Self {
        WireTimeouts { connect: None, read: None, write: None }
    }

    /// Apply the read/write deadlines to a connected stream.
    pub fn apply(&self, stream: &std::net::TcpStream) -> std::io::Result<()> {
        stream.set_read_timeout(self.read)?;
        stream.set_write_timeout(self.write)
    }
}

/// Bounded-attempt reconnect policy with a deterministic exponential
/// backoff schedule (no jitter, so fault-injection tests can predict the
/// exact sequence of reconnects).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = never retry).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Multiplier applied per subsequent retry.
    pub multiplier: u32,
    /// Upper bound on any single backoff.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(20),
            multiplier: 2,
            max_backoff: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn no_retry() -> Self {
        RetryPolicy { max_attempts: 1, ..RetryPolicy::default() }
    }

    /// A policy with `max_attempts` attempts and no backoff delay —
    /// what the chaos tests use to keep wall-clock time down.
    pub fn immediate(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts,
            base_backoff: Duration::ZERO,
            multiplier: 2,
            max_backoff: Duration::ZERO,
        }
    }

    /// Backoff before retry number `retry` (1-based): `base *
    /// multiplier^(retry-1)`, capped at `max_backoff`.
    pub fn backoff(&self, retry: u32) -> Duration {
        let factor = self.multiplier.saturating_pow(retry.saturating_sub(1));
        self.base_backoff
            .saturating_mul(factor)
            .min(self.max_backoff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability_follows_the_taxonomy() {
        assert!(WireError::connect("x").retryable());
        assert!(WireError::lost("x").retryable());
        assert!(!WireError::timeout("x").retryable());
        assert!(!WireError::protocol("x").retryable());
        assert!(!WireError::rejected("x").retryable());
        assert!(!WireError::from(DbError::exec("boom")).retryable());
        assert!(!WireError::new(WireErrorKind::RetriesExhausted, "x").retryable());
        assert!(!WireError::new(WireErrorKind::NonIdempotent, "x").retryable());
    }

    #[test]
    fn io_errors_classify_by_kind() {
        let timed = std::io::Error::new(std::io::ErrorKind::WouldBlock, "slow");
        assert_eq!(WireError::from_io("read", &timed).kind, WireErrorKind::Timeout);
        let reset = std::io::Error::new(std::io::ErrorKind::ConnectionReset, "rst");
        assert_eq!(WireError::from_io("read", &reset).kind, WireErrorKind::ConnectionLost);
    }

    #[test]
    fn db_errors_display_unchanged() {
        let e = WireError::from(DbError { code: "42P01".into(), message: "no table".into() });
        assert_eq!(e.to_string(), "[42P01] no table");
        assert_eq!(
            WireError::timeout("backend read: deadline exceeded").to_string(),
            "wire error (timeout): backend read: deadline exceeded"
        );
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_capped() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(10),
            multiplier: 2,
            max_backoff: Duration::from_millis(35),
        };
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(3), Duration::from_millis(35)); // capped from 40
        assert_eq!(p.backoff(4), Duration::from_millis(35));
    }

    #[test]
    fn immediate_policy_has_zero_delays() {
        let p = RetryPolicy::immediate(4);
        assert_eq!(p.max_attempts, 4);
        assert_eq!(p.backoff(1), Duration::ZERO);
        assert_eq!(p.backoff(3), Duration::ZERO);
    }
}
