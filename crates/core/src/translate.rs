//! The Query Translator: Q text → SQL statements, with per-stage timing.
//!
//! Translation goes through the stages the paper's evaluation instruments
//! (§6): **algebrization** of Q queries to XTRA (including metadata
//! lookups), **optimization** by applying XTRA transformations, and
//! **serialization** of XTRA expressions to SQL. [`StageTimings`] captures
//! each stage so the Figure 6/7 harnesses can reproduce the measurements.

use algebrizer::{Binder, Bound, MaterializationPolicy, ResultShape, Scopes, SideStatement};
use algebrizer::Mdi;
use qlang::{QError, QResult};
use std::time::{Duration, Instant};
use xformer::{XformReport, Xformer};

/// Wall-clock time spent in each translation stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Q text → AST.
    pub parse: Duration,
    /// AST → XTRA (binding, metadata lookups, scope resolution).
    pub algebrize: Duration,
    /// XTRA transformations.
    pub optimize: Duration,
    /// XTRA → SQL text.
    pub serialize: Duration,
    /// Translations served from the session's translation cache: all
    /// stage durations above are zero for such a statement.
    pub cache_hits: u64,
    /// Translations that ran the full pipeline (with a cache enabled).
    pub cache_misses: u64,
}

impl StageTimings {
    /// Total translation time.
    pub fn total(&self) -> Duration {
        self.parse + self.algebrize + self.optimize + self.serialize
    }

    /// Accumulate another measurement. **Merge semantics**: durations
    /// and cache counters are both *statement-weighted sums*. Each
    /// per-statement measurement carries `cache_hits + cache_misses ∈
    /// {0, 1}` (exactly one of them set when a translation cache is
    /// enabled, neither when it is disabled), so after any number of
    /// `add` calls — including merges across unrelated sessions —
    /// `cache_hits + cache_misses` is the number of cache-consulting
    /// statement translations, and [`StageTimings::hit_ratio`] stays
    /// meaningful. A cache-hit statement contributes zero to every
    /// duration (the pipeline never ran), so aggregated durations are
    /// "time actually spent translating", not "time per statement".
    pub fn add(&mut self, other: &StageTimings) {
        self.parse += other.parse;
        self.algebrize += other.algebrize;
        self.optimize += other.optimize;
        self.serialize += other.serialize;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
    }

    /// Fraction of cache-consulting translations served from the cache;
    /// `None` when no translation ever consulted a cache (so a report
    /// over cache-disabled sessions reads "n/a" instead of "0%").
    pub fn hit_ratio(&self) -> Option<f64> {
        let consulted = self.cache_hits + self.cache_misses;
        if consulted == 0 {
            None
        } else {
            Some(self.cache_hits as f64 / consulted as f64)
        }
    }
}

/// One SQL statement to run on the backend.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlStatement {
    /// The SQL text.
    pub sql: String,
    /// Whether the Q application expects rows back from this statement
    /// (side statements never return rows).
    pub returns_rows: bool,
    /// Expected Q result shape (for pivoting), when `returns_rows`.
    pub shape: Option<ResultShape>,
}

/// Result of translating one Q statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Translation {
    /// SQL statements, in execution order (materializations first).
    pub statements: Vec<SqlStatement>,
    /// Per-stage timings.
    pub timings: StageTimings,
    /// Which transformations fired.
    pub xform_report: XformReport,
    /// True when the statement was fully absorbed into Hyper-Q state
    /// (e.g. a function definition) and needs no backend round trip.
    pub absorbed: bool,
}

/// Aggregated statistics across many translations (bench harness).
#[derive(Debug, Clone, Default)]
pub struct TranslationStats {
    /// Statements translated.
    pub statements: usize,
    /// Accumulated stage timings.
    pub timings: StageTimings,
    /// Accumulated transformation report.
    pub rules: XformReport,
}

/// The translator: owns the transformation configuration and the
/// materialization policy; scopes and sequence numbers belong to the
/// session and are passed per call.
#[derive(Debug, Clone, Copy)]
pub struct Translator {
    /// Transformation configuration (ablations toggle rules here).
    pub xformer: Xformer,
    /// Materialization policy for Q variable assignments.
    pub policy: MaterializationPolicy,
}

impl Default for Translator {
    fn default() -> Self {
        Translator { xformer: Xformer::new(), policy: MaterializationPolicy::Logical }
    }
}

impl Translator {
    /// Create a translator with defaults (all transformations on,
    /// logical materialization).
    pub fn new() -> Self {
        Translator::default()
    }

    /// Translate a full Q program (possibly several `;`-separated
    /// statements). Returns one [`Translation`] per statement.
    pub fn translate_program(
        &self,
        q_text: &str,
        mdi: &dyn Mdi,
        scopes: &mut Scopes,
        temp_seq: &mut usize,
    ) -> QResult<Vec<Translation>> {
        let t0 = Instant::now();
        let stmts = qlang::parse(q_text)?;
        let parse_time = t0.elapsed();
        if stmts.is_empty() {
            return Err(QError::parse("empty query"));
        }
        let mut out = Vec::with_capacity(stmts.len());
        let per_stmt_parse = parse_time / stmts.len() as u32;
        for stmt in &stmts {
            let mut tr = self.translate_bound(stmt, mdi, scopes, temp_seq)?;
            tr.timings.parse = per_stmt_parse;
            out.push(tr);
        }
        Ok(out)
    }

    /// Translate one already-parsed statement.
    pub fn translate_bound(
        &self,
        stmt: &qlang::Expr,
        mdi: &dyn Mdi,
        scopes: &mut Scopes,
        temp_seq: &mut usize,
    ) -> QResult<Translation> {
        let mut timings = StageTimings::default();

        // Algebrization (binding + metadata lookups).
        let t0 = Instant::now();
        let mut binder = Binder::new(mdi, scopes, self.policy, temp_seq);
        let output = binder.bind_statement(stmt)?;
        timings.algebrize = t0.elapsed();

        let mut statements = Vec::new();
        let mut report = XformReport::default();

        // Side statements (eager materialization) are optimized and
        // serialized like the main query.
        let mut optimize = Duration::ZERO;
        let mut serialize = Duration::ZERO;
        for side in &output.side_statements {
            match side {
                SideStatement::CreateTemp { name, plan } => {
                    let t1 = Instant::now();
                    let (optimized, r) = self.xformer.apply(plan.clone());
                    optimize += t1.elapsed();
                    report.null_rewrites += r.null_rewrites;
                    report.columns_pruned += r.columns_pruned;
                    report.sorts_elided += r.sorts_elided;

                    let t2 = Instant::now();
                    let sql = serializer::serialize_create_temp(name, &optimized);
                    serialize += t2.elapsed();
                    statements.push(SqlStatement { sql, returns_rows: false, shape: None });
                }
            }
        }

        let absorbed = match output.bound {
            Bound::Rel { plan, shape } => {
                let t1 = Instant::now();
                let (optimized, r) = self.xformer.apply(plan);
                optimize += t1.elapsed();
                report.null_rewrites += r.null_rewrites;
                report.columns_pruned += r.columns_pruned;
                report.sorts_elided += r.sorts_elided;

                let t2 = Instant::now();
                let sql = serializer::serialize(&optimized);
                serialize += t2.elapsed();
                statements.push(SqlStatement { sql, returns_rows: true, shape: Some(shape) });
                false
            }
            Bound::Scalar(expr) => {
                let t2 = Instant::now();
                // Constant-fold standalone scalars (`1+2` → `SELECT 3`).
                let expr = match algebrizer::bind::fold_const(&expr) {
                    Some(d) => xtra::ScalarExpr::Const(d),
                    None => expr,
                };
                let sql = serializer::serialize_scalar_query(&expr);
                serialize += t2.elapsed();
                statements.push(SqlStatement {
                    sql,
                    returns_rows: true,
                    shape: Some(ResultShape::Atom),
                });
                false
            }
            Bound::Absorbed => statements.is_empty(),
        };

        timings.optimize = optimize;
        timings.serialize = serialize;
        Ok(Translation { statements, timings, xform_report: report, absorbed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use algebrizer::{StaticMdi, TableMeta};
    use xtra::{ColumnDef, SqlType, ORD_COL};

    fn mdi() -> StaticMdi {
        StaticMdi::new().with(TableMeta::new(
            "trades",
            vec![
                ColumnDef::not_null(ORD_COL, SqlType::Int8),
                ColumnDef::new("Symbol", SqlType::Varchar),
                ColumnDef::new("Price", SqlType::Float8),
            ],
        ))
    }

    fn translate(q: &str) -> Vec<Translation> {
        let mdi = mdi();
        let mut scopes = Scopes::new();
        let mut seq = 0;
        Translator::new()
            .translate_program(q, &mdi, &mut scopes, &mut seq)
            .unwrap_or_else(|e| panic!("translate {q:?}: {e}"))
    }

    #[test]
    fn select_translates_to_single_sql() {
        let trs = translate("select Price from trades where Symbol=`GOOG");
        assert_eq!(trs.len(), 1);
        let t = &trs[0];
        assert_eq!(t.statements.len(), 1);
        let sql = &t.statements[0].sql;
        assert!(sql.contains("IS NOT DISTINCT FROM"), "{sql}");
        assert!(sql.contains("'GOOG'::varchar"), "{sql}");
        assert!(sql.contains(r#"ORDER BY "ordcol""#), "{sql}");
        assert!(t.statements[0].returns_rows);
    }

    #[test]
    fn stage_timings_are_recorded() {
        let t = &translate("select max Price from trades")[0];
        assert!(t.timings.total() > Duration::ZERO);
        assert!(t.timings.algebrize > Duration::ZERO);
    }

    #[test]
    fn stage_timings_merge_is_statement_weighted() {
        // Pin the cross-session merge semantics: counters sum as
        // statement counts, durations sum as time actually spent, and
        // the hit ratio of the merge is the statement-weighted ratio —
        // NOT an average of per-session ratios.
        let session_a = StageTimings {
            parse: Duration::from_micros(10),
            cache_hits: 3,
            cache_misses: 1,
            ..StageTimings::default()
        };
        let session_b = StageTimings {
            parse: Duration::from_micros(30),
            cache_hits: 0,
            cache_misses: 1,
            ..StageTimings::default()
        };
        let mut merged = StageTimings::default();
        merged.add(&session_a);
        merged.add(&session_b);
        assert_eq!(merged.parse, Duration::from_micros(40));
        assert_eq!(merged.cache_hits + merged.cache_misses, 5, "statement count is preserved");
        // Statement-weighted: 3 hits of 5 consultations = 0.6. An
        // average of per-session ratios would give (0.75 + 0.0) / 2 =
        // 0.375 — the wrong answer for an aggregated report.
        assert_eq!(merged.hit_ratio(), Some(3.0 / 5.0));
        assert_eq!(session_a.hit_ratio(), Some(0.75));
        assert_eq!(session_b.hit_ratio(), Some(0.0));
        // Cache-disabled sessions contribute no consultations and leave
        // the ratio untouched rather than dragging it toward zero.
        let disabled = StageTimings { parse: Duration::from_micros(5), ..StageTimings::default() };
        assert_eq!(disabled.hit_ratio(), None);
        merged.add(&disabled);
        assert_eq!(merged.hit_ratio(), Some(3.0 / 5.0));
    }

    #[test]
    fn function_definition_is_absorbed() {
        let trs = translate("f: {[s] select from trades where Symbol=s}");
        assert!(trs[0].absorbed);
        assert!(trs[0].statements.is_empty());
    }

    #[test]
    fn physical_materialization_emits_create_temp() {
        let mdi = mdi();
        let mut scopes = Scopes::new();
        let mut seq = 0;
        let translator = Translator {
            policy: MaterializationPolicy::Physical,
            ..Translator::new()
        };
        let trs = translator
            .translate_program(
                "dt: select Price from trades where Symbol=`GOOG; select max Price from dt",
                &mdi,
                &mut scopes,
                &mut seq,
            )
            .unwrap();
        assert_eq!(trs.len(), 2);
        // Statement 1: the assignment materializes as CREATE TEMP.
        assert_eq!(trs[0].statements.len(), 1);
        let ddl = &trs[0].statements[0];
        assert!(ddl.sql.starts_with("CREATE TEMPORARY TABLE \"HQ_TEMP_1\""), "{}", ddl.sql);
        assert!(!ddl.returns_rows);
        // Statement 2: the aggregation reads the temp table — the paper's
        // §4.3 generated-SQL example.
        let q = &trs[1].statements[0];
        assert!(q.sql.contains("\"HQ_TEMP_1\""), "{}", q.sql);
        assert!(q.sql.contains("max("), "{}", q.sql);
    }

    #[test]
    fn transformation_report_counts_fired_rules() {
        let t = &translate("select Price from trades where Symbol=`GOOG")[0];
        assert!(t.xform_report.null_rewrites >= 1);
        // No filter: the Symbol column is never needed and gets pruned
        // from the scan.
        let t = &translate("select Price from trades")[0];
        assert!(t.xform_report.columns_pruned >= 1, "unused Symbol pruned from scan");
    }

    #[test]
    fn scalar_statement_translates_to_select_expr() {
        let t = &translate("1+2")[0];
        assert_eq!(t.statements[0].sql, "SELECT 3");
        assert_eq!(t.statements[0].shape, Some(ResultShape::Atom));
    }

    #[test]
    fn aj_translation_end_to_end_shape() {
        let mdi = StaticMdi::new()
            .with(TableMeta::new(
                "trades",
                vec![
                    ColumnDef::not_null(ORD_COL, SqlType::Int8),
                    ColumnDef::new("Symbol", SqlType::Varchar),
                    ColumnDef::new("Time", SqlType::Time),
                    ColumnDef::new("Price", SqlType::Float8),
                ],
            ))
            .with(TableMeta::new(
                "quotes",
                vec![
                    ColumnDef::not_null(ORD_COL, SqlType::Int8),
                    ColumnDef::new("Symbol", SqlType::Varchar),
                    ColumnDef::new("Time", SqlType::Time),
                    ColumnDef::new("Bid", SqlType::Float8),
                ],
            ));
        let mut scopes = Scopes::new();
        let mut seq = 0;
        let trs = Translator::new()
            .translate_program("aj[`Symbol`Time; trades; quotes]", &mdi, &mut scopes, &mut seq)
            .unwrap();
        let sql = &trs[0].statements[0].sql;
        assert!(sql.contains("LEFT OUTER JOIN"), "{sql}");
        assert!(sql.contains("lead("), "{sql}");
        assert!(sql.contains("PARTITION BY"), "{sql}");
    }

    #[test]
    fn undefined_table_fails_cleanly() {
        let mdi = mdi();
        let mut scopes = Scopes::new();
        let mut seq = 0;
        let err = Translator::new()
            .translate_program("select from ghost", &mdi, &mut scopes, &mut seq)
            .unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }
}
