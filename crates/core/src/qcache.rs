//! Keyed translation cache: memoize full translations of repeated Q text.
//!
//! Q applications (paper §2.1) send the same statement shapes over and
//! over — a dashboard refreshing `select last Price by Symbol from
//! trades` pays the parse → algebrize → optimize → serialize pipeline
//! on every refresh even though nothing about the translation changed.
//! This cache short-circuits that: a bounded LRU keyed by the
//! whitespace-normalized Q text plus two version counters,
//!
//! * `scope_epoch` — bumped whenever the session's variable-scope
//!   hierarchy may have changed (assignments, function definitions,
//!   session end). Translations bake in variable bindings, so any
//!   scope mutation invalidates everything.
//! * `catalog_epoch` — bumped on DDL (temp-table materialization,
//!   external `invalidate_metadata`). Translations bake in column
//!   lists from the MDI, so catalog changes invalidate too.
//!
//! Only *pure* translations are cacheable: every statement must return
//! rows (no `CREATE TEMPORARY TABLE` side effects) and none may have
//! been absorbed into session state. Everything else both bypasses the
//! cache and bumps `scope_epoch`/`catalog_epoch`, because it mutated
//! the state translations depend on.

use crate::translate::Translation;
use std::collections::HashMap;

/// Cache key: normalized Q text + the state versions the translation
/// was produced under. Epoch mismatches can never hit because lookups
/// always use the current epochs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Whitespace-normalized Q program text.
    pub text: String,
    /// Variable-scope version at translation time.
    pub scope_epoch: u64,
    /// Catalog/metadata version at translation time.
    pub catalog_epoch: u64,
}

/// Hit/miss/invalidation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that ran the full translation pipeline.
    pub misses: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Times the whole cache was invalidated by an epoch bump.
    pub invalidations: u64,
}

struct Entry {
    translations: Vec<Translation>,
    last_used: u64,
}

/// Bounded LRU over [`Translation`] vectors (one per Q program).
pub struct TranslationCache {
    capacity: usize,
    entries: HashMap<CacheKey, Entry>,
    tick: u64,
    scope_epoch: u64,
    catalog_epoch: u64,
    stats: CacheStats,
}

impl TranslationCache {
    /// A cache holding at most `capacity` programs. Zero disables
    /// caching entirely (every lookup misses without counting).
    pub fn new(capacity: usize) -> Self {
        TranslationCache {
            capacity,
            entries: HashMap::new(),
            tick: 0,
            scope_epoch: 0,
            catalog_epoch: 0,
            stats: CacheStats::default(),
        }
    }

    /// Is caching enabled?
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Cached programs currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counters since session start (survive invalidations).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Key for `q_text` under the current epochs.
    pub fn key(&self, q_text: &str) -> CacheKey {
        CacheKey {
            text: normalize_q_text(q_text),
            scope_epoch: self.scope_epoch,
            catalog_epoch: self.catalog_epoch,
        }
    }

    /// Look up a translation, refreshing its LRU position.
    pub fn get(&mut self, key: &CacheKey) -> Option<Vec<Translation>> {
        if !self.enabled() {
            return None;
        }
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some(e) => {
                e.last_used = self.tick;
                self.stats.hits += 1;
                Some(e.translations.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert a translation, evicting the least-recently-used entry
    /// when full.
    pub fn put(&mut self, key: CacheKey, translations: Vec<Translation>) {
        if !self.enabled() {
            return;
        }
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.entries.insert(key, Entry { translations, last_used: self.tick });
    }

    /// A scope mutation happened (assignment, function definition,
    /// session end): all cached translations may bake in stale variable
    /// bindings.
    pub fn note_scope_mutation(&mut self) {
        self.scope_epoch += 1;
        self.invalidate();
    }

    /// A catalog mutation happened (DDL, temp-table materialization,
    /// external metadata invalidation).
    pub fn note_catalog_mutation(&mut self) {
        self.catalog_epoch += 1;
        self.invalidate();
    }

    fn invalidate(&mut self) {
        if !self.entries.is_empty() {
            self.stats.invalidations += 1;
        }
        self.entries.clear();
    }
}

/// Collapse runs of spaces and tabs so formatting differences share a
/// cache entry. Newlines are preserved (the Q grammar is
/// newline-sensitive: a newline at top level separates statements) and
/// so is everything inside string literals.
pub fn normalize_q_text(q: &str) -> String {
    let mut out = String::with_capacity(q.len());
    let mut chars = q.chars().peekable();
    let mut in_string = false;
    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            if c == '\\' {
                // Escaped char inside a string: copy it verbatim.
                if let Some(next) = chars.next() {
                    out.push(next);
                }
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            ' ' | '\t' => {
                while matches!(chars.peek(), Some(' ' | '\t')) {
                    chars.next();
                }
                // Trailing blanks before a newline or EOF vanish.
                if !matches!(chars.peek(), Some('\n') | Some('\r') | None) {
                    out.push(' ');
                }
            }
            _ => out.push(c),
        }
    }
    // Leading/trailing blank runs around the whole program.
    out.trim_matches(|c| c == ' ' || c == '\n' || c == '\r').to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::Translation;

    fn tr(tag: &str) -> Vec<Translation> {
        vec![Translation {
            statements: vec![crate::translate::SqlStatement {
                sql: tag.to_string(),
                returns_rows: true,
                shape: None,
            }],
            timings: Default::default(),
            xform_report: Default::default(),
            absorbed: false,
        }]
    }

    #[test]
    fn normalization_collapses_spaces_not_newlines() {
        assert_eq!(normalize_q_text("select  a   from\tt"), "select a from t");
        assert_eq!(normalize_q_text("a: 1\nb: 2"), "a: 1\nb: 2");
        assert_eq!(normalize_q_text("  x + 1  "), "x + 1");
        assert_eq!(normalize_q_text("f \"a  b\""), "f \"a  b\"");
        assert_eq!(normalize_q_text("f \"a\\\"  b\""), "f \"a\\\"  b\"");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = TranslationCache::new(2);
        let (ka, kb, kc) = (c.key("a"), c.key("b"), c.key("c"));
        c.put(ka.clone(), tr("A"));
        c.put(kb.clone(), tr("B"));
        assert!(c.get(&ka).is_some()); // refresh a
        c.put(kc.clone(), tr("C")); // evicts b
        assert!(c.get(&kb).is_none());
        assert!(c.get(&ka).is_some());
        assert!(c.get(&kc).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn epoch_bumps_invalidate() {
        let mut c = TranslationCache::new(8);
        let k = c.key("q");
        c.put(k.clone(), tr("Q"));
        assert!(c.get(&k).is_some());
        c.note_scope_mutation();
        // Old key can't hit (epoch embedded) and a fresh key misses too.
        assert!(c.get(&k).is_none());
        let k2 = c.key("q");
        assert_ne!(k, k2);
        assert!(c.get(&k2).is_none());
        assert_eq!(c.len(), 0);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = TranslationCache::new(0);
        let k = c.key("q");
        c.put(k.clone(), tr("Q"));
        assert!(c.get(&k).is_none());
        assert_eq!(c.stats(), CacheStats { misses: 0, ..Default::default() });
    }
}
