//! Result-set pivoting: row streams → column-oriented Q values.
//!
//! "QIPC forms the result set in a column-oriented fashion and sends it
//! as a single message back to the client" (paper §4.2, Figure 5).
//! Hyper-Q buffers the PG row stream until end-of-content, then pivots:
//! each output column becomes a typed Q vector, the implicit `ordcol` is
//! stripped, and SQL types map back onto Q types (varchar → symbol,
//! microsecond temporals → Q resolutions).

use algebrizer::ResultShape;
use pgdb::{Batch, Cell, ColumnVec, PgType, Rows};
use qlang::value::{Atom, Dict, KeyedTable, Table, Value};
use qlang::{QError, QResult};
use std::sync::Arc;
use xtra::ORD_COL;

/// Columns handed from the columnar executor to Q without element-wise
/// re-materialization: the typed vector's storage is moved (null slots
/// patched to Q sentinels in place). Stays at zero when results arrive
/// over an external row-streaming backend.
fn zero_copy_counter() -> &'static Arc<obs::Counter> {
    static COUNTER: std::sync::OnceLock<Arc<obs::Counter>> = std::sync::OnceLock::new();
    COUNTER.get_or_init(|| obs::global_registry().counter("hyperq_pivot_zero_copy_total"))
}

/// Convert one SQL cell into a Q atom of the column's type.
fn cell_to_atom(cell: &Cell, ty: PgType) -> Atom {
    match cell {
        Cell::Null => match ty {
            PgType::Bool => Atom::Bool(false),
            PgType::Int2 => Atom::Short(i16::MIN),
            PgType::Int4 => Atom::Int(i32::MIN),
            PgType::Int8 => Atom::Long(i64::MIN),
            PgType::Float4 => Atom::Real(f32::NAN),
            PgType::Float8 => Atom::Float(f64::NAN),
            PgType::Varchar | PgType::Text => Atom::Symbol(String::new()),
            PgType::Date => Atom::Date(i32::MIN),
            PgType::Time => Atom::Time(i32::MIN),
            PgType::Timestamp => Atom::Timestamp(i64::MIN),
        },
        Cell::Bool(b) => Atom::Bool(*b),
        Cell::Int(v) => match ty {
            PgType::Int2 => Atom::Short(*v as i16),
            PgType::Int4 => Atom::Int(*v as i32),
            _ => Atom::Long(*v),
        },
        Cell::Float(f) => match ty {
            PgType::Float4 => Atom::Real(*f as f32),
            _ => Atom::Float(*f),
        },
        Cell::Text(s) => Atom::Symbol(s.clone()),
        // SQL dates share the Q epoch (days since 2000-01-01).
        Cell::Date(d) => Atom::Date(*d),
        // µs → ms.
        Cell::Time(us) => Atom::Time((us / 1000) as i32),
        // µs → ns.
        Cell::Timestamp(us) => Atom::Timestamp(us.saturating_mul(1000)),
    }
}

/// The empty Q vector matching a SQL column type (so empty results stay
/// typed, not generic lists).
fn empty_vector(ty: PgType) -> Value {
    match ty {
        PgType::Bool => Value::Bools(vec![]),
        PgType::Int2 => Value::Shorts(vec![]),
        PgType::Int4 => Value::Ints(vec![]),
        PgType::Int8 => Value::Longs(vec![]),
        PgType::Float4 => Value::Reals(vec![]),
        PgType::Float8 => Value::Floats(vec![]),
        PgType::Varchar | PgType::Text => Value::Symbols(vec![]),
        PgType::Date => Value::Dates(vec![]),
        PgType::Time => Value::Times(vec![]),
        PgType::Timestamp => Value::Timestamps(vec![]),
    }
}

/// Pivot one column of the row set into a typed Q vector.
fn pivot_column(rows: &Rows, idx: usize) -> Value {
    let ty = rows.columns[idx].ty;
    if rows.data.is_empty() {
        return empty_vector(ty);
    }
    let atoms: Vec<Value> = rows
        .data
        .iter()
        .map(|r| Value::Atom(cell_to_atom(&r[idx], ty)))
        .collect();
    Value::from_elements(atoms)
}

/// Turn one typed column into the matching Q vector, moving storage
/// where the representations line up. Returns the value and whether the
/// column's backing vector was reused (vs rebuilt element-wise).
///
/// Null slots become the Q sentinels [`cell_to_atom`] uses, patched in
/// place on the moved storage. Width-changing conversions (`int4`,
/// `int2`, `float4`, millisecond times) still rebuild, as does the
/// mixed [`ColumnVec::Cells`] fallback.
fn column_to_value(col: ColumnVec, ty: PgType) -> (Value, bool) {
    if col.is_empty() {
        return (empty_vector(ty), false);
    }
    match (col, ty) {
        (ColumnVec::Bool(mut d, v), PgType::Bool) => {
            for (i, slot) in d.iter_mut().enumerate() {
                if v.is_null(i) {
                    *slot = false;
                }
            }
            (Value::Bools(d), true)
        }
        (ColumnVec::Int(mut d, v), PgType::Int8) => {
            for (i, slot) in d.iter_mut().enumerate() {
                if v.is_null(i) {
                    *slot = i64::MIN;
                }
            }
            (Value::Longs(d), true)
        }
        (ColumnVec::Int(d, v), PgType::Int4) => {
            let out = d
                .iter()
                .enumerate()
                .map(|(i, x)| if v.is_null(i) { i32::MIN } else { *x as i32 })
                .collect();
            (Value::Ints(out), false)
        }
        (ColumnVec::Int(d, v), PgType::Int2) => {
            let out = d
                .iter()
                .enumerate()
                .map(|(i, x)| if v.is_null(i) { i16::MIN } else { *x as i16 })
                .collect();
            (Value::Shorts(out), false)
        }
        (ColumnVec::Float(mut d, v), PgType::Float8) => {
            for (i, slot) in d.iter_mut().enumerate() {
                if v.is_null(i) {
                    *slot = f64::NAN;
                }
            }
            (Value::Floats(d), true)
        }
        (ColumnVec::Float(d, v), PgType::Float4) => {
            let out = d
                .iter()
                .enumerate()
                .map(|(i, x)| if v.is_null(i) { f32::NAN } else { *x as f32 })
                .collect();
            (Value::Reals(out), false)
        }
        (ColumnVec::Text(mut d, v), PgType::Varchar | PgType::Text) => {
            for (i, slot) in d.iter_mut().enumerate() {
                if v.is_null(i) {
                    *slot = String::new();
                }
            }
            (Value::Symbols(d), true)
        }
        (ColumnVec::Date(mut d, v), PgType::Date) => {
            for (i, slot) in d.iter_mut().enumerate() {
                if v.is_null(i) {
                    *slot = i32::MIN;
                }
            }
            (Value::Dates(d), true)
        }
        // µs → ms (and i64 → i32): width changes, so rebuild.
        (ColumnVec::Time(d, v), PgType::Time) => {
            let out = d
                .iter()
                .enumerate()
                .map(|(i, us)| if v.is_null(i) { i32::MIN } else { (us / 1000) as i32 })
                .collect();
            (Value::Times(out), false)
        }
        // µs → ns in place on the moved storage.
        (ColumnVec::Timestamp(mut d, v), PgType::Timestamp) => {
            for (i, x) in d.iter_mut().enumerate() {
                *x = if v.is_null(i) { i64::MIN } else { x.saturating_mul(1000) };
            }
            (Value::Timestamps(d), true)
        }
        (col, ty) => {
            let atoms: Vec<Value> = (0..col.len())
                .map(|i| Value::Atom(cell_to_atom(&col.cell_at(i), ty)))
                .collect();
            (Value::from_elements(atoms), false)
        }
    }
}

/// Pivot a columnar result into a Q table, stripping the implicit order
/// column. Where column representations line up this moves storage
/// instead of copying (counted by `hyperq_pivot_zero_copy_total`).
pub fn batch_to_table(mut batch: Batch) -> QResult<Table> {
    let schema = std::mem::take(&mut batch.schema);
    let columns = std::mem::take(&mut batch.columns);
    let mut t = Table::default();
    for (col, vec) in schema.into_iter().zip(columns) {
        if col.name == ORD_COL {
            continue;
        }
        let (v, moved) = column_to_value(vec, col.ty);
        if moved {
            zero_copy_counter().inc();
        }
        t.push_column(col.name, v)?;
    }
    Ok(t)
}

/// Pivot a full row set into a Q table, stripping the implicit order
/// column.
pub fn rows_to_table(rows: &Rows) -> QResult<Table> {
    let mut t = Table::default();
    for (i, col) in rows.columns.iter().enumerate() {
        if col.name == ORD_COL {
            continue;
        }
        t.push_column(col.name.clone(), pivot_column(rows, i))?;
    }
    Ok(t)
}

/// Pivot a row set into the Q value shape the application expects.
pub fn pivot(rows: &Rows, shape: ResultShape) -> QResult<Value> {
    shape_value(rows_to_table(rows)?, shape)
}

/// Streaming pivot accumulator (DESIGN §12): drains a batch stream
/// chunk-at-a-time, converting each chunk's columns into Q vectors and
/// appending them — so peak resident *columnar* state is one chunk plus
/// the growing Q vectors, never a second full materialized result.
pub struct StreamPivot {
    names: Vec<String>,
    types: Vec<PgType>,
    acc: Vec<Option<Value>>,
    rows: u64,
}

impl StreamPivot {
    /// An accumulator for a stream with the given schema.
    pub fn new(schema: &[pgdb::Column]) -> Self {
        StreamPivot {
            names: schema.iter().map(|c| c.name.clone()).collect(),
            types: schema.iter().map(|c| c.ty).collect(),
            acc: schema.iter().map(|_| None).collect(),
            rows: 0,
        }
    }

    /// Rows pivoted so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Pivot one chunk and append its columns to the accumulators.
    pub fn push(&mut self, mut batch: Batch) {
        self.rows += batch.rows() as u64;
        let columns = std::mem::take(&mut batch.columns);
        for ((vec, ty), slot) in columns.into_iter().zip(&self.types).zip(&mut self.acc) {
            let (v, moved) = column_to_value(vec, *ty);
            if moved {
                zero_copy_counter().inc();
            }
            match slot {
                None => *slot = Some(v),
                Some(acc) => append_value(acc, v),
            }
        }
    }

    /// Shape the accumulated table as the translation promised. An empty
    /// stream yields typed empty vectors from the schema alone.
    pub fn finish(self, shape: ResultShape) -> QResult<Value> {
        let mut t = Table::default();
        for ((name, ty), slot) in self.names.into_iter().zip(self.types).zip(self.acc) {
            if name == ORD_COL {
                continue;
            }
            t.push_column(name, slot.unwrap_or_else(|| empty_vector(ty)))?;
        }
        shape_value(t, shape)
    }
}

/// Append chunk vector `next` onto accumulated vector `acc`.
/// Same-variant chunks extend in place (the common case — chunks of one
/// stream share a schema); a representation mismatch re-atomizes both
/// sides and rebuilds with [`Value::from_elements`], which is exactly
/// what a whole-result pivot of the concatenated cells would produce.
fn append_value(acc: &mut Value, next: Value) {
    match (&mut *acc, next) {
        (Value::Bools(a), Value::Bools(b)) => a.extend(b),
        (Value::Shorts(a), Value::Shorts(b)) => a.extend(b),
        (Value::Ints(a), Value::Ints(b)) => a.extend(b),
        (Value::Longs(a), Value::Longs(b)) => a.extend(b),
        (Value::Reals(a), Value::Reals(b)) => a.extend(b),
        (Value::Floats(a), Value::Floats(b)) => a.extend(b),
        (Value::Symbols(a), Value::Symbols(b)) => a.extend(b),
        (Value::Dates(a), Value::Dates(b)) => a.extend(b),
        (Value::Times(a), Value::Times(b)) => a.extend(b),
        (Value::Timestamps(a), Value::Timestamps(b)) => a.extend(b),
        (Value::Mixed(a), Value::Mixed(b)) => a.extend(b),
        (a, b) => {
            let an = a.len().unwrap_or(1);
            let bn = b.len().unwrap_or(1);
            let mut elems: Vec<Value> = Vec::with_capacity(an + bn);
            for i in 0..an {
                elems.push(a.index(i).unwrap_or_else(|| a.null_element()));
            }
            for i in 0..bn {
                elems.push(b.index(i).unwrap_or_else(|| b.null_element()));
            }
            *a = Value::from_elements(elems);
        }
    }
}

/// Pivot a columnar result into the Q value shape the application
/// expects: the batch counterpart of [`pivot`], used for the in-process
/// backend where no row stream ever exists (DESIGN §10).
pub fn pivot_batch(batch: Batch, shape: ResultShape) -> QResult<Value> {
    shape_value(batch_to_table(batch)?, shape)
}

/// Reshape the pivoted table into the Q value the translation promised.
fn shape_value(full: Table, shape: ResultShape) -> QResult<Value> {
    match shape {
        ResultShape::Table => Ok(Value::Table(Box::new(full))),
        ResultShape::KeyedTable { key_cols } => {
            if key_cols > full.width() {
                return Err(QError::length("keyed result has fewer columns than keys"));
            }
            let key = Table {
                names: full.names[..key_cols].to_vec(),
                columns: full.columns[..key_cols].to_vec(),
            };
            let value = Table {
                names: full.names[key_cols..].to_vec(),
                columns: full.columns[key_cols..].to_vec(),
            };
            Ok(Value::KeyedTable(Box::new(KeyedTable { key, value })))
        }
        ResultShape::Column => {
            let t = full;
            t.columns
                .into_iter()
                .next()
                .ok_or_else(|| QError::length("exec result has no columns"))
        }
        ResultShape::Dict => {
            let t = full;
            Ok(Value::Dict(Box::new(Dict::new(
                Value::Symbols(t.names),
                Value::Mixed(t.columns),
            )?)))
        }
        ResultShape::GroupDict => {
            // `exec agg by g`: first column keys, second column values.
            let t = full;
            let mut cols = t.columns.into_iter();
            let keys = cols
                .next()
                .ok_or_else(|| QError::length("grouped exec result has no key column"))?;
            let values = cols
                .next()
                .ok_or_else(|| QError::length("grouped exec result has no value column"))?;
            Ok(Value::Dict(Box::new(Dict::new(keys, values)?)))
        }
        ResultShape::Atom => {
            let t = full;
            let col = t
                .columns
                .into_iter()
                .next()
                .ok_or_else(|| QError::length("scalar result has no columns"))?;
            Ok(col.index(0).unwrap_or_else(|| col.null_element()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgdb::Column;

    fn sample_rows() -> Rows {
        Rows {
            columns: vec![
                Column::new(ORD_COL, PgType::Int8),
                Column::new("Symbol", PgType::Varchar),
                Column::new("Price", PgType::Float8),
            ],
            data: vec![
                vec![Cell::Int(1), Cell::Text("GOOG".into()), Cell::Float(100.0)],
                vec![Cell::Int(2), Cell::Text("IBM".into()), Cell::Null],
            ],
        }
    }

    #[test]
    fn pivots_rows_to_columns_and_strips_ordcol() {
        let v = pivot(&sample_rows(), ResultShape::Table).unwrap();
        match v {
            Value::Table(t) => {
                assert_eq!(t.names, vec!["Symbol".to_string(), "Price".into()]);
                assert!(t
                    .column("Symbol")
                    .unwrap()
                    .q_eq(&Value::Symbols(vec!["GOOG".into(), "IBM".into()])));
                // SQL NULL became the Q float null.
                match t.column("Price").unwrap() {
                    Value::Floats(v) => {
                        assert_eq!(v[0], 100.0);
                        assert!(v[1].is_nan());
                    }
                    other => panic!("expected floats, got {other:?}"),
                }
            }
            other => panic!("expected table, got {other:?}"),
        }
    }

    #[test]
    fn column_shape_yields_vector() {
        let rows = Rows {
            columns: vec![Column::new("Price", PgType::Float8)],
            data: vec![vec![Cell::Float(1.0)], vec![Cell::Float(2.0)]],
        };
        let v = pivot(&rows, ResultShape::Column).unwrap();
        assert!(v.q_eq(&Value::Floats(vec![1.0, 2.0])));
    }

    #[test]
    fn atom_shape_yields_scalar() {
        let rows = Rows {
            columns: vec![Column::new("mx", PgType::Float8)],
            data: vec![vec![Cell::Float(101.5)]],
        };
        let v = pivot(&rows, ResultShape::Atom).unwrap();
        assert!(v.q_eq(&Value::float(101.5)));
    }

    #[test]
    fn keyed_table_shape_splits_columns() {
        let rows = Rows {
            columns: vec![
                Column::new("Symbol", PgType::Varchar),
                Column::new("mx", PgType::Float8),
            ],
            data: vec![vec![Cell::Text("GOOG".into()), Cell::Float(101.5)]],
        };
        let v = pivot(&rows, ResultShape::KeyedTable { key_cols: 1 }).unwrap();
        match v {
            Value::KeyedTable(k) => {
                assert_eq!(k.key.names, vec!["Symbol".to_string()]);
                assert_eq!(k.value.names, vec!["mx".to_string()]);
            }
            other => panic!("expected keyed table, got {other:?}"),
        }
    }

    #[test]
    fn dict_shape() {
        let rows = Rows {
            columns: vec![
                Column::new("a", PgType::Int8),
                Column::new("b", PgType::Int8),
            ],
            data: vec![vec![Cell::Int(1), Cell::Int(2)]],
        };
        let v = pivot(&rows, ResultShape::Dict).unwrap();
        match v {
            Value::Dict(d) => {
                assert!(d.get(&Value::symbol("a")).q_eq(&Value::Longs(vec![1])));
            }
            other => panic!("expected dict, got {other:?}"),
        }
    }

    #[test]
    fn group_dict_shape_keys_by_first_column() {
        let rows = Rows {
            columns: vec![
                Column::new("Symbol", PgType::Varchar),
                Column::new("mx", PgType::Float8),
            ],
            data: vec![
                vec![Cell::Text("GOOG".into()), Cell::Float(101.5)],
                vec![Cell::Text("IBM".into()), Cell::Float(50.0)],
            ],
        };
        let v = pivot(&rows, ResultShape::GroupDict).unwrap();
        match v {
            Value::Dict(d) => {
                assert!(d.keys.q_eq(&Value::Symbols(vec!["GOOG".into(), "IBM".into()])));
                assert!(d.get(&Value::symbol("IBM")).q_eq(&Value::float(50.0)));
            }
            other => panic!("expected dict, got {other:?}"),
        }
    }

    #[test]
    fn temporal_resolution_restored() {
        let rows = Rows {
            columns: vec![
                Column::new("d", PgType::Date),
                Column::new("t", PgType::Time),
                Column::new("ts", PgType::Timestamp),
            ],
            data: vec![vec![
                Cell::Date(6021),
                Cell::Time(34_200_000_000),
                Cell::Timestamp(1_000),
            ]],
        };
        let t = rows_to_table(&rows).unwrap();
        assert!(t.column("d").unwrap().q_eq(&Value::Dates(vec![6021])));
        // µs → ms.
        assert!(t.column("t").unwrap().q_eq(&Value::Times(vec![34_200_000])));
        // µs → ns.
        assert!(t.column("ts").unwrap().q_eq(&Value::Timestamps(vec![1_000_000])));
    }

    #[test]
    fn int_widths_map_to_q_types() {
        let rows = Rows {
            columns: vec![
                Column::new("a", PgType::Int2),
                Column::new("b", PgType::Int4),
                Column::new("c", PgType::Int8),
            ],
            data: vec![vec![Cell::Int(1), Cell::Int(2), Cell::Int(3)]],
        };
        let t = rows_to_table(&rows).unwrap();
        assert!(matches!(t.column("a").unwrap(), Value::Shorts(_)));
        assert!(matches!(t.column("b").unwrap(), Value::Ints(_)));
        assert!(matches!(t.column("c").unwrap(), Value::Longs(_)));
    }

    #[test]
    fn empty_result_pivots_to_empty_table() {
        let rows = Rows {
            columns: vec![Column::new("x", PgType::Int8)],
            data: vec![],
        };
        let v = pivot(&rows, ResultShape::Table).unwrap();
        match v {
            Value::Table(t) => assert_eq!(t.rows(), 0),
            other => panic!("expected table, got {other:?}"),
        }
        // Atom over empty rows yields the typed null.
        let rows = Rows {
            columns: vec![Column::new("x", PgType::Int8)],
            data: vec![],
        };
        let v = pivot(&rows, ResultShape::Atom).unwrap();
        assert!(matches!(v, Value::Atom(a) if a.is_null()));
    }
}
