//! The Gateway plugin: a PG v3 wire client (paper §3.1).
//!
//! "The Gateway component packs a SQL query into a PG formatted message
//! and transmits it to PG database for processing." This backend
//! implementation talks to any PG v3 server — our `pgdb` TCP server in
//! tests, a real PostgreSQL/Greenplum in a deployment. Note the paper's
//! rationale for not using ODBC/JDBC: processing network traffic natively
//! is key for throughput.

use crate::backend::Backend;
use bytes::BytesMut;
use pgdb::{Cell, Column, DbError, PgType, QueryResult, Rows};
use pgwire::codec::{encode_frontend, MessageReader};
use pgwire::messages::{AuthRequest, BackendMessage, FrontendMessage, TypeOid};
use std::io::{Read, Write};
use std::net::TcpStream;

/// Map a wire type OID onto the engine type model.
fn oid_to_pg_type(oid: TypeOid) -> PgType {
    match oid {
        TypeOid::Bool => PgType::Bool,
        TypeOid::Int2 => PgType::Int2,
        TypeOid::Int4 => PgType::Int4,
        TypeOid::Int8 => PgType::Int8,
        TypeOid::Float4 => PgType::Float4,
        TypeOid::Float8 => PgType::Float8,
        TypeOid::Varchar => PgType::Varchar,
        TypeOid::Text | TypeOid::Bytea => PgType::Text,
        TypeOid::Date => PgType::Date,
        TypeOid::Time => PgType::Time,
        TypeOid::Timestamp => PgType::Timestamp,
    }
}

/// Credentials for the backend connection.
#[derive(Debug, Clone, Default)]
pub struct Credentials {
    /// User name.
    pub user: String,
    /// Password (used when the server requests one).
    pub password: String,
    /// Database name.
    pub database: String,
}

/// A PG v3 client connection implementing [`Backend`].
pub struct PgWireBackend {
    stream: TcpStream,
    reader: MessageReader,
    addr: String,
}

impl PgWireBackend {
    /// Connect, authenticate and wait for `ReadyForQuery`.
    pub fn connect(addr: &str, creds: &Credentials) -> Result<Self, DbError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| DbError::exec(format!("cannot connect to {addr}: {e}")))?;
        let mut client = PgWireBackend {
            stream,
            reader: MessageReader::new(false),
            addr: addr.to_string(),
        };
        client.send(&FrontendMessage::Startup {
            params: vec![
                ("user".to_string(), creds.user.clone()),
                ("database".to_string(), creds.database.clone()),
            ],
        })?;
        // Authentication loop, then drain to ReadyForQuery.
        loop {
            match client.recv()? {
                BackendMessage::Authentication(AuthRequest::Ok) => break,
                BackendMessage::Authentication(AuthRequest::CleartextPassword) => {
                    client.send(&FrontendMessage::Password(creds.password.clone()))?;
                }
                BackendMessage::Authentication(AuthRequest::Md5Password { salt }) => {
                    let hashed = pgwire::md5_password(&creds.user, &creds.password, salt);
                    client.send(&FrontendMessage::Password(hashed))?;
                }
                BackendMessage::ErrorResponse { code, message, .. } => {
                    return Err(DbError { code, message });
                }
                _ => {}
            }
        }
        loop {
            match client.recv()? {
                BackendMessage::ReadyForQuery(_) => break,
                BackendMessage::ErrorResponse { code, message, .. } => {
                    return Err(DbError { code, message });
                }
                _ => {}
            }
        }
        Ok(client)
    }

    fn send(&mut self, msg: &FrontendMessage) -> Result<(), DbError> {
        let mut buf = BytesMut::new();
        encode_frontend(msg, &mut buf);
        self.stream
            .write_all(&buf)
            .map_err(|e| DbError::exec(format!("write to backend failed: {e}")))
    }

    fn recv(&mut self) -> Result<BackendMessage, DbError> {
        let mut chunk = [0u8; 8192];
        loop {
            if let Some(m) = self.reader.next_backend() {
                return Ok(m);
            }
            let n = self
                .stream
                .read(&mut chunk)
                .map_err(|e| DbError::exec(format!("read from backend failed: {e}")))?;
            if n == 0 {
                return Err(DbError::exec("backend closed the connection"));
            }
            self.reader.feed(&chunk[..n]);
        }
    }
}

impl Backend for PgWireBackend {
    fn execute_sql(&mut self, sql: &str) -> Result<QueryResult, DbError> {
        self.send(&FrontendMessage::Query(sql.to_string()))?;
        let mut columns: Vec<Column> = Vec::new();
        let mut data: Vec<Vec<Cell>> = Vec::new();
        let mut tag: Option<String> = None;
        let mut error: Option<DbError> = None;
        let mut saw_rows = false;
        loop {
            match self.recv()? {
                BackendMessage::RowDescription(fields) => {
                    saw_rows = true;
                    columns = fields
                        .into_iter()
                        .map(|f| Column::new(f.name, oid_to_pg_type(f.type_oid)))
                        .collect();
                }
                BackendMessage::DataRow(cells) => {
                    let row = cells
                        .iter()
                        .enumerate()
                        .map(|(i, c)| match c {
                            None => Cell::Null,
                            Some(text) => {
                                let ty = columns.get(i).map(|c| c.ty).unwrap_or(PgType::Text);
                                Cell::from_wire_text(text, ty).unwrap_or(Cell::Null)
                            }
                        })
                        .collect();
                    data.push(row);
                }
                BackendMessage::CommandComplete(t) => tag = Some(t),
                BackendMessage::ErrorResponse { code, message, .. } => {
                    error = Some(DbError { code, message });
                }
                BackendMessage::ReadyForQuery(_) => break,
                _ => {}
            }
        }
        if let Some(e) = error {
            return Err(e);
        }
        if saw_rows {
            Ok(QueryResult::Rows(Rows { columns, data }))
        } else {
            Ok(QueryResult::Command(tag.unwrap_or_default()))
        }
    }

    fn describe(&self) -> String {
        format!("pg-wire backend at {}", self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgdb::server::{AuthMode, PgServer, ServerConfig};
    use std::collections::HashMap;

    #[test]
    fn wire_backend_executes_queries_end_to_end() {
        let db = pgdb::Db::new();
        let server = PgServer::start(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let creds = Credentials {
            user: "trader".into(),
            password: String::new(),
            database: "hist".into(),
        };
        let mut backend = PgWireBackend::connect(&server.addr.to_string(), &creds).unwrap();
        backend.execute_sql("CREATE TABLE t (x bigint, s varchar)").unwrap();
        backend.execute_sql("INSERT INTO t VALUES (1, 'a'), (2, NULL)").unwrap();
        match backend.execute_sql("SELECT x, s FROM t ORDER BY x ASC").unwrap() {
            QueryResult::Rows(rows) => {
                assert_eq!(rows.columns[0].ty, PgType::Int8);
                assert_eq!(rows.data[0], vec![Cell::Int(1), Cell::Text("a".into())]);
                assert_eq!(rows.data[1], vec![Cell::Int(2), Cell::Null]);
            }
            other => panic!("expected rows, got {other:?}"),
        }
        server.detach();
    }

    #[test]
    fn wire_backend_md5_authentication() {
        let db = pgdb::Db::new();
        let mut creds_map = HashMap::new();
        creds_map.insert("trader".to_string(), "s3cret".to_string());
        let server = PgServer::start(
            db,
            "127.0.0.1:0",
            ServerConfig { auth: AuthMode::Md5(creds_map) },
        )
        .unwrap();
        let good = Credentials {
            user: "trader".into(),
            password: "s3cret".into(),
            database: "hist".into(),
        };
        assert!(PgWireBackend::connect(&server.addr.to_string(), &good).is_ok());
        let bad = Credentials { password: "nope".into(), ..good };
        assert!(PgWireBackend::connect(&server.addr.to_string(), &bad).is_err());
        server.detach();
    }

    #[test]
    fn wire_backend_surfaces_sql_errors() {
        let db = pgdb::Db::new();
        let server = PgServer::start(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let creds = Credentials { user: "x".into(), ..Default::default() };
        let mut backend = PgWireBackend::connect(&server.addr.to_string(), &creds).unwrap();
        let err = backend.execute_sql("SELECT * FROM ghost").unwrap_err();
        assert_eq!(err.code, "42P01");
        // Connection remains usable after an error.
        assert!(backend.execute_sql("SELECT 1").is_ok());
        server.detach();
    }

    #[test]
    fn temporal_values_round_trip_over_the_wire() {
        let db = pgdb::Db::new();
        let server = PgServer::start(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let creds = Credentials { user: "x".into(), ..Default::default() };
        let mut backend = PgWireBackend::connect(&server.addr.to_string(), &creds).unwrap();
        backend.execute_sql("CREATE TABLE t (d date, ts timestamp)").unwrap();
        backend
            .execute_sql("INSERT INTO t VALUES ('2016-06-26', '2016-06-26 09:30:00.000001')")
            .unwrap();
        match backend.execute_sql("SELECT d, ts FROM t").unwrap() {
            QueryResult::Rows(rows) => {
                assert_eq!(rows.data[0][0], Cell::Date(6021));
                assert_eq!(
                    rows.data[0][1],
                    Cell::Timestamp(6021 * 86_400_000_000 + 9 * 3_600_000_000 + 30 * 60_000_000 + 1)
                );
            }
            other => panic!("expected rows, got {other:?}"),
        }
        server.detach();
    }
}
