//! The Gateway plugin: a PG v3 wire client (paper §3.1).
//!
//! "The Gateway component packs a SQL query into a PG formatted message
//! and transmits it to PG database for processing." This backend
//! implementation talks to any PG v3 server — our `pgdb` TCP server in
//! tests, a real PostgreSQL/Greenplum in a deployment. Note the paper's
//! rationale for not using ODBC/JDBC: processing network traffic natively
//! is key for throughput.
//!
//! ## Fault tolerance
//!
//! The Gateway is the wire leg most likely to fail in production — the
//! backend restarts, a switch drops the flow, a query stalls. Three
//! mechanisms (see `DESIGN.md`, "Fault tolerance") keep a backend
//! hiccup from killing the Q application's session:
//!
//! * [`WireTimeouts`] deadlines on connect/read/write, so a hung
//!   backend surfaces as a typed timeout instead of blocking forever;
//! * a [`RetryPolicy`]-driven reconnect loop that re-authenticates,
//!   replays the session-establishment **DDL journal** (the
//!   `CREATE TEMPORARY TABLE` statements materializing Q variables,
//!   §4.3 — temp tables die with the backend connection, so they must
//!   be rebuilt), and re-runs the in-flight statement *if it is
//!   idempotent*;
//! * a typed [`WireError`] taxonomy for everything that cannot be
//!   retried: non-idempotent statements, protocol violations, expired
//!   deadlines and exhausted retry budgets.

use crate::backend::Backend;
use crate::wire::{RetryPolicy, WireError, WireErrorKind, WireTimeouts};
use bytes::BytesMut;
use pgdb::{Cell, Column, DbError, PgType, QueryResult, Rows};
use pgwire::codec::{encode_frontend, MessageReader};
use pgwire::messages::{AuthRequest, BackendMessage, FrontendMessage, TypeOid};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{Arc, OnceLock};

/// Wire-path fault-tolerance counters, aggregated process-wide across
/// every gateway connection.
struct WireMetrics {
    reconnects: Arc<obs::Counter>,
    retries: Arc<obs::Counter>,
    /// Mid-flight connection losses under a non-idempotent statement
    /// where the backend is durable: the replay is skipped (not
    /// refused fatally) because a committed mutation survived on disk.
    replay_skipped_durable: Arc<obs::Counter>,
}

fn wire_metrics() -> &'static WireMetrics {
    static METRICS: OnceLock<WireMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = obs::global_registry();
        WireMetrics {
            reconnects: reg.counter("wire_reconnects_total"),
            retries: reg.counter("wire_retries_total"),
            replay_skipped_durable: reg.counter("wire_replay_skipped_durable_total"),
        }
    })
}

/// Map a wire type OID onto the engine type model.
fn oid_to_pg_type(oid: TypeOid) -> PgType {
    match oid {
        TypeOid::Bool => PgType::Bool,
        TypeOid::Int2 => PgType::Int2,
        TypeOid::Int4 => PgType::Int4,
        TypeOid::Int8 => PgType::Int8,
        TypeOid::Float4 => PgType::Float4,
        TypeOid::Float8 => PgType::Float8,
        TypeOid::Varchar => PgType::Varchar,
        TypeOid::Text | TypeOid::Bytea => PgType::Text,
        TypeOid::Date => PgType::Date,
        TypeOid::Time => PgType::Time,
        TypeOid::Timestamp => PgType::Timestamp,
    }
}

/// Credentials for the backend connection.
#[derive(Debug, Clone, Default)]
pub struct Credentials {
    /// User name.
    pub user: String,
    /// Password (used when the server requests one).
    pub password: String,
    /// Database name.
    pub database: String,
}

/// How a statement behaves when its connection dies mid-flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StatementClass {
    /// Row-returning and side-effect-free: safe to re-run on a fresh
    /// connection.
    Read,
    /// Session-establishment DDL (temp-table materialization of Q
    /// variables): journaled, and safe to re-run because the temp
    /// table died with the old connection.
    SessionDdl,
    /// Anything that mutates durable state: re-running could apply the
    /// mutation twice, so a mid-flight connection loss is fatal.
    Mutation,
}

impl StatementClass {
    pub(crate) fn of(sql: &str) -> StatementClass {
        let head: String = sql
            .trim_start()
            .chars()
            .take(32)
            .collect::<String>()
            .to_ascii_uppercase();
        if head.starts_with("SELECT")
            || head.starts_with("VALUES")
            || head.starts_with("SHOW")
            || head.starts_with("EXPLAIN")
            || head.starts_with("WITH")
        {
            StatementClass::Read
        } else if head.starts_with("CREATE TEMPORARY TABLE")
            || head.starts_with("CREATE TEMP TABLE")
        {
            StatementClass::SessionDdl
        } else {
            StatementClass::Mutation
        }
    }

    /// Safe to re-run after a reconnect?
    pub(crate) fn replayable(self) -> bool {
        !matches!(self, StatementClass::Mutation)
    }
}

/// First few words of a statement, for error messages.
pub(crate) fn summarize(sql: &str) -> String {
    let mut s: String = sql.trim().chars().take(48).collect();
    if s.len() < sql.trim().len() {
        s.push('…');
    }
    s
}

/// A PG v3 client connection implementing [`Backend`], with deadlines
/// and transparent reconnect.
pub struct PgWireBackend {
    stream: TcpStream,
    reader: MessageReader,
    addr: String,
    creds: Credentials,
    timeouts: WireTimeouts,
    retry: RetryPolicy,
    /// Session-establishment DDL journal: every successfully executed
    /// temp-table materialization, in order. Replayed after a
    /// reconnect to rebuild the backend session's state.
    journal: Vec<String>,
    /// Number of reconnects performed over the life of this backend
    /// (diagnostics; the chaos tests assert on it).
    reconnects: u64,
    /// Did the server advertise crash durability (`hyperq_durability`
    /// parameter status) during session establishment? Decides how a
    /// mid-flight connection loss under a mutation is handled.
    durable: bool,
}

impl PgWireBackend {
    /// Connect, authenticate and wait for `ReadyForQuery`, using the
    /// default deadlines and retry policy.
    pub fn connect(addr: &str, creds: &Credentials) -> Result<Self, WireError> {
        Self::connect_with(addr, creds, WireTimeouts::default(), RetryPolicy::default())
    }

    /// Connect with explicit deadlines and retry policy.
    pub fn connect_with(
        addr: &str,
        creds: &Credentials,
        timeouts: WireTimeouts,
        retry: RetryPolicy,
    ) -> Result<Self, WireError> {
        let (stream, reader, durable) = Self::open_stream(addr, creds, &timeouts)?;
        Ok(PgWireBackend {
            stream,
            reader,
            addr: addr.to_string(),
            creds: creds.clone(),
            timeouts,
            retry,
            journal: Vec::new(),
            reconnects: 0,
            durable,
        })
    }

    /// The session-establishment DDL journal (diagnostics/tests).
    pub fn journal(&self) -> &[String] {
        &self.journal
    }

    /// How many times this backend has transparently reconnected.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Establish one authenticated connection: TCP connect under the
    /// connect deadline, the start-up/authentication exchange, then
    /// drain to `ReadyForQuery`. The returned flag is whether the
    /// server advertised crash durability (`hyperq_durability`
    /// parameter status) along the way.
    fn open_stream(
        addr: &str,
        creds: &Credentials,
        timeouts: &WireTimeouts,
    ) -> Result<(TcpStream, MessageReader, bool), WireError> {
        let stream = match timeouts.connect {
            Some(deadline) => {
                let sock = addr
                    .to_socket_addrs()
                    .map_err(|e| WireError::connect(format!("cannot resolve {addr}: {e}")))?
                    .next()
                    .ok_or_else(|| WireError::connect(format!("{addr} resolves to nothing")))?;
                TcpStream::connect_timeout(&sock, deadline)
            }
            None => TcpStream::connect(addr),
        }
        .map_err(|e| WireError::connect(format!("cannot connect to {addr}: {e}")))?;
        timeouts
            .apply(&stream)
            .map_err(|e| WireError::connect(format!("cannot arm deadlines on {addr}: {e}")))?;

        let mut stream = stream;
        let mut reader = MessageReader::new(false);
        send_on(&mut stream, &FrontendMessage::Startup {
            params: vec![
                ("user".to_string(), creds.user.clone()),
                ("database".to_string(), creds.database.clone()),
            ],
        })?;
        // Authentication loop, then drain to ReadyForQuery, noting the
        // durability advertisement if the server sends one.
        let mut durable = false;
        loop {
            match recv_on(&mut stream, &mut reader)? {
                BackendMessage::Authentication(AuthRequest::Ok) => break,
                BackendMessage::Authentication(AuthRequest::CleartextPassword) => {
                    send_on(&mut stream, &FrontendMessage::Password(creds.password.clone()))?;
                }
                BackendMessage::Authentication(AuthRequest::Md5Password { salt }) => {
                    let hashed = pgwire::md5_password(&creds.user, &creds.password, salt);
                    send_on(&mut stream, &FrontendMessage::Password(hashed))?;
                }
                BackendMessage::ParameterStatus { name, value } if name == "hyperq_durability" => {
                    durable = value == "on";
                }
                BackendMessage::ErrorResponse { code, message, .. } => {
                    return Err(connect_rejection(code, message));
                }
                _ => {}
            }
        }
        loop {
            match recv_on(&mut stream, &mut reader)? {
                BackendMessage::ReadyForQuery(_) => break,
                BackendMessage::ParameterStatus { name, value } if name == "hyperq_durability" => {
                    durable = value == "on";
                }
                BackendMessage::ErrorResponse { code, message, .. } => {
                    return Err(connect_rejection(code, message));
                }
                _ => {}
            }
        }
        Ok((stream, reader, durable))
    }

    /// Tear down the current connection, establish a fresh one and
    /// replay the session-establishment journal on it.
    fn reconnect(&mut self) -> Result<(), WireError> {
        let (stream, reader, durable) = Self::open_stream(&self.addr, &self.creds, &self.timeouts)?;
        self.stream = stream;
        self.reader = reader;
        self.durable = durable;
        self.reconnects += 1;
        wire_metrics().reconnects.inc();
        // Replay the journal; temp tables are session-scoped on the
        // backend, so the fresh session starts empty and every entry
        // re-applies cleanly.
        let journal = std::mem::take(&mut self.journal);
        for sql in &journal {
            let result = self.run_statement(sql);
            if let Err(e) = result {
                // Put the journal back: a retryable failure will come
                // around for another reconnect attempt.
                self.journal = journal;
                return Err(e);
            }
        }
        self.journal = journal;
        Ok(())
    }

    /// Replace the TCP connection with a brand-new authenticated one
    /// and forget this connection's own journal. On the backend a fresh
    /// TCP connection is a fresh session — temp tables from the old one
    /// are gone — which is exactly what the pool wants when handing a
    /// previously tainted connection to a different gateway session.
    /// Not counted as a reconnect (it is hygiene, not fault recovery).
    pub(crate) fn reset_connection(&mut self) -> Result<(), WireError> {
        let (stream, reader, durable) = Self::open_stream(&self.addr, &self.creds, &self.timeouts)?;
        self.stream = stream;
        self.reader = reader;
        self.durable = durable;
        self.journal.clear();
        Ok(())
    }

    /// Health check under an explicit deadline: `SELECT 1` must answer
    /// within `deadline` or the connection is presumed bad. The normal
    /// read deadline is restored afterwards.
    pub(crate) fn ping(&mut self, deadline: Option<std::time::Duration>) -> Result<(), WireError> {
        if deadline.is_some() {
            let _ = self.stream.set_read_timeout(deadline);
        }
        let result = self.run_statement("SELECT 1").map(|_| ());
        if deadline.is_some() {
            let _ = self.stream.set_read_timeout(self.timeouts.read);
        }
        result
    }

    fn send(&mut self, msg: &FrontendMessage) -> Result<(), WireError> {
        send_on(&mut self.stream, msg)
    }

    fn recv(&mut self) -> Result<BackendMessage, WireError> {
        recv_on(&mut self.stream, &mut self.reader)
    }

    /// Run one statement on the *current* connection: no retry, no
    /// journaling. The response stream is always drained to
    /// `ReadyForQuery` (when the connection survives), so a decode
    /// error poisons the result, not the connection. The backend pool
    /// drives pooled connections through this directly — journaling and
    /// retry live per *session* there, not per connection.
    pub(crate) fn run_statement(&mut self, sql: &str) -> Result<QueryResult, WireError> {
        self.send(&FrontendMessage::Query(sql.to_string()))?;
        let mut columns: Vec<Column> = Vec::new();
        let mut data: Vec<Vec<Cell>> = Vec::new();
        let mut tag: Option<String> = None;
        let mut error: Option<WireError> = None;
        let mut saw_rows = false;
        loop {
            match self.recv()? {
                BackendMessage::RowDescription(fields) => {
                    saw_rows = true;
                    columns = fields
                        .into_iter()
                        .map(|f| Column::new(f.name, oid_to_pg_type(f.type_oid)))
                        .collect();
                }
                BackendMessage::DataRow(cells) => {
                    if error.is_some() {
                        continue; // already poisoned; keep draining
                    }
                    let mut row = Vec::with_capacity(cells.len());
                    for (i, c) in cells.iter().enumerate() {
                        match c {
                            None => row.push(Cell::Null),
                            Some(text) => {
                                let ty = columns.get(i).map(|c| c.ty).unwrap_or(PgType::Text);
                                match Cell::from_wire_text(text, ty) {
                                    Some(cell) => row.push(cell),
                                    None => {
                                        // Do NOT smuggle a Null in: a
                                        // cell that fails to decode is
                                        // a protocol-level error.
                                        error = Some(WireError::protocol(format!(
                                            "cannot decode cell {text:?} as {ty:?} (column {})",
                                            columns
                                                .get(i)
                                                .map(|c| c.name.as_str())
                                                .unwrap_or("?")
                                        )));
                                        break;
                                    }
                                }
                            }
                        }
                    }
                    if error.is_none() {
                        data.push(row);
                    }
                }
                BackendMessage::CommandComplete(t) => tag = Some(t),
                BackendMessage::ErrorResponse { code, message, .. } => {
                    error = Some(WireError::from(DbError { code, message }));
                }
                BackendMessage::ReadyForQuery(_) => break,
                _ => {}
            }
        }
        if let Some(e) = error {
            return Err(e);
        }
        if saw_rows {
            Ok(QueryResult::Rows(Rows { columns, data }))
        } else {
            Ok(QueryResult::Command(tag.unwrap_or_default()))
        }
    }
}

fn send_on(stream: &mut TcpStream, msg: &FrontendMessage) -> Result<(), WireError> {
    let mut buf = BytesMut::new();
    encode_frontend(msg, &mut buf);
    stream
        .write_all(&buf)
        .map_err(|e| WireError::from_io("write to backend", &e))
}

fn recv_on(stream: &mut TcpStream, reader: &mut MessageReader) -> Result<BackendMessage, WireError> {
    let mut chunk = [0u8; 8192];
    loop {
        match reader.next_backend() {
            Ok(Some(m)) => return Ok(m),
            Ok(None) => {}
            Err(e) => return Err(WireError::protocol(e.to_string())),
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| WireError::from_io("read from backend", &e))?;
        if n == 0 {
            return Err(WireError::lost("backend closed the connection"));
        }
        reader.feed(&chunk[..n]);
    }
}

/// The typed error for a connection lost under a non-idempotent
/// statement. Shared by the per-connection gateway retry loop and the
/// backend pool so both paths surface the *identical* message (the
/// differential suites compare error strings verbatim). Increments the
/// durable-replay-skip counter when `durable` (the caller re-establishes
/// the session separately).
pub(crate) fn non_idempotent_error(sql: &str, durable: bool, e: &WireError) -> WireError {
    if durable {
        // The backend journals every committed mutation to a WAL: if
        // the statement committed before the connection died, its
        // effects survived on disk, so the only ambiguity is *whether*
        // it committed — which a blind replay would not resolve (it
        // could apply the mutation twice). Skip the replay and tell the
        // caller to verify and re-issue.
        wire_metrics().replay_skipped_durable.inc();
        WireError::new(
            WireErrorKind::NonIdempotent,
            format!(
                "connection failed while a non-idempotent statement \
                 ({}) was in flight; replay skipped — the backend is \
                 durable, so if the statement committed its effects \
                 are preserved on disk; verify and re-issue: {e}",
                summarize(sql)
            ),
        )
    } else {
        WireError::new(
            WireErrorKind::NonIdempotent,
            format!(
                "connection failed while a non-idempotent statement \
                 ({}) was in flight; not retrying — the backend is not \
                 durable, so a committed result may already be lost and \
                 a replay could apply the mutation twice (enable \
                 durability on the backend with HQ_DATA_DIR to preserve \
                 committed effects across crashes): {e}",
                summarize(sql)
            ),
        )
    }
}

/// Classify an `ErrorResponse` received during session establishment.
fn connect_rejection(code: String, message: String) -> WireError {
    if code == "53300" {
        WireError::rejected(message)
    } else {
        WireError::from(DbError { code, message })
    }
}

impl Backend for PgWireBackend {
    fn execute_sql(&mut self, sql: &str) -> Result<QueryResult, WireError> {
        let class = StatementClass::of(sql);
        let mut attempt: u32 = 1;
        loop {
            let mut failure = match self.run_statement(sql) {
                Ok(result) => {
                    if class == StatementClass::SessionDdl {
                        self.journal.push(sql.to_string());
                    }
                    return Ok(result);
                }
                Err(e) if e.retryable() => {
                    if !class.replayable() {
                        let err = non_idempotent_error(sql, self.durable, &e);
                        if self.durable {
                            // Re-establish the session so it stays
                            // usable for the verify-and-re-issue.
                            let _ = self.reconnect();
                        }
                        return Err(err);
                    }
                    e
                }
                Err(e) => return Err(e),
            };
            // Reconnect-and-retry loop: each failed reconnect also
            // burns an attempt, so a dead backend cannot stall us in
            // here forever.
            loop {
                if attempt >= self.retry.max_attempts {
                    return Err(WireError::new(
                        WireErrorKind::RetriesExhausted,
                        format!(
                            "{} of {} attempts failed for ({}); last failure: {failure}",
                            attempt,
                            self.retry.max_attempts,
                            summarize(sql)
                        ),
                    ));
                }
                wire_metrics().retries.inc();
                std::thread::sleep(self.retry.backoff(attempt));
                attempt += 1;
                match self.reconnect() {
                    Ok(()) => break,
                    Err(e) if e.retryable() => failure = e,
                    Err(e) => return Err(e),
                }
            }
        }
    }

    fn describe(&self) -> String {
        format!("pg-wire backend at {}", self.addr)
    }

    fn reconnects(&self) -> u64 {
        self.reconnects
    }

    fn durable(&self) -> bool {
        self.durable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgdb::server::{AuthMode, PgServer, ServerConfig};
    use pgwire::codec::encode_backend;
    use pgwire::messages::{FieldDesc, TransactionStatus};
    use std::collections::HashMap;
    use std::net::TcpListener;

    #[test]
    fn statement_classification() {
        assert_eq!(StatementClass::of("SELECT 1"), StatementClass::Read);
        assert_eq!(StatementClass::of("  with x as (select 1) select * from x"), StatementClass::Read);
        assert_eq!(
            StatementClass::of("CREATE TEMPORARY TABLE \"HQ_TEMP_1\" AS SELECT 1"),
            StatementClass::SessionDdl
        );
        assert_eq!(StatementClass::of("INSERT INTO t VALUES (1)"), StatementClass::Mutation);
        assert_eq!(StatementClass::of("CREATE TABLE t (x bigint)"), StatementClass::Mutation);
        assert_eq!(StatementClass::of("DELETE FROM t"), StatementClass::Mutation);
    }

    #[test]
    fn wire_backend_executes_queries_end_to_end() {
        let db = pgdb::Db::new();
        let server = PgServer::start(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let creds = Credentials {
            user: "trader".into(),
            password: String::new(),
            database: "hist".into(),
        };
        let mut backend = PgWireBackend::connect(&server.addr.to_string(), &creds).unwrap();
        backend.execute_sql("CREATE TABLE t (x bigint, s varchar)").unwrap();
        backend.execute_sql("INSERT INTO t VALUES (1, 'a'), (2, NULL)").unwrap();
        match backend.execute_sql("SELECT x, s FROM t ORDER BY x ASC").unwrap() {
            QueryResult::Rows(rows) => {
                assert_eq!(rows.columns[0].ty, PgType::Int8);
                assert_eq!(rows.data[0], vec![Cell::Int(1), Cell::Text("a".into())]);
                assert_eq!(rows.data[1], vec![Cell::Int(2), Cell::Null]);
            }
            other => panic!("expected rows, got {other:?}"),
        }
        server.detach();
    }

    #[test]
    fn wire_backend_md5_authentication() {
        let db = pgdb::Db::new();
        let mut creds_map = HashMap::new();
        creds_map.insert("trader".to_string(), "s3cret".to_string());
        let server = PgServer::start(
            db,
            "127.0.0.1:0",
            ServerConfig { auth: AuthMode::Md5(creds_map), ..ServerConfig::default() },
        )
        .unwrap();
        let good = Credentials {
            user: "trader".into(),
            password: "s3cret".into(),
            database: "hist".into(),
        };
        assert!(PgWireBackend::connect(&server.addr.to_string(), &good).is_ok());
        let bad = Credentials { password: "nope".into(), ..good };
        assert!(PgWireBackend::connect(&server.addr.to_string(), &bad).is_err());
        server.detach();
    }

    #[test]
    fn wire_backend_surfaces_sql_errors() {
        let db = pgdb::Db::new();
        let server = PgServer::start(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let creds = Credentials { user: "x".into(), ..Default::default() };
        let mut backend = PgWireBackend::connect(&server.addr.to_string(), &creds).unwrap();
        let err = backend.execute_sql("SELECT * FROM ghost").unwrap_err();
        assert_eq!(err.kind, WireErrorKind::Db);
        assert_eq!(err.db.as_ref().unwrap().code, "42P01");
        // Connection remains usable after an error.
        assert!(backend.execute_sql("SELECT 1").is_ok());
        server.detach();
    }

    #[test]
    fn temporal_values_round_trip_over_the_wire() {
        let db = pgdb::Db::new();
        let server = PgServer::start(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let creds = Credentials { user: "x".into(), ..Default::default() };
        let mut backend = PgWireBackend::connect(&server.addr.to_string(), &creds).unwrap();
        backend.execute_sql("CREATE TABLE t (d date, ts timestamp)").unwrap();
        backend
            .execute_sql("INSERT INTO t VALUES ('2016-06-26', '2016-06-26 09:30:00.000001')")
            .unwrap();
        match backend.execute_sql("SELECT d, ts FROM t").unwrap() {
            QueryResult::Rows(rows) => {
                assert_eq!(rows.data[0][0], Cell::Date(6021));
                assert_eq!(
                    rows.data[0][1],
                    Cell::Timestamp(6021 * 86_400_000_000 + 9 * 3_600_000_000 + 30 * 60_000_000 + 1)
                );
            }
            other => panic!("expected rows, got {other:?}"),
        }
        server.detach();
    }

    /// A hand-rolled fake PG server speaking just enough of the
    /// protocol to misbehave on demand.
    fn fake_server_once(
        responses: impl FnOnce(&mut TcpStream) + Send + 'static,
    ) -> std::net::SocketAddr {
        fake_server(false, responses)
    }

    /// Like [`fake_server_once`], but advertising crash durability
    /// during session establishment.
    fn fake_durable_server_once(
        responses: impl FnOnce(&mut TcpStream) + Send + 'static,
    ) -> std::net::SocketAddr {
        fake_server(true, responses)
    }

    fn fake_server(
        durable: bool,
        responses: impl FnOnce(&mut TcpStream) + Send + 'static,
    ) -> std::net::SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            // Swallow the startup packet.
            let mut buf = [0u8; 4096];
            let _ = stream.read(&mut buf).unwrap();
            // Auth OK (+ durability advertisement) + ReadyForQuery.
            let mut out = BytesMut::new();
            encode_backend(&BackendMessage::Authentication(AuthRequest::Ok), &mut out);
            if durable {
                encode_backend(
                    &BackendMessage::ParameterStatus {
                        name: "hyperq_durability".into(),
                        value: "on".into(),
                    },
                    &mut out,
                );
            }
            encode_backend(
                &BackendMessage::ReadyForQuery(TransactionStatus::Idle),
                &mut out,
            );
            stream.write_all(&out).unwrap();
            responses(&mut stream);
        });
        addr
    }

    #[test]
    fn undecodable_cell_text_is_a_protocol_error_not_a_silent_null() {
        // Regression: unparseable cell text used to become Cell::Null
        // via unwrap_or — silent data corruption.
        let addr = fake_server_once(|stream| {
            // Wait for the query, then answer with a bigint column whose
            // cell text is not a number.
            let mut buf = [0u8; 4096];
            let _ = stream.read(&mut buf).unwrap();
            let mut out = BytesMut::new();
            encode_backend(
                &BackendMessage::RowDescription(vec![FieldDesc {
                    name: "x".into(),
                    type_oid: TypeOid::Int8,
                }]),
                &mut out,
            );
            encode_backend(&BackendMessage::DataRow(vec![Some("notanumber".into())]), &mut out);
            encode_backend(&BackendMessage::CommandComplete("SELECT 1".into()), &mut out);
            encode_backend(&BackendMessage::ReadyForQuery(TransactionStatus::Idle), &mut out);
            stream.write_all(&out).unwrap();
            // Keep the connection open until the client is done.
            let _ = stream.read(&mut buf);
        });
        let creds = Credentials { user: "x".into(), ..Default::default() };
        let mut backend = PgWireBackend::connect_with(
            &addr.to_string(),
            &creds,
            WireTimeouts::default(),
            RetryPolicy::no_retry(),
        )
        .unwrap();
        let err = backend.execute_sql("SELECT x FROM t").unwrap_err();
        assert_eq!(err.kind, WireErrorKind::Protocol, "{err}");
        assert!(err.message.contains("notanumber"), "{err}");
    }

    #[test]
    fn session_ddl_is_journaled_and_reads_are_not() {
        let db = pgdb::Db::new();
        let server = PgServer::start(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let creds = Credentials { user: "x".into(), ..Default::default() };
        let mut backend = PgWireBackend::connect(&server.addr.to_string(), &creds).unwrap();
        backend.execute_sql("CREATE TABLE base (x bigint)").unwrap();
        backend.execute_sql("INSERT INTO base VALUES (1)").unwrap();
        backend
            .execute_sql("CREATE TEMPORARY TABLE \"HQ_TEMP_1\" AS SELECT x FROM base")
            .unwrap();
        backend.execute_sql("SELECT x FROM \"HQ_TEMP_1\"").unwrap();
        assert_eq!(backend.journal().len(), 1);
        assert!(backend.journal()[0].starts_with("CREATE TEMPORARY TABLE"));
        server.detach();
    }

    #[test]
    fn read_deadline_trips_on_a_silent_backend() {
        // A server that accepts, authenticates, then never answers the
        // query.
        let addr = fake_server_once(|stream| {
            let mut buf = [0u8; 4096];
            let _ = stream.read(&mut buf).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(500));
        });
        let creds = Credentials { user: "x".into(), ..Default::default() };
        let timeouts = WireTimeouts {
            read: Some(std::time::Duration::from_millis(50)),
            ..WireTimeouts::default()
        };
        let mut backend =
            PgWireBackend::connect_with(&addr.to_string(), &creds, timeouts, RetryPolicy::no_retry())
                .unwrap();
        let err = backend.execute_sql("SELECT 1").unwrap_err();
        assert_eq!(err.kind, WireErrorKind::Timeout, "{err}");
    }

    #[test]
    fn corrupt_length_prefix_from_backend_is_a_protocol_error() {
        let addr = fake_server_once(|stream| {
            let mut buf = [0u8; 4096];
            let _ = stream.read(&mut buf).unwrap();
            // A 'T' frame declaring 512 MiB.
            let mut evil = vec![b'T'];
            evil.extend_from_slice(&(512 * 1024 * 1024i32).to_be_bytes());
            stream.write_all(&evil).unwrap();
            let _ = stream.read(&mut buf);
        });
        let creds = Credentials { user: "x".into(), ..Default::default() };
        let mut backend = PgWireBackend::connect_with(
            &addr.to_string(),
            &creds,
            WireTimeouts::default(),
            RetryPolicy::no_retry(),
        )
        .unwrap();
        let err = backend.execute_sql("SELECT 1").unwrap_err();
        assert_eq!(err.kind, WireErrorKind::Protocol, "{err}");
    }

    #[test]
    fn connection_refused_is_a_typed_connect_failure() {
        // Grab a port that nothing is listening on.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let creds = Credentials { user: "x".into(), ..Default::default() };
        let timeouts = WireTimeouts {
            connect: Some(std::time::Duration::from_millis(250)),
            ..WireTimeouts::default()
        };
        let t0 = std::time::Instant::now();
        let Err(err) = PgWireBackend::connect_with(
            &addr.to_string(),
            &creds,
            timeouts,
            RetryPolicy::no_retry(),
        ) else {
            panic!("connect to a dead port succeeded");
        };
        assert_eq!(err.kind, WireErrorKind::ConnectFailed, "{err}");
        assert!(t0.elapsed() < std::time::Duration::from_secs(5));
    }

    #[test]
    fn durability_advertisement_is_parsed_from_parameter_status() {
        // A non-durable pgdb server advertises "off" → false.
        let db = pgdb::Db::new();
        let server = PgServer::start(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let creds = Credentials { user: "x".into(), ..Default::default() };
        let backend = PgWireBackend::connect(&server.addr.to_string(), &creds).unwrap();
        assert!(!Backend::durable(&backend));
        server.detach();

        // A fake server advertising "on" → true.
        let addr = fake_durable_server_once(|stream| {
            let mut buf = [0u8; 4096];
            let _ = stream.read(&mut buf);
        });
        let backend = PgWireBackend::connect_with(
            &addr.to_string(),
            &creds,
            WireTimeouts::default(),
            RetryPolicy::no_retry(),
        )
        .unwrap();
        assert!(Backend::durable(&backend));
    }

    #[test]
    fn durable_server_advertises_on_over_the_wire() {
        let dir = std::env::temp_dir().join(format!("hq-gw-dur-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let db = pgdb::Db::open(&pgdb::DurabilityOptions::new(&dir)).unwrap();
        let server = PgServer::start(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let creds = Credentials { user: "x".into(), ..Default::default() };
        let backend = PgWireBackend::connect(&server.addr.to_string(), &creds).unwrap();
        assert!(Backend::durable(&backend));
        server.detach();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_idempotent_loss_on_durable_backend_is_a_replay_skip() {
        // The server advertises durability, then dies mid-mutation.
        let addr = fake_durable_server_once(|stream| {
            let mut buf = [0u8; 4096];
            let _ = stream.read(&mut buf).unwrap(); // the INSERT
            // Drop the connection without answering.
        });
        let creds = Credentials { user: "x".into(), ..Default::default() };
        let mut backend = PgWireBackend::connect_with(
            &addr.to_string(),
            &creds,
            WireTimeouts::default(),
            RetryPolicy::no_retry(),
        )
        .unwrap();
        let before = wire_metrics().replay_skipped_durable.get();
        let err = backend.execute_sql("INSERT INTO t VALUES (1)").unwrap_err();
        assert_eq!(err.kind, WireErrorKind::NonIdempotent, "{err}");
        assert!(err.message.contains("replay skipped"), "{err}");
        assert!(err.message.contains("preserved on disk"), "{err}");
        assert_eq!(wire_metrics().replay_skipped_durable.get(), before + 1);
    }

    #[test]
    fn non_idempotent_loss_on_volatile_backend_points_at_durability() {
        let addr = fake_server_once(|stream| {
            let mut buf = [0u8; 4096];
            let _ = stream.read(&mut buf).unwrap();
        });
        let creds = Credentials { user: "x".into(), ..Default::default() };
        let mut backend = PgWireBackend::connect_with(
            &addr.to_string(),
            &creds,
            WireTimeouts::default(),
            RetryPolicy::no_retry(),
        )
        .unwrap();
        let err = backend.execute_sql("INSERT INTO t VALUES (1)").unwrap_err();
        assert_eq!(err.kind, WireErrorKind::NonIdempotent, "{err}");
        assert!(err.message.contains("not durable"), "{err}");
        assert!(err.message.contains("HQ_DATA_DIR"), "{err}");
    }
}
