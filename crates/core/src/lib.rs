//! # hyperq — the Adaptive Data Virtualization platform
//!
//! This crate assembles the full Hyper-Q pipeline of the paper: a Q
//! application connects over QIPC, its queries are parsed, algebrized
//! into XTRA, transformed, serialized to PG SQL, executed on a
//! PG-compatible backend, and the row-oriented results are pivoted back
//! into column-oriented QIPC messages — all transparently to the
//! application (paper Figure 1).
//!
//! Components, mapped to the paper's architecture:
//!
//! * [`translate`] — the Query Translator: drives Algebrizer → Xformer →
//!   Serializer with per-stage timing instrumentation (the measurements
//!   behind Figures 6 and 7).
//! * [`backend`] — the backend abstraction: in-process `pgdb` or a remote
//!   PG v3 server over TCP.
//! * [`gateway`] — the PG-specific Gateway plugin: a PG v3 wire client
//!   (start-up, clear-text/MD5 authentication, simple query).
//! * [`mdi_backend`] — the PG MetaData Interface: binds names by querying
//!   `information_schema.columns` on the backend (§3.2.3), always wrapped
//!   in the configurable metadata cache.
//! * [`pivot`] — result-set pivoting: buffering the PG row stream and
//!   re-assembling it into Q's column-oriented values (§4.2, Figure 5).
//! * [`session`] — a Hyper-Q session: variable scopes, eager
//!   materialization of Q variables (§4.3), statement execution.
//! * [`qcache`] — the keyed translation cache: repeated Q statements
//!   skip the translation pipeline entirely until a scope or catalog
//!   mutation invalidates them.
//! * [`xc`] — the Cross Compiler's Protocol/Query Translator finite state
//!   machines (§3.4).
//! * [`endpoint`] — the kdb+-specific Endpoint plugin: a QIPC TCP server
//!   that Q applications connect to unchanged (§3.1).
//! * [`wire`] — wire-path resilience: the typed [`wire::WireError`]
//!   taxonomy, [`wire::WireTimeouts`] deadlines on both TCP legs and the
//!   deterministic [`wire::RetryPolicy`] driving Gateway reconnects.
//! * [`loader`] — schema mapping and data movement helpers (the part the
//!   paper's customers found easy; we provide it for the examples).
//! * [`side_by_side`] — the §5 side-by-side testing framework: runs the
//!   same Q on the reference engine and through Hyper-Q and diffs.
//!
//! Observability: every stage boundary above is instrumented through the
//! zero-dependency `obs` crate. [`session::HyperQSession::execute_observed`]
//! returns a per-query span tree ([`obs::QueryTrace`]); counters and
//! latency histograms aggregate in [`obs::global_registry`] (dumped via
//! the pgdb server's `\metrics` admin query or the QIPC endpoint's
//! `\metrics` system command); queries slower than
//! [`session::SessionConfig::slow_query`] land in [`obs::global_slowlog`]
//! (the endpoint's `\slowlog` command).
//!
//! # Example
//!
//! ```
//! use hyperq::{loader, HyperQSession};
//! use qlang::value::{Table, Value};
//!
//! let db = pgdb::Db::new();
//! let mut session = HyperQSession::with_direct(&db);
//!
//! let trades = Table::new(
//!     vec!["Symbol".into(), "Price".into()],
//!     vec![
//!         Value::Symbols(vec!["GOOG".into(), "IBM".into()]),
//!         Value::Floats(vec![100.0, 50.0]),
//!     ],
//! ).unwrap();
//! loader::load_table(&mut session, "trades", &trades).unwrap();
//!
//! // Q in, Q values out; PostgreSQL-compatible SQL in between.
//! let v = session.execute("select Price from trades where Symbol=`GOOG").unwrap();
//! match v {
//!     qlang::Value::Table(t) => {
//!         assert!(t.column("Price").unwrap().q_eq(&Value::Floats(vec![100.0])));
//!     }
//!     other => panic!("expected table, got {other:?}"),
//! }
//! ```

pub mod backend;
pub mod batch;
pub mod endpoint;
pub mod gateway;
pub mod loader;
pub mod mdi_backend;
pub mod pivot;
pub mod pool;
pub mod qcache;
pub mod session;
pub mod shard;
pub mod side_by_side;
pub mod translate;
pub mod wire;
pub mod xc;

pub use backend::{share, Backend, DirectBackend, SharedBackend};
pub use batch::{BatchDriver, BatchReport, DivergenceKind, Outcome, StatementOutcome};
pub use obs::{QueryTrace, Span, SpanEvent, Stage};
pub use pool::{BackendPool, PoolConfig, PooledBackend};
pub use qcache::{CacheStats, TranslationCache};
pub use session::{HyperQSession, SessionConfig};
pub use shard::{env_shards, ShardCluster, ShardOpts, ShardRouter};
pub use translate::{StageTimings, Translation, TranslationStats, Translator};
pub use wire::{RetryPolicy, ShardFailure, WireError, WireErrorKind, WireTimeouts};
