//! A Hyper-Q session: the query life cycle of paper Figure 1.
//!
//! Each connected Q application gets a session holding its variable-scope
//! hierarchy, its temp-table sequence, the metadata cache and a backend
//! connection. `execute` drives: parse → algebrize → transform →
//! serialize → run on backend → pivot results back into Q values —
//! including the eager materialization of variable assignments (§4.3).

use crate::backend::{share, DirectBackend, SharedBackend};
use crate::mdi_backend::BackendMdi;
use crate::pivot::{pivot, pivot_batch, StreamPivot};
use crate::qcache::{CacheStats, TranslationCache};
use crate::translate::{StageTimings, Translation, TranslationStats, Translator};
use crate::wire::{RetryPolicy, WireError, WireTimeouts};
use algebrizer::{CachingMdi, MaterializationPolicy, Scopes};
use obs::{QueryTrace, SlowQueryRecord, Span, SpanEvent, Stage};
use pgdb::{BatchQueryResult, QueryResult, StreamQueryResult};
use qlang::{QError, QResult, Value};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xformer::XformConfig;

/// Session configuration.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Materialization policy for Q variable assignments.
    pub policy: MaterializationPolicy,
    /// Transformation configuration.
    pub xform: XformConfig,
    /// Metadata cache TTL. The paper's experiments run with caching
    /// enabled; set to `Duration::ZERO` to disable (Ablation A).
    pub metadata_cache_ttl: Duration,
    /// Translation cache capacity, in distinct Q programs. Repeated
    /// statements skip the parse → algebrize → optimize → serialize
    /// pipeline entirely; 0 disables the cache.
    pub translation_cache: usize,
    /// Connect/read/write deadlines for both TCP legs: the client-facing
    /// Endpoint leg and the backend-facing Gateway leg.
    pub wire: WireTimeouts,
    /// Reconnect policy for the Gateway's backend leg.
    pub retry: RetryPolicy,
    /// Queries slower than this land in the process-wide slow-query log
    /// with their Q text, generated SQL and per-stage timings
    /// (README knob `obs.slow_query_ms`). `Duration::ZERO` disables the
    /// log for this session.
    pub slow_query: Duration,
    /// Executor worker-pool width for the in-process backend: `0`
    /// defers to `HQ_EXEC_THREADS` / available parallelism, `1` forces
    /// the serial path, `n > 1` caps the morsel pool at `n` workers
    /// (README knob `HQ_EXEC_THREADS`, DESIGN §12). Remote backends
    /// ignore it.
    pub exec_threads: usize,
    /// Durability for the in-process backend: `Some` recovers the
    /// catalog from the data directory on open and WAL-logs every
    /// committed mutation (README knobs `HQ_DATA_DIR`, `HQ_FSYNC`,
    /// `HQ_CHECKPOINT_EVERY`; DESIGN §13). `None` keeps the pure
    /// in-memory engine. Only honoured where this config *opens* the
    /// database ([`SessionConfig::open_db`]); remote backends manage
    /// their own durability and advertise it over the wire.
    pub durability: Option<pgdb::DurabilityOptions>,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            policy: MaterializationPolicy::Logical,
            xform: XformConfig::default(),
            metadata_cache_ttl: Duration::from_secs(300),
            translation_cache: 256,
            wire: WireTimeouts::default(),
            retry: RetryPolicy::default(),
            slow_query: Duration::from_millis(250),
            exec_threads: 0,
            durability: None,
        }
    }
}

impl SessionConfig {
    /// Environment-driven defaults: everything from `Default`, plus
    /// durability per `HQ_DATA_DIR` / `HQ_FSYNC` / `HQ_CHECKPOINT_EVERY`.
    pub fn from_env() -> Self {
        SessionConfig {
            durability: pgdb::DurabilityOptions::from_env(),
            ..SessionConfig::default()
        }
    }

    /// Open the in-process database this configuration describes:
    /// durable (with recovery) when `durability` is set, plain
    /// in-memory otherwise.
    pub fn open_db(&self) -> Result<pgdb::Db, pgdb::DbError> {
        match &self.durability {
            Some(opts) => pgdb::Db::open(opts),
            None => Ok(pgdb::Db::new()),
        }
    }
}

/// Pre-resolved handles into the global metrics registry: resolved once
/// per session, so recording on the query hot path is pure atomics.
struct SessionMetrics {
    queries: Arc<obs::Counter>,
    query_errors: Arc<obs::Counter>,
    query_seconds: Arc<obs::Histogram>,
    stage_seconds: [Arc<obs::Histogram>; 6],
    cache_hits: Arc<obs::Counter>,
    cache_misses: Arc<obs::Counter>,
    statements: Arc<obs::Counter>,
    rows: Arc<obs::Counter>,
    slow_queries: Arc<obs::Counter>,
}

impl SessionMetrics {
    fn resolve() -> Self {
        let reg = obs::global_registry();
        SessionMetrics {
            queries: reg.counter("hyperq_queries_total"),
            query_errors: reg.counter("hyperq_query_errors_total"),
            query_seconds: reg.histogram("hyperq_query_seconds"),
            stage_seconds: Stage::ALL.map(|s| {
                reg.histogram(&format!("hyperq_stage_seconds{{stage=\"{}\"}}", s.name()))
            }),
            cache_hits: reg.counter("hyperq_translation_cache_hits_total"),
            cache_misses: reg.counter("hyperq_translation_cache_misses_total"),
            statements: reg.counter("hyperq_statements_total"),
            rows: reg.counter("hyperq_rows_total"),
            slow_queries: reg.counter("hyperq_slow_queries_total"),
        }
    }

    fn stage(&self, stage: Stage) -> &obs::Histogram {
        &self.stage_seconds[stage.index()]
    }
}

/// One statement's result in whichever representation the backend
/// produced: a chunk stream or full batch from the in-process engine,
/// rows off the wire.
enum StmtResult {
    Stream(StreamQueryResult),
    Batch(BatchQueryResult),
    Rows(QueryResult),
}

/// A live Hyper-Q session.
pub struct HyperQSession {
    backend: SharedBackend,
    mdi: CachingMdi<BackendMdi>,
    scopes: Scopes,
    temp_seq: usize,
    translator: Translator,
    qcache: TranslationCache,
    metrics: SessionMetrics,
    slow_query: Duration,
    last_trace: Option<QueryTrace>,
    /// Accumulated translation statistics (drives the Figure 6/7
    /// harnesses).
    pub stats: TranslationStats,
}

impl HyperQSession {
    /// Open a session over a shared backend.
    pub fn new(backend: SharedBackend, config: SessionConfig) -> Self {
        if let Ok(mut be) = backend.lock() {
            be.set_exec_threads(match config.exec_threads {
                0 => None,
                n => Some(n),
            });
        }
        let mdi = CachingMdi::new(BackendMdi::new(backend.clone()), config.metadata_cache_ttl);
        HyperQSession {
            backend,
            mdi,
            scopes: Scopes::new(),
            temp_seq: 0,
            translator: Translator {
                xformer: xformer::Xformer::with_config(config.xform),
                policy: config.policy,
            },
            qcache: TranslationCache::new(config.translation_cache),
            metrics: SessionMetrics::resolve(),
            slow_query: config.slow_query,
            last_trace: None,
            stats: TranslationStats::default(),
        }
    }

    /// Convenience: session over an in-process `pgdb` database.
    pub fn with_direct(db: &pgdb::Db) -> Self {
        Self::new(share(DirectBackend::new(db)), SessionConfig::default())
    }

    /// Convenience: in-process session with explicit configuration.
    pub fn with_direct_config(db: &pgdb::Db, config: SessionConfig) -> Self {
        Self::new(share(DirectBackend::new(db)), config)
    }

    /// Borrow the shared backend (e.g. to load data).
    pub fn backend(&self) -> &SharedBackend {
        &self.backend
    }

    /// Explain how the shard layer would route a SQL statement:
    /// executes `EXPLAIN SHARD <sql>` against the backend and returns
    /// the `(kind, reason, detail)` rows. Against an unsharded backend
    /// the statement surfaces the engine's parse error — EXPLAIN SHARD
    /// is a router-level admin query, not SQL.
    pub fn explain_shard(&mut self, sql: &str) -> Result<pgdb::Rows, WireError> {
        let mut be = self.backend.lock().expect("backend lock poisoned");
        match be.execute_sql(&format!("EXPLAIN SHARD {sql}"))? {
            QueryResult::Rows(rows) => Ok(rows),
            QueryResult::Command(t) => {
                Err(WireError::protocol(format!("EXPLAIN SHARD returned a command tag ({t})")))
            }
        }
    }

    /// Metadata cache statistics.
    pub fn cache_stats(&self) -> algebrizer::MdiStats {
        self.mdi.stats()
    }

    /// Invalidate the metadata cache (after external DDL). Also drops
    /// all cached translations — they bake in catalog metadata.
    pub fn invalidate_metadata(&mut self) {
        self.mdi.invalidate_all();
        self.qcache.note_catalog_mutation();
    }

    /// Translation cache statistics.
    pub fn translation_cache_stats(&self) -> CacheStats {
        self.qcache.stats()
    }

    /// Resize the translation cache at runtime (`0` disables it).
    /// Existing entries and statistics are dropped.
    pub fn set_translation_cache(&mut self, capacity: usize) {
        self.qcache = TranslationCache::new(capacity);
    }

    /// Translate `q_text`, consulting the translation cache.
    ///
    /// A program is cached only when every statement is *pure*: not
    /// absorbed into session state and producing only row-returning
    /// SQL. Anything else (assignments, function definitions, eager
    /// `CREATE TEMPORARY TABLE` materializations) mutated scope or
    /// catalog state, so it bumps the corresponding epoch instead —
    /// wiping entries whose translations may now be stale.
    fn translate_cached(&mut self, q_text: &str) -> QResult<Vec<Translation>> {
        if !self.qcache.enabled() {
            return self.translator.translate_program(
                q_text,
                &self.mdi,
                &mut self.scopes,
                &mut self.temp_seq,
            );
        }
        let key = self.qcache.key(q_text);
        if let Some(mut cached) = self.qcache.get(&key) {
            self.metrics.cache_hits.inc();
            for tr in &mut cached {
                tr.timings = StageTimings { cache_hits: 1, ..StageTimings::default() };
            }
            return Ok(cached);
        }
        self.metrics.cache_misses.inc();
        let mut translations = self.translator.translate_program(
            q_text,
            &self.mdi,
            &mut self.scopes,
            &mut self.temp_seq,
        )?;
        for tr in &mut translations {
            tr.timings.cache_misses = 1;
        }
        let pure = translations.iter().all(|tr| {
            !tr.absorbed
                && !tr.statements.is_empty()
                && tr.statements.iter().all(|s| s.returns_rows)
        });
        if pure {
            self.qcache.put(key, translations.clone());
        } else {
            self.qcache.note_scope_mutation();
        }
        Ok(translations)
    }

    /// Execute a Q program; returns the value of the last statement.
    pub fn execute(&mut self, q_text: &str) -> QResult<Value> {
        let (value, _, _) = self.execute_inner(q_text)?;
        Ok(value)
    }

    /// Execute and return the per-statement translations alongside the
    /// final value (for instrumentation).
    pub fn execute_traced(&mut self, q_text: &str) -> QResult<(Value, Vec<Translation>)> {
        let (value, translations, _) = self.execute_inner(q_text)?;
        Ok((value, translations))
    }

    /// Execute and return the structured [`QueryTrace`]: a span per
    /// pipeline stage with durations, row/byte counts and events.
    pub fn execute_observed(&mut self, q_text: &str) -> QResult<(Value, QueryTrace)> {
        let (value, _, trace) = self.execute_inner(q_text)?;
        Ok((value, trace))
    }

    /// The trace of the most recently completed query, if any.
    pub fn last_trace(&self) -> Option<&QueryTrace> {
        self.last_trace.as_ref()
    }

    /// The shared execute path: translate (through the cache), run the
    /// SQL on the backend, pivot rows back to Q values — building the
    /// span tree and recording metrics and the slow-query log as it
    /// goes.
    fn execute_inner(
        &mut self,
        q_text: &str,
    ) -> QResult<(Value, Vec<Translation>, QueryTrace)> {
        let wall = Instant::now();
        self.metrics.queries.inc();
        let mut trace = QueryTrace::begin(q_text);

        let translations = match self.translate_cached(q_text) {
            Ok(t) => t,
            Err(e) => {
                self.metrics.query_errors.inc();
                trace.total = wall.elapsed();
                self.last_trace = Some(trace);
                return Err(e);
            }
        };

        // Translation-stage spans: statement-weighted sums across the
        // program (see `StageTimings::add` for the merge semantics).
        let mut timings = StageTimings::default();
        for tr in &translations {
            timings.add(&tr.timings);
            trace.sql.extend(tr.statements.iter().map(|s| s.sql.clone()));
        }
        trace.cache_hit = timings.cache_hits > 0 && timings.cache_misses == 0;
        let mut parse_span = Span::stage(Stage::Parse, timings.parse);
        if timings.cache_hits > 0 {
            parse_span.events.push(SpanEvent::CacheHit);
        }
        if timings.cache_misses > 0 {
            parse_span.events.push(SpanEvent::CacheMiss);
        }
        trace.spans.push(parse_span);
        trace.spans.push(Span::stage(Stage::Algebrize, timings.algebrize));
        trace.spans.push(Span::stage(Stage::Optimize, timings.optimize));
        trace.spans.push(Span::stage(Stage::Serialize, timings.serialize));

        let mut exec_span = Span::stage(Stage::Execute, Duration::ZERO);
        let mut pivot_dur = Duration::ZERO;
        let mut pivot_rows: u64 = 0;
        let mut last = Value::Nil;
        let mut failed: Option<QError> = None;

        'outer: for tr in &translations {
            self.stats.statements += 1;
            self.stats.timings.add(&tr.timings);
            self.stats.rules.null_rewrites += tr.xform_report.null_rewrites;
            self.stats.rules.columns_pruned += tr.xform_report.columns_pruned;
            self.stats.rules.sorts_elided += tr.xform_report.sorts_elided;
            for stmt in &tr.statements {
                self.metrics.statements.inc();
                let mut child = Span { stage: "statement", bytes: stmt.sql.len() as u64, ..Span::default() };
                let (result, recovered) = {
                    let mut be = self.backend.lock().map_err(|_| {
                        QError::new(qlang::error::QErrorKind::Other, "backend poisoned")
                    })?;
                    let reconnects_before = be.reconnects();
                    let t0 = Instant::now();
                    // Prefer the chunk-streaming path, then whole-batch
                    // columnar; backends that only stream rows (the
                    // PG v3 gateway) answer `None` to both without
                    // executing and we fall back to rows.
                    let result = match be.execute_sql_stream(&stmt.sql) {
                        Ok(Some(r)) => Ok(StmtResult::Stream(r)),
                        Ok(None) => match be.execute_sql_batch(&stmt.sql) {
                            Ok(Some(r)) => Ok(StmtResult::Batch(r)),
                            Ok(None) => be.execute_sql(&stmt.sql).map(StmtResult::Rows),
                            Err(e) => Err(e),
                        },
                        Err(e) => Err(e),
                    };
                    child.duration = t0.elapsed();
                    (result, be.reconnects() - reconnects_before)
                };
                if recovered > 0 {
                    // The wire layer transparently reconnected while
                    // this statement was in flight.
                    child.events.push(SpanEvent::Recovering { reconnects: recovered });
                }
                let result = match result {
                    Ok(r) => r,
                    Err(e) => {
                        // Hyper-Q error messages are deliberately more
                        // verbose than kdb+'s (paper §5). Wire-level
                        // failures keep their taxonomy label so a Q
                        // client can tell a lost backend from a SQL
                        // error.
                        let rendered = match &e.db {
                            Some(db) => format!(
                                "backend error {} while executing {:?}: {}",
                                db.code, stmt.sql, db.message
                            ),
                            None => format!(
                                "wire error ({}) while executing {:?}: {}",
                                e.kind.label(),
                                stmt.sql,
                                e.message
                            ),
                        };
                        exec_span.duration += child.duration;
                        exec_span.children.push(child);
                        failed = Some(QError::new(qlang::error::QErrorKind::Other, rendered));
                        break 'outer;
                    }
                };
                if stmt.returns_rows {
                    let pivoted = match result {
                        StmtResult::Stream(StreamQueryResult::Stream(batches)) => {
                            // Drain chunk-at-a-time into the streaming
                            // pivot: one morsel-sized chunk resident,
                            // never the full columnar result (§12).
                            let t0 = Instant::now();
                            let mut pv = StreamPivot::new(&batches.schema);
                            let mut stream_err = None;
                            for item in batches {
                                match item {
                                    Ok(b) => pv.push(b),
                                    Err(e) => {
                                        stream_err = Some(e);
                                        break;
                                    }
                                }
                            }
                            let n = pv.rows();
                            child.rows = n;
                            exec_span.rows += n;
                            self.metrics.rows.add(n);
                            let pivoted = match stream_err {
                                Some(db) => Err(QError::new(
                                    qlang::error::QErrorKind::Other,
                                    format!(
                                        "backend error {} while executing {:?}: {}",
                                        db.code, stmt.sql, db.message
                                    ),
                                )),
                                None => pv.finish(stmt.shape.unwrap()),
                            };
                            pivot_dur += t0.elapsed();
                            pivoted.map(|v| (v, n))
                        }
                        StmtResult::Batch(BatchQueryResult::Batch(batch)) => {
                            let n = batch.rows() as u64;
                            child.rows = n;
                            exec_span.rows += n;
                            self.metrics.rows.add(n);
                            let t0 = Instant::now();
                            let pivoted = pivot_batch(batch, stmt.shape.unwrap());
                            pivot_dur += t0.elapsed();
                            pivoted.map(|v| (v, n))
                        }
                        StmtResult::Rows(QueryResult::Rows(rows)) => {
                            let n = rows.data.len() as u64;
                            child.rows = n;
                            exec_span.rows += n;
                            self.metrics.rows.add(n);
                            let t0 = Instant::now();
                            let pivoted = pivot(&rows, stmt.shape.unwrap());
                            pivot_dur += t0.elapsed();
                            pivoted.map(|v| (v, n))
                        }
                        StmtResult::Stream(StreamQueryResult::Command(tag))
                        | StmtResult::Batch(BatchQueryResult::Command(tag))
                        | StmtResult::Rows(QueryResult::Command(tag)) => {
                            exec_span.duration += child.duration;
                            exec_span.children.push(child);
                            failed = Some(QError::new(
                                qlang::error::QErrorKind::Other,
                                format!("expected rows, backend answered {tag}"),
                            ));
                            break 'outer;
                        }
                    };
                    match pivoted {
                        Ok((v, n)) => {
                            pivot_rows += n;
                            last = v;
                        }
                        Err(e) => {
                            exec_span.duration += child.duration;
                            exec_span.children.push(child);
                            failed = Some(e);
                            break 'outer;
                        }
                    }
                }
                exec_span.duration += child.duration;
                exec_span.children.push(child);
            }
        }

        let mut pivot_span = Span::stage(Stage::Pivot, pivot_dur);
        pivot_span.rows = pivot_rows;
        trace.spans.push(exec_span);
        trace.spans.push(pivot_span);
        trace.total = wall.elapsed();

        for stage in Stage::ALL {
            if let Some(span) = trace.span(stage) {
                self.metrics.stage(stage).observe(span.duration);
            }
        }
        self.metrics.query_seconds.observe(trace.total);

        if let Some(e) = failed {
            self.metrics.query_errors.inc();
            self.last_trace = Some(trace);
            return Err(e);
        }

        if self.slow_query > Duration::ZERO && trace.total >= self.slow_query {
            self.metrics.slow_queries.inc();
            obs::global_slowlog().record(SlowQueryRecord {
                id: trace.id,
                q_text: trace.q_text.clone(),
                sql: trace.sql.clone(),
                total: trace.total,
                stages: trace.spans.iter().map(|s| (s.stage, s.duration)).collect(),
            });
        }

        self.last_trace = Some(trace.clone());
        Ok((last, translations, trace))
    }

    /// Translate without executing (used by the translation-overhead
    /// benchmarks; still performs metadata lookups on a cache miss).
    pub fn translate_only(&mut self, q_text: &str) -> QResult<Vec<Translation>> {
        self.translate_cached(q_text)
    }

    /// Accumulated stage timings.
    pub fn timings(&self) -> StageTimings {
        self.stats.timings
    }

    /// End the session: session-scope variables are promoted to server
    /// scope (paper §3.2.3). Cached translations may reference expired
    /// bindings, so the cache is invalidated.
    pub fn end_session(&mut self) {
        self.scopes.end_session();
        self.qcache.note_scope_mutation();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader;
    use qlang::value::{Atom, Table};

    fn trades() -> Table {
        Table::new(
            vec!["Date".into(), "Symbol".into(), "Time".into(), "Price".into(), "Size".into()],
            vec![
                Value::Dates(vec![6021, 6021, 6022]),
                Value::Symbols(vec!["GOOG".into(), "IBM".into(), "GOOG".into()]),
                Value::Times(vec![34_200_000, 34_260_000, 34_320_000]),
                Value::Floats(vec![100.0, 50.0, 101.5]),
                Value::Longs(vec![10, 20, 30]),
            ],
        )
        .unwrap()
    }

    fn session() -> HyperQSession {
        let db = pgdb::Db::new();
        let mut s = HyperQSession::with_direct(&db);
        loader::load_table(&mut s, "trades", &trades()).unwrap();
        s
    }

    #[test]
    fn end_to_end_select() {
        let mut s = session();
        let v = s.execute("select Price from trades where Symbol=`GOOG").unwrap();
        match v {
            Value::Table(t) => {
                assert!(t.column("Price").unwrap().q_eq(&Value::Floats(vec![100.0, 101.5])));
            }
            other => panic!("expected table, got {other:?}"),
        }
    }

    #[test]
    fn end_to_end_aggregation() {
        let mut s = session();
        let v = s.execute("select mx: max Price, n: count i from trades").unwrap();
        match v {
            Value::Table(t) => {
                assert_eq!(t.rows(), 1);
                assert!(t.column("mx").unwrap().q_eq(&Value::Floats(vec![101.5])));
                assert!(t.column("n").unwrap().q_eq(&Value::Longs(vec![3])));
            }
            other => panic!("expected table, got {other:?}"),
        }
    }

    #[test]
    fn end_to_end_group_by_returns_keyed_table() {
        let mut s = session();
        let v = s.execute("select mx: max Price by Symbol from trades").unwrap();
        match v {
            Value::KeyedTable(k) => {
                assert!(k
                    .key
                    .column("Symbol")
                    .unwrap()
                    .q_eq(&Value::Symbols(vec!["GOOG".into(), "IBM".into()])));
                assert!(k.value.column("mx").unwrap().q_eq(&Value::Floats(vec![101.5, 50.0])));
            }
            other => panic!("expected keyed table, got {other:?}"),
        }
    }

    #[test]
    fn end_to_end_exec_column() {
        let mut s = session();
        let v = s.execute("exec Price from trades").unwrap();
        assert!(v.q_eq(&Value::Floats(vec![100.0, 50.0, 101.5])));
    }

    #[test]
    fn two_valued_null_semantics_preserved_through_translation() {
        let db = pgdb::Db::new();
        let mut s = HyperQSession::with_direct(&db);
        let t = Table::new(
            vec!["Sym".into(), "Px".into()],
            vec![
                Value::Symbols(vec!["".into(), "A".into()]),
                Value::Floats(vec![1.0, 2.0]),
            ],
        )
        .unwrap();
        loader::load_table(&mut s, "t", &t).unwrap();
        // In Q, a null symbol equals a null symbol: the row must match.
        let v = s.execute("select Px from t where Sym=`").unwrap();
        match v {
            Value::Table(out) => {
                assert!(out.column("Px").unwrap().q_eq(&Value::Floats(vec![1.0])));
            }
            other => panic!("expected table, got {other:?}"),
        }
    }

    #[test]
    fn paper_example_3_physical_materialization() {
        let db = pgdb::Db::new();
        let cfg = SessionConfig {
            policy: MaterializationPolicy::Physical,
            ..SessionConfig::default()
        };
        let mut s = HyperQSession::with_direct_config(&db, cfg);
        loader::load_table(&mut s, "trades", &trades()).unwrap();
        s.execute("f: {[Sym] dt: select Price from trades where Symbol=Sym; :select max Price from dt}")
            .unwrap();
        let (v, trs) = s.execute_traced("f[`GOOG]").unwrap();
        // CREATE TEMPORARY TABLE was emitted.
        let all_sql: Vec<&str> =
            trs.iter().flat_map(|t| t.statements.iter().map(|s| s.sql.as_str())).collect();
        assert!(
            all_sql.iter().any(|s| s.starts_with("CREATE TEMPORARY TABLE")),
            "{all_sql:?}"
        );
        match v {
            Value::Table(t) => {
                assert!(t.column("Price").unwrap().q_eq(&Value::Floats(vec![101.5])));
            }
            other => panic!("expected table, got {other:?}"),
        }
    }

    #[test]
    fn function_unrolling_logical() {
        let mut s = session();
        s.execute("f: {[Sym] dt: select Price from trades where Symbol=Sym; :select max Price from dt}")
            .unwrap();
        let v = s.execute("f[`IBM]").unwrap();
        match v {
            Value::Table(t) => {
                assert!(t.column("Price").unwrap().q_eq(&Value::Floats(vec![50.0])));
            }
            other => panic!("expected table, got {other:?}"),
        }
    }

    #[test]
    fn metadata_cache_warms_across_queries() {
        let mut s = session();
        s.execute("select Price from trades").unwrap();
        s.execute("select Size from trades").unwrap();
        s.execute("select Symbol from trades").unwrap();
        let stats = s.cache_stats();
        assert!(stats.hits >= 2, "repeat lookups served from cache: {stats:?}");
    }

    #[test]
    fn scalar_expression_round_trips() {
        let mut s = session();
        let v = s.execute("1+2").unwrap();
        assert!(v.q_eq(&Value::long(3)));
    }

    #[test]
    fn errors_are_verbose() {
        let mut s = session();
        let err = s.execute("select from nosuchtable").unwrap_err();
        assert!(err.to_string().contains("nosuchtable"), "{err}");
    }

    #[test]
    fn update_via_hyperq_is_output_only() {
        let mut s = session();
        let v = s.execute("update Price: 2*Price from trades where Symbol=`IBM").unwrap();
        match v {
            Value::Table(t) => {
                assert!(t.column("Price").unwrap().q_eq(&Value::Floats(vec![100.0, 100.0, 101.5])));
            }
            other => panic!("expected table, got {other:?}"),
        }
        // Source unchanged.
        let v = s.execute("exec Price from trades").unwrap();
        assert!(v.q_eq(&Value::Floats(vec![100.0, 50.0, 101.5])));
    }

    #[test]
    fn delete_rows_via_hyperq() {
        let mut s = session();
        let v = s.execute("delete from trades where Symbol=`IBM").unwrap();
        match v {
            Value::Table(t) => assert_eq!(t.rows(), 2),
            other => panic!("expected table, got {other:?}"),
        }
    }

    #[test]
    fn take_first_rows() {
        let mut s = session();
        let v = s.execute("2#trades").unwrap();
        match v {
            Value::Table(t) => {
                assert_eq!(t.rows(), 2);
                assert!(t
                    .column("Symbol")
                    .unwrap()
                    .q_eq(&Value::Symbols(vec!["GOOG".into(), "IBM".into()])));
            }
            other => panic!("expected table, got {other:?}"),
        }
    }

    #[test]
    fn ordering_preserved_through_pipeline() {
        let mut s = session();
        // Sort descending by price, then make sure row order survives
        // the round trip (ordered-list semantics).
        let v = s.execute("`Price xdesc trades").unwrap();
        match v {
            Value::Table(t) => {
                assert!(t.column("Price").unwrap().q_eq(&Value::Floats(vec![101.5, 100.0, 50.0])));
            }
            other => panic!("expected table, got {other:?}"),
        }
    }

    #[test]
    fn variables_shadow_and_expire() {
        let mut s = session();
        s.execute("lim: 15").unwrap();
        let v = s.execute("select Price from trades where Size>lim").unwrap();
        match v {
            Value::Table(t) => assert_eq!(t.rows(), 2),
            other => panic!("expected table, got {other:?}"),
        }
        // Session scope: redefine and observe the change.
        s.execute("lim: 25").unwrap();
        let v = s.execute("select Price from trades where Size>lim").unwrap();
        match v {
            Value::Table(t) => assert_eq!(t.rows(), 1),
            other => panic!("expected table, got {other:?}"),
        }
    }

    #[test]
    fn timestamps_round_trip_through_backend() {
        let db = pgdb::Db::new();
        let mut s = HyperQSession::with_direct(&db);
        let ts = qlang::temporal::parse_timestamp("2016.06.26D09:30:00.000001000").unwrap();
        let t = Table::new(
            vec!["ts".into()],
            vec![Value::Timestamps(vec![ts])],
        )
        .unwrap();
        loader::load_table(&mut s, "t", &t).unwrap();
        let v = s.execute("exec ts from t").unwrap();
        match v {
            Value::Timestamps(out) => assert_eq!(out[0], ts),
            Value::Atom(Atom::Timestamp(out)) => assert_eq!(out, ts),
            other => panic!("expected timestamps, got {other:?}"),
        }
    }
}
