//! Schema mapping and data movement.
//!
//! The paper's customers "easily" handled schema mapping and loading
//! (§5); Hyper-Q assumes data is loaded independently (§1). These helpers
//! perform that independent load for examples, tests and benchmarks:
//! a Q table becomes a backend table with the implicit `ordcol` column
//! prepended — the schema change the paper says ordered semantics
//! requires (§2.2).

use crate::backend::Backend;
use crate::session::HyperQSession;
use qlang::value::{Atom, Table, Value};
use qlang::{QError, QResult};
use xtra::ORD_COL;

/// SQL type name for a Q column vector.
fn sql_type_of(col: &Value) -> &'static str {
    match col {
        Value::Bools(_) => "boolean",
        Value::Shorts(_) => "smallint",
        Value::Ints(_) => "integer",
        Value::Longs(_) => "bigint",
        Value::Reals(_) => "real",
        Value::Floats(_) => "double precision",
        Value::Symbols(_) => "varchar",
        Value::Dates(_) => "date",
        Value::Times(_) => "time",
        Value::Timestamps(_) => "timestamp",
        _ => "text",
    }
}

/// SQL literal for one Q atom (INSERT values).
fn sql_literal(atom: &Atom) -> String {
    if atom.is_null() {
        return "NULL".to_string();
    }
    match atom {
        Atom::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        Atom::Byte(b) => b.to_string(),
        Atom::Short(v) => v.to_string(),
        Atom::Int(v) => v.to_string(),
        Atom::Long(v) => v.to_string(),
        Atom::Real(v) => v.to_string(),
        Atom::Float(v) => {
            if v.fract() == 0.0 && v.is_finite() {
                format!("{v:.1}")
            } else {
                v.to_string()
            }
        }
        Atom::Char(c) => format!("'{}'", c.to_string().replace('\'', "''")),
        Atom::Symbol(s) => format!("'{}'", s.replace('\'', "''")),
        Atom::Date(d) => {
            let (y, m, dd) = xtra::types::days_to_ymd(*d);
            format!("'{y:04}-{m:02}-{dd:02}'")
        }
        Atom::Time(ms) => {
            let total = ms / 1000;
            format!(
                "'{:02}:{:02}:{:02}.{:03}000'",
                total / 3600,
                (total / 60) % 60,
                total % 60,
                ms % 1000
            )
        }
        Atom::Timestamp(ns) => {
            let us = ns / 1000;
            let days = us.div_euclid(86_400_000_000);
            let intraday = us.rem_euclid(86_400_000_000);
            let (y, m, d) = xtra::types::days_to_ymd(days as i32);
            let secs = intraday / 1_000_000;
            format!(
                "'{y:04}-{m:02}-{d:02} {:02}:{:02}:{:02}.{:06}'",
                secs / 3600,
                (secs / 60) % 60,
                secs % 60,
                intraday % 1_000_000
            )
        }
    }
}

/// Generate the `CREATE TABLE` DDL for a Q table (ordcol included).
pub fn create_table_ddl(name: &str, table: &Table) -> String {
    let mut cols = vec![format!("\"{ORD_COL}\" bigint")];
    for (n, c) in table.names.iter().zip(&table.columns) {
        cols.push(format!("\"{}\" {}", n.replace('"', "\"\""), sql_type_of(c)));
    }
    format!("CREATE TABLE \"{}\" ({})", name.replace('"', "\"\""), cols.join(", "))
}

/// Generate batched INSERT statements for a Q table's data.
pub fn insert_statements(name: &str, table: &Table, batch: usize) -> QResult<Vec<String>> {
    let rows = table.rows();
    let mut out = Vec::new();
    let mut i = 0;
    while i < rows {
        let end = (i + batch).min(rows);
        let mut tuples = Vec::with_capacity(end - i);
        for r in i..end {
            let mut vals = vec![(r + 1).to_string()];
            for col in &table.columns {
                match col.index(r) {
                    Some(Value::Atom(a)) => vals.push(sql_literal(&a)),
                    Some(Value::Chars(s)) => {
                        vals.push(format!("'{}'", s.replace('\'', "''")))
                    }
                    other => {
                        return Err(QError::type_err(format!(
                            "cannot load nested value {other:?} into a relational backend"
                        )))
                    }
                }
            }
            tuples.push(format!("({})", vals.join(", ")));
        }
        out.push(format!(
            "INSERT INTO \"{}\" VALUES {}",
            name.replace('"', "\"\""),
            tuples.join(", ")
        ));
        i = end;
    }
    Ok(out)
}

/// Load a Q table into the session's backend (create + insert).
pub fn load_table(session: &mut HyperQSession, name: &str, table: &Table) -> QResult<()> {
    let backend = session.backend().clone();
    let mut guard = backend
        .lock()
        .map_err(|_| QError::new(qlang::error::QErrorKind::Other, "backend poisoned"))?;
    run(&mut *guard, &create_table_ddl(name, table))?;
    for stmt in insert_statements(name, table, 500)? {
        run(&mut *guard, &stmt)?;
    }
    drop(guard);
    session.invalidate_metadata();
    Ok(())
}

/// Fast path for benchmarks: load a Q table straight into an in-process
/// `pgdb` store, bypassing SQL text (the paper's §1 assumption that data
/// is loaded independently — here, by the host).
pub fn load_table_direct(db: &pgdb::Db, name: &str, table: &Table) -> QResult<()> {
    use pgdb::{Cell, Column, PgType};
    fn pg_type(col: &Value) -> PgType {
        match col {
            Value::Bools(_) => PgType::Bool,
            Value::Shorts(_) => PgType::Int2,
            Value::Ints(_) => PgType::Int4,
            Value::Longs(_) => PgType::Int8,
            Value::Reals(_) => PgType::Float4,
            Value::Floats(_) => PgType::Float8,
            Value::Symbols(_) => PgType::Varchar,
            Value::Dates(_) => PgType::Date,
            Value::Times(_) => PgType::Time,
            Value::Timestamps(_) => PgType::Timestamp,
            _ => PgType::Text,
        }
    }
    fn cell(atom: &Atom) -> Cell {
        if atom.is_null() {
            return Cell::Null;
        }
        match atom {
            Atom::Bool(b) => Cell::Bool(*b),
            Atom::Byte(b) => Cell::Int(*b as i64),
            Atom::Short(v) => Cell::Int(*v as i64),
            Atom::Int(v) => Cell::Int(*v as i64),
            Atom::Long(v) => Cell::Int(*v),
            Atom::Real(v) => Cell::Float(*v as f64),
            Atom::Float(v) => Cell::Float(*v),
            Atom::Char(c) => Cell::Text(c.to_string()),
            Atom::Symbol(s) => Cell::Text(s.clone()),
            Atom::Date(d) => Cell::Date(*d),
            Atom::Time(ms) => Cell::Time(*ms as i64 * 1000),
            Atom::Timestamp(ns) => Cell::Timestamp(ns / 1000),
        }
    }
    let mut columns = vec![Column::new(ORD_COL, PgType::Int8)];
    for (n, c) in table.names.iter().zip(&table.columns) {
        columns.push(Column::new(n.clone(), pg_type(c)));
    }
    let mut rows = Vec::with_capacity(table.rows());
    for r in 0..table.rows() {
        let mut row = Vec::with_capacity(columns.len());
        row.push(Cell::Int(r as i64 + 1));
        for col in &table.columns {
            match col.index(r) {
                Some(Value::Atom(a)) => row.push(cell(&a)),
                Some(Value::Chars(s)) => row.push(Cell::Text(s)),
                other => {
                    return Err(QError::type_err(format!(
                        "cannot load nested value {other:?}"
                    )))
                }
            }
        }
        rows.push(row);
    }
    db.put_table(name, columns, rows);
    Ok(())
}

fn run(backend: &mut dyn Backend, sql: &str) -> QResult<()> {
    backend
        .execute_sql(sql)
        .map_err(|e| QError::new(qlang::error::QErrorKind::Other, format!("load failed: {e}")))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::new(
            vec!["Sym".into(), "Px".into(), "D".into()],
            vec![
                Value::Symbols(vec!["GOOG".into(), "IB'M".into()]),
                Value::Floats(vec![100.0, f64::NAN]),
                Value::Dates(vec![6021, i32::MIN]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn ddl_includes_ordcol_and_types() {
        let ddl = create_table_ddl("trades", &sample());
        assert!(ddl.contains("\"ordcol\" bigint"), "{ddl}");
        assert!(ddl.contains("\"Sym\" varchar"), "{ddl}");
        assert!(ddl.contains("\"Px\" double precision"), "{ddl}");
        assert!(ddl.contains("\"D\" date"), "{ddl}");
    }

    #[test]
    fn inserts_number_rows_and_escape() {
        let stmts = insert_statements("t", &sample(), 100).unwrap();
        assert_eq!(stmts.len(), 1);
        let sql = &stmts[0];
        assert!(sql.contains("(1, 'GOOG'"), "{sql}");
        assert!(sql.contains("'IB''M'"), "ordcol numbering + escaping: {sql}");
        // Q nulls load as SQL NULLs.
        assert!(sql.contains("NULL"), "{sql}");
    }

    #[test]
    fn batching_splits_inserts() {
        let big = Table::new(
            vec!["x".into()],
            vec![Value::Longs((0..25).collect())],
        )
        .unwrap();
        let stmts = insert_statements("t", &big, 10).unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn loaded_table_queryable_by_backend() {
        let db = pgdb::Db::new();
        let mut s = crate::session::HyperQSession::with_direct(&db);
        load_table(&mut s, "t", &sample()).unwrap();
        let v = s.execute("select Sym from t").unwrap();
        match v {
            Value::Table(t) => assert_eq!(t.rows(), 2),
            other => panic!("expected table, got {other:?}"),
        }
    }
}
