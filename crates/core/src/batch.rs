//! Batch session driver for the differential fuzz loop (DESIGN §9).
//!
//! The qgen fuzzer needs to run one generated Q program through *three*
//! executors over the same logical data and diff every statement:
//!
//! 1. **reference** — the qengine interpreter (the kdb+ stand-in);
//! 2. **cold** — the full Parser → Algebrizer → Xformer → Serializer →
//!    pgdb pipeline with the translation cache disabled;
//! 3. **warm** — the same pipeline with the translation cache enabled,
//!    after a priming pass, so cache-hit translations are exercised.
//!
//! [`BatchDriver`] owns all three and reports **every** divergent
//! statement of a program — it never stops at the first mismatch, so one
//! fuzz run over a program yields the complete bug batch for that
//! program.

use crate::loader;
use crate::session::{HyperQSession, SessionConfig};
use crate::side_by_side::values_agree;
use qengine::Interp;
use qlang::ast::Expr;
use qlang::value::{Table, Value};
use qlang::QResult;
use std::time::Duration;

/// What one executor produced for one statement.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// The statement evaluated to a value.
    Value(Value),
    /// The statement errored.
    Error(String),
}

impl Outcome {
    fn from(r: QResult<Value>) -> Self {
        match r {
            Ok(v) => Outcome::Value(v),
            Err(e) => Outcome::Error(e.to_string()),
        }
    }

    /// The value, if this outcome carries one.
    pub fn value(&self) -> Option<&Value> {
        match self {
            Outcome::Value(v) => Some(v),
            Outcome::Error(_) => None,
        }
    }

    /// Do two outcomes agree toward the application? Both erroring
    /// agrees (the application sees an error either way); a one-sided
    /// error or differing values do not.
    ///
    /// Table results are compared *structurally* where possible: both
    /// sides are lowered onto the shared columnar representation via
    /// [`qengine::colbridge`] and diffed batch against batch
    /// (`Batch::structurally_equal`, which keys every cell), which
    /// catches representation-level drift (e.g. a null carried in-band
    /// on one side and out-of-band on the other) that value equality
    /// would paper over. Shapes the bridge cannot express fall back to
    /// [`values_agree`].
    pub fn agrees_with(&self, other: &Outcome) -> bool {
        match (self, other) {
            (Outcome::Value(a), Outcome::Value(b)) => {
                if let (Some(ba), Some(bb)) = (as_batch(a), as_batch(b)) {
                    return ba.structurally_equal(&bb) && values_agree(a, b);
                }
                values_agree(a, b)
            }
            (Outcome::Error(_), Outcome::Error(_)) => true,
            _ => false,
        }
    }
}

/// Which executor pair disagreed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceKind {
    /// Reference vs the cache-cold translate pipeline.
    ReferenceVsCold,
    /// Reference vs the cache-warm translate pipeline.
    ReferenceVsWarm,
    /// Cold vs warm pipeline — the translation cache is *not*
    /// transparent. The reference engine casts the deciding vote
    /// elsewhere; this kind means the two pipeline configurations
    /// disagree with each other.
    ColdVsWarm,
}

/// One statement's tri-execution record.
#[derive(Debug, Clone)]
pub struct StatementOutcome {
    /// Index of the statement within the program.
    pub index: usize,
    /// The statement text.
    pub q: String,
    /// Reference-engine outcome.
    pub reference: Outcome,
    /// Cache-cold pipeline outcome.
    pub cold: Outcome,
    /// Cache-warm pipeline outcome (second pass over the program).
    pub warm: Outcome,
}

impl StatementOutcome {
    /// All executor-pair disagreements for this statement.
    pub fn divergences(&self) -> Vec<DivergenceKind> {
        let mut out = Vec::new();
        if !self.reference.agrees_with(&self.cold) {
            out.push(DivergenceKind::ReferenceVsCold);
        }
        if !self.reference.agrees_with(&self.warm) {
            out.push(DivergenceKind::ReferenceVsWarm);
        }
        if !self.cold.agrees_with(&self.warm) {
            out.push(DivergenceKind::ColdVsWarm);
        }
        out
    }

    /// Did all three executors agree?
    pub fn agreed(&self) -> bool {
        self.divergences().is_empty()
    }
}

/// The full report for one program.
#[derive(Debug, Clone, Default)]
pub struct BatchReport {
    /// One record per statement, in program order — complete even when
    /// early statements diverged.
    pub statements: Vec<StatementOutcome>,
}

impl BatchReport {
    /// Every divergent statement of the run (the full bug batch).
    pub fn divergent(&self) -> Vec<&StatementOutcome> {
        self.statements.iter().filter(|s| !s.agreed()).collect()
    }

    /// True when every statement agreed across all three executors.
    pub fn clean(&self) -> bool {
        self.statements.iter().all(|s| s.agreed())
    }
}

/// Lower a table-shaped value onto the shared columnar representation,
/// if every column has a storage class there. Keyed tables are
/// flattened first (key columns then value columns), matching the
/// representational tolerance of [`values_agree`].
fn as_batch(v: &Value) -> Option<colstore::Batch> {
    match v {
        Value::Table(t) => qengine::colbridge::table_to_batch(t),
        Value::KeyedTable(k) => {
            qengine::colbridge::table_to_batch(&crate::side_by_side::flatten(k))
        }
        _ => None,
    }
}

/// Is this statement a top-level assignment? The interpreter evaluates
/// an assignment to its value while the pipeline materializes it and
/// returns nothing (the console shows nothing either way), so the
/// assignment's *immediate* result is not an application-visible
/// observable — its effect is diffed through subsequent reads of the
/// variable instead.
fn is_assignment(q: &str) -> bool {
    qlang::parse(q)
        .map(|stmts| {
            stmts
                .last()
                .is_some_and(|e| matches!(e, Expr::Assign { .. } | Expr::IndexAssign { .. }))
        })
        .unwrap_or(false)
}

/// Collapse successful assignment outcomes to `Nil`; errors still count.
fn normalized(o: Outcome, normalize: bool) -> Outcome {
    match (normalize, o) {
        (true, Outcome::Value(_)) => Outcome::Value(Value::Nil),
        (_, o) => o,
    }
}

/// The tri-executor driver.
pub struct BatchDriver {
    reference: Interp,
    cold: HyperQSession,
    warm: HyperQSession,
}

impl BatchDriver {
    /// Build a driver over `tables`. Each pipeline session gets its own
    /// fresh in-process backend (sessions share no temp-table namespace),
    /// both loaded with identical data; the reference interpreter gets the
    /// same tables as server globals.
    pub fn new(tables: &[(String, Table)]) -> QResult<Self> {
        Self::with_config(tables, SessionConfig {
            // Batch runs are throughput-oriented; keep the slow-query log
            // out of the fuzz loop.
            slow_query: Duration::ZERO,
            ..SessionConfig::default()
        })
    }

    /// Build a driver with an explicit session configuration. The cold
    /// session always runs with the translation cache forced off; the
    /// warm session keeps the configured capacity (default 256).
    pub fn with_config(tables: &[(String, Table)], config: SessionConfig) -> QResult<Self> {
        let cold_db = pgdb::Db::new();
        let warm_db = pgdb::Db::new();
        let cold_cfg = SessionConfig { translation_cache: 0, ..config.clone() };
        let warm_cfg = if config.translation_cache == 0 {
            SessionConfig { translation_cache: 256, ..config }
        } else {
            config
        };
        let mut cold = HyperQSession::with_direct_config(&cold_db, cold_cfg);
        let mut warm = HyperQSession::with_direct_config(&warm_db, warm_cfg);
        let mut reference = Interp::new();
        for (name, table) in tables {
            reference.define_table(name, table.clone());
            loader::load_table(&mut cold, name, table)?;
            loader::load_table(&mut warm, name, table)?;
        }
        Ok(BatchDriver { reference, cold, warm })
    }

    /// Run a program (a list of statements) through all three executors
    /// and record every statement's outcomes.
    ///
    /// The warm executor runs the whole program twice — the first pass
    /// primes its translation cache, the second (recorded) pass replays
    /// it — so repeated statements take the cache-hit path. Generated
    /// programs are read-only or idempotent (assignments rebind the same
    /// value), so the double pass is semantics-preserving.
    pub fn run_program(&mut self, stmts: &[String]) -> BatchReport {
        // Priming pass for the warm session.
        for q in stmts {
            let _ = self.warm.execute(q);
        }
        let reference = self.reference.run_statements(stmts);
        let mut statements = Vec::with_capacity(stmts.len());
        for (index, q) in stmts.iter().enumerate() {
            let normalize = is_assignment(q);
            let cold = normalized(Outcome::from(self.cold.execute(q)), normalize);
            let warm = normalized(Outcome::from(self.warm.execute(q)), normalize);
            statements.push(StatementOutcome {
                index,
                q: q.clone(),
                reference: normalized(Outcome::from(reference[index].clone()), normalize),
                cold,
                warm,
            });
        }
        BatchReport { statements }
    }

    /// Cache statistics of the warm session (used by tests to prove the
    /// warm leg actually hit the cache).
    pub fn warm_cache_stats(&self) -> crate::qcache::CacheStats {
        self.warm.translation_cache_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tables() -> Vec<(String, Table)> {
        vec![(
            "t".to_string(),
            Table::new(
                vec!["S".into(), "V".into()],
                vec![
                    Value::Symbols(vec!["a".into(), "b".into(), "a".into()]),
                    Value::Longs(vec![1, 2, 3]),
                ],
            )
            .unwrap(),
        )]
    }

    #[test]
    fn clean_program_reports_no_divergence() {
        let mut d = BatchDriver::new(&tables()).unwrap();
        let report = d.run_program(&[
            "select from t".to_string(),
            "select s: sum V by S from t".to_string(),
            "exec V from t where S=`a".to_string(),
        ]);
        assert!(report.clean(), "{:?}", report.divergent());
        assert_eq!(report.statements.len(), 3);
    }

    #[test]
    fn warm_pass_hits_the_translation_cache() {
        let mut d = BatchDriver::new(&tables()).unwrap();
        d.run_program(&["select from t".to_string()]);
        assert!(d.warm_cache_stats().hits > 0, "{:?}", d.warm_cache_stats());
    }

    #[test]
    fn all_divergent_statements_are_reported_not_just_the_first() {
        // Desync the reference engine from the pipelines: statements that
        // read table u diverge, ones that read t agree. Every divergent
        // statement must be present in the report.
        let mut d = BatchDriver::new(&tables()).unwrap();
        let u = Table::new(vec!["x".into()], vec![Value::Longs(vec![42])]).unwrap();
        d.reference.define_table("u", u);
        let report = d.run_program(&[
            "exec x from u".to_string(),   // one-sided: pipelines lack u
            "select from t".to_string(),   // agrees
            "exec sum x from u".to_string(), // one-sided again
        ]);
        let div = report.divergent();
        assert_eq!(div.len(), 2, "{div:?}");
        assert_eq!(div[0].index, 0);
        assert_eq!(div[1].index, 2);
        assert!(!report.clean());
    }

    #[test]
    fn both_sides_erroring_counts_as_agreement() {
        let mut d = BatchDriver::new(&tables()).unwrap();
        let report = d.run_program(&["select from ghost".to_string()]);
        assert!(report.clean(), "{:?}", report.divergent());
    }
}
