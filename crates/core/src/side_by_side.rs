//! The side-by-side testing framework of paper §5.
//!
//! "As we implemented features from the customer workload, we needed a
//! way to ensure the exact same behavior to the application as before.
//! For this purpose we built a side-by-side testing framework."
//!
//! The same data is loaded into the reference Q engine (the kdb+
//! stand-in) and, through the loader, into the backend; each query is
//! executed on both paths and the results compared under Q equality
//! (two-valued nulls and all).

use crate::loader;
use crate::session::{HyperQSession, SessionConfig};
use qengine::Interp;
use qlang::value::{Table, Value};
use qlang::{QError, QResult};

/// Outcome of one side-by-side check.
#[derive(Debug, Clone)]
pub enum Comparison {
    /// Both paths produced Q-equal values.
    Match(Value),
    /// The values differ.
    Mismatch {
        /// What the reference engine computed.
        reference: Value,
        /// What came back through Hyper-Q.
        translated: Value,
    },
    /// The reference engine errored but Hyper-Q did not (or vice versa).
    ErrorDivergence {
        /// Reference-side error, if any.
        reference_err: Option<String>,
        /// Hyper-Q-side error, if any.
        translated_err: Option<String>,
    },
}

impl Comparison {
    /// Did the two paths agree?
    pub fn is_match(&self) -> bool {
        matches!(self, Comparison::Match(_))
    }

    /// Do the two paths *behave the same* toward the application? Like
    /// [`Comparison::is_match`], but both sides erroring also counts as
    /// agreement — the application observes an error either way, which is
    /// exactly the paper's §5 criterion ("the exact same behavior to the
    /// application"). A one-sided error remains a divergence.
    pub fn is_agreement(&self) -> bool {
        match self {
            Comparison::Match(_) => true,
            Comparison::Mismatch { .. } => false,
            Comparison::ErrorDivergence { reference_err, translated_err } => {
                reference_err.is_some() && translated_err.is_some()
            }
        }
    }
}

/// The framework: one reference interpreter and one Hyper-Q session over
/// the same logical data.
pub struct SideBySide {
    /// The reference engine.
    pub reference: Interp,
    /// The virtualized path.
    pub hyperq: HyperQSession,
}

impl SideBySide {
    /// Create over a fresh in-process backend.
    pub fn new(db: &pgdb::Db) -> Self {
        SideBySide { reference: Interp::new(), hyperq: HyperQSession::with_direct(db) }
    }

    /// Create with an explicit session configuration.
    pub fn with_config(db: &pgdb::Db, config: SessionConfig) -> Self {
        SideBySide {
            reference: Interp::new(),
            hyperq: HyperQSession::with_direct_config(db, config),
        }
    }

    /// Load a table into both worlds.
    pub fn load(&mut self, name: &str, table: &Table) -> QResult<()> {
        self.reference.define_table(name, table.clone());
        loader::load_table(&mut self.hyperq, name, table)
    }

    /// Run a query on both paths and compare.
    pub fn check(&mut self, q: &str) -> Comparison {
        let ref_result = self.reference.run(q);
        let hq_result = self.hyperq.execute(q);
        match (ref_result, hq_result) {
            (Ok(a), Ok(b)) => {
                if values_agree(&a, &b) {
                    Comparison::Match(a)
                } else {
                    Comparison::Mismatch { reference: a, translated: b }
                }
            }
            (Err(e), Ok(_)) => Comparison::ErrorDivergence {
                reference_err: Some(e.to_string()),
                translated_err: None,
            },
            (Ok(_), Err(e)) => Comparison::ErrorDivergence {
                reference_err: None,
                translated_err: Some(e.to_string()),
            },
            // Both erroring counts as agreement (same behaviour).
            (Err(a), Err(b)) => Comparison::ErrorDivergence {
                reference_err: Some(a.to_string()),
                translated_err: Some(b.to_string()),
            },
        }
    }

    /// Run a batch of queries; return **all** divergent statements.
    ///
    /// The runner never stops at the first mismatch: every statement in
    /// the batch executes and every divergence is collected, so one
    /// oracle (or fuzz) run yields the full bug batch rather than the
    /// first symptom. Both-sides-erroring statements count as agreement
    /// ([`Comparison::is_agreement`]) — the application cannot tell the
    /// paths apart there.
    pub fn check_all(&mut self, queries: &[&str]) -> Vec<(String, Comparison)> {
        let mut failures = Vec::new();
        for q in queries {
            let c = self.check(q);
            if !c.is_agreement() {
                failures.push((q.to_string(), c));
            }
        }
        failures
    }

    /// Assert agreement, with a verbose diff on failure (test helper).
    pub fn assert_match(&mut self, q: &str) -> QResult<Value> {
        match self.check(q) {
            Comparison::Match(v) => Ok(v),
            Comparison::Mismatch { reference, translated } => Err(QError::new(
                qlang::error::QErrorKind::Other,
                format!(
                    "side-by-side mismatch for {q:?}:\nreference:\n{reference}\ntranslated:\n{translated}"
                ),
            )),
            Comparison::ErrorDivergence { reference_err, translated_err } => Err(QError::new(
                qlang::error::QErrorKind::Other,
                format!(
                    "side-by-side error divergence for {q:?}: reference={reference_err:?} translated={translated_err:?}"
                ),
            )),
        }
    }
}

/// Q-equality with tolerance for representational differences between
/// the engine and the pivoted backend results: an engine table compares
/// equal to a pivoted table with identical columns even when numeric
/// widths differ (the backend promotes). Public because the qgen
/// differential fuzzer applies the same criterion before drilling into
/// cell-level diffs.
pub fn values_agree(a: &Value, b: &Value) -> bool {
    if a.q_eq(b) {
        return true;
    }
    match (a, b) {
        // Keyed tables vs tables with the same flattened content.
        (Value::KeyedTable(k), Value::KeyedTable(j)) => {
            let fa = flatten(k);
            let fb = flatten(j);
            Value::Table(Box::new(fa)).q_eq(&Value::Table(Box::new(fb)))
        }
        _ => false,
    }
}

/// Flatten a keyed table into key-columns-then-value-columns (used when
/// comparing keyed results whose key/value split differs representationally).
pub fn flatten(k: &qlang::KeyedTable) -> Table {
    Table {
        names: k.key.names.iter().chain(&k.value.names).cloned().collect(),
        columns: k.key.columns.iter().chain(&k.value.columns).cloned().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn framework() -> SideBySide {
        let db = pgdb::Db::new();
        let mut f = SideBySide::new(&db);
        let trades = Table::new(
            vec!["Date".into(), "Symbol".into(), "Time".into(), "Price".into(), "Size".into()],
            vec![
                Value::Dates(vec![6021, 6021, 6022, 6022]),
                Value::Symbols(vec!["GOOG".into(), "IBM".into(), "GOOG".into(), "MSFT".into()]),
                Value::Times(vec![34_200_000, 34_260_000, 34_320_000, 34_380_000]),
                Value::Floats(vec![100.0, 50.0, 101.5, 70.25]),
                Value::Longs(vec![10, 20, 30, 40]),
            ],
        )
        .unwrap();
        f.load("trades", &trades).unwrap();
        f
    }

    #[test]
    fn simple_queries_agree() {
        let mut f = framework();
        f.assert_match("select from trades").unwrap();
        f.assert_match("select Price from trades where Symbol=`GOOG").unwrap();
        f.assert_match("select Price, Size from trades where Date=2016.06.26").unwrap();
    }

    #[test]
    fn filters_and_membership_agree() {
        let mut f = framework();
        f.assert_match("select Price from trades where Symbol in `GOOG`MSFT").unwrap();
        f.assert_match("select Price from trades where Size>15, Price<100").unwrap();
        f.assert_match("select from trades where Price within 50 101").unwrap();
    }

    #[test]
    fn aggregations_agree() {
        let mut f = framework();
        f.assert_match("select mx: max Price, mn: min Price, s: sum Size from trades").unwrap();
        f.assert_match("exec Price from trades").unwrap();
    }

    #[test]
    fn group_by_agrees() {
        let mut f = framework();
        f.assert_match("select mx: max Price by Symbol from trades").unwrap();
        f.assert_match("select n: count i by Date from trades").unwrap();
    }

    #[test]
    fn update_and_delete_agree() {
        let mut f = framework();
        f.assert_match("update Notional: Price*Size from trades").unwrap();
        f.assert_match("delete from trades where Symbol=`IBM").unwrap();
    }

    #[test]
    fn variables_and_functions_agree() {
        let mut f = framework();
        f.assert_match("SYMS: `GOOG`IBM; select Price from trades where Symbol in SYMS").unwrap();
        f.assert_match(concat!(
            "f: {[s] dt: select Price from trades where Symbol=s; :select max Price from dt}; ",
            "f[`GOOG]"
        ))
        .unwrap();
    }

    #[test]
    fn sorting_agrees() {
        let mut f = framework();
        f.assert_match("`Price xdesc trades").unwrap();
        f.assert_match("`Symbol`Time xasc trades").unwrap();
    }

    #[test]
    fn check_all_reports_failures_only() {
        let mut f = framework();
        let failures = f.check_all(&[
            "select from trades",
            "select mx: max Price by Symbol from trades",
        ]);
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn mismatch_detection_works() {
        // Deliberately diverge the two worlds to prove the framework can
        // see a difference.
        let db = pgdb::Db::new();
        let mut f = SideBySide::new(&db);
        let t1 = Table::new(vec!["x".into()], vec![Value::Longs(vec![1])]).unwrap();
        let t2 = Table::new(vec!["x".into()], vec![Value::Longs(vec![2])]).unwrap();
        f.reference.define_table("t", t1);
        loader::load_table(&mut f.hyperq, "t", &t2).unwrap();
        let c = f.check("exec x from t");
        assert!(!c.is_match());
        assert!(matches!(c, Comparison::Mismatch { .. }));
    }
}
