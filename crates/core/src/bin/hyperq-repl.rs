//! An interactive Q console over a virtualized SQL backend.
//!
//! ```sh
//! cargo run -p hyperq --bin hyperq-repl
//! ```
//!
//! Starts an in-process `pgdb` backend preloaded with TAQ-style `trades`
//! and `quotes` tables and drops you at a `q)` prompt — the experience a
//! kdb+ analyst gets, served by the translation pipeline. Meta commands:
//!
//! * `\sql <q>` — show the generated SQL without running it
//! * `\t <q>`   — run and print per-stage translation timings
//! * `\tables`  — list backend tables
//! * `\\`       — quit
//!
//! `HQ_SHARDS=N` (N > 1) virtualizes an N-way MPP cluster in-process:
//! the session routes through the scatter-gather `ShardRouter` instead
//! of a single backend, with `HQ_SHARD_KEY` / `HQ_SHARD_BROADCAST` /
//! `HQ_SHARD_FLOAT_AGG` controlling placement and merge planning.

use hyperq::{backend, env_shards, loader, HyperQSession, SessionConfig, ShardCluster};
use hyperq_workload::taq::{generate_quotes, generate_trades, TaqConfig};
use std::io::{BufRead, Write};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // HQ_DATA_DIR (plus HQ_FSYNC / HQ_CHECKPOINT_EVERY) turns on the
    // durability layer: tables survive a restart of the console.
    let db = pgdb::Db::open_from_env()?;
    let shards = env_shards(1);
    let cluster = (shards > 1).then(|| ShardCluster::in_process(shards));
    let mut session = match &cluster {
        Some(c) => {
            println!("sharding: {shards}-way scatter-gather (HQ_SHARDS)");
            if db.is_durable() {
                println!("note: durability (HQ_DATA_DIR) applies to single-node mode only");
            }
            HyperQSession::new(backend::share(c.router()?), SessionConfig::default())
        }
        None => {
            if db.is_durable() {
                println!("durability: on (HQ_DATA_DIR)");
            }
            HyperQSession::with_direct(&db)
        }
    };
    let cfg = TaqConfig { rows: 1000, symbols: 6, days: 2, seed: 2016 };
    loader::load_table(&mut session, "trades", &generate_trades(&cfg))?;
    loader::load_table(&mut session, "quotes", &generate_quotes(&TaqConfig { rows: 4000, ..cfg }))?;

    println!("hyperq-repl — Q on a PG-compatible backend (tables: trades, quotes)");
    println!("meta: \\sql <q> | \\t <q> | \\tables | \\\\ to quit\n");

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        write!(out, "q) ")?;
        out.flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "\\\\" || line == "exit" || line == "quit" {
            break;
        }
        if line == "\\tables" {
            // In sharded mode the coordinator holds a full copy of
            // every routed table, so its catalog is the authority.
            let names = match &cluster {
                Some(c) => c
                    .in_process_dbs()
                    .map(|(coord, _)| coord.table_names())
                    .unwrap_or_default(),
                None => db.table_names(),
            };
            for name in names {
                match cluster.as_ref().and_then(|c| c.table_meta(&name)) {
                    Some(meta) => println!("{name}  [{:?}, {} rows]", meta.mode, meta.rows),
                    None => println!("{name}"),
                }
            }
            continue;
        }
        if let Some(q) = line.strip_prefix("\\sql ") {
            match session.translate_only(q) {
                Ok(trs) => {
                    for tr in trs {
                        for stmt in tr.statements {
                            println!("{}", stmt.sql);
                        }
                    }
                }
                Err(e) => println!("{e}"),
            }
            continue;
        }
        if let Some(q) = line.strip_prefix("\\t ") {
            match session.execute_traced(q) {
                Ok((v, trs)) => {
                    for tr in &trs {
                        if tr.timings.cache_hits > 0 {
                            println!("translation cache hit — pipeline skipped");
                            continue;
                        }
                        println!(
                            "parse {:?}  algebrize {:?}  optimize {:?}  serialize {:?}",
                            tr.timings.parse,
                            tr.timings.algebrize,
                            tr.timings.optimize,
                            tr.timings.serialize
                        );
                    }
                    println!("{v}");
                }
                Err(e) => println!("{e}"),
            }
            continue;
        }
        match session.execute(line) {
            Ok(v) => println!("{v}"),
            Err(e) => println!("{e}"),
        }
    }
    Ok(())
}
