//! The Cross Compiler (XC): Protocol Translator and Query Translator as
//! finite state machines (paper §3.4, Figure 4).
//!
//! "Each translator process is designed as a Finite State Machine that
//! maintains translator internal state while providing a mechanism for
//! code re-entrance." The PT owns the DB-protocol surface: it consumes
//! raw bytes, runs the QIPC handshake, extracts query text, and — once
//! the QT hands back results — emits the response bytes. The QT owns the
//! query-language surface: algebrize → optimize → serialize, stepping
//! through explicit states so callers can interleave work (and so the
//! Figure 7 harness can attribute time per stage).
//!
//! The interface between the two is exactly the paper's: "sending out a Q
//! query from PT, and receiving back an equivalent SQL query from QT."

use crate::translate::{Translation, Translator};
use algebrizer::{Mdi, Scopes};
use qipc::{Message, MsgType};
use qlang::{QError, QResult, Value};

/// Protocol Translator states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PtState {
    /// Waiting for the `user:pass\[version]\0` handshake.
    AwaitHandshake,
    /// Connection established; waiting for a query message.
    Idle,
    /// A query was forwarded to the QT; waiting for results.
    AwaitResults,
    /// Connection is closed (bad credentials or peer terminated).
    Closed,
}

/// Actions the PT asks its driver (the socket loop) to perform.
#[derive(Debug, Clone, PartialEq)]
pub enum PtAction {
    /// Write these bytes to the Q application.
    Send(Vec<u8>),
    /// Hand this query text to the QT; `respond` is false for async
    /// messages (fire-and-forget).
    ForwardQuery {
        /// The Q query text.
        text: String,
        /// Whether the application awaits a response.
        respond: bool,
    },
    /// Close the connection.
    Close,
}

/// Credential check callback for the QIPC handshake.
pub type Authenticator = dyn Fn(&str, &str) -> bool + Send + Sync;

/// The Protocol Translator FSM for one QIPC connection.
pub struct ProtocolTranslator {
    state: PtState,
    buffer: Vec<u8>,
    max_frame: usize,
}

impl Default for ProtocolTranslator {
    fn default() -> Self {
        Self::new()
    }
}

impl ProtocolTranslator {
    /// New connection: awaiting handshake.
    pub fn new() -> Self {
        Self::with_max_frame(qipc::DEFAULT_MAX_MESSAGE)
    }

    /// New connection with an explicit inbound-frame length ceiling; a
    /// message declaring more than `max_frame` bytes is a protocol error
    /// rather than an allocation.
    pub fn with_max_frame(max_frame: usize) -> Self {
        ProtocolTranslator { state: PtState::AwaitHandshake, buffer: Vec::new(), max_frame }
    }

    /// Current state.
    pub fn state(&self) -> PtState {
        self.state
    }

    /// Whether an incomplete frame is sitting in the buffer. The socket
    /// loop uses this to tell an *idle* peer (no bytes owed — a read
    /// deadline expiring is fine) from a *stalled* one (mid-frame — the
    /// peer is gone and the connection should be dropped).
    pub fn has_partial(&self) -> bool {
        !self.buffer.is_empty()
    }

    /// Feed raw socket bytes; returns the actions to perform, in order.
    pub fn on_bytes(&mut self, data: &[u8], auth: &Authenticator) -> QResult<Vec<PtAction>> {
        self.buffer.extend_from_slice(data);
        let mut actions = Vec::new();
        loop {
            match self.state {
                PtState::AwaitHandshake => {
                    match qipc::parse_handshake(&self.buffer)? {
                        None => break,
                        Some((hs, used)) => {
                            self.buffer.drain(..used);
                            if auth(&hs.user, &hs.password) {
                                actions.push(PtAction::Send(vec![
                                    qipc::handshake::SERVER_CAPABILITY.min(hs.version),
                                ]));
                                self.state = PtState::Idle;
                            } else {
                                // Paper §4.2: on bad credentials the
                                // connection is closed immediately.
                                actions.push(PtAction::Close);
                                self.state = PtState::Closed;
                                break;
                            }
                        }
                    }
                }
                PtState::Idle => match qipc::read_message_limited(&self.buffer, self.max_frame)? {
                    None => break,
                    Some((msg, used)) => {
                        self.buffer.drain(..used);
                        let text = match msg.value {
                            Value::Chars(s) => s,
                            Value::Atom(qlang::Atom::Char(c)) => c.to_string(),
                            other => {
                                return Err(QError::type_err(format!(
                                    "expected query text, got {}",
                                    other.type_name()
                                )))
                            }
                        };
                        let respond = msg.msg_type == MsgType::Sync;
                        if respond {
                            self.state = PtState::AwaitResults;
                        }
                        actions.push(PtAction::ForwardQuery { text, respond });
                        if respond {
                            break;
                        }
                    }
                },
                PtState::AwaitResults | PtState::Closed => break,
            }
        }
        Ok(actions)
    }

    /// The QT produced results: encode the QIPC response and return to
    /// Idle.
    pub fn on_results(&mut self, value: Value) -> QResult<PtAction> {
        if self.state != PtState::AwaitResults {
            return Err(QError::new(
                qlang::error::QErrorKind::Other,
                format!("protocol violation: results in state {:?}", self.state),
            ));
        }
        // Large result sets are compressed on the wire, as kdb+ does for
        // remote peers (paper §3.1 lists compression in the QIPC spec).
        let bytes = qipc::write_message_compressed(&Message::response(value))?;
        self.state = PtState::Idle;
        Ok(PtAction::Send(bytes))
    }

    /// The QT (or backend) errored: encode a QIPC error response.
    pub fn on_error(&mut self, message: &str) -> PtAction {
        // kdb+ error frames: type -128 followed by a NUL-terminated
        // string.
        let mut payload = Vec::with_capacity(message.len() + 10);
        payload.push(1); // little endian
        payload.push(MsgType::Response.as_byte());
        payload.push(0);
        payload.push(0);
        let total = 8 + 1 + message.len() + 1;
        payload.extend_from_slice(&(total as u32).to_le_bytes());
        payload.push(0x80);
        payload.extend_from_slice(message.as_bytes());
        payload.push(0);
        self.state = PtState::Idle;
        PtAction::Send(payload)
    }
}

/// Query Translator states (Figure 4's stages made explicit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QtState {
    /// Nothing in flight.
    Idle,
    /// Binding the AST to XTRA (metadata lookups may suspend here).
    Algebrizing,
    /// Applying XTRA transformations.
    Optimizing,
    /// Emitting SQL text.
    Serializing,
    /// Translation finished; SQL available.
    Done,
    /// A stage failed; the FSM is discarding in-flight state before
    /// returning to `Idle`. Explicit so the trajectory records error
    /// recovery, and so a re-entrant caller never observes a
    /// half-translated FSM as `Idle`.
    Recovering,
}

impl QtState {
    /// Stable lower-case label, used as the metric label for the
    /// `xc_qt_transitions_total` counter family.
    pub fn name(self) -> &'static str {
        match self {
            QtState::Idle => "idle",
            QtState::Algebrizing => "algebrizing",
            QtState::Optimizing => "optimizing",
            QtState::Serializing => "serializing",
            QtState::Done => "done",
            QtState::Recovering => "recovering",
        }
    }

    const ALL: [QtState; 6] = [
        QtState::Idle,
        QtState::Algebrizing,
        QtState::Optimizing,
        QtState::Serializing,
        QtState::Done,
        QtState::Recovering,
    ];
}

/// One pre-resolved counter per QT state, so recording a transition is a
/// single atomic increment.
fn qt_transition_counter(state: QtState) -> &'static std::sync::Arc<obs::Counter> {
    static COUNTERS: std::sync::OnceLock<[std::sync::Arc<obs::Counter>; 6]> =
        std::sync::OnceLock::new();
    let all = COUNTERS.get_or_init(|| {
        let reg = obs::global_registry();
        QtState::ALL.map(|s| {
            reg.counter(&format!("xc_qt_transitions_total{{state=\"{}\"}}", s.name()))
        })
    });
    let idx = QtState::ALL.iter().position(|s| *s == state).unwrap();
    &all[idx]
}

/// The Query Translator FSM: drives one translation, recording the state
/// trajectory.
pub struct QueryTranslator {
    translator: Translator,
    state: QtState,
    trajectory: Vec<QtState>,
}

impl QueryTranslator {
    /// Wrap a configured translator.
    pub fn new(translator: Translator) -> Self {
        QueryTranslator { translator, state: QtState::Idle, trajectory: vec![QtState::Idle] }
    }

    /// Current state.
    pub fn state(&self) -> QtState {
        self.state
    }

    /// The states visited so far (used by tests and diagnostics).
    pub fn trajectory(&self) -> &[QtState] {
        &self.trajectory
    }

    fn transition(&mut self, to: QtState) {
        self.state = to;
        self.trajectory.push(to);
        qt_transition_counter(to).inc();
    }

    /// Translate one Q program, stepping through the stage states.
    pub fn translate(
        &mut self,
        q_text: &str,
        mdi: &dyn Mdi,
        scopes: &mut Scopes,
        temp_seq: &mut usize,
    ) -> QResult<Vec<Translation>> {
        self.transition(QtState::Algebrizing);
        // The inner translator times the stages; the FSM marks the
        // externally observable progress.
        let result = self.translator.translate_program(q_text, mdi, scopes, temp_seq);
        match &result {
            Ok(_) => {
                self.transition(QtState::Optimizing);
                self.transition(QtState::Serializing);
                self.transition(QtState::Done);
            }
            Err(_) => {
                // Error recovery is an explicit transition, not a
                // silent reset: Recovering discards in-flight state,
                // then the FSM is Idle and re-entrant again.
                self.transition(QtState::Recovering);
                self.transition(QtState::Idle);
            }
        }
        result
    }

    /// Acknowledge completion, returning to Idle for re-entrance.
    pub fn reset(&mut self) {
        self.transition(QtState::Idle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trust(_: &str, _: &str) -> bool {
        true
    }

    fn deny(_: &str, _: &str) -> bool {
        false
    }

    #[test]
    fn handshake_transitions_to_idle() {
        let mut pt = ProtocolTranslator::new();
        let hs = qipc::client_handshake("trader", "pw", 3);
        let actions = pt.on_bytes(&hs, &trust).unwrap();
        assert_eq!(actions.len(), 1);
        assert!(matches!(&actions[0], PtAction::Send(b) if b.len() == 1));
        assert_eq!(pt.state(), PtState::Idle);
    }

    #[test]
    fn bad_credentials_close_immediately() {
        let mut pt = ProtocolTranslator::new();
        let hs = qipc::client_handshake("intruder", "pw", 3);
        let actions = pt.on_bytes(&hs, &deny).unwrap();
        assert_eq!(actions, vec![PtAction::Close]);
        assert_eq!(pt.state(), PtState::Closed);
    }

    #[test]
    fn query_message_forwards_and_awaits() {
        let mut pt = ProtocolTranslator::new();
        let mut bytes = qipc::client_handshake("u", "p", 3);
        bytes.extend(qipc::write_message(&Message::query("select from t")).unwrap());
        let actions = pt.on_bytes(&bytes, &trust).unwrap();
        assert_eq!(actions.len(), 2);
        assert!(matches!(
            &actions[1],
            PtAction::ForwardQuery { text, respond: true } if text == "select from t"
        ));
        assert_eq!(pt.state(), PtState::AwaitResults);
    }

    #[test]
    fn results_produce_response_and_return_to_idle() {
        let mut pt = ProtocolTranslator::new();
        let mut bytes = qipc::client_handshake("u", "p", 3);
        bytes.extend(qipc::write_message(&Message::query("1+1")).unwrap());
        pt.on_bytes(&bytes, &trust).unwrap();
        let action = pt.on_results(Value::long(2)).unwrap();
        match action {
            PtAction::Send(payload) => {
                let (msg, _) = qipc::read_message(&payload).unwrap().unwrap();
                assert_eq!(msg.msg_type, MsgType::Response);
                assert!(msg.value.q_eq(&Value::long(2)));
            }
            other => panic!("expected send, got {other:?}"),
        }
        assert_eq!(pt.state(), PtState::Idle);
    }

    #[test]
    fn results_in_wrong_state_are_a_protocol_violation() {
        let mut pt = ProtocolTranslator::new();
        assert!(pt.on_results(Value::long(1)).is_err());
    }

    #[test]
    fn partial_messages_resume_on_next_bytes() {
        let mut pt = ProtocolTranslator::new();
        let hs = qipc::client_handshake("u", "p", 3);
        // Feed one byte at a time.
        let mut got_send = false;
        for b in &hs {
            for a in pt.on_bytes(&[*b], &trust).unwrap() {
                if matches!(a, PtAction::Send(_)) {
                    got_send = true;
                }
            }
        }
        assert!(got_send);
        assert_eq!(pt.state(), PtState::Idle);
    }

    #[test]
    fn error_frames_encode_kdb_style() {
        let mut pt = ProtocolTranslator::new();
        let mut bytes = qipc::client_handshake("u", "p", 3);
        bytes.extend(qipc::write_message(&Message::query("bad")).unwrap());
        pt.on_bytes(&bytes, &trust).unwrap();
        match pt.on_error("'type: nope") {
            PtAction::Send(payload) => {
                assert_eq!(payload[8], 0x80, "kdb+ error marker");
                assert_eq!(pt.state(), PtState::Idle);
            }
            other => panic!("expected send, got {other:?}"),
        }
    }

    #[test]
    fn qt_walks_the_stage_states() {
        use algebrizer::{StaticMdi, TableMeta};
        use xtra::{ColumnDef, SqlType};
        let mdi = StaticMdi::new().with(TableMeta::new(
            "t",
            vec![ColumnDef::new("x", SqlType::Int8)],
        ));
        let mut scopes = Scopes::new();
        let mut seq = 0;
        let mut qt = QueryTranslator::new(Translator::new());
        qt.translate("select x from t", &mdi, &mut scopes, &mut seq).unwrap();
        assert_eq!(
            qt.trajectory(),
            &[
                QtState::Idle,
                QtState::Algebrizing,
                QtState::Optimizing,
                QtState::Serializing,
                QtState::Done
            ]
        );
        qt.reset();
        assert_eq!(qt.state(), QtState::Idle);
    }

    #[test]
    fn qt_transitions_are_counted_in_the_global_registry() {
        use algebrizer::{StaticMdi, TableMeta};
        use xtra::{ColumnDef, SqlType};
        let reg = obs::global_registry();
        let key = "xc_qt_transitions_total{state=\"done\"}";
        let before = reg.counter_value(key);
        let mdi = StaticMdi::new()
            .with(TableMeta::new("t", vec![ColumnDef::new("x", SqlType::Int8)]));
        let mut scopes = Scopes::new();
        let mut seq = 0;
        let mut qt = QueryTranslator::new(Translator::new());
        qt.translate("select x from t", &mdi, &mut scopes, &mut seq).unwrap();
        assert_eq!(reg.counter_value(key), before + 1);
    }

    #[test]
    fn qt_failure_recovers_explicitly_then_returns_to_idle() {
        let mdi = algebrizer::StaticMdi::new();
        let mut scopes = Scopes::new();
        let mut seq = 0;
        let mut qt = QueryTranslator::new(Translator::new());
        assert!(qt.translate("select from ghost", &mdi, &mut scopes, &mut seq).is_err());
        assert_eq!(qt.state(), QtState::Idle);
        assert!(
            qt.trajectory().contains(&QtState::Recovering),
            "error recovery is an observable transition: {:?}",
            qt.trajectory()
        );
        // Re-entrant after recovery.
        assert!(qt.translate("select from ghost", &mdi, &mut scopes, &mut seq).is_err());
        assert_eq!(qt.state(), QtState::Idle);
    }

    #[test]
    fn oversized_qipc_frame_is_a_protocol_error() {
        let mut pt = ProtocolTranslator::with_max_frame(64);
        let mut bytes = qipc::client_handshake("u", "p", 3);
        // A syntactically valid header whose length declares 1 MiB.
        bytes.extend_from_slice(&[1, 1, 0, 0]);
        bytes.extend_from_slice(&(1024u32 * 1024).to_le_bytes());
        let err = pt.on_bytes(&bytes, &trust).unwrap_err();
        assert!(err.to_string().contains("exceeding"), "{err}");
    }

    #[test]
    fn partial_frames_are_visible_to_the_socket_loop() {
        let mut pt = ProtocolTranslator::new();
        let hs = qipc::client_handshake("u", "p", 3);
        pt.on_bytes(&hs, &trust).unwrap();
        assert!(!pt.has_partial(), "idle peer owes nothing");
        let msg = qipc::write_message(&Message::query("1+1")).unwrap();
        pt.on_bytes(&msg[..4], &trust).unwrap();
        assert!(pt.has_partial(), "mid-frame stall must be detectable");
    }
}
