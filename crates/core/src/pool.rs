//! Shared backend connection pool (ROADMAP item 1).
//!
//! Before this pool, every gateway session pinned one backend TCP
//! connection for its whole lifetime — ten thousand mostly-idle Q
//! sessions meant ten thousand backend connections. [`BackendPool`]
//! breaks that coupling: a bounded set of authenticated
//! [`PgWireBackend`] connections, checked out **per statement** and
//! returned the moment the response stream drains.
//!
//! ## Checkout protocol
//!
//! A checkout prefers, in order: the connection this session used last
//! (its temp-table state is already materialized there), any connection
//! free of other sessions' temp-table state, any idle connection. A
//! connection idle past the health threshold is pinged under an
//! explicit deadline first — a failed or stalled ping evicts it (the
//! TCP socket is closed, the slot freed) and the checkout moves on.
//! When everything is busy and the pool is at size, the caller waits;
//! if the deadline expires the checkout fails with a typed
//! [`WireError`] carrying both spellings of the overload signal —
//! SQLSTATE `53300` for the PG side, `'limit` for the kdb+ side — and
//! never hangs.
//!
//! ## Session state on pooled connections
//!
//! PR 2's reconnect logic journals session-establishment DDL (the
//! `CREATE TEMPORARY TABLE` statements materializing Q variables) and
//! replays it after a reconnect. With pooling the journal must live
//! per *session*, not per connection: a statement may land on any
//! pooled connection, so [`PooledBackend`] carries its session's
//! journal and re-materializes whatever is missing on the connection it
//! draws — a suffix replay when it gets its own connection back, a
//! connection reset (fresh TCP session, so the previous owner's temp
//! tables die) plus full replay when it inherits a tainted one.

use crate::backend::{share, Backend, SharedBackend};
use crate::endpoint::BackendFactory;
use crate::gateway::{non_idempotent_error, summarize, Credentials, PgWireBackend, StatementClass};
use crate::wire::{RetryPolicy, WireError, WireErrorKind, WireTimeouts};
use pgdb::QueryResult;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Pool-wide counters and gauges, process-global so `SHOW metrics` /
/// `\metrics` surface them alongside the wire and net families.
pub(crate) struct PoolMetrics {
    checkouts: Arc<obs::Counter>,
    checkout_wait: Arc<obs::Histogram>,
    evictions: Arc<obs::Counter>,
    dials: Arc<obs::Counter>,
    resets: Arc<obs::Counter>,
    exhausted: Arc<obs::Counter>,
    conns_open: Arc<obs::Gauge>,
    conns_idle: Arc<obs::Gauge>,
}

pub(crate) fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = obs::global_registry();
        PoolMetrics {
            checkouts: reg.counter("pool_checkouts_total"),
            checkout_wait: reg.histogram("pool_checkout_wait_seconds"),
            evictions: reg.counter("pool_evictions_total"),
            dials: reg.counter("pool_dials_total"),
            resets: reg.counter("pool_resets_total"),
            exhausted: reg.counter("pool_exhausted_total"),
            conns_open: reg.gauge("pool_conns_open"),
            conns_idle: reg.gauge("pool_conns_idle"),
        }
    })
}

/// Pool sizing and health policy.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Maximum concurrently open backend connections.
    pub size: usize,
    /// How long a checkout may wait for a free connection before it
    /// fails with the typed exhaustion error.
    pub checkout_deadline: Duration,
    /// A connection idle longer than this is health-checked before it
    /// is handed out.
    pub health_idle: Duration,
    /// Deadline for the health-check ping; a stalled ping trips this
    /// and evicts the connection instead of hanging the checkout.
    pub health_deadline: Option<Duration>,
    /// Wire deadlines applied to every pooled connection.
    pub timeouts: WireTimeouts,
    /// Retry policy for statement execution over the pool.
    pub retry: RetryPolicy,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            size: 8,
            checkout_deadline: Duration::from_millis(5000),
            health_idle: Duration::from_secs(30),
            health_deadline: Some(Duration::from_secs(2)),
            timeouts: WireTimeouts::default(),
            retry: RetryPolicy::default(),
        }
    }
}

impl PoolConfig {
    /// Defaults overridden by `HQ_POOL_SIZE` and `HQ_POOL_CHECKOUT_MS`.
    pub fn from_env() -> PoolConfig {
        let mut cfg = PoolConfig::default();
        if let Some(n) = std::env::var("HQ_POOL_SIZE").ok().and_then(|v| v.parse().ok()) {
            if n > 0 {
                cfg.size = n;
            }
        }
        if let Some(ms) = std::env::var("HQ_POOL_CHECKOUT_MS").ok().and_then(|v| v.parse().ok()) {
            cfg.checkout_deadline = Duration::from_millis(ms);
        }
        cfg
    }
}

/// One pooled connection plus the bookkeeping that decides how much
/// session re-materialization a checkout needs.
struct PoolConn {
    backend: PgWireBackend,
    last_used: Instant,
    /// The session whose journal was last replayed onto this
    /// connection, and how far.
    owner: Option<u64>,
    owner_journal_len: usize,
    /// Carries session-scoped backend state (temp tables): handing it
    /// to a *different* session requires a connection reset first.
    tainted: bool,
}

struct PoolState {
    idle: Vec<PoolConn>,
    /// Connections alive right now: idle + checked out + being dialed.
    open: usize,
}

/// A bounded, health-checked pool of authenticated backend connections.
pub struct BackendPool {
    addr: String,
    creds: Credentials,
    cfg: PoolConfig,
    state: Mutex<PoolState>,
    available: Condvar,
    next_session: AtomicU64,
    /// Durability advertisement from the most recent dial (sessions ask
    /// before their first statement runs).
    durable: AtomicBool,
}

impl BackendPool {
    /// Create a pool dialing `addr` with `creds`. No connection is
    /// opened until the first checkout needs one.
    pub fn new(addr: &str, creds: &Credentials, cfg: PoolConfig) -> Arc<BackendPool> {
        Arc::new(BackendPool {
            addr: addr.to_string(),
            creds: creds.clone(),
            cfg,
            state: Mutex::new(PoolState { idle: Vec::new(), open: 0 }),
            available: Condvar::new(),
            next_session: AtomicU64::new(1),
            durable: AtomicBool::new(false),
        })
    }

    /// A [`BackendFactory`] for [`crate::endpoint::QipcEndpoint`]: every
    /// accepted Q client gets a [`PooledBackend`] session view over this
    /// shared pool.
    pub fn session_factory(self: &Arc<Self>) -> BackendFactory {
        let pool = Arc::clone(self);
        Arc::new(move || Ok(share(PooledBackend::new(Arc::clone(&pool)))))
    }

    /// Open a standalone session view over the pool.
    pub fn session_backend(self: &Arc<Self>) -> SharedBackend {
        share(PooledBackend::new(Arc::clone(self)))
    }

    /// Connections currently open (idle + checked out).
    pub fn open_connections(&self) -> usize {
        self.state.lock().unwrap().open
    }

    /// Connections currently idle in the pool.
    pub fn idle_connections(&self) -> usize {
        self.state.lock().unwrap().idle.len()
    }

    /// Check a connection out for one statement on behalf of `session`.
    fn checkout(&self, session: u64) -> Result<PoolConn, WireError> {
        let started = Instant::now();
        let m = pool_metrics();
        let mut state = self.state.lock().unwrap();
        loop {
            // Best idle candidate: my own connection (state already
            // materialized), else an untainted one, else any.
            if !state.idle.is_empty() {
                let pick = state
                    .idle
                    .iter()
                    .position(|c| c.owner == Some(session))
                    .or_else(|| state.idle.iter().position(|c| !c.tainted))
                    .unwrap_or(0);
                let mut conn = state.idle.swap_remove(pick);
                m.conns_idle.add(-1);
                drop(state);
                // Stale connection: prove it alive before handing it
                // out. A dead or stalled backend trips the ping
                // deadline, the connection is evicted (closed, slot
                // freed), and the checkout moves on.
                if conn.last_used.elapsed() >= self.cfg.health_idle
                    && conn.backend.ping(self.cfg.health_deadline).is_err()
                {
                    self.evict(conn);
                    state = self.state.lock().unwrap();
                    continue;
                }
                m.checkouts.inc();
                m.checkout_wait.observe_secs(started.elapsed().as_secs_f64());
                return Ok(conn);
            }
            // Room to grow: dial a fresh connection. The slot is
            // reserved before the dial so concurrent checkouts cannot
            // overshoot the bound.
            if state.open < self.cfg.size {
                state.open += 1;
                m.conns_open.add(1);
                drop(state);
                match PgWireBackend::connect_with(
                    &self.addr,
                    &self.creds,
                    self.cfg.timeouts,
                    RetryPolicy::no_retry(),
                ) {
                    Ok(backend) => {
                        m.dials.inc();
                        self.durable.store(Backend::durable(&backend), Ordering::Relaxed);
                        m.checkouts.inc();
                        m.checkout_wait.observe_secs(started.elapsed().as_secs_f64());
                        return Ok(PoolConn {
                            backend,
                            last_used: Instant::now(),
                            owner: None,
                            owner_journal_len: 0,
                            tainted: false,
                        });
                    }
                    Err(e) => {
                        let mut state = self.state.lock().unwrap();
                        state.open -= 1;
                        m.conns_open.add(-1);
                        drop(state);
                        self.available.notify_one();
                        return Err(e);
                    }
                }
            }
            // Saturated: wait for a return or an eviction, bounded by
            // the checkout deadline — exhaustion is an error, never a
            // hang.
            let elapsed = started.elapsed();
            if elapsed >= self.cfg.checkout_deadline {
                m.exhausted.inc();
                return Err(WireError::new(
                    WireErrorKind::Rejected,
                    format!(
                        "backend pool exhausted: all {} connections busy for {}ms \
                         (SQLSTATE 53300 / 'limit: too many connections)",
                        self.cfg.size,
                        self.cfg.checkout_deadline.as_millis()
                    ),
                ));
            }
            let (s, _) = self
                .available
                .wait_timeout(state, self.cfg.checkout_deadline - elapsed)
                .unwrap();
            state = s;
        }
    }

    /// Return a healthy connection to the idle set.
    fn give_back(&self, mut conn: PoolConn) {
        conn.last_used = Instant::now();
        let m = pool_metrics();
        let mut state = self.state.lock().unwrap();
        state.idle.push(conn);
        m.conns_idle.add(1);
        drop(state);
        self.available.notify_one();
    }

    /// Destroy a connection (closes the socket) and free its slot.
    fn evict(&self, conn: PoolConn) {
        drop(conn);
        let m = pool_metrics();
        let mut state = self.state.lock().unwrap();
        state.open -= 1;
        m.conns_open.add(-1);
        m.evictions.inc();
        drop(state);
        self.available.notify_one();
    }
}

impl Drop for BackendPool {
    fn drop(&mut self) {
        // Idle connections die with the pool; keep the global gauges
        // honest (these are plain closures, not failures, so they do
        // not count as evictions).
        let m = pool_metrics();
        let state = self.state.get_mut().unwrap();
        m.conns_idle.add(-(state.idle.len() as i64));
        m.conns_open.add(-(state.open as i64));
        state.idle.clear();
        state.open = 0;
    }
}

/// A gateway session's view over a shared [`BackendPool`]: implements
/// [`Backend`] by checking a connection out per statement and carrying
/// the session's DDL journal so its temp-table state re-materializes on
/// whichever connection the statement lands on.
pub struct PooledBackend {
    pool: Arc<BackendPool>,
    id: u64,
    /// This *session's* establishment journal (per-session, not
    /// per-connection — see the module docs).
    journal: Vec<String>,
    reconnects: u64,
}

impl PooledBackend {
    /// Open a new session view over `pool`.
    pub fn new(pool: Arc<BackendPool>) -> PooledBackend {
        let id = pool.next_session.fetch_add(1, Ordering::Relaxed);
        PooledBackend { pool, id, journal: Vec::new(), reconnects: 0 }
    }

    /// This session's establishment journal (diagnostics/tests).
    pub fn journal(&self) -> &[String] {
        &self.journal
    }

    /// Bring `conn` up to this session's state: nothing if it is already
    /// mine and current, a suffix replay if it is mine but stale, a
    /// reset (fresh backend session — the previous owner's temp tables
    /// die with the old TCP session) plus full replay if it carries
    /// another session's state.
    fn ensure_session(&self, conn: &mut PoolConn) -> Result<(), WireError> {
        let replay_from = if conn.owner == Some(self.id) {
            if conn.owner_journal_len == self.journal.len() {
                return Ok(());
            }
            conn.owner_journal_len.min(self.journal.len())
        } else {
            if conn.tainted {
                conn.backend.reset_connection()?;
                pool_metrics().resets.inc();
                conn.tainted = false;
            }
            0
        };
        for sql in &self.journal[replay_from..] {
            conn.backend.run_statement(sql)?;
        }
        conn.owner = Some(self.id);
        conn.owner_journal_len = self.journal.len();
        conn.tainted = conn.tainted || !self.journal.is_empty();
        Ok(())
    }
}

impl Backend for PooledBackend {
    fn execute_sql(&mut self, sql: &str) -> Result<QueryResult, WireError> {
        let class = StatementClass::of(sql);
        let retry = self.pool.cfg.retry;
        let mut attempt: u32 = 1;
        loop {
            if attempt > 1 {
                std::thread::sleep(retry.backoff(attempt - 1));
            }
            let mut conn = match self.pool.checkout(self.id) {
                Ok(c) => c,
                Err(e) if e.retryable() && attempt < retry.max_attempts => {
                    attempt += 1;
                    continue;
                }
                Err(e) if e.retryable() => {
                    return Err(retries_exhausted(sql, attempt, retry.max_attempts, &e));
                }
                Err(e) => return Err(e),
            };
            if let Err(e) = self.ensure_session(&mut conn) {
                self.pool.evict(conn);
                if e.retryable() && attempt < retry.max_attempts {
                    self.reconnects += 1;
                    attempt += 1;
                    continue;
                }
                if e.retryable() {
                    return Err(retries_exhausted(sql, attempt, retry.max_attempts, &e));
                }
                return Err(e);
            }
            match conn.backend.run_statement(sql) {
                Ok(result) => {
                    if class == StatementClass::SessionDdl {
                        self.journal.push(sql.to_string());
                        conn.owner_journal_len = self.journal.len();
                        conn.tainted = true;
                    }
                    conn.owner = Some(self.id);
                    self.pool.give_back(conn);
                    return Ok(result);
                }
                Err(e) if e.retryable() => {
                    // The connection died mid-statement: it leaves the
                    // pool for good (evicted, socket closed), and the
                    // statement's fate decides what happens next.
                    let durable = Backend::durable(&conn.backend);
                    self.pool.evict(conn);
                    if !class.replayable() {
                        return Err(non_idempotent_error(sql, durable, &e));
                    }
                    self.reconnects += 1;
                    if attempt >= retry.max_attempts {
                        return Err(retries_exhausted(sql, attempt, retry.max_attempts, &e));
                    }
                    attempt += 1;
                }
                Err(e) => {
                    // A SQL-level error travels on a healthy connection.
                    self.pool.give_back(conn);
                    return Err(e);
                }
            }
        }
    }

    fn describe(&self) -> String {
        format!("pooled pg-wire backend at {} (session {})", self.pool.addr, self.id)
    }

    fn reconnects(&self) -> u64 {
        self.reconnects
    }

    fn durable(&self) -> bool {
        self.pool.durable.load(Ordering::Relaxed)
    }
}

/// Mirror of the gateway's retry-exhaustion error (same shape so pooled
/// and dedicated paths read alike in logs and tests).
fn retries_exhausted(sql: &str, attempt: u32, max: u32, failure: &WireError) -> WireError {
    WireError::new(
        WireErrorKind::RetriesExhausted,
        format!(
            "{attempt} of {max} attempts failed for ({}); last failure: {failure}",
            summarize(sql)
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgdb::server::{PgServer, ServerConfig};
    use pgdb::{Cell, QueryResult};

    fn start_server() -> PgServer {
        PgServer::start(pgdb::Db::new(), "127.0.0.1:0", ServerConfig::default()).unwrap()
    }

    fn creds() -> Credentials {
        Credentials { user: "pool".into(), password: String::new(), database: "hist".into() }
    }

    #[test]
    fn statements_share_a_bounded_connection_set() {
        let server = start_server();
        let cfg = PoolConfig { size: 2, ..PoolConfig::default() };
        let pool = BackendPool::new(&server.addr.to_string(), &creds(), cfg);
        let mut a = PooledBackend::new(Arc::clone(&pool));
        let mut b = PooledBackend::new(Arc::clone(&pool));
        let mut c = PooledBackend::new(Arc::clone(&pool));
        a.execute_sql("CREATE TABLE t (x bigint)").unwrap();
        a.execute_sql("INSERT INTO t VALUES (1)").unwrap();
        for s in [&mut a, &mut b, &mut c] {
            match s.execute_sql("SELECT x FROM t").unwrap() {
                QueryResult::Rows(rows) => assert_eq!(rows.data[0][0], Cell::Int(1)),
                other => panic!("expected rows, got {other:?}"),
            }
        }
        // Three sessions, at most two connections ever open.
        assert!(pool.open_connections() <= 2, "open={}", pool.open_connections());
        server.detach();
    }

    #[test]
    fn temp_table_state_rematerializes_across_sessions_sharing_a_conn() {
        let server = start_server();
        // One connection, two sessions with different temp tables: every
        // statement swap forces a reset + replay, and neither session
        // ever sees the other's state.
        let cfg = PoolConfig { size: 1, ..PoolConfig::default() };
        let pool = BackendPool::new(&server.addr.to_string(), &creds(), cfg);
        let mut a = PooledBackend::new(Arc::clone(&pool));
        let mut b = PooledBackend::new(Arc::clone(&pool));
        a.execute_sql("CREATE TEMPORARY TABLE \"HQ_TEMP_A\" AS SELECT 1 AS x").unwrap();
        b.execute_sql("CREATE TEMPORARY TABLE \"HQ_TEMP_B\" AS SELECT 2 AS x").unwrap();
        // a's temp table re-materializes on the (shared) connection…
        match a.execute_sql("SELECT x FROM \"HQ_TEMP_A\"").unwrap() {
            QueryResult::Rows(rows) => assert_eq!(rows.data[0][0], Cell::Int(1)),
            other => panic!("expected rows, got {other:?}"),
        }
        // …and b must NOT see a's table after the swap back.
        assert!(b.execute_sql("SELECT x FROM \"HQ_TEMP_A\"").is_err());
        match b.execute_sql("SELECT x FROM \"HQ_TEMP_B\"").unwrap() {
            QueryResult::Rows(rows) => assert_eq!(rows.data[0][0], Cell::Int(2)),
            other => panic!("expected rows, got {other:?}"),
        }
        assert_eq!(pool.open_connections(), 1);
        server.detach();
    }

    #[test]
    fn exhausted_pool_fails_typed_within_deadline_not_a_hang() {
        let server = start_server();
        let cfg = PoolConfig {
            size: 1,
            checkout_deadline: Duration::from_millis(200),
            ..PoolConfig::default()
        };
        let pool = BackendPool::new(&server.addr.to_string(), &creds(), cfg);
        // Hold the single connection hostage.
        let hostage = pool.checkout(999).unwrap();
        let mut s = PooledBackend::new(Arc::clone(&pool));
        let t0 = Instant::now();
        let err = s.execute_sql("SELECT 1").unwrap_err();
        assert!(t0.elapsed() < Duration::from_secs(3), "checkout hung: {:?}", t0.elapsed());
        assert_eq!(err.kind, WireErrorKind::Rejected, "{err}");
        assert!(err.message.contains("53300"), "{err}");
        assert!(err.message.contains("'limit"), "{err}");
        // Release: the next checkout succeeds.
        pool.give_back(hostage);
        assert!(s.execute_sql("SELECT 1").is_ok());
        server.detach();
    }
}
