//! Backend-pool chaos suite: deterministic fault injection (via the
//! `chaosnet` proxy) against [`hyperq::BackendPool`] / per-statement
//! checkout.
//!
//! Every scenario asserts BOTH the typed outcome the caller sees and
//! the pool's internal accounting: a connection that dies under fault
//! is *evicted* (socket closed, slot freed, counted), never leaked.
//! Each test finishes with the leak invariant from the issue:
//! `pool_dials_total − pool_evictions_total == open connections`.
//!
//! The tests share the process-global metrics registry, so they
//! serialize on a file-local mutex to keep the per-test counter deltas
//! deterministic.

use chaosnet::{ChaosProxy, FaultPlan, LegFaults};
use hyperq::gateway::Credentials;
use hyperq::{Backend, BackendPool, PoolConfig, PooledBackend};
use hyperq::{RetryPolicy, WireErrorKind};
use pgdb::server::{PgServer, ServerConfig};
use pgdb::{Cell, QueryResult};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn creds() -> Credentials {
    Credentials { user: "u".into(), password: String::new(), database: "hist".into() }
}

/// pgdb TCP server + chaos proxy in front of it.
fn chaotic_backend() -> (PgServer, ChaosProxy) {
    let server = PgServer::start(pgdb::Db::new(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let proxy = ChaosProxy::start(&server.addr.to_string()).unwrap();
    (server, proxy)
}

/// Byte length of the startup packet a pool dial sends for [`creds`] —
/// used to place faults precisely past the handshake.
fn startup_len() -> u64 {
    let mut buf = bytes::BytesMut::new();
    pgwire::codec::encode_frontend(
        &pgwire::messages::FrontendMessage::Startup {
            params: vec![
                ("user".to_string(), "u".to_string()),
                ("database".to_string(), "hist".to_string()),
            ],
        },
        &mut buf,
    );
    buf.len() as u64
}

/// Byte length of one simple-query frame.
fn query_len(sql: &str) -> u64 {
    let mut buf = bytes::BytesMut::new();
    pgwire::codec::encode_frontend(
        &pgwire::messages::FrontendMessage::Query(sql.to_string()),
        &mut buf,
    );
    buf.len() as u64
}

/// Snapshot of the global pool counters, for per-test deltas.
struct Balance {
    dials: u64,
    evictions: u64,
}

fn balance() -> Balance {
    let reg = obs::global_registry();
    Balance {
        dials: reg.counter_value("pool_dials_total"),
        evictions: reg.counter_value("pool_evictions_total"),
    }
}

/// The suite-wide leak invariant: every dialed connection is either
/// still open or was explicitly evicted.
fn assert_no_leak(before: &Balance, pool: &BackendPool) {
    let after = balance();
    let dials = after.dials - before.dials;
    let evictions = after.evictions - before.evictions;
    assert_eq!(
        dials - evictions,
        pool.open_connections() as u64,
        "pooled connection leaked: {dials} dials − {evictions} evictions ≠ {} open",
        pool.open_connections()
    );
}

/// A backend connection severed between statements: the next statement
/// on a no-retry pool surfaces a typed error, the dead connection is
/// evicted (not leaked), and the next checkout transparently re-dials.
#[test]
fn severed_connection_is_evicted_and_the_next_checkout_redials() {
    let _g = serial();
    let (server, proxy) = chaotic_backend();
    let b0 = balance();
    let cfg = PoolConfig { retry: RetryPolicy::no_retry(), ..PoolConfig::default() };
    let pool = BackendPool::new(&proxy.addr().to_string(), &creds(), cfg);
    let mut s = PooledBackend::new(Arc::clone(&pool));

    s.execute_sql("SELECT 1").unwrap();
    assert_eq!(pool.open_connections(), 1);
    proxy.sever_active();

    let err = s.execute_sql("SELECT 1").unwrap_err();
    assert_eq!(err.kind, WireErrorKind::RetriesExhausted, "{err}");
    assert!(err.message.contains("1 of 1 attempts"), "{err}");
    assert_eq!(pool.open_connections(), 0, "dead connection must be evicted, not leaked");

    // The pool recovers by itself: the next checkout dials afresh.
    assert!(s.execute_sql("SELECT 1").is_ok());
    assert_eq!(pool.open_connections(), 1);
    assert_eq!(proxy.connections(), 2);
    assert_no_leak(&b0, &pool);

    // The pool family is visible in the standard metrics dump.
    let dump = obs::global_registry().render_prometheus();
    for name in ["pool_checkouts_total", "pool_checkout_wait_seconds", "pool_evictions_total"] {
        assert!(dump.contains(name), "{name} missing from metrics dump");
    }
    server.detach();
}

/// With retries enabled the sever is invisible: the statement lands on
/// a fresh connection and the session's temp-table journal re-plays
/// there first — same recovery the dedicated gateway gives, now across
/// a shared pool.
#[test]
fn sever_is_transparently_retried_with_journal_replay() {
    let _g = serial();
    let (server, proxy) = chaotic_backend();
    let b0 = balance();
    let cfg = PoolConfig { retry: RetryPolicy::immediate(3), ..PoolConfig::default() };
    let pool = BackendPool::new(&proxy.addr().to_string(), &creds(), cfg);
    let mut s = PooledBackend::new(Arc::clone(&pool));

    s.execute_sql("CREATE TABLE base (x bigint)").unwrap();
    s.execute_sql("INSERT INTO base VALUES (7), (9)").unwrap();
    s.execute_sql("CREATE TEMPORARY TABLE \"HQ_TEMP_1\" AS SELECT x FROM base WHERE x > 8")
        .unwrap();
    assert_eq!(s.journal().len(), 1);

    // The backend "crashes": the temp table dies with its TCP session.
    proxy.sever_active();

    match s.execute_sql("SELECT x FROM \"HQ_TEMP_1\"").unwrap() {
        QueryResult::Rows(rows) => {
            assert_eq!(rows.data.len(), 1);
            assert_eq!(rows.data[0][0], Cell::Int(9));
        }
        other => panic!("expected rows, got {other:?}"),
    }
    assert_eq!(s.reconnects(), 1, "exactly one transparent reconnect");
    assert_eq!(proxy.connections(), 2);
    assert_eq!(pool.open_connections(), 1);
    assert_no_leak(&b0, &pool);
    server.detach();
}

/// A mutation in flight when the connection dies is refused with the
/// same typed non-idempotent error the dedicated gateway raises — and
/// is NOT silently replayed (that could apply it twice).
#[test]
fn mutation_during_sever_is_refused_not_replayed() {
    let _g = serial();
    let (server, proxy) = chaotic_backend();
    let b0 = balance();
    let cfg = PoolConfig { retry: RetryPolicy::immediate(5), ..PoolConfig::default() };
    let pool = BackendPool::new(&proxy.addr().to_string(), &creds(), cfg);
    let mut s = PooledBackend::new(Arc::clone(&pool));

    s.execute_sql("CREATE TABLE t (x bigint)").unwrap();
    proxy.sever_active();

    let err = s.execute_sql("INSERT INTO t VALUES (1)").unwrap_err();
    assert_eq!(err.kind, WireErrorKind::NonIdempotent, "{err}");
    assert!(err.message.contains("a replay could apply the mutation twice"), "{err}");
    assert_eq!(s.reconnects(), 0, "no replay may be attempted for the write");
    assert_eq!(pool.open_connections(), 0, "the dead connection must still be evicted");

    // Re-issued by the caller (the contract of the error): exactly one
    // row lands.
    s.execute_sql("INSERT INTO t VALUES (1)").unwrap();
    match s.execute_sql("SELECT count(*) AS n FROM t").unwrap() {
        QueryResult::Rows(rows) => assert_eq!(rows.data[0][0], Cell::Int(1)),
        other => panic!("expected rows, got {other:?}"),
    }
    assert_no_leak(&b0, &pool);
    server.detach();
}

/// A health check against a stalled backend trips the ping deadline,
/// the connection is evicted (not leaked, and the checkout does not
/// hang), and the statement proceeds on a fresh dial — invisibly to
/// the caller.
#[test]
fn stalled_health_check_trips_deadline_and_evicts() {
    let _g = serial();
    let (server, proxy) = chaotic_backend();
    let b0 = balance();
    // Connection 1: handshake and the first statement at full speed;
    // every upstream frame after that (i.e. the health-check ping) is
    // stalled far past the ping deadline.
    proxy.push_plan(FaultPlan {
        to_upstream: LegFaults {
            delay: Some(Duration::from_secs(5)),
            delay_after: startup_len() + query_len("SELECT 1"),
            ..LegFaults::clean()
        },
        ..FaultPlan::clean()
    });
    let cfg = PoolConfig {
        health_idle: Duration::from_millis(50),
        health_deadline: Some(Duration::from_millis(100)),
        retry: RetryPolicy::no_retry(),
        ..PoolConfig::default()
    };
    let pool = BackendPool::new(&proxy.addr().to_string(), &creds(), cfg);
    let mut s = PooledBackend::new(Arc::clone(&pool));

    s.execute_sql("SELECT 1").unwrap();
    // Let the connection go stale so the next checkout health-checks it.
    std::thread::sleep(Duration::from_millis(80));

    let t0 = Instant::now();
    s.execute_sql("SELECT 1").unwrap();
    let elapsed = t0.elapsed();
    assert!(elapsed < Duration::from_secs(2), "stalled ping must trip its deadline, not hang ({elapsed:?})");
    assert_eq!(proxy.connections(), 2, "the stalled connection must be replaced by a fresh dial");
    assert_eq!(pool.open_connections(), 1);
    let evicted = balance().evictions - b0.evictions;
    assert_eq!(evicted, 1, "the stalled connection must be evicted, not returned to the pool");
    assert_no_leak(&b0, &pool);
    server.detach();
}

/// Pool exhaustion under load: when every connection is busy past the
/// checkout deadline the caller gets the typed overload error — both
/// SQLSTATE 53300 and the kdb+ `'limit` spelling — within the deadline,
/// never a hang; and the very next checkout after the load drains
/// succeeds.
#[test]
fn exhausted_pool_times_out_typed_under_load() {
    let _g = serial();
    let (server, proxy) = chaotic_backend();
    let b0 = balance();
    // Connection 1: the handshake is instant but every statement frame
    // is delayed 800ms — the session that draws this connection holds
    // the pool's single slot that long.
    proxy.push_plan(FaultPlan {
        to_upstream: LegFaults {
            delay: Some(Duration::from_millis(800)),
            delay_after: startup_len(),
            ..LegFaults::clean()
        },
        ..FaultPlan::clean()
    });
    let cfg = PoolConfig {
        size: 1,
        checkout_deadline: Duration::from_millis(150),
        retry: RetryPolicy::no_retry(),
        ..PoolConfig::default()
    };
    let pool = BackendPool::new(&proxy.addr().to_string(), &creds(), cfg);

    let hog = {
        let pool = Arc::clone(&pool);
        std::thread::spawn(move || {
            let mut a = PooledBackend::new(pool);
            a.execute_sql("SELECT 1").unwrap();
        })
    };
    // Wait until the hog is definitely mid-statement on the only slot.
    std::thread::sleep(Duration::from_millis(200));

    let mut b = PooledBackend::new(Arc::clone(&pool));
    let t0 = Instant::now();
    let err = b.execute_sql("SELECT 1").unwrap_err();
    let elapsed = t0.elapsed();
    assert!(elapsed < Duration::from_millis(600), "exhaustion must trip the deadline, not hang ({elapsed:?})");
    assert_eq!(err.kind, WireErrorKind::Rejected, "{err}");
    assert!(err.message.contains("SQLSTATE 53300"), "{err}");
    assert!(err.message.contains("'limit: too many connections"), "{err}");

    hog.join().unwrap();
    // The load drained: the same session's next statement succeeds on
    // the returned connection.
    assert!(b.execute_sql("SELECT 1").is_ok());
    assert_eq!(pool.open_connections(), 1, "exhaustion must not consume the slot");
    assert_no_leak(&b0, &pool);
    server.detach();
}
