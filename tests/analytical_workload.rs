use hyperq::loader;
use hyperq::HyperQSession;
use hyperq_workload::analytical::{analytical_workload, small_spec, tables};

#[test]
fn all_25_analytical_queries_execute_end_to_end() {
    let db = pgdb::Db::new();
    let mut s = HyperQSession::with_direct(&db);
    let spec = small_spec();
    for (name, table) in tables(&spec) {
        loader::load_table(&mut s, &name, &table).unwrap();
    }
    for q in analytical_workload(&spec) {
        let v = s
            .execute(&q.text)
            .unwrap_or_else(|e| panic!("query {} failed: {e}\n{}", q.id, q.text));
        assert!(
            matches!(v, qlang::Value::Table(_) | qlang::Value::KeyedTable(_)),
            "query {} returned unexpected shape",
            q.id
        );
    }
}
