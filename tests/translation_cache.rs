//! Translation-cache behavior through the public session API: repeated
//! Q statements skip the translation pipeline, every state mutation
//! that could make a cached translation stale invalidates, and caching
//! is semantically invisible (cache-off output is byte-identical).

use hyperq::{loader, HyperQSession, SessionConfig};
use qlang::value::{Table, Value};

fn trades() -> Table {
    Table::new(
        vec!["Symbol".into(), "Price".into(), "Size".into()],
        vec![
            Value::Symbols(vec!["GOOG".into(), "IBM".into(), "GOOG".into()]),
            Value::Floats(vec![100.0, 50.0, 101.5]),
            Value::Longs(vec![10, 20, 30]),
        ],
    )
    .unwrap()
}

fn session() -> HyperQSession {
    let db = pgdb::Db::new();
    let mut s = HyperQSession::with_direct(&db);
    loader::load_table(&mut s, "trades", &trades()).unwrap();
    s
}

#[test]
fn repeated_statement_hits_cache_and_skips_pipeline() {
    let mut s = session();
    let q = "select Price from trades where Symbol=`GOOG";
    let (first, trs1) = s.execute_traced(q).unwrap();
    assert_eq!(trs1[0].timings.cache_hits, 0);
    assert_eq!(trs1[0].timings.cache_misses, 1);
    assert!(trs1[0].timings.total() > std::time::Duration::ZERO);

    let (second, trs2) = s.execute_traced(q).unwrap();
    // The hit skips parse/algebrize/optimize/serialize entirely: all
    // stage durations are zero and the hit counter is set.
    assert_eq!(trs2[0].timings.cache_hits, 1);
    assert_eq!(trs2[0].timings.cache_misses, 0);
    assert_eq!(trs2[0].timings.total(), std::time::Duration::ZERO);
    // Identical SQL, identical result.
    assert_eq!(trs1[0].statements, trs2[0].statements);
    assert!(first.q_eq(&second));

    let stats = s.translation_cache_stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 1);
}

#[test]
fn whitespace_variants_share_one_entry() {
    let mut s = session();
    let (_, a) = s.execute_traced("select Price from trades where Symbol=`GOOG").unwrap();
    let (_, b) = s.execute_traced("select  Price   from trades\twhere Symbol=`GOOG ").unwrap();
    assert_eq!(b[0].timings.cache_hits, 1, "normalized text must hit");
    assert_eq!(a[0].statements, b[0].statements);
}

#[test]
fn newlines_are_not_collapsed() {
    // A newline separates Q statements; "a b" and "a\nb" are different
    // programs and must not normalize to the same cache key.
    use hyperq::qcache::normalize_q_text;
    assert_eq!(normalize_q_text("select Price\nfrom trades"), "select Price\nfrom trades");
    assert_ne!(
        normalize_q_text("select Price\nfrom trades"),
        normalize_q_text("select Price from trades"),
    );
}

#[test]
fn variable_assignment_invalidates() {
    let mut s = session();
    s.execute("lim: 15").unwrap();
    let q = "select Price from trades where Size>lim";
    let v1 = s.execute(q).unwrap();
    match &v1 {
        Value::Table(t) => assert_eq!(t.rows(), 2),
        other => panic!("expected table, got {other:?}"),
    }
    // Redefining the variable must invalidate: the cached translation
    // baked in lim=15.
    s.execute("lim: 25").unwrap();
    let v2 = s.execute(q).unwrap();
    match &v2 {
        Value::Table(t) => assert_eq!(t.rows(), 1, "stale cached translation reused"),
        other => panic!("expected table, got {other:?}"),
    }
    let (_, trs) = s.execute_traced(q).unwrap();
    assert_eq!(trs[0].timings.cache_hits, 1, "re-translated entry is cached again");
}

#[test]
fn create_temporary_table_invalidates() {
    let db = pgdb::Db::new();
    let cfg = SessionConfig {
        policy: algebrizer::MaterializationPolicy::Physical,
        ..SessionConfig::default()
    };
    let mut s = HyperQSession::with_direct_config(&db, cfg);
    loader::load_table(&mut s, "trades", &trades()).unwrap();

    let q = "select Price from trades where Symbol=`GOOG";
    s.execute(q).unwrap();
    let before = s.translation_cache_stats();

    // Physical materialization emits CREATE TEMPORARY TABLE — DDL, so
    // it must both bypass the cache and invalidate existing entries.
    let (_, trs) = s.execute_traced("dt: select Price from trades where Symbol=`GOOG").unwrap();
    assert!(
        trs.iter().flat_map(|t| &t.statements).any(|st| st.sql.starts_with("CREATE TEMPORARY")),
        "expected a CREATE TEMPORARY TABLE statement"
    );
    let (_, trs) = s.execute_traced(q).unwrap();
    assert_eq!(trs[0].timings.cache_hits, 0, "DDL must invalidate the cached entry");
    let after = s.translation_cache_stats();
    assert_eq!(after.hits, before.hits, "no hit may be served across the DDL");
}

#[test]
fn external_ddl_invalidation_hook_drops_entries() {
    let mut s = session();
    let q = "select Price from trades";
    s.execute(q).unwrap();
    s.invalidate_metadata();
    let (_, trs) = s.execute_traced(q).unwrap();
    assert_eq!(trs[0].timings.cache_hits, 0, "catalog epoch bump must invalidate");
    assert_eq!(trs[0].timings.cache_misses, 1);
}

#[test]
fn end_session_invalidates() {
    let mut s = session();
    let q = "select Price from trades";
    s.execute(q).unwrap();
    s.end_session();
    let (_, trs) = s.execute_traced(q).unwrap();
    assert_eq!(trs[0].timings.cache_hits, 0);
}

#[test]
fn cache_off_is_bit_identical_to_cache_on() {
    let db = pgdb::Db::new();
    let mut on = HyperQSession::with_direct_config(&db, SessionConfig::default());
    loader::load_table(&mut on, "trades", &trades()).unwrap();
    let mut off = HyperQSession::with_direct_config(
        &db,
        SessionConfig { translation_cache: 0, ..SessionConfig::default() },
    );

    let queries = [
        "select Price from trades where Symbol=`GOOG",
        "select mx: max Price by Symbol from trades",
        "select Price from trades where Symbol=`GOOG", // repeat: served from cache
        "exec Price from trades",
        "select mx: max Price by Symbol from trades", // repeat
    ];
    for q in queries {
        let (v_on, trs_on) = on.execute_traced(q).unwrap();
        let (v_off, trs_off) = off.execute_traced(q).unwrap();
        let sql_on: Vec<&String> =
            trs_on.iter().flat_map(|t| t.statements.iter().map(|s| &s.sql)).collect();
        let sql_off: Vec<&String> =
            trs_off.iter().flat_map(|t| t.statements.iter().map(|s| &s.sql)).collect();
        assert_eq!(sql_on, sql_off, "generated SQL must be byte-identical for {q}");
        assert!(v_on.q_eq(&v_off), "results diverge on {q}: {v_on:?} vs {v_off:?}");
    }
    assert!(on.translation_cache_stats().hits >= 2, "repeats must be cache hits");
    assert_eq!(off.translation_cache_stats().hits, 0);
    assert_eq!(off.translation_cache_stats().misses, 0, "disabled cache counts nothing");
}
