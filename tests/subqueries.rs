//! IN-subquery support through the whole stack: Q's
//! `Sym in exec Sym from universe` binds to an uncorrelated relational
//! subquery, serializes as `IN (SELECT ...)`, and executes on pgdb.

use hyperq::side_by_side::SideBySide;
use hyperq::{loader, HyperQSession};
use qlang::value::{Table, Value};

fn universe() -> Table {
    Table::new(
        vec!["Sym".into(), "Sector".into()],
        vec![
            Value::Symbols(vec!["GOOG".into(), "MSFT".into(), "ORCL".into()]),
            Value::Symbols(vec!["tech".into(), "tech".into(), "tech".into()]),
        ],
    )
    .unwrap()
}

fn trades() -> Table {
    Table::new(
        vec!["Symbol".into(), "Price".into()],
        vec![
            Value::Symbols(vec!["GOOG".into(), "IBM".into(), "MSFT".into(), "GOOG".into()]),
            Value::Floats(vec![100.0, 50.0, 70.0, 101.0]),
        ],
    )
    .unwrap()
}

#[test]
fn in_subquery_generates_in_select_sql() {
    let db = pgdb::Db::new();
    let mut s = HyperQSession::with_direct(&db);
    loader::load_table(&mut s, "trades", &trades()).unwrap();
    loader::load_table(&mut s, "universe", &universe()).unwrap();
    let (v, trs) = s
        .execute_traced("select Price from trades where Symbol in exec Sym from universe")
        .unwrap();
    let sql = &trs[0].statements[0].sql;
    assert!(sql.contains("IN (SELECT"), "{sql}");
    match v {
        Value::Table(t) => {
            assert!(t.column("Price").unwrap().q_eq(&Value::Floats(vec![100.0, 70.0, 101.0])));
        }
        other => panic!("expected table, got {other:?}"),
    }
}

#[test]
fn in_subquery_agrees_with_reference() {
    let db = pgdb::Db::new();
    let mut f = SideBySide::new(&db);
    f.load("trades", &trades()).unwrap();
    f.load("universe", &universe()).unwrap();
    f.assert_match("select from trades where Symbol in exec Sym from universe").unwrap();
    f.assert_match(
        "select n: count i by Symbol from trades where Symbol in exec Sym from universe",
    )
    .unwrap();
}

#[test]
fn in_subquery_over_filtered_universe() {
    let db = pgdb::Db::new();
    let mut f = SideBySide::new(&db);
    f.load("trades", &trades()).unwrap();
    f.load("universe", &universe()).unwrap();
    f.assert_match(
        "select Price from trades where Symbol in exec Sym from universe where Sector=`tech",
    )
    .unwrap();
}

#[test]
fn in_subquery_against_table_variable() {
    let db = pgdb::Db::new();
    let mut f = SideBySide::new(&db);
    f.load("trades", &trades()).unwrap();
    f.load("universe", &universe()).unwrap();
    f.assert_match(concat!(
        "watchlist: select Sym from universe where Sym in `GOOG`ORCL; ",
        "select from trades where Symbol in exec Sym from watchlist"
    ))
    .unwrap();
}
