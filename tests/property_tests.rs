//! Property-based tests over the core invariants:
//!
//! * QIPC (de)serialization round-trips arbitrary Q values;
//! * PG v3 codec round-trips arbitrary message contents;
//! * the Q parser never panics on arbitrary input;
//! * **side-by-side equivalence** — randomly generated q-sql queries give
//!   Q-equal results on the reference interpreter and through the full
//!   Hyper-Q → SQL → pgdb pipeline (the paper's §5 framework as a
//!   property).

use bytes::BytesMut;
use hyperq::side_by_side::SideBySide;
use proptest::prelude::*;
use qlang::value::{Atom, Table, Value};

// ---------- strategies ----------

fn arb_atom() -> impl Strategy<Value = Atom> {
    prop_oneof![
        any::<bool>().prop_map(Atom::Bool),
        any::<i16>().prop_map(Atom::Short),
        any::<i32>().prop_map(Atom::Int),
        any::<i64>().prop_map(Atom::Long),
        any::<f64>().prop_map(Atom::Float),
        "[a-zA-Z][a-zA-Z0-9_]{0,8}".prop_map(Atom::Symbol),
        Just(Atom::Symbol(String::new())),
        (-40000i32..40000).prop_map(Atom::Date),
        (0i32..86_400_000).prop_map(Atom::Time),
        any::<i64>().prop_map(Atom::Timestamp),
        Just(Atom::Long(i64::MIN)),
        Just(Atom::Float(f64::NAN)),
    ]
}

fn arb_vector() -> impl Strategy<Value = Value> {
    prop_oneof![
        proptest::collection::vec(any::<bool>(), 0..20).prop_map(Value::Bools),
        proptest::collection::vec(any::<i64>(), 0..20).prop_map(Value::Longs),
        proptest::collection::vec(any::<f64>(), 0..20).prop_map(Value::Floats),
        proptest::collection::vec("[a-z]{0,6}", 0..10).prop_map(Value::Symbols),
        "[ -~]{0,24}".prop_map(Value::Chars),
        proptest::collection::vec(-20000i32..20000, 0..20).prop_map(Value::Dates),
    ]
}

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![arb_atom().prop_map(Value::Atom), arb_vector()];
    leaf.prop_recursive(2, 16, 5, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..5).prop_map(Value::Mixed),
            (proptest::collection::vec("[a-z]{1,5}", 1..4), inner).prop_map(|(keys, v)| {
                let n = keys.len();
                let vals = Value::Mixed(vec![v; n]);
                Value::Dict(Box::new(
                    qlang::Dict::new(Value::Symbols(keys), vals).unwrap(),
                ))
            }),
        ]
    })
}

fn arb_table() -> impl Strategy<Value = Table> {
    (1usize..5, 0usize..12).prop_flat_map(|(cols, rows)| {
        let col = proptest::collection::vec(any::<i64>(), rows..=rows).prop_map(Value::Longs);
        proptest::collection::vec(col, cols..=cols).prop_map(move |columns| {
            let names = (0..columns.len()).map(|i| format!("c{i}")).collect();
            Table::new(names, columns).unwrap()
        })
    })
}

/// One typed column of exactly `rows` cells, with every Q column type
/// represented and a healthy dose of typed nulls (`0N`, `0n`, `0Nd`,
/// `0Nt`, the empty symbol). `rows` may be 0 — empty typed lists must
/// survive the wire with their type intact.
fn arb_typed_column(rows: usize) -> impl Strategy<Value = Value> {
    // The offline proptest shim has no weighted prop_oneof; repeating
    // the non-null arm biases toward values while keeping nulls common.
    prop_oneof![
        proptest::collection::vec(
            prop_oneof![any::<i64>(), any::<i64>(), any::<i64>(), Just(i64::MIN)],
            rows..=rows
        )
        .prop_map(Value::Longs),
        proptest::collection::vec(
            prop_oneof![any::<f64>(), any::<f64>(), any::<f64>(), Just(f64::NAN)],
            rows..=rows
        )
        .prop_map(Value::Floats),
        proptest::collection::vec(
            prop_oneof![
                "[A-Z]{1,4}".prop_map(String::from),
                "[A-Z]{1,4}".prop_map(String::from),
                Just(String::new())
            ],
            rows..=rows
        )
        .prop_map(Value::Symbols),
        proptest::collection::vec(
            prop_oneof![-20000i32..20000, -20000i32..20000, Just(i32::MIN)],
            rows..=rows
        )
        .prop_map(Value::Dates),
        proptest::collection::vec(
            prop_oneof![0i32..86_400_000, 0i32..86_400_000, Just(i32::MIN)],
            rows..=rows
        )
        .prop_map(Value::Times),
        proptest::collection::vec(any::<bool>(), rows..=rows).prop_map(Value::Bools),
    ]
}

fn arb_typed_table() -> impl Strategy<Value = Table> {
    (1usize..6, 0usize..10).prop_flat_map(|(cols, rows)| {
        proptest::collection::vec(arb_typed_column(rows), cols..=cols).prop_map(
            move |columns| {
                let names = (0..columns.len()).map(|i| format!("c{i}")).collect();
                Table::new(names, columns).unwrap()
            },
        )
    })
}

// ---------- QIPC ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn qipc_round_trips_arbitrary_values(v in arb_value()) {
        let msg = qipc::Message::response(v.clone());
        let bytes = qipc::write_message(&msg).unwrap();
        let (decoded, used) = qipc::read_message(&bytes).unwrap().unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert!(decoded.value.q_eq(&v), "decoded {:?} != {:?}", decoded.value, v);
    }

    #[test]
    fn qipc_round_trips_tables(t in arb_table()) {
        let v = Value::Table(Box::new(t));
        let msg = qipc::Message::response(v.clone());
        let bytes = qipc::write_message(&msg).unwrap();
        let (decoded, _) = qipc::read_message(&bytes).unwrap().unwrap();
        prop_assert!(decoded.value.q_eq(&v));
    }

    #[test]
    fn qipc_round_trips_typed_columns_with_nulls(t in arb_typed_table()) {
        // Typed nulls and zero-row tables must survive the wire with
        // column types intact — q_eq treats typed nulls as equal to
        // themselves (0n == 0n), so a dropped or retyped null fails here.
        let v = Value::Table(Box::new(t));
        let msg = qipc::Message::response(v.clone());
        let bytes = qipc::write_message(&msg).unwrap();
        let (decoded, used) = qipc::read_message(&bytes).unwrap().unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert!(decoded.value.q_eq(&v), "decoded {:?} != {:?}", decoded.value, v);
    }

    #[test]
    fn qipc_round_trips_empty_typed_vectors(col in arb_typed_column(0)) {
        // The degenerate case deserves its own property: an empty typed
        // list must come back as the same empty typed list, not a
        // generic empty list or an error.
        let msg = qipc::Message::response(col.clone());
        let bytes = qipc::write_message(&msg).unwrap();
        let (decoded, used) = qipc::read_message(&bytes).unwrap().unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert!(decoded.value.q_eq(&col), "decoded {:?} != {:?}", decoded.value, col);
    }

    #[test]
    fn qipc_decoder_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Errors are fine; panics are not.
        let _ = qipc::read_message(&data);
    }

    #[test]
    fn qipc_handshake_never_panics(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = qipc::parse_handshake(&data);
    }
}

// ---------- QIPC compression ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn qipc_compression_round_trips_arbitrary_bytes(
        data in proptest::collection::vec(any::<u8>(), 0..2048)
    ) {
        if let Some(c) = qipc::compress::compress(&data) {
            prop_assert!(c.len() < data.len(), "compress must only claim wins");
            let back = qipc::compress::decompress(&c, data.len());
            prop_assert_eq!(back.as_deref(), Some(data.as_slice()));
        }
    }

    #[test]
    fn qipc_compressed_messages_round_trip(t in arb_table()) {
        // Force a payload large enough to hit the compression path by
        // widening the table with a repetitive symbol column.
        let n = t.rows();
        let mut t = t;
        t.push_column(
            "Sym".into(),
            Value::Symbols(vec!["REPEATED_TICKER".to_string(); n]),
        ).unwrap();
        let v = Value::Table(Box::new(t));
        let msg = qipc::Message::response(v.clone());
        let bytes = qipc::write_message_compressed(&msg).unwrap();
        let (decoded, used) = qipc::read_message(&bytes).unwrap().unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert!(decoded.value.q_eq(&v));
    }

    #[test]
    fn qipc_decompressor_never_panics(
        data in proptest::collection::vec(any::<u8>(), 0..256),
        len in 0usize..1024,
    ) {
        let _ = qipc::compress::decompress(&data, len);
    }
}

// ---------- PG v3 ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pgwire_data_rows_round_trip(cells in proptest::collection::vec(
        proptest::option::of("[ -~]{0,32}"), 0..10)) {
        use pgwire::codec::{encode_backend, MessageReader};
        use pgwire::messages::BackendMessage;
        let msg = BackendMessage::DataRow(cells);
        let mut buf = BytesMut::new();
        encode_backend(&msg, &mut buf);
        let mut reader = MessageReader::new(false);
        reader.feed(&buf);
        prop_assert_eq!(reader.next_backend().unwrap(), Some(msg));
    }

    #[test]
    fn pgwire_query_messages_round_trip(sql in "[ -~]{0,200}") {
        use pgwire::codec::{encode_frontend, MessageReader};
        use pgwire::messages::FrontendMessage;
        let msg = FrontendMessage::Query(sql);
        let mut buf = BytesMut::new();
        encode_frontend(&msg, &mut buf);
        let mut reader = MessageReader::new(false);
        reader.feed(&buf);
        prop_assert_eq!(reader.next_frontend().unwrap(), Some(msg));
    }
}

// ---------- Parsers never panic ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn q_parser_never_panics(src in "[ -~]{0,120}") {
        let _ = qlang::parse(&src);
    }

    #[test]
    fn sql_parser_never_panics(src in "[ -~]{0,120}") {
        let _ = pgdb::sql::parse_statement(&src);
    }
}

// ---------- Side-by-side equivalence on generated q-sql ----------

#[derive(Debug, Clone)]
struct GenQuery(String);

fn arb_query() -> impl Strategy<Value = GenQuery> {
    let agg = prop_oneof![
        Just("max"), Just("min"), Just("sum"), Just("avg"), Just("count")
    ];
    let col = prop_oneof![Just("Price"), Just("Size")];
    let cmp = prop_oneof![Just(">"), Just("<"), Just(">="), Just("<=")];
    let by = prop_oneof![Just(""), Just(" by Symbol"), Just(" by Date")];
    (agg, col, cmp, by, 0.0f64..150.0).prop_map(|(agg, col, cmp, by, thr)| {
        GenQuery(format!(
            "select r: {agg} {col}{by} from trades where Price {cmp} {thr:.2}"
        ))
    })
}

proptest! {
    // Each case runs a full translate+execute on both engines: keep the
    // case count moderate.
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_queries_agree_between_reference_and_hyperq(q in arb_query()) {
        use hyperq_workload::taq::{generate_trades, TaqConfig};
        let db = pgdb::Db::new();
        let mut f = SideBySide::new(&db);
        f.load(
            "trades",
            &generate_trades(&TaqConfig { rows: 60, symbols: 3, days: 2, seed: 99 }),
        ).unwrap();
        let c = f.check(&q.0);
        prop_assert!(c.is_match(), "divergence on {}: {:?}", q.0, c);
    }
}

// ---------- Translation cache is observationally transparent ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// With the keyed translation cache on (and hitting) versus off, a
    /// generated query must produce byte-identical SQL AND an identical
    /// obs span structure — the cache must be invisible except for the
    /// hit/miss events themselves.
    #[test]
    fn cached_and_uncached_translation_agree_in_sql_and_span_shape(q in arb_query()) {
        use hyperq::{HyperQSession, SessionConfig};
        use hyperq_workload::taq::{generate_trades, TaqConfig};
        use std::time::Duration;
        let trades = generate_trades(&TaqConfig { rows: 40, symbols: 3, days: 2, seed: 5 });
        let mk = |capacity: usize| {
            let db = pgdb::Db::new();
            let cfg = SessionConfig {
                translation_cache: capacity,
                slow_query: Duration::ZERO,
                ..SessionConfig::default()
            };
            let mut s = HyperQSession::with_direct_config(&db, cfg);
            hyperq::loader::load_table(&mut s, "trades", &trades).unwrap();
            s
        };
        let mut cached = mk(256);
        let mut uncached = mk(0);
        // Run twice on the cached session so the second pass is a hit.
        cached.execute_observed(&q.0).unwrap();
        let (cv, ct) = cached.execute_observed(&q.0).unwrap();
        let (uv, ut) = uncached.execute_observed(&q.0).unwrap();
        prop_assert!(ct.cache_hit, "second pass must hit the cache");
        prop_assert!(!ut.cache_hit, "cache disabled must never hit");
        prop_assert!(cv.q_eq(&uv), "values diverge on {}: {cv:?} vs {uv:?}", q.0);
        prop_assert_eq!(&ct.sql, &ut.sql, "generated SQL diverges on {}", q.0);
        prop_assert_eq!(
            ct.stage_names(),
            ut.stage_names(),
            "span structure diverges on {}",
            q.0
        );
        prop_assert!(ct.covers_all_stages() && ut.covers_all_stages());
    }
}

// ---------- Hash execution hot paths agree with the naive scans ----------
//
// The executor's GROUP BY / DISTINCT / set operations and the qengine's
// distinct/group were rewritten from O(n²) scans to hash passes keyed
// by canonical key types. These properties pin the rewrite to the old
// semantics: over random tables with NULLs, NaNs and mixed numeric
// widths, the hash paths produce exactly the sequence the naive
// first-seen-order scans produce.

use pgdb::exec::{
    dedup_cells, dedup_rows, except_rows, group_indices, intersect_rows, reference, rows_equal,
    union_rows,
};
use pgdb::Cell;

/// Small domains force key collisions, cross-width equalities
/// (`Int(1)` = `Float(1.0)`) and NULL/NaN duplicates.
fn arb_cell() -> impl Strategy<Value = Cell> {
    prop_oneof![
        Just(Cell::Null),
        any::<bool>().prop_map(Cell::Bool),
        (-3i64..4).prop_map(Cell::Int),
        prop_oneof![
            Just(0.0f64),
            Just(-0.0f64),
            Just(1.0),
            Just(2.5),
            Just(f64::NAN),
            Just(f64::INFINITY),
        ]
        .prop_map(Cell::Float),
        "[ab]{0,2}".prop_map(Cell::Text),
        (-2i32..3).prop_map(Cell::Date),
    ]
}

fn arb_cell_rows(max_rows: usize) -> impl Strategy<Value = Vec<Vec<Cell>>> {
    (1usize..4).prop_flat_map(move |width| {
        proptest::collection::vec(
            proptest::collection::vec(arb_cell(), width..=width),
            0..max_rows,
        )
    })
}

/// Rows of the same width as `left`, for set operations.
fn arb_cell_rows_pair(max_rows: usize) -> impl Strategy<Value = (Vec<Vec<Cell>>, Vec<Vec<Cell>>)> {
    (1usize..4).prop_flat_map(move |width| {
        let side = move || {
            proptest::collection::vec(
                proptest::collection::vec(arb_cell(), width..=width),
                0..max_rows,
            )
        };
        (side(), side())
    })
}

fn assert_same_rows(fast: &[Vec<Cell>], slow: &[Vec<Cell>]) -> Result<(), TestCaseError> {
    prop_assert_eq!(fast.len(), slow.len(), "row counts differ");
    for (a, b) in fast.iter().zip(slow) {
        prop_assert!(rows_equal(a, b), "row mismatch: {:?} vs {:?}", a, b);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn hash_dedup_agrees_with_naive(rows in arb_cell_rows(24)) {
        let mut fast = rows.clone();
        let mut slow = rows;
        dedup_rows(&mut fast);
        reference::dedup_rows_naive(&mut slow);
        assert_same_rows(&fast, &slow)?;
    }

    #[test]
    fn hash_except_agrees_with_naive(lr in arb_cell_rows_pair(20)) {
        let (l, r) = lr;
        let mut fast = l.clone();
        let mut slow = l;
        except_rows(&mut fast, &r);
        reference::except_rows_naive(&mut slow, &r);
        assert_same_rows(&fast, &slow)?;
    }

    #[test]
    fn hash_intersect_agrees_with_naive(lr in arb_cell_rows_pair(20)) {
        let (l, r) = lr;
        let mut fast = l.clone();
        let mut slow = l;
        intersect_rows(&mut fast, &r);
        reference::intersect_rows_naive(&mut slow, &r);
        assert_same_rows(&fast, &slow)?;
    }

    #[test]
    fn hash_union_agrees_with_naive(lr in arb_cell_rows_pair(20)) {
        let (l, r) = lr;
        let mut fast = l.clone();
        let mut slow = l;
        union_rows(&mut fast, r.clone());
        reference::union_rows_naive(&mut slow, r);
        assert_same_rows(&fast, &slow)?;
    }

    #[test]
    fn hash_grouping_agrees_with_naive(keys in arb_cell_rows(24)) {
        let fast = group_indices(keys.clone());
        let slow = reference::group_indices_naive(keys);
        prop_assert_eq!(fast.len(), slow.len(), "group counts differ");
        for ((ka, ia), (kb, ib)) in fast.iter().zip(&slow) {
            prop_assert!(rows_equal(ka, kb), "group keys diverge: {:?} vs {:?}", ka, kb);
            prop_assert_eq!(ia, ib, "member indices diverge for key {:?}", ka);
        }
    }

    #[test]
    fn hash_distinct_cells_agrees_with_naive(
        cells in proptest::collection::vec(arb_cell(), 0..32)
    ) {
        let mut fast = cells.clone();
        let mut slow = cells;
        dedup_cells(&mut fast);
        reference::dedup_cells_naive(&mut slow);
        prop_assert_eq!(fast.len(), slow.len());
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!(a.not_distinct(b), "cell mismatch: {:?} vs {:?}", a, b);
        }
    }
}

// ---------- qengine distinct/group hash paths ----------

fn arb_q_vector() -> impl Strategy<Value = Value> {
    prop_oneof![
        proptest::collection::vec(-3i64..4, 0..24).prop_map(Value::Longs),
        proptest::collection::vec(
            prop_oneof![Just(0.0f64), Just(-0.0f64), Just(1.0), Just(f64::NAN)],
            0..24
        )
        .prop_map(Value::Floats),
        proptest::collection::vec("[ab]{0,2}", 0..16).prop_map(Value::Symbols),
        proptest::collection::vec(-2i32..3, 0..24).prop_map(Value::Dates),
    ]
}

/// The pre-optimization distinct: linear scan with `q_eq`.
fn naive_q_distinct(a: &Value) -> Value {
    let n = a.len().unwrap();
    let mut seen: Vec<Value> = Vec::new();
    for i in 0..n {
        let v = a.index(i).unwrap();
        if !seen.iter().any(|s| s.q_eq(&v)) {
            seen.push(v);
        }
    }
    Value::from_elements(seen)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn qengine_distinct_agrees_with_naive(v in arb_q_vector()) {
        let fast = qengine::builtins::distinct(&v).unwrap();
        let slow = naive_q_distinct(&v);
        prop_assert!(fast.q_eq(&slow), "distinct diverges: {:?} vs {:?}", fast, slow);
    }

    #[test]
    fn qengine_group_covers_all_indices(v in arb_q_vector()) {
        // Every index appears exactly once across the groups, and all
        // members of a group are q_eq to the group's key.
        let n = v.len().unwrap();
        let d = match qengine::builtins::group(&v).unwrap() {
            Value::Dict(d) => d,
            other => panic!("group must return dict, got {other:?}"),
        };
        let mut covered = vec![false; n];
        let keys = &d.keys;
        let vals = &d.values;
        for g in 0..keys.len().unwrap() {
            let key = keys.index(g).unwrap();
            let members = vals.index(g).unwrap();
            for m in 0..members.len().unwrap() {
                let idx = match members.index(m).unwrap() {
                    Value::Atom(a) => a.as_i64().unwrap() as usize,
                    other => panic!("index must be long, got {other:?}"),
                };
                prop_assert!(!covered[idx], "index {} grouped twice", idx);
                covered[idx] = true;
                prop_assert!(v.index(idx).unwrap().q_eq(&key), "member not q_eq to key");
            }
        }
        prop_assert!(covered.iter().all(|&c| c), "some index missing from groups");
    }
}
