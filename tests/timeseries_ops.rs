//! Side-by-side validation of the time-series vocabulary: prev/next
//! (windowed shifts), deltas, xbar bucketing, first/last aggregates, and
//! union joins — the primitives the paper's financial workloads lean on.

use hyperq::side_by_side::SideBySide;
use hyperq_workload::taq::{generate_trades, TaqConfig};
use qlang::value::{Table, Value};

fn framework() -> SideBySide {
    let db = pgdb::Db::new();
    let mut f = SideBySide::new(&db);
    f.load(
        "trades",
        &generate_trades(&TaqConfig { rows: 120, symbols: 3, days: 1, seed: 77 }),
    )
    .unwrap();
    f
}

#[test]
fn prev_and_next_shift_by_row_order() {
    let mut f = framework();
    f.assert_match("select Price, prevPx: prev Price from trades").unwrap();
    f.assert_match("select Price, nextPx: next Price from trades").unwrap();
}

#[test]
fn deltas_computes_successive_differences() {
    let mut f = framework();
    f.assert_match("select d: deltas Size from trades").unwrap();
}

#[test]
fn xbar_buckets_values() {
    let mut f = framework();
    // Price bucketed to 10-unit bins; Size to 500-unit bins.
    f.assert_match("select bucket: 10.0 xbar Price, Price from trades").unwrap();
    f.assert_match("select s: sum Size by 1000 xbar Size from trades").unwrap();
}

#[test]
fn first_and_last_aggregates_by_group() {
    let mut f = framework();
    // Opening and closing price per symbol — order-sensitive aggregates.
    f.assert_match("select open: first Price, close: last Price by Symbol from trades").unwrap();
}

#[test]
fn union_join_aligns_tables() {
    let db = pgdb::Db::new();
    let mut f = SideBySide::new(&db);
    let a = Table::new(
        vec!["Sym".into(), "Px".into()],
        vec![
            Value::Symbols(vec!["A".into(), "B".into()]),
            Value::Floats(vec![1.0, 2.0]),
        ],
    )
    .unwrap();
    let b = Table::new(
        vec!["Sym".into(), "Px".into(), "Sz".into()],
        vec![
            Value::Symbols(vec!["C".into()]),
            Value::Floats(vec![3.0]),
            Value::Longs(vec![30]),
        ],
    )
    .unwrap();
    f.load("t1", &a).unwrap();
    f.load("t2", &b).unwrap();
    f.assert_match("t1 uj t2").unwrap();
}

#[test]
fn returns_via_deltas_over_prices() {
    let mut f = framework();
    // Classic: per-row price change as fraction of previous price.
    f.assert_match("select r: (deltas Price) % prev Price from trades").unwrap();
}
