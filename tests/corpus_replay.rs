//! Replay every checked-in corpus repro (`tests/corpus/*.q`) through the
//! tri-executor harness and require agreement.
//!
//! Checked-in repros are *fixed* bugs: each file pins a divergence the
//! differential fuzzer (or the PR-3 oracle suite) once caught, minimized
//! to a self-contained script. Replaying them on every test run turns
//! each past bug into a permanent regression gate.
//!
//! Every `.q` file in the corpus is replayed — there is no skip list.
//! (Historically, `found_`-prefixed files parked freshly-shrunk repros
//! for not-yet-fixed bugs; that backlog has been triaged to empty, and
//! the fuzzer's outputs now live only in CI artifacts until their bug
//! is fixed and a pinned, prefix-free repro lands here.)
//!
//! Replays are fully deterministic — data is inlined in each file and
//! the harness runs in-process, so no network or wall-clock enters.

use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

#[test]
fn every_pinned_corpus_repro_replays_clean() {
    let dir = corpus_dir();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "q"))
        .collect();
    entries.sort();
    assert!(
        !entries.is_empty(),
        "corpus must contain at least the two pinned PR-3 repros"
    );
    assert!(
        entries.iter().all(|p| {
            !p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("found_"))
        }),
        "found_-prefixed repros are untriaged fuzzer output; fix the bug \
         and pin a prefix-free repro instead of checking them in"
    );

    let mut failures = Vec::new();
    for path in &entries {
        let repro = match qgen::load_repro(path) {
            Ok(r) => r,
            Err(e) => {
                failures.push(format!("{}: unreadable: {e}", path.display()));
                continue;
            }
        };
        assert!(
            !repro.statements.is_empty(),
            "{}: no statements after the / --- separator",
            path.display()
        );
        match qgen::replay(&repro) {
            Ok(report) => {
                for s in report.divergent() {
                    failures.push(format!(
                        "{}: statement {} `{}` diverges: {:?}",
                        path.display(),
                        s.index,
                        s.q,
                        s.divergences()
                    ));
                }
            }
            Err(e) => failures.push(format!("{}: replay error: {e}", path.display())),
        }
    }
    assert!(
        failures.is_empty(),
        "{} pinned repro failure(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn replay_is_deterministic_across_runs() {
    // Same file, two independent replays — identical outcome shape. This
    // guards against wall-clock or randomness sneaking into the harness.
    let path = corpus_dir().join("count_col_nulls.q");
    let repro = qgen::load_repro(&path).expect("pinned repro must load");
    let a = qgen::replay(&repro).expect("replay");
    let b = qgen::replay(&repro).expect("replay");
    assert_eq!(a.statements.len(), b.statements.len());
    for (x, y) in a.statements.iter().zip(&b.statements) {
        assert_eq!(format!("{:?}", x.reference), format!("{:?}", y.reference));
        assert_eq!(format!("{:?}", x.cold), format!("{:?}", y.cold));
        assert_eq!(format!("{:?}", x.warm), format!("{:?}", y.warm));
    }
}
