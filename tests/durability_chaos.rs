//! Durability chaos suite (DESIGN §13): a real pgdb server process is
//! SIGKILLed mid-commit and mid-checkpoint via deterministic fault
//! points (`HQ_DUR_CRASH`), and the reopened catalog is diffed against
//! an in-memory oracle that applied exactly the acknowledged
//! statements. Disk faults — torn tails, bit flips, a deleted
//! checkpoint segment — are injected directly against the data
//! directory, and recovery must answer each with the committed prefix
//! or a typed error; it must never panic.
//!
//! Invariant asserted throughout: **acked ⊆ recovered ⊆ sent.** A
//! statement acknowledged to the client survives the crash verbatim; a
//! statement in flight when the process died may or may not have made
//! it, but nothing else ever appears.

use hyperq::backend::Backend;
use hyperq::gateway::{Credentials, PgWireBackend};
use hyperq::{RetryPolicy, WireTimeouts};
use pgdb::{Cell, DurabilityOptions, FsyncPolicy, QueryResult};
use std::io::{BufRead, BufReader};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

// ------------------------------------------------------------ plumbing

/// Locate (building if necessary) the standalone `pgdb-server` binary
/// next to this test's own executable.
fn server_binary() -> PathBuf {
    let exe = std::env::current_exe().expect("current_exe");
    // target/{profile}/deps/durability_chaos-… → target/{profile}/
    let profile_dir = exe
        .parent()
        .and_then(Path::parent)
        .expect("test binary has no target dir")
        .to_path_buf();
    let candidate = profile_dir.join("pgdb-server");
    if candidate.exists() {
        return candidate;
    }
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let status = Command::new(cargo)
        .args(["build", "-p", "pgdb", "--bin", "pgdb-server"])
        .status()
        .expect("spawn cargo build for pgdb-server");
    assert!(status.success(), "building pgdb-server failed");
    assert!(candidate.exists(), "built pgdb-server not at {}", candidate.display());
    candidate
}

/// A spawned server that is killed on drop (test failures must not
/// leak processes).
struct ServerProc {
    child: Child,
    addr: String,
}

impl ServerProc {
    /// Spawn `pgdb-server` against `data_dir` with `fsync=always` and
    /// the given extra environment (fault points, checkpoint cadence),
    /// and read the bound address off its stdout.
    fn spawn(data_dir: &Path, extra_env: &[(&str, &str)]) -> ServerProc {
        let mut cmd = Command::new(server_binary());
        cmd.env_remove("HQ_DUR_CRASH")
            .env_remove("HQ_CHECKPOINT_EVERY")
            .env("HQ_DATA_DIR", data_dir)
            .env("HQ_FSYNC", "always")
            .env("HQ_LISTEN", "127.0.0.1:0")
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        for (k, v) in extra_env {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().expect("spawn pgdb-server");
        let stdout = child.stdout.take().expect("child stdout");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("read server banner");
        // "pgdb listening on 127.0.0.1:PORT (durability on)"
        let addr = line
            .split_whitespace()
            .nth(3)
            .unwrap_or_else(|| panic!("unexpected banner {line:?}"))
            .to_string();
        assert!(line.contains("durability on"), "server not durable: {line:?}");
        ServerProc { child, addr }
    }

    /// Wait (bounded) for the child to die and confirm it was killed by
    /// a signal, not a clean exit — the fault points die by SIGKILL.
    fn assert_killed(&mut self) {
        for _ in 0..200 {
            match self.child.try_wait().expect("try_wait") {
                Some(status) => {
                    assert!(!status.success(), "server exited cleanly instead of dying");
                    return;
                }
                None => std::thread::sleep(std::time::Duration::from_millis(25)),
            }
        }
        panic!("server did not die within 5s of the armed fault");
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn connect(addr: &str) -> PgWireBackend {
    PgWireBackend::connect_with(
        addr,
        &Credentials { user: "chaos".into(), password: String::new(), database: "hist".into() },
        WireTimeouts::default(),
        RetryPolicy::no_retry(),
    )
    .expect("connect to spawned server")
}

fn fresh_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("hq-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn reopen_opts(dir: &Path) -> DurabilityOptions {
    DurabilityOptions {
        data_dir: dir.to_path_buf(),
        fsync: FsyncPolicy::Always,
        checkpoint_every: 0,
    }
}

// ------------------------------------------------------------- oracles

/// An in-memory pgdb that applied exactly `stmts` — the differential
/// oracle a recovered catalog is compared against.
fn oracle(stmts: &[&str]) -> pgdb::Db {
    let db = pgdb::Db::new();
    let mut s = db.session();
    for q in stmts {
        s.execute(q).unwrap_or_else(|e| panic!("oracle rejected {q:?}: {e}"));
    }
    db
}

/// The recovered catalog must match the oracle exactly: same table
/// names, and every table structurally equal batch-for-batch.
fn assert_catalog_equals(recovered: &pgdb::Db, want: &pgdb::Db) {
    let mut got_names = recovered.table_names();
    let mut want_names = want.table_names();
    got_names.sort();
    want_names.sort();
    assert_eq!(got_names, want_names, "recovered table set diverges from oracle");
    for name in &want_names {
        let got = recovered.get_table_snapshot(name).expect("table listed but missing");
        let exp = want.get_table_snapshot(name).unwrap();
        assert!(
            got.batch.structurally_equal(&exp.batch),
            "table \"{name}\" diverges from the oracle after recovery"
        );
    }
}

/// Recovery equals the oracle over some prefix of `sent` that is at
/// least `acked` statements long: acked ⊆ recovered ⊆ sent.
fn assert_recovered_prefix(dir: &Path, sent: &[&str], acked: usize) {
    let db = pgdb::Db::open(&reopen_opts(dir)).expect("recovery failed");
    for take in acked..=sent.len() {
        let candidate = oracle(&sent[..take]);
        let mut got = db.table_names();
        let mut want = candidate.table_names();
        got.sort();
        want.sort();
        let matches = got == want
            && want.iter().all(|n| {
                db.get_table_snapshot(n)
                    .map(|t| t.batch.structurally_equal(&candidate.get_table_snapshot(n).unwrap().batch))
                    .unwrap_or(false)
            });
        if matches {
            return; // recovered == sent[..take], a legal commit prefix
        }
    }
    // Exact-match diagnostics against the acked prefix.
    assert_catalog_equals(&db, &oracle(&sent[..acked]));
}

// ------------------------------------------------- SIGKILL mid-commit

/// The server dies with half a WAL frame on disk while the 4th
/// mutation is committing. The three acked statements must be exactly
/// what recovery returns, and the torn tail must be truncated (metric)
/// rather than poisoning the log.
#[test]
fn sigkill_mid_commit_preserves_exactly_the_acked_prefix() {
    let dir = fresh_dir("midcommit");
    let sent = [
        "CREATE TABLE t (x bigint, s varchar)",
        "INSERT INTO t VALUES (1, 'a'), (2, NULL)",
        "INSERT INTO t VALUES (3, 'c')",
        "INSERT INTO t VALUES (4, 'd')",
    ];
    let mut server = ServerProc::spawn(&dir, &[("HQ_DUR_CRASH", "wal.partial-append:4")]);
    let mut gw = connect(&server.addr);
    assert!(Backend::durable(&gw), "spawned server must advertise durability");
    for q in &sent[..3] {
        gw.execute_sql(q).unwrap_or_else(|e| panic!("{q:?} should ack: {e}"));
    }
    // The 4th statement dies mid-append: the client sees an error, not
    // an ack, and the server is SIGKILLed with a torn frame on disk.
    let err = gw.execute_sql(sent[3]).expect_err("statement during crash cannot ack");
    let _ = err; // any wire error kind is acceptable here
    server.assert_killed();

    let truncated_before = obs::global_registry().counter_value("recovery_truncated_tail_total");
    let db = pgdb::Db::open(&reopen_opts(&dir)).expect("recovery must handle a torn tail");
    assert_catalog_equals(&db, &oracle(&sent[..3]));
    assert!(
        obs::global_registry().counter_value("recovery_truncated_tail_total") > truncated_before,
        "torn tail was not counted as truncated"
    );
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash *after* the fsync but before the ack: the statement is
/// durable-but-unacked, so recovery may legally include it — but never
/// anything beyond it.
#[test]
fn sigkill_after_fsync_recovers_a_durable_but_unacked_statement() {
    let dir = fresh_dir("postfsync");
    let sent = [
        "CREATE TABLE t (x bigint)",
        "INSERT INTO t VALUES (10)",
        "INSERT INTO t VALUES (20)",
    ];
    let mut server = ServerProc::spawn(&dir, &[("HQ_DUR_CRASH", "wal.after-fsync:3")]);
    let mut gw = connect(&server.addr);
    for q in &sent[..2] {
        gw.execute_sql(q).unwrap();
    }
    gw.execute_sql(sent[2]).expect_err("crashing statement cannot ack");
    server.assert_killed();
    assert_recovered_prefix(&dir, &sent, 2);
    let _ = std::fs::remove_dir_all(&dir);
}

// --------------------------------------------- SIGKILL mid-checkpoint

/// The server dies while spilling checkpoint segments. The WAL already
/// holds everything (fsync=always runs before the checkpoint), so
/// recovery replays the full log; the half-built checkpoint stays a
/// `.tmp-` orphan that never shadows the real state.
#[test]
fn sigkill_mid_checkpoint_recovers_from_the_wal() {
    let dir = fresh_dir("midcp");
    let sent = [
        "CREATE TABLE t (x bigint)",
        "INSERT INTO t VALUES (1)", // 2nd append trips the checkpoint → crash
    ];
    let mut server = ServerProc::spawn(
        &dir,
        &[("HQ_DUR_CRASH", "checkpoint.mid-segments:1"), ("HQ_CHECKPOINT_EVERY", "2")],
    );
    let mut gw = connect(&server.addr);
    gw.execute_sql(sent[0]).unwrap();
    gw.execute_sql(sent[1]).expect_err("checkpointing statement cannot ack");
    server.assert_killed();

    // The interrupted checkpoint left no committed checkpoint dir.
    let cps = dir.join("checkpoints");
    if let Ok(entries) = std::fs::read_dir(&cps) {
        for e in entries.flatten() {
            let name = e.file_name().to_string_lossy().into_owned();
            assert!(
                name.starts_with(".tmp-"),
                "crash mid-checkpoint must not leave a committed dir, found {name}"
            );
        }
    }
    assert_recovered_prefix(&dir, &sent, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash between assembling the checkpoint and its atomic rename: same
/// contract — the rename either happened entirely or not at all.
#[test]
fn sigkill_before_checkpoint_rename_is_atomic() {
    let dir = fresh_dir("cprename");
    let sent = ["CREATE TABLE t (x bigint)", "INSERT INTO t VALUES (5)"];
    let mut server = ServerProc::spawn(
        &dir,
        &[("HQ_DUR_CRASH", "checkpoint.before-rename:1"), ("HQ_CHECKPOINT_EVERY", "2")],
    );
    let mut gw = connect(&server.addr);
    gw.execute_sql(sent[0]).unwrap();
    gw.execute_sql(sent[1]).expect_err("checkpointing statement cannot ack");
    server.assert_killed();
    assert_recovered_prefix(&dir, &sent, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

// ------------------------------------------------------- disk faults

/// Seed a data dir in-process with a known statement sequence, closing
/// the engine cleanly, and return the statements used.
fn seeded_dir(tag: &str, checkpoint_every: u64) -> (PathBuf, Vec<&'static str>) {
    let dir = fresh_dir(tag);
    let stmts = vec![
        "CREATE TABLE t (x bigint, s varchar)",
        "INSERT INTO t VALUES (1, 'a')",
        "INSERT INTO t VALUES (2, 'b')",
        "INSERT INTO t VALUES (3, NULL)",
        "CREATE TABLE u (y float8)",
        "INSERT INTO u VALUES (2.5)",
    ];
    let opts = DurabilityOptions {
        data_dir: dir.clone(),
        fsync: FsyncPolicy::Always,
        checkpoint_every,
    };
    let db = pgdb::Db::open(&opts).unwrap();
    let mut s = db.session();
    for q in &stmts {
        s.execute(q).unwrap();
    }
    drop(s);
    drop(db);
    (dir, stmts)
}

/// The newest WAL file, by starting LSN in the file name.
fn newest_wal(dir: &Path) -> PathBuf {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir.join("wal"))
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "log"))
        .collect();
    files.sort();
    files.pop().expect("no wal files")
}

/// Garbage appended after the last valid record is a torn tail:
/// recovery truncates it and keeps every committed statement.
#[test]
fn garbage_wal_tail_is_truncated_not_fatal() {
    let (dir, stmts) = seeded_dir("tail", 0);
    let wal = newest_wal(&dir);
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef, 0x01]);
    std::fs::write(&wal, &bytes).unwrap();

    let db = pgdb::Db::open(&reopen_opts(&dir)).expect("torn tail must recover");
    assert_catalog_equals(&db, &oracle(&stmts));
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A short write — the final record cut mid-frame — is the same story.
#[test]
fn short_written_final_record_is_truncated() {
    let (dir, stmts) = seeded_dir("short", 0);
    let wal = newest_wal(&dir);
    let bytes = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &bytes[..bytes.len() - 3]).unwrap();

    let db = pgdb::Db::open(&reopen_opts(&dir)).expect("short write must recover");
    // The last statement was cut; everything before it survives.
    assert_catalog_equals(&db, &oracle(&stmts[..stmts.len() - 1]));
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A checksum broken in the *middle* of the log (valid records follow
/// the damage) is not a torn tail: recovery must refuse with a typed
/// corruption error instead of silently dropping committed data.
#[test]
fn mid_wal_corruption_is_a_typed_error() {
    let (dir, _) = seeded_dir("midflip", 0);
    let wal = newest_wal(&dir);
    let mut bytes = std::fs::read(&wal).unwrap();
    assert!(bytes.len() > 32, "seed wal unexpectedly small");
    bytes[10] ^= 0x40; // inside the first frame, well before the tail
    std::fs::write(&wal, &bytes).unwrap();

    match pgdb::Db::open(&reopen_opts(&dir)) {
        Err(e) => assert!(e.message.contains("corrupt"), "untyped failure: {e}"),
        Ok(_) => panic!("mid-log corruption recovered silently"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A missing segment invalidates its checkpoint; recovery falls back
/// to an older checkpoint or the WAL and still serves the full state.
#[test]
fn missing_checkpoint_segment_falls_back() {
    let (dir, stmts) = seeded_dir("noseg", 2); // several checkpoints taken
    let cps = dir.join("checkpoints");
    let mut dirs: Vec<PathBuf> = std::fs::read_dir(&cps)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir() && !p.file_name().unwrap().to_string_lossy().starts_with('.'))
        .collect();
    dirs.sort();
    let newest = dirs.pop().expect("seed produced no checkpoints");
    let seg = std::fs::read_dir(&newest)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "seg"))
        .expect("checkpoint has no segments");
    std::fs::remove_file(&seg).unwrap();

    let db = pgdb::Db::open(&reopen_opts(&dir)).expect("must fall back past damaged checkpoint");
    assert_catalog_equals(&db, &oracle(&stmts));
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Sweep single-byte corruptions across the whole WAL: whatever the
/// damage, reopening either succeeds or fails with a typed error —
/// recovery never panics on corrupted input.
#[test]
fn byte_flip_sweep_over_the_wal_never_panics() {
    let (dir, _) = seeded_dir("sweep", 0);
    let wal = newest_wal(&dir);
    let pristine = std::fs::read(&wal).unwrap();
    for pos in (0..pristine.len()).step_by(7) {
        let mut damaged = pristine.clone();
        damaged[pos] ^= 0x80;
        std::fs::write(&wal, &damaged).unwrap();
        let outcome = catch_unwind(AssertUnwindSafe(|| pgdb::Db::open(&reopen_opts(&dir))));
        match outcome {
            Ok(_ok_or_typed_err) => {}
            Err(_) => panic!("recovery panicked on a flipped byte at offset {pos}"),
        }
        // Restore for the next iteration (a successful open may have
        // truncated the tail).
        std::fs::write(&wal, &pristine).unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ------------------------------------------------------------ metrics

/// The durability counters are visible through the server's admin
/// surface (`SHOW metrics`) like every other subsystem's.
#[test]
fn durability_metrics_are_visible_over_the_wire() {
    let dir = fresh_dir("metrics");
    let server = ServerProc::spawn(&dir, &[]);
    let mut gw = connect(&server.addr);
    gw.execute_sql("CREATE TABLE t (x bigint)").unwrap();
    gw.execute_sql("INSERT INTO t VALUES (1)").unwrap();
    let rows = match gw.execute_sql("SHOW metrics").unwrap() {
        QueryResult::Rows(rows) => rows,
        other => panic!("SHOW metrics returned {other:?}"),
    };
    let rendered: Vec<String> = rows
        .data
        .iter()
        .map(|r| {
            r.iter()
                .map(|c| match c {
                    Cell::Text(s) => s.clone(),
                    other => format!("{other:?}"),
                })
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect();
    let all = rendered.join("\n");
    assert!(all.contains("wal_appends_total"), "missing wal_appends_total:\n{all}");
    assert!(all.contains("wal_fsync_seconds"), "missing wal_fsync_seconds:\n{all}");
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}
