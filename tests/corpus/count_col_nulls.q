/ PR-3 oracle bug, fixed and pinned: q `count col` counts every row
/ (nulls included) but was serialized as SQL COUNT(col), which skips
/ NULLs — so any null in the counted column made the pipeline undercount.
trades: ([] Sym: `A`B`C; Px: 1.5 0n 2.75)
/ ---
select c: count Px from trades
select c: count Px by Sym from trades
