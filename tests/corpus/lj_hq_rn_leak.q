/ PR-3 oracle bug, fixed and pinned: lj/ij went through a row_number()
/ dedup rewrite and leaked the internal hq_rn column into the joined
/ result's column set, so the pipeline returned one column more than q.
trades: ([] Sym: `A`B`A; Px: 1.5 2.25 3.5)
refdata: ([] Sym: `A`B; Sector: `tech`fin)
/ ---
trades lj 1!refdata
trades ij 1!refdata
select s: sum Px by Sector from trades lj 1!refdata
