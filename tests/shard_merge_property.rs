//! Property tests for the scatter-gather re-aggregation merge math
//! (ISSUE 8): merged per-shard partials for `sum` / `count` / `avg` /
//! `min` / `max` must equal single-node aggregation over the union of
//! the shards — across typed nulls, NaN inputs, NULL group keys, and
//! shard counts that leave some shards empty.
//!
//! Every case runs the same DDL + data + aggregate statements through a
//! plain single-node backend and through routers at several shard
//! counts with a zero broadcast threshold (so even one-row tables
//! partition), then compares batches bit for bit.

use hyperq::shard::{ShardCluster, ShardOpts};
use hyperq::{Backend, DirectBackend};
use pgdb::{Batch, BatchQueryResult, Cell};
use proptest::prelude::*;
use std::collections::HashMap;

/// One generated row of the fact table.
#[derive(Debug, Clone)]
struct Row {
    /// Group key; `None` is a NULL key (groups with other NULLs).
    g: Option<i64>,
    /// Integer measure; `None` is a typed NULL.
    iv: Option<i64>,
    /// Float measure: NULL, NaN, or finite.
    fv: FloatCell,
}

#[derive(Debug, Clone)]
enum FloatCell {
    Null,
    NaN,
    Finite(i32),
}

fn arb_row() -> impl Strategy<Value = Row> {
    (
        prop_oneof![
            (0i64..4).prop_map(Some),
            (0i64..4).prop_map(Some),
            (0i64..4).prop_map(Some),
            Just(None),
        ],
        prop_oneof![
            (-50i64..50).prop_map(Some),
            (-50i64..50).prop_map(Some),
            (-50i64..50).prop_map(Some),
            Just(None),
        ],
        prop_oneof![
            Just(FloatCell::Null),
            Just(FloatCell::NaN),
            (-200i32..200).prop_map(FloatCell::Finite),
            (-200i32..200).prop_map(FloatCell::Finite),
            (-200i32..200).prop_map(FloatCell::Finite),
        ],
    )
        .prop_map(|(g, iv, fv)| Row { g, iv, fv })
}

fn sql_opt(v: Option<i64>) -> String {
    v.map(|x| x.to_string()).unwrap_or_else(|| "NULL".to_string())
}

fn insert_sql(rows: &[Row]) -> String {
    let tuples: Vec<String> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let fv = match &r.fv {
                FloatCell::Null => "NULL".to_string(),
                // NaN must be *insertable* so float aggregates meet it;
                // the engine's only NaN constructor in plain SQL is an
                // IEEE 0/0 division.
                FloatCell::NaN => "(0.0 / 0.0)".to_string(),
                // Non-dyadic finite floats (x/10) stress exactly the
                // reorder-sensitivity that forces float aggs to fall
                // back to the coordinator.
                FloatCell::Finite(k) => format!("({k}.0 / 10.0)"),
            };
            format!("({i}, {}, {}, {fv})", sql_opt(r.g), sql_opt(r.iv))
        })
        .collect();
    format!("INSERT INTO t VALUES {}", tuples.join(", "))
}

/// The merge-math surface: scalar and grouped, int-typed (scattered and
/// re-aggregated distributively) and float-typed (coordinator fallback),
/// with and without an ORDER BY (the bare GROUP BY pins first-seen group
/// order through the merge).
const AGG_STATEMENTS: &[&str] = &[
    "SELECT count(*) AS n, count(iv) AS c, sum(iv) AS s, min(iv) AS mn, max(iv) AS mx, \
     avg(iv) AS a FROM t",
    "SELECT g, count(*) AS n, sum(iv) AS s, min(iv) AS mn, max(iv) AS mx, avg(iv) AS a \
     FROM t GROUP BY g ORDER BY g",
    "SELECT g, sum(iv) AS s FROM t GROUP BY g",
    "SELECT count(fv) AS c, sum(fv) AS s, min(fv) AS mn, max(fv) AS mx, avg(fv) AS a FROM t",
    "SELECT g, min(fv) AS mn, max(fv) AS mx, avg(fv) AS a FROM t GROUP BY g ORDER BY g",
    "SELECT g, count(*) AS n FROM t GROUP BY g HAVING count(*) > 1 ORDER BY n DESC, g",
];

fn batch_of(b: &mut dyn Backend, sql: &str) -> Batch {
    match b.execute_sql_batch(sql) {
        Ok(Some(BatchQueryResult::Batch(batch))) => batch,
        other => panic!("expected a batch for {sql}, got {other:?}"),
    }
}

/// Zero broadcast threshold: every table partitions, however small, so
/// low row counts genuinely leave shards empty.
fn partition_everything() -> ShardOpts {
    ShardOpts { broadcast_threshold: 0, float_agg: false, stats: true, keys: HashMap::new() }
}

fn load(b: &mut dyn Backend, rows: &[Row]) {
    b.execute_sql_batch("CREATE TABLE t (id bigint, g bigint, iv bigint, fv double precision)")
        .unwrap();
    b.execute_sql_batch(&insert_sql(rows)).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merged_partials_equal_single_node_over_the_union(
        rows in proptest::collection::vec(arb_row(), 1..24),
        shards in 2usize..5,
    ) {
        let db = pgdb::Db::new();
        let mut single = DirectBackend::new(&db);
        load(&mut single, &rows);
        let cluster = ShardCluster::in_process_with(shards, partition_everything());
        let mut sharded = cluster.router().unwrap();
        load(&mut sharded, &rows);
        prop_assert_eq!(
            cluster.table_meta("t").unwrap().mode,
            hyperq::shard::Mode::Partitioned
        );
        for sql in AGG_STATEMENTS {
            let want = batch_of(&mut single, sql);
            let got = batch_of(&mut sharded, sql);
            prop_assert!(
                want.structurally_equal(&got),
                "merge diverged at {} shards for {}:\nsingle: {:?}\nsharded: {:?}",
                shards, sql, want.to_rows().data, got.to_rows().data
            );
        }
    }
}

/// Seed-corpus pin for the avg decomposition: the router merges `avg`
/// as CAST(sum-of-partial-sums AS float) / CAST(sum-of-partial-counts
/// AS float) — one f64 division, exactly what the single-node engine
/// computes. This fixed dataset splits unevenly across 3 shards (one
/// shard empty for group 2), with NULLs thinning the count.
#[test]
fn avg_is_merged_as_sum_over_count() {
    let rows: Vec<Row> = vec![
        Row { g: Some(1), iv: Some(10), fv: FloatCell::Finite(10) },
        Row { g: Some(1), iv: Some(21), fv: FloatCell::Null },
        Row { g: Some(1), iv: None, fv: FloatCell::Finite(-3) },
        Row { g: Some(2), iv: Some(7), fv: FloatCell::NaN },
        Row { g: None, iv: Some(5), fv: FloatCell::Finite(1) },
    ];
    let db = pgdb::Db::new();
    let mut single = DirectBackend::new(&db);
    load(&mut single, &rows);
    let cluster = ShardCluster::in_process_with(3, partition_everything());
    let mut sharded = cluster.router().unwrap();
    load(&mut sharded, &rows);

    let avg = "SELECT g, avg(iv) AS a FROM t GROUP BY g ORDER BY g";
    let decomposed =
        "SELECT g, CAST(sum(iv) AS double precision) / CAST(count(iv) AS double precision) AS a \
         FROM t GROUP BY g ORDER BY g";
    let merged = batch_of(&mut sharded, avg);
    // The decomposition identity itself, on the single node…
    assert!(
        batch_of(&mut single, avg).structurally_equal(&batch_of(&mut single, decomposed)),
        "single-node avg must equal sum/count"
    );
    // …and the merged result agrees with both sides of it.
    assert!(batch_of(&mut single, avg).structurally_equal(&merged));
    // Spot-check the actual quotient: group 1 averages (10+21)/2 (the
    // NULL group key sorts first, so group 1 is the second row).
    let rows_out = merged.to_rows().data;
    assert_eq!(rows_out[1][1], Cell::Float(15.5), "{rows_out:?}");
    // Group with every iv NULL would be absent here; the scalar form
    // must return NULL, not 0/0, through the CASE-guarded merge.
    let scalar = batch_of(&mut sharded, "SELECT avg(iv) AS a FROM t WHERE iv IS NULL");
    assert_eq!(scalar.to_rows().data[0][0], Cell::Null);
}
