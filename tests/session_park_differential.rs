//! Session-park differential: the multiplexed connection layer must be
//! *indistinguishable on the wire* from thread-per-connection.
//!
//! Two QIPC endpoints serve identical fixtures — one blocking
//! thread-per-conn, one readiness-multiplexed with a tiny worker pool —
//! and a client drives the same statement stream through both, sleeping
//! between statements so the multiplexed session genuinely parks in the
//! poller and resumes on a (possibly different) worker each time.
//! Results must agree structurally, and failures must agree *verbatim*:
//! identical error strings, not merely matching error-ness.
//!
//! Coverage is the repo's standing differential diet: the 38-statement
//! oracle list (plus deliberate error probes), then a 200-program qgen
//! fuzz slice at a fixed seed.

use hyperq::endpoint::{EndpointConfig, QipcClient, QipcEndpoint};
use hyperq::side_by_side::values_agree;
use hyperq::{loader, HyperQSession};
use hyperq_workload::taq::{generate_quotes, generate_trades, TaqConfig};
use netpool::IoModel;
use qgen::{gen_dataset, Coverage, ProgramGen};
use qlang::ast::Expr;
use qlang::value::{Table, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Dispatch threads for the multiplexed endpoint — deliberately tiny so
/// every statement observably travels the park → dispatch → re-park
/// path rather than a dedicated thread.
const NET_WORKERS: usize = 2;

/// Client-side pause between statements on the multiplexed connection:
/// long enough that the worker finishes, re-arms the session, and the
/// poller parks it again before the next frame arrives.
const PARK: Duration = Duration::from_millis(1);

fn start_pair(db_for: impl Fn() -> pgdb::Db) -> (QipcEndpoint, QipcEndpoint) {
    let blocking = QipcEndpoint::start(
        db_for(),
        "127.0.0.1:0",
        EndpointConfig { io_model: IoModel::ThreadPerConn, ..EndpointConfig::default() },
    )
    .unwrap();
    let multiplexed = QipcEndpoint::start(
        db_for(),
        "127.0.0.1:0",
        EndpointConfig {
            io_model: IoModel::Multiplexed,
            net_workers: NET_WORKERS,
            ..EndpointConfig::default()
        },
    )
    .unwrap();
    (blocking, multiplexed)
}

fn connect(ep: &QipcEndpoint) -> QipcClient {
    QipcClient::connect(&ep.addr.to_string(), "differ", "").unwrap()
}

/// Outcome of one statement, in the exact form the application sees.
enum Outcome {
    Ok(Value),
    Err(String),
}

fn run(c: &mut QipcClient, q: &str) -> Outcome {
    match c.query(q) {
        Ok(v) => Outcome::Ok(v),
        Err(e) => Outcome::Err(format!("{e:?}")),
    }
}

/// `normalize`: successful assignments collapse (their return value is
/// representational), mirroring the tri-executor `BatchDriver`.
fn agree(a: &Outcome, b: &Outcome, normalize: bool) -> bool {
    match (a, b) {
        (Outcome::Ok(x), Outcome::Ok(y)) => normalize || values_agree(x, y),
        // The contract under test: errors must match STRING FOR STRING.
        (Outcome::Err(x), Outcome::Err(y)) => x == y,
        _ => false,
    }
}

fn describe(o: &Outcome) -> String {
    match o {
        Outcome::Ok(v) => format!("Ok({v:?})"),
        Outcome::Err(e) => format!("Err({e})"),
    }
}

fn is_assignment(q: &str) -> bool {
    qlang::parse(q)
        .map(|stmts| {
            stmts
                .last()
                .is_some_and(|e| matches!(e, Expr::Assign { .. } | Expr::IndexAssign { .. }))
        })
        .unwrap_or(false)
}

// ---------------------------------------------------------------------
// 1. The 38-statement oracle (plus error probes) through parked sessions.
// ---------------------------------------------------------------------

fn taq_cfg() -> TaqConfig {
    TaqConfig { rows: 200, symbols: 4, days: 2, seed: 4242 }
}

/// The standard oracle fixture, loaded into a fresh in-process db. The
/// generators are seeded, so every call produces identical data — the
/// two endpoints serve byte-identical worlds.
fn oracle_db() -> pgdb::Db {
    let db = pgdb::Db::new();
    let mut s = HyperQSession::with_direct(&db);
    loader::load_table(&mut s, "trades", &generate_trades(&taq_cfg())).unwrap();
    loader::load_table(&mut s, "quotes", &generate_quotes(&TaqConfig { rows: 600, ..taq_cfg() }))
        .unwrap();
    let nullable = Table::new(
        vec!["Sym".into(), "Qty".into(), "Px".into()],
        vec![
            Value::Symbols(vec!["A".into(), "B".into(), "A".into(), "C".into(), "B".into()]),
            Value::Longs(vec![10, i64::MIN, 30, i64::MIN, 50]),
            Value::Floats(vec![1.5, 2.5, f64::NAN, 4.0, f64::NAN]),
        ],
    )
    .unwrap();
    loader::load_table(&mut s, "nullable", &nullable).unwrap();
    let refdata = Table::new(
        vec!["Symbol".into(), "Sector".into(), "Lot".into()],
        vec![
            Value::Symbols(vec!["AAPL".into(), "GOOG".into(), "IBM".into()]),
            Value::Symbols(vec!["tech".into(), "tech".into(), "services".into()]),
            Value::Longs(vec![100, 10, 50]),
        ],
    )
    .unwrap();
    loader::load_table(&mut s, "refdata", &refdata).unwrap();
    db
}

/// The oracle statement list, verbatim from `differential_oracle.rs`,
/// followed by deliberate error probes — the error *strings* must come
/// back identical through both connection layers.
const ORACLE_STATEMENTS: &[&str] = &[
    "select from trades",
    "select Symbol, Price from trades",
    "select Price from trades where Symbol=`GOOG",
    "select Price, Size from trades where Date=2016.06.26",
    "select from trades where Price within 50 150",
    "select Price from trades where Symbol in `GOOG`IBM, Size>100",
    "select Notional: Price*Size from trades where Size>500",
    "exec Price from trades where Symbol=`GOOG",
    "select from quotes where Ask>Bid",
    "select mx: max Price, mn: min Price from trades",
    "select s: sum Size, a: avg Price from trades",
    "select n: count i from trades where Symbol=`IBM",
    "select spread: avg Ask-Bid from quotes",
    "select mx: max Price by Symbol from trades",
    "select s: sum Size by Date from trades",
    "select n: count i by Symbol from trades",
    "select vwap: (sum Price*Size) % sum Size by Symbol from trades",
    "select mx: max Price by Date, Symbol from trades",
    "select s: sum Size by 1000 xbar Size from trades",
    "aj[`Symbol`Time; select Symbol, Time, Price from trades; \
     select Symbol, Time, Bid, Ask from quotes]",
    "aj[`Symbol`Time; select Symbol, Time, Price from trades where Date=2016.06.26; \
     select Symbol, Time, Bid, Ask from quotes where Date=2016.06.26]",
    "trades lj 1!refdata",
    "trades ij 1!refdata",
    "select mx: max Price by Sector from trades lj 1!refdata",
    "(select Symbol, Price from trades where Size>900) uj \
     select Symbol, Price, Size from trades where Size<100",
    "select from nullable where Qty=0N",
    "select from nullable where Qty>20",
    "select s: sum Qty by Sym from nullable",
    "select n: count Px, m: count i from nullable",
    "select mx: max Px, mn: min Px from nullable",
    "update Qty: 0N from nullable where Sym=`A",
    "select Price, prevPx: prev Price from trades",
    "select d: deltas Price from trades where Symbol=`GOOG",
    "select open: first Price, close: last Price by Symbol from trades",
    "select Price, nextPx: next Price from trades where Symbol=`IBM",
    "`Price xdesc select from trades where Date=2016.06.26",
    "`Symbol`Time xasc select Symbol, Time, Price from trades",
    "select last Bid by Symbol from quotes",
];

const ERROR_PROBES: &[&str] = &[
    "select from no_such_table",
    "no_such_variable",
    "select nosuchcol from trades",
];

#[test]
fn oracle_is_bit_identical_through_parked_multiplexed_sessions() {
    let (blocking, multiplexed) = start_pair(oracle_db);
    let mut a = connect(&blocking);
    let mut b = connect(&multiplexed);
    let reg = obs::global_registry();
    let dispatches_before = reg.counter_value("net_dispatches_total");

    let mut failures = Vec::new();
    let statements = ORACLE_STATEMENTS.iter().chain(ERROR_PROBES);
    let mut count = 0usize;
    for q in statements {
        count += 1;
        let ra = run(&mut a, q);
        // Park: the multiplexed session sits re-armed in the poller
        // between these statements; each query below is a fresh
        // dispatch onto the worker pool.
        std::thread::sleep(PARK);
        let rb = run(&mut b, q);
        if !agree(&ra, &rb, false) {
            failures.push(format!(
                "`{q}`\n  thread-per-conn: {}\n  multiplexed:     {}",
                describe(&ra),
                describe(&rb)
            ));
        }
    }
    assert!(count >= 38 + ERROR_PROBES.len(), "oracle breadth regressed: {count}");
    assert!(
        failures.is_empty(),
        "{} connection-layer divergence(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
    // Every statement on the multiplexed connection was a park →
    // dispatch → re-park round trip, not a pinned thread.
    assert!(
        reg.counter_value("net_dispatches_total") - dispatches_before >= count as u64,
        "multiplexed statements must each arrive as a scheduler dispatch"
    );
    blocking.detach();
    multiplexed.detach();
}

// ---------------------------------------------------------------------
// 2. qgen fuzz slice: 200 programs through both connection layers.
// ---------------------------------------------------------------------

/// Programs per generated dataset, mirroring `qgen::run_fuzz`.
const PROGRAMS_PER_DATASET: usize = 10;
const FUZZ_BUDGET: usize = 200;
const FUZZ_SEED: u64 = 20260807;

struct FuzzPair {
    blocking: QipcEndpoint,
    multiplexed: QipcEndpoint,
    a: QipcClient,
    b: QipcClient,
}

impl FuzzPair {
    /// Fresh endpoints over fresh dbs, both loaded with `tables`.
    fn new(tables: &[(String, Table)]) -> FuzzPair {
        let (blocking, multiplexed) = start_pair(|| {
            let db = pgdb::Db::new();
            let mut s = HyperQSession::with_direct(&db);
            for (name, table) in tables {
                loader::load_table(&mut s, name, table).unwrap();
            }
            db
        });
        let a = connect(&blocking);
        let b = connect(&multiplexed);
        FuzzPair { blocking, multiplexed, a, b }
    }

    fn shutdown(self) {
        self.blocking.detach();
        self.multiplexed.detach();
    }
}

#[test]
fn fuzz_slice_agrees_between_connection_layers() {
    let mut rng = StdRng::seed_from_u64(FUZZ_SEED);
    let mut gen = ProgramGen::new();
    let mut coverage = Coverage::default();
    let mut dataset = None;
    let mut pair: Option<FuzzPair> = None;
    let mut failures: Vec<String> = Vec::new();
    let mut programs = 0usize;

    for pi in 0..FUZZ_BUDGET {
        if pi % PROGRAMS_PER_DATASET == 0 {
            let ds = gen_dataset(&mut rng);
            if let Some(p) = pair.take() {
                p.shutdown();
            }
            pair = Some(FuzzPair::new(&ds.tables));
            dataset = Some(ds);
        }
        let ds = dataset.as_ref().unwrap();
        let program = gen.gen_program(&mut rng, ds, &mut coverage);
        programs += 1;
        let p = pair.as_mut().unwrap();
        let mut diverged = false;
        for q in program.render() {
            let ra = run(&mut p.a, &q);
            std::thread::sleep(PARK);
            let rb = run(&mut p.b, &q);
            if !agree(&ra, &rb, is_assignment(&q)) {
                diverged = true;
                failures.push(format!(
                    "program {pi}: `{q}`\n  thread-per-conn: {}\n  multiplexed:     {}",
                    describe(&ra),
                    describe(&rb)
                ));
            }
        }
        if diverged {
            // Divergence may have forked session state across the two
            // connections; rebuild both worlds so later programs are
            // judged from a clean slate.
            pair.take().unwrap().shutdown();
            pair = Some(FuzzPair::new(&dataset.as_ref().unwrap().tables));
        }
    }
    if let Some(p) = pair.take() {
        p.shutdown();
    }
    assert_eq!(programs, FUZZ_BUDGET);
    assert!(
        failures.is_empty(),
        "{} connection-layer divergence(s) in {FUZZ_BUDGET} programs:\n{}",
        failures.len(),
        failures.join("\n")
    );
}
